//! # hefv — facade crate
//!
//! Re-exports the HEAT-rs workspace: the FV homomorphic-encryption library
//! ([`core`]), its arithmetic substrate ([`math`]), the cycle-level
//! coprocessor simulator ([`sim`]), the application layer ([`apps`]), the
//! multi-tenant evaluation engine ([`engine`]) and its TCP front-end
//! ([`net`]).

pub use hefv_apps as apps;
pub use hefv_core as core;
pub use hefv_engine as engine;
pub use hefv_math as math;
pub use hefv_net as net;
pub use hefv_sim as sim;
