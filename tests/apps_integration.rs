//! Integration tests of the application layer through the public facade.

use hefv::apps::meter::{synthetic_readings, Forecaster};
use hefv::apps::search::{encrypt_query, extract, search, Table};
use hefv::apps::sorting::{sort_bits, SortingNetwork};
use hefv::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn meter_forecast_end_to_end() {
    let mut params = FvParams::insecure_medium();
    params.t = 7681; // batching-capable for n = 256
    let ctx = FvContext::new(params).unwrap();
    let enc = BatchEncoder::new(7681, ctx.params().n).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);

    let readings = synthetic_readings(&mut rng, enc.slots());
    let mut epoch = |i: usize| {
        let vals: Vec<u64> = readings.iter().map(|r| r[i]).collect();
        encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng)
    };
    let cts = [epoch(0), epoch(1), epoch(2)];
    let f = Forecaster::default();
    let out = f.forecast(&ctx, &enc, &cts, &rlk, Backend::default());
    let slots = enc.decode(&decrypt(&ctx, &sk, &out));
    for h in [0usize, 17, 255] {
        assert_eq!(
            slots[h],
            f.forecast_plain(7681, readings[h]),
            "household {h}"
        );
    }
}

#[test]
fn search_end_to_end_multiple_queries() {
    let mut params = FvParams::insecure_medium();
    params.t = 7681;
    let ctx = FvContext::new(params).unwrap();
    let enc = BatchEncoder::new(7681, ctx.params().n).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);

    let keys: Vec<u64> = vec![3, 9, 12, 1, 7];
    let values: Vec<u64> = vec![33, 99, 120, 11, 77];
    let table = Table::new(keys, values, 4);
    for (k, v) in [(9u64, 99u64), (1, 11), (12, 120)] {
        let q = encrypt_query(&ctx, &enc, &pk, k, 4, &mut rng);
        let masked = search(&ctx, &enc, &table, &q, &rlk, Backend::default());
        let pt = decrypt(&ctx, &sk, &masked);
        let (_, value) = extract(&enc, &pt, 5).expect("present");
        assert_eq!(value, v, "key {k}");
    }
}

#[test]
fn sorting_network_on_both_backends() {
    let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let input = [1u64, 1, 0, 1];
    let bits: Vec<Ciphertext> = input
        .iter()
        .map(|&b| {
            encrypt(
                &ctx,
                &pk,
                &Plaintext::new(vec![b], 2, ctx.params().n),
                &mut rng,
            )
        })
        .collect();
    let net = SortingNetwork::batcher4();
    for backend in [Backend::Traditional, Backend::Hps(HpsPrecision::F64)] {
        let sorted = sort_bits(&ctx, &net, &bits, &rlk, backend);
        let got: Vec<u64> = sorted
            .iter()
            .map(|c| decrypt(&ctx, &sk, c).coeffs()[0])
            .collect();
        assert_eq!(got, [0, 1, 1, 1], "backend {backend:?}");
    }
}
