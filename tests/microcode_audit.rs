//! Audits the simulator's microarchitectural claims at the integration
//! level: instruction traces, schedule conflict-freedom, and the
//! Table II call-count contract.

use hefv::core::{context::FvContext, params::FvParams};
use hefv::sim::coproc::{mult_microcode, Coprocessor, Op};
use hefv::sim::cost::Instr;
use hefv::sim::nttsched::NttSchedule;
use std::collections::HashMap;

#[test]
fn paper_microcode_matches_table2_call_counts() {
    let ops = mult_microcode(6, 7, 6, 7, 4096, 19.64);
    let mut counts: HashMap<&'static str, u32> = HashMap::new();
    for op in &ops {
        if let Op::Instr(i) = op {
            *counts.entry(i.name()).or_insert(0) += 1;
        }
    }
    let expected = [
        ("NTT", 14u32),
        ("Inverse-NTT", 8),
        ("Coeff. wise Multiplication", 20),
        ("Coeff. wise Addition", 26),
        ("Memory Rearrange", 22),
        ("Lift q->Q (2 cores)", 4),
        ("Scale Q->q (2 cores)", 3),
    ];
    for (name, n) in expected {
        assert_eq!(counts[name], n, "{name}");
    }
}

#[test]
fn microcode_scales_with_parameter_shape() {
    // Table V row 2 shape: n = 8192, twelve q primes, thirteen p primes.
    let ops = mult_microcode(12, 13, 12, 13, 8192, 19.64);
    let ntt = ops
        .iter()
        .filter(|o| matches!(o, Op::Instr(Instr::Ntt)))
        .count();
    // 4 polys × ceil(25/13)=2 batches + 12 digits × 1 batch = 20.
    assert_eq!(ntt, 20);
}

#[test]
fn full_size_schedule_is_conflict_free_with_realistic_pipeline() {
    for depth in [1u64, 8, 12, 24] {
        let auditor = NttSchedule::new(4096).audit(depth);
        assert!(
            auditor.is_clean(),
            "pipeline depth {depth}: {:?}",
            auditor.violations().first()
        );
    }
}

#[test]
fn mult_report_composition_is_consistent() {
    let ctx = FvContext::new(FvParams::hpca19()).unwrap();
    let cop = Coprocessor::default();
    let r = cop.run_mult(&ctx);
    // Components must add up to the total.
    let us_from_parts =
        cop.clocks.fpga_cycles_to_us(r.instr_fpga_cycles) + r.rlk_dma_us + r.sync_us;
    assert!((us_from_parts - r.total_us).abs() < 1e-6);
    // Instruction time should dominate DMA (the paper: transfers ≈ 30%).
    assert!(r.rlk_dma_us < cop.clocks.fpga_cycles_to_us(r.instr_fpga_cycles));
}
