//! End-to-end integration tests across the workspace crates: the FV
//! library, the simulator, and the application layer working together.

use hefv::core::prelude::*;
use hefv::sim::coproc::Coprocessor;
use hefv::sim::system::System;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn medium() -> (FvContext, SecretKey, PublicKey, RelinKey, StdRng) {
    let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    (ctx, sk, pk, rlk, rng)
}

#[test]
fn depth_four_chain_decrypts_on_paper_sized_modulus() {
    // The paper's headline capability: multiplicative depth 4 with the
    // 180-bit six-prime modulus (n reduced for test speed; the modulus,
    // prime structure, digit count and noise machinery are the paper's).
    let (ctx, sk, pk, rlk, mut rng) = medium();
    let one = encrypt(
        &ctx,
        &pk,
        &Plaintext::new(vec![1], ctx.params().t, ctx.params().n),
        &mut rng,
    );
    let mut acc = one.clone();
    for level in 1..=4 {
        acc = mul(&ctx, &acc, &one, &rlk, Backend::default());
        let budget = measure(&ctx, &sk, &acc).budget_bits;
        assert!(
            budget > 0.0,
            "budget exhausted at level {level}: {budget:.1} bits"
        );
    }
    assert_eq!(decrypt(&ctx, &sk, &acc).coeffs()[0], 1);
}

#[test]
fn simulator_and_library_agree_bit_for_bit() {
    let (ctx, sk, pk, rlk, mut rng) = medium();
    let pa = Plaintext::new(vec![3, 1, 4], ctx.params().t, ctx.params().n);
    let pb = Plaintext::new(vec![1, 5, 9], ctx.params().t, ctx.params().n);
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pb, &mut rng);
    let cop = Coprocessor::default();
    let (hw, _) = cop.execute_mult(&ctx, &ca, &cb, &rlk);
    let sw = mul(&ctx, &ca, &cb, &rlk, Backend::Hps(HpsPrecision::Fixed));
    assert_eq!(hw, sw);
    let _ = sk;
}

#[test]
fn backends_agree_on_random_workloads() {
    let (ctx, sk, pk, rlk, mut rng) = medium();
    use rand::Rng;
    for trial in 0..3 {
        let coeffs: Vec<u64> = (0..8).map(|_| rng.gen_range(0..ctx.params().t)).collect();
        let pa = Plaintext::new(coeffs.clone(), ctx.params().t, ctx.params().n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let trad = mul(&ctx, &ca, &ca, &rlk, Backend::Traditional);
        let hps = mul(&ctx, &ca, &ca, &rlk, Backend::Hps(HpsPrecision::Fixed));
        assert_eq!(trad, hps, "trial {trial}");
        assert_eq!(
            decrypt(&ctx, &sk, &trad),
            decrypt(&ctx, &sk, &hps),
            "trial {trial}"
        );
    }
}

#[test]
fn table1_and_throughput_reproduce_at_integration_level() {
    let ctx = FvContext::new(FvParams::hpca19()).unwrap();
    let sys = System::default();
    let rows = sys.table1(&ctx);
    assert_eq!(rows.len(), 5);
    for r in &rows {
        let ratio = r.cycles as f64 / r.paper_cycles as f64;
        assert!(
            (0.99..=1.01).contains(&ratio),
            "{} off by {ratio:.3}",
            r.label
        );
    }
    let tput = sys.mult_throughput_per_s(&ctx);
    assert!((392.0..=408.0).contains(&tput));
}

#[test]
fn fresh_ciphertexts_survive_transport_shape() {
    // Ciphertexts cross the network in the paper's client/server model;
    // the transfer size must match the DMA workload of Table III.
    let (ctx, sk, pk, _, mut rng) = medium();
    let pt = Plaintext::new(vec![7, 7, 7], ctx.params().t, ctx.params().n);
    let ct = encrypt(&ctx, &pk, &pt, &mut rng);
    assert_eq!(
        ct.transfer_bytes(),
        2 * ctx.params().k() * ctx.params().n * 4
    );
    let ct2 = ct.clone();
    assert_eq!(decrypt(&ctx, &sk, &ct2), pt);
}
