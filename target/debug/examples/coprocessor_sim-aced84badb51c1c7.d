/root/repo/target/debug/examples/coprocessor_sim-aced84badb51c1c7.d: examples/coprocessor_sim.rs Cargo.toml

/root/repo/target/debug/examples/libcoprocessor_sim-aced84badb51c1c7.rmeta: examples/coprocessor_sim.rs Cargo.toml

examples/coprocessor_sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
