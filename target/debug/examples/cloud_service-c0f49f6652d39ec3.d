/root/repo/target/debug/examples/cloud_service-c0f49f6652d39ec3.d: examples/cloud_service.rs

/root/repo/target/debug/examples/cloud_service-c0f49f6652d39ec3: examples/cloud_service.rs

examples/cloud_service.rs:
