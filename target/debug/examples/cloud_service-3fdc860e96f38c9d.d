/root/repo/target/debug/examples/cloud_service-3fdc860e96f38c9d.d: examples/cloud_service.rs Cargo.toml

/root/repo/target/debug/examples/libcloud_service-3fdc860e96f38c9d.rmeta: examples/cloud_service.rs Cargo.toml

examples/cloud_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
