/root/repo/target/debug/examples/encrypted_sort-b35459f8ea8c4fdf.d: examples/encrypted_sort.rs

/root/repo/target/debug/examples/encrypted_sort-b35459f8ea8c4fdf: examples/encrypted_sort.rs

examples/encrypted_sort.rs:
