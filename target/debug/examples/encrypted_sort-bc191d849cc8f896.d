/root/repo/target/debug/examples/encrypted_sort-bc191d849cc8f896.d: examples/encrypted_sort.rs Cargo.toml

/root/repo/target/debug/examples/libencrypted_sort-bc191d849cc8f896.rmeta: examples/encrypted_sort.rs Cargo.toml

examples/encrypted_sort.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
