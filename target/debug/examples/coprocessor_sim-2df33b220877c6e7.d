/root/repo/target/debug/examples/coprocessor_sim-2df33b220877c6e7.d: examples/coprocessor_sim.rs

/root/repo/target/debug/examples/coprocessor_sim-2df33b220877c6e7: examples/coprocessor_sim.rs

examples/coprocessor_sim.rs:
