/root/repo/target/debug/examples/transciphering-0e9aa80f7671f9c9.d: examples/transciphering.rs Cargo.toml

/root/repo/target/debug/examples/libtransciphering-0e9aa80f7671f9c9.rmeta: examples/transciphering.rs Cargo.toml

examples/transciphering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
