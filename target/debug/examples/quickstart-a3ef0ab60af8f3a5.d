/root/repo/target/debug/examples/quickstart-a3ef0ab60af8f3a5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a3ef0ab60af8f3a5: examples/quickstart.rs

examples/quickstart.rs:
