/root/repo/target/debug/examples/quickstart-49126bf7cae71006.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-49126bf7cae71006.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
