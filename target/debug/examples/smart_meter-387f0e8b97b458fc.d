/root/repo/target/debug/examples/smart_meter-387f0e8b97b458fc.d: examples/smart_meter.rs Cargo.toml

/root/repo/target/debug/examples/libsmart_meter-387f0e8b97b458fc.rmeta: examples/smart_meter.rs Cargo.toml

examples/smart_meter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
