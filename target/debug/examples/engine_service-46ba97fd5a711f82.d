/root/repo/target/debug/examples/engine_service-46ba97fd5a711f82.d: examples/engine_service.rs Cargo.toml

/root/repo/target/debug/examples/libengine_service-46ba97fd5a711f82.rmeta: examples/engine_service.rs Cargo.toml

examples/engine_service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
