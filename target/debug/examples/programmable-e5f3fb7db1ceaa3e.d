/root/repo/target/debug/examples/programmable-e5f3fb7db1ceaa3e.d: examples/programmable.rs Cargo.toml

/root/repo/target/debug/examples/libprogrammable-e5f3fb7db1ceaa3e.rmeta: examples/programmable.rs Cargo.toml

examples/programmable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
