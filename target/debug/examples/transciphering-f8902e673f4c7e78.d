/root/repo/target/debug/examples/transciphering-f8902e673f4c7e78.d: examples/transciphering.rs

/root/repo/target/debug/examples/transciphering-f8902e673f4c7e78: examples/transciphering.rs

examples/transciphering.rs:
