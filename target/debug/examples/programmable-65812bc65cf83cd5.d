/root/repo/target/debug/examples/programmable-65812bc65cf83cd5.d: examples/programmable.rs

/root/repo/target/debug/examples/programmable-65812bc65cf83cd5: examples/programmable.rs

examples/programmable.rs:
