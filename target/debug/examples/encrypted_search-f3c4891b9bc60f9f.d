/root/repo/target/debug/examples/encrypted_search-f3c4891b9bc60f9f.d: examples/encrypted_search.rs

/root/repo/target/debug/examples/encrypted_search-f3c4891b9bc60f9f: examples/encrypted_search.rs

examples/encrypted_search.rs:
