/root/repo/target/debug/examples/encrypted_search-2bd3249e9fdff234.d: examples/encrypted_search.rs Cargo.toml

/root/repo/target/debug/examples/libencrypted_search-2bd3249e9fdff234.rmeta: examples/encrypted_search.rs Cargo.toml

examples/encrypted_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
