/root/repo/target/debug/examples/engine_service-d216e5606f6eba3f.d: examples/engine_service.rs

/root/repo/target/debug/examples/engine_service-d216e5606f6eba3f: examples/engine_service.rs

examples/engine_service.rs:
