/root/repo/target/debug/examples/smart_meter-8dfcd62ec73f7617.d: examples/smart_meter.rs

/root/repo/target/debug/examples/smart_meter-8dfcd62ec73f7617: examples/smart_meter.rs

examples/smart_meter.rs:
