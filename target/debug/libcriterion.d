/root/repo/target/debug/libcriterion.rlib: /root/repo/crates/shims/criterion/src/lib.rs
