/root/repo/target/debug/deps/apps_integration-ae6551a9ce2b8448.d: tests/apps_integration.rs

/root/repo/target/debug/deps/apps_integration-ae6551a9ce2b8448: tests/apps_integration.rs

tests/apps_integration.rs:
