/root/repo/target/debug/deps/engine_integration-02614c353f968830.d: crates/engine/tests/engine_integration.rs

/root/repo/target/debug/deps/engine_integration-02614c353f968830: crates/engine/tests/engine_integration.rs

crates/engine/tests/engine_integration.rs:
