/root/repo/target/debug/deps/ablation_twiddle-39b8bf8b6634e361.d: crates/bench/src/bin/ablation_twiddle.rs

/root/repo/target/debug/deps/ablation_twiddle-39b8bf8b6634e361: crates/bench/src/bin/ablation_twiddle.rs

crates/bench/src/bin/ablation_twiddle.rs:
