/root/repo/target/debug/deps/threads-fdf1f911b6d2887d.d: crates/bench/src/bin/threads.rs

/root/repo/target/debug/deps/threads-fdf1f911b6d2887d: crates/bench/src/bin/threads.rs

crates/bench/src/bin/threads.rs:
