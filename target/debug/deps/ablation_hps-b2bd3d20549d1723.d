/root/repo/target/debug/deps/ablation_hps-b2bd3d20549d1723.d: crates/bench/src/bin/ablation_hps.rs

/root/repo/target/debug/deps/ablation_hps-b2bd3d20549d1723: crates/bench/src/bin/ablation_hps.rs

crates/bench/src/bin/ablation_hps.rs:
