/root/repo/target/debug/deps/power_report-8f0e0a597a90558c.d: crates/bench/src/bin/power_report.rs Cargo.toml

/root/repo/target/debug/deps/libpower_report-8f0e0a597a90558c.rmeta: crates/bench/src/bin/power_report.rs Cargo.toml

crates/bench/src/bin/power_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
