/root/repo/target/debug/deps/bitexact-68bca16f976d672e.d: crates/bench/src/bin/bitexact.rs Cargo.toml

/root/repo/target/debug/deps/libbitexact-68bca16f976d672e.rmeta: crates/bench/src/bin/bitexact.rs Cargo.toml

crates/bench/src/bin/bitexact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
