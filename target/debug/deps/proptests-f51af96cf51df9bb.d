/root/repo/target/debug/deps/proptests-f51af96cf51df9bb.d: crates/math/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-f51af96cf51df9bb.rmeta: crates/math/tests/proptests.rs Cargo.toml

crates/math/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
