/root/repo/target/debug/deps/table3-8d28188a1eba31a7.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-8d28188a1eba31a7.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
