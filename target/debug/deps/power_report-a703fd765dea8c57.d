/root/repo/target/debug/deps/power_report-a703fd765dea8c57.d: crates/bench/src/bin/power_report.rs

/root/repo/target/debug/deps/power_report-a703fd765dea8c57: crates/bench/src/bin/power_report.rs

crates/bench/src/bin/power_report.rs:
