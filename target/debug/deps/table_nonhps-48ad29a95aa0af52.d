/root/repo/target/debug/deps/table_nonhps-48ad29a95aa0af52.d: crates/bench/src/bin/table_nonhps.rs Cargo.toml

/root/repo/target/debug/deps/libtable_nonhps-48ad29a95aa0af52.rmeta: crates/bench/src/bin/table_nonhps.rs Cargo.toml

crates/bench/src/bin/table_nonhps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
