/root/repo/target/debug/deps/hefv_math-7338e0e0ceb4d6df.d: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/fixed.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs crates/math/src/zq.rs

/root/repo/target/debug/deps/hefv_math-7338e0e0ceb4d6df: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/fixed.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs crates/math/src/zq.rs

crates/math/src/lib.rs:
crates/math/src/bigint.rs:
crates/math/src/fixed.rs:
crates/math/src/ntt.rs:
crates/math/src/poly.rs:
crates/math/src/primes.rs:
crates/math/src/rns.rs:
crates/math/src/zq.rs:
