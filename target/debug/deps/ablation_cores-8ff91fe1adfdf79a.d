/root/repo/target/debug/deps/ablation_cores-8ff91fe1adfdf79a.d: crates/bench/src/bin/ablation_cores.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cores-8ff91fe1adfdf79a.rmeta: crates/bench/src/bin/ablation_cores.rs Cargo.toml

crates/bench/src/bin/ablation_cores.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
