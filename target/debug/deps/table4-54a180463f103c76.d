/root/repo/target/debug/deps/table4-54a180463f103c76.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-54a180463f103c76: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
