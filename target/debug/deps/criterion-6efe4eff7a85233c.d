/root/repo/target/debug/deps/criterion-6efe4eff7a85233c.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-6efe4eff7a85233c: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
