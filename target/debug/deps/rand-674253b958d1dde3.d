/root/repo/target/debug/deps/rand-674253b958d1dde3.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-674253b958d1dde3.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
