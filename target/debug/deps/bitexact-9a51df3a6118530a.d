/root/repo/target/debug/deps/bitexact-9a51df3a6118530a.d: crates/bench/src/bin/bitexact.rs

/root/repo/target/debug/deps/bitexact-9a51df3a6118530a: crates/bench/src/bin/bitexact.rs

crates/bench/src/bin/bitexact.rs:
