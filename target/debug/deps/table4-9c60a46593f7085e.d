/root/repo/target/debug/deps/table4-9c60a46593f7085e.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-9c60a46593f7085e.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
