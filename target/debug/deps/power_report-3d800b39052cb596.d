/root/repo/target/debug/deps/power_report-3d800b39052cb596.d: crates/bench/src/bin/power_report.rs

/root/repo/target/debug/deps/power_report-3d800b39052cb596: crates/bench/src/bin/power_report.rs

crates/bench/src/bin/power_report.rs:
