/root/repo/target/debug/deps/power_report-97d198c069ae3e4b.d: crates/bench/src/bin/power_report.rs Cargo.toml

/root/repo/target/debug/deps/libpower_report-97d198c069ae3e4b.rmeta: crates/bench/src/bin/power_report.rs Cargo.toml

crates/bench/src/bin/power_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
