/root/repo/target/debug/deps/proptest-4cf4c674c76291c1.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-4cf4c674c76291c1: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
