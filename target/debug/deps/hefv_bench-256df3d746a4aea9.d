/root/repo/target/debug/deps/hefv_bench-256df3d746a4aea9.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/hefv_bench-256df3d746a4aea9: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
