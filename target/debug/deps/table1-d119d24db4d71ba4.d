/root/repo/target/debug/deps/table1-d119d24db4d71ba4.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d119d24db4d71ba4: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
