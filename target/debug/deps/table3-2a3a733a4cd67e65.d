/root/repo/target/debug/deps/table3-2a3a733a4cd67e65.d: crates/bench/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-2a3a733a4cd67e65.rmeta: crates/bench/src/bin/table3.rs Cargo.toml

crates/bench/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
