/root/repo/target/debug/deps/failure_injection-147a9e26ce017caf.d: crates/core/tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-147a9e26ce017caf: crates/core/tests/failure_injection.rs

crates/core/tests/failure_injection.rs:
