/root/repo/target/debug/deps/proptests-5d05c67037c89ecc.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5d05c67037c89ecc: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
