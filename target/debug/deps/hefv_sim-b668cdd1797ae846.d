/root/repo/target/debug/deps/hefv_sim-b668cdd1797ae846.d: crates/sim/src/lib.rs crates/sim/src/bram.rs crates/sim/src/clock.rs crates/sim/src/coproc.rs crates/sim/src/cost.rs crates/sim/src/dma.rs crates/sim/src/functional.rs crates/sim/src/liftsim.rs crates/sim/src/nttsched.rs crates/sim/src/power.rs crates/sim/src/program.rs crates/sim/src/resources.rs crates/sim/src/rpau.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/hefv_sim-b668cdd1797ae846: crates/sim/src/lib.rs crates/sim/src/bram.rs crates/sim/src/clock.rs crates/sim/src/coproc.rs crates/sim/src/cost.rs crates/sim/src/dma.rs crates/sim/src/functional.rs crates/sim/src/liftsim.rs crates/sim/src/nttsched.rs crates/sim/src/power.rs crates/sim/src/program.rs crates/sim/src/resources.rs crates/sim/src/rpau.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/bram.rs:
crates/sim/src/clock.rs:
crates/sim/src/coproc.rs:
crates/sim/src/cost.rs:
crates/sim/src/dma.rs:
crates/sim/src/functional.rs:
crates/sim/src/liftsim.rs:
crates/sim/src/nttsched.rs:
crates/sim/src/power.rs:
crates/sim/src/program.rs:
crates/sim/src/resources.rs:
crates/sim/src/rpau.rs:
crates/sim/src/system.rs:
