/root/repo/target/debug/deps/hefv-23452ff881498731.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhefv-23452ff881498731.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
