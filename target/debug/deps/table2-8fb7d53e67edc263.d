/root/repo/target/debug/deps/table2-8fb7d53e67edc263.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-8fb7d53e67edc263: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
