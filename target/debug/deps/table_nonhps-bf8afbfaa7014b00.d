/root/repo/target/debug/deps/table_nonhps-bf8afbfaa7014b00.d: crates/bench/src/bin/table_nonhps.rs Cargo.toml

/root/repo/target/debug/deps/libtable_nonhps-bf8afbfaa7014b00.rmeta: crates/bench/src/bin/table_nonhps.rs Cargo.toml

crates/bench/src/bin/table_nonhps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
