/root/repo/target/debug/deps/hefv_apps-89b6412ac4df95e3.d: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

/root/repo/target/debug/deps/hefv_apps-89b6412ac4df95e3: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

crates/apps/src/lib.rs:
crates/apps/src/cloud.rs:
crates/apps/src/meter.rs:
crates/apps/src/rasta.rs:
crates/apps/src/search.rs:
crates/apps/src/sorting.rs:
