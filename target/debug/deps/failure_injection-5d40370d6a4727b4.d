/root/repo/target/debug/deps/failure_injection-5d40370d6a4727b4.d: crates/core/tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-5d40370d6a4727b4.rmeta: crates/core/tests/failure_injection.rs Cargo.toml

crates/core/tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
