/root/repo/target/debug/deps/serde-2b3b981e73d7f2c6.d: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2b3b981e73d7f2c6.so: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
