/root/repo/target/debug/deps/serde-df3a38c18258651a.d: crates/shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-df3a38c18258651a.rmeta: crates/shims/serde/src/lib.rs Cargo.toml

crates/shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
