/root/repo/target/debug/deps/table5-512a270a0bd9f340.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-512a270a0bd9f340.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
