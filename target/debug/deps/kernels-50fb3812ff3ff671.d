/root/repo/target/debug/deps/kernels-50fb3812ff3ff671.d: crates/bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-50fb3812ff3ff671.rmeta: crates/bench/benches/kernels.rs Cargo.toml

crates/bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
