/root/repo/target/debug/deps/bitexact-025b9891808427da.d: crates/bench/src/bin/bitexact.rs

/root/repo/target/debug/deps/bitexact-025b9891808427da: crates/bench/src/bin/bitexact.rs

crates/bench/src/bin/bitexact.rs:
