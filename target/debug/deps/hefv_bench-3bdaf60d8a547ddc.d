/root/repo/target/debug/deps/hefv_bench-3bdaf60d8a547ddc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhefv_bench-3bdaf60d8a547ddc.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhefv_bench-3bdaf60d8a547ddc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
