/root/repo/target/debug/deps/criterion-da128c7702728a97.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-da128c7702728a97.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
