/root/repo/target/debug/deps/speedup-4ecad9c21e314557.d: crates/bench/src/bin/speedup.rs Cargo.toml

/root/repo/target/debug/deps/libspeedup-4ecad9c21e314557.rmeta: crates/bench/src/bin/speedup.rs Cargo.toml

crates/bench/src/bin/speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
