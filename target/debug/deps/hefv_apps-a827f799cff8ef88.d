/root/repo/target/debug/deps/hefv_apps-a827f799cff8ef88.d: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs Cargo.toml

/root/repo/target/debug/deps/libhefv_apps-a827f799cff8ef88.rmeta: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/cloud.rs:
crates/apps/src/meter.rs:
crates/apps/src/rasta.rs:
crates/apps/src/search.rs:
crates/apps/src/sorting.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
