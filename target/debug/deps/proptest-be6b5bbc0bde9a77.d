/root/repo/target/debug/deps/proptest-be6b5bbc0bde9a77.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-be6b5bbc0bde9a77.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-be6b5bbc0bde9a77.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
