/root/repo/target/debug/deps/wire_props-c9d5d43a80d61a18.d: crates/engine/tests/wire_props.rs Cargo.toml

/root/repo/target/debug/deps/libwire_props-c9d5d43a80d61a18.rmeta: crates/engine/tests/wire_props.rs Cargo.toml

crates/engine/tests/wire_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
