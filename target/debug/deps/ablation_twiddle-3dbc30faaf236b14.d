/root/repo/target/debug/deps/ablation_twiddle-3dbc30faaf236b14.d: crates/bench/src/bin/ablation_twiddle.rs Cargo.toml

/root/repo/target/debug/deps/libablation_twiddle-3dbc30faaf236b14.rmeta: crates/bench/src/bin/ablation_twiddle.rs Cargo.toml

crates/bench/src/bin/ablation_twiddle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
