/root/repo/target/debug/deps/f1_estimate-071487d4bce92739.d: crates/bench/src/bin/f1_estimate.rs Cargo.toml

/root/repo/target/debug/deps/libf1_estimate-071487d4bce92739.rmeta: crates/bench/src/bin/f1_estimate.rs Cargo.toml

crates/bench/src/bin/f1_estimate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
