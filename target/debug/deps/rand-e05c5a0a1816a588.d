/root/repo/target/debug/deps/rand-e05c5a0a1816a588.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e05c5a0a1816a588.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e05c5a0a1816a588.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
