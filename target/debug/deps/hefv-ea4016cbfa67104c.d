/root/repo/target/debug/deps/hefv-ea4016cbfa67104c.d: src/lib.rs

/root/repo/target/debug/deps/hefv-ea4016cbfa67104c: src/lib.rs

src/lib.rs:
