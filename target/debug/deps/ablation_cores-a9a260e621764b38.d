/root/repo/target/debug/deps/ablation_cores-a9a260e621764b38.d: crates/bench/src/bin/ablation_cores.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cores-a9a260e621764b38.rmeta: crates/bench/src/bin/ablation_cores.rs Cargo.toml

crates/bench/src/bin/ablation_cores.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
