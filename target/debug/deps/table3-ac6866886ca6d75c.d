/root/repo/target/debug/deps/table3-ac6866886ca6d75c.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-ac6866886ca6d75c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
