/root/repo/target/debug/deps/fig3-84867328e2202bed.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-84867328e2202bed: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
