/root/repo/target/debug/deps/speedup-ede8b17cd84dc474.d: crates/bench/src/bin/speedup.rs

/root/repo/target/debug/deps/speedup-ede8b17cd84dc474: crates/bench/src/bin/speedup.rs

crates/bench/src/bin/speedup.rs:
