/root/repo/target/debug/deps/depth_sweep-5d48e320d95b6a63.d: crates/bench/src/bin/depth_sweep.rs

/root/repo/target/debug/deps/depth_sweep-5d48e320d95b6a63: crates/bench/src/bin/depth_sweep.rs

crates/bench/src/bin/depth_sweep.rs:
