/root/repo/target/debug/deps/proptest-517eebfb84d54353.d: crates/shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-517eebfb84d54353.rmeta: crates/shims/proptest/src/lib.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
