/root/repo/target/debug/deps/speedup-1f42fb4195d9e63e.d: crates/bench/src/bin/speedup.rs Cargo.toml

/root/repo/target/debug/deps/libspeedup-1f42fb4195d9e63e.rmeta: crates/bench/src/bin/speedup.rs Cargo.toml

crates/bench/src/bin/speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
