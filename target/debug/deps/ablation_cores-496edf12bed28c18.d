/root/repo/target/debug/deps/ablation_cores-496edf12bed28c18.d: crates/bench/src/bin/ablation_cores.rs

/root/repo/target/debug/deps/ablation_cores-496edf12bed28c18: crates/bench/src/bin/ablation_cores.rs

crates/bench/src/bin/ablation_cores.rs:
