/root/repo/target/debug/deps/fig3-7533e1018b06f415.d: crates/bench/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-7533e1018b06f415: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
