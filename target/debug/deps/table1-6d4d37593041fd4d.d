/root/repo/target/debug/deps/table1-6d4d37593041fd4d.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-6d4d37593041fd4d.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
