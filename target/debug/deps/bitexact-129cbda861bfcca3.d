/root/repo/target/debug/deps/bitexact-129cbda861bfcca3.d: crates/bench/src/bin/bitexact.rs Cargo.toml

/root/repo/target/debug/deps/libbitexact-129cbda861bfcca3.rmeta: crates/bench/src/bin/bitexact.rs Cargo.toml

crates/bench/src/bin/bitexact.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
