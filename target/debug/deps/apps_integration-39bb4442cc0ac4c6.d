/root/repo/target/debug/deps/apps_integration-39bb4442cc0ac4c6.d: tests/apps_integration.rs Cargo.toml

/root/repo/target/debug/deps/libapps_integration-39bb4442cc0ac4c6.rmeta: tests/apps_integration.rs Cargo.toml

tests/apps_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
