/root/repo/target/debug/deps/threads-b09cc351dced3be2.d: crates/bench/src/bin/threads.rs

/root/repo/target/debug/deps/threads-b09cc351dced3be2: crates/bench/src/bin/threads.rs

crates/bench/src/bin/threads.rs:
