/root/repo/target/debug/deps/table5-9ca19c95509e47dc.d: crates/bench/src/bin/table5.rs Cargo.toml

/root/repo/target/debug/deps/libtable5-9ca19c95509e47dc.rmeta: crates/bench/src/bin/table5.rs Cargo.toml

crates/bench/src/bin/table5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
