/root/repo/target/debug/deps/table4-6fc09731237ba39b.d: crates/bench/src/bin/table4.rs Cargo.toml

/root/repo/target/debug/deps/libtable4-6fc09731237ba39b.rmeta: crates/bench/src/bin/table4.rs Cargo.toml

crates/bench/src/bin/table4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
