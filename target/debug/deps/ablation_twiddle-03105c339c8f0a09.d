/root/repo/target/debug/deps/ablation_twiddle-03105c339c8f0a09.d: crates/bench/src/bin/ablation_twiddle.rs

/root/repo/target/debug/deps/ablation_twiddle-03105c339c8f0a09: crates/bench/src/bin/ablation_twiddle.rs

crates/bench/src/bin/ablation_twiddle.rs:
