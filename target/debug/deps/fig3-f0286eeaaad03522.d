/root/repo/target/debug/deps/fig3-f0286eeaaad03522.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-f0286eeaaad03522.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
