/root/repo/target/debug/deps/hefv_bench-6e6d041ab822e5e8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhefv_bench-6e6d041ab822e5e8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
