/root/repo/target/debug/deps/criterion-3b4f94ab6ad28332.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-3b4f94ab6ad28332.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
