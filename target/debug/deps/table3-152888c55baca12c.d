/root/repo/target/debug/deps/table3-152888c55baca12c.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-152888c55baca12c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
