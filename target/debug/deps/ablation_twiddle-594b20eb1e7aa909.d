/root/repo/target/debug/deps/ablation_twiddle-594b20eb1e7aa909.d: crates/bench/src/bin/ablation_twiddle.rs Cargo.toml

/root/repo/target/debug/deps/libablation_twiddle-594b20eb1e7aa909.rmeta: crates/bench/src/bin/ablation_twiddle.rs Cargo.toml

crates/bench/src/bin/ablation_twiddle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
