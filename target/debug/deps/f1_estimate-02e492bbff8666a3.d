/root/repo/target/debug/deps/f1_estimate-02e492bbff8666a3.d: crates/bench/src/bin/f1_estimate.rs

/root/repo/target/debug/deps/f1_estimate-02e492bbff8666a3: crates/bench/src/bin/f1_estimate.rs

crates/bench/src/bin/f1_estimate.rs:
