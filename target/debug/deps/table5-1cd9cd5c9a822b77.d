/root/repo/target/debug/deps/table5-1cd9cd5c9a822b77.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-1cd9cd5c9a822b77: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
