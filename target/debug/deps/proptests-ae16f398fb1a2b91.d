/root/repo/target/debug/deps/proptests-ae16f398fb1a2b91.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ae16f398fb1a2b91: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
