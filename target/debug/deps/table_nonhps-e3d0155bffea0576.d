/root/repo/target/debug/deps/table_nonhps-e3d0155bffea0576.d: crates/bench/src/bin/table_nonhps.rs

/root/repo/target/debug/deps/table_nonhps-e3d0155bffea0576: crates/bench/src/bin/table_nonhps.rs

crates/bench/src/bin/table_nonhps.rs:
