/root/repo/target/debug/deps/engine-740608ec7cb4e109.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-740608ec7cb4e109.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
