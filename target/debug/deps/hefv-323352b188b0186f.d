/root/repo/target/debug/deps/hefv-323352b188b0186f.d: src/lib.rs

/root/repo/target/debug/deps/libhefv-323352b188b0186f.rlib: src/lib.rs

/root/repo/target/debug/deps/libhefv-323352b188b0186f.rmeta: src/lib.rs

src/lib.rs:
