/root/repo/target/debug/deps/proptests-565a062368b0eb0c.d: crates/sim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-565a062368b0eb0c.rmeta: crates/sim/tests/proptests.rs Cargo.toml

crates/sim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
