/root/repo/target/debug/deps/table2-e82f2cddd341bcab.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-e82f2cddd341bcab.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
