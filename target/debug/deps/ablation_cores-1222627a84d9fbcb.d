/root/repo/target/debug/deps/ablation_cores-1222627a84d9fbcb.d: crates/bench/src/bin/ablation_cores.rs

/root/repo/target/debug/deps/ablation_cores-1222627a84d9fbcb: crates/bench/src/bin/ablation_cores.rs

crates/bench/src/bin/ablation_cores.rs:
