/root/repo/target/debug/deps/hefv_bench-711a0535a2bb336b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhefv_bench-711a0535a2bb336b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libhefv_bench-711a0535a2bb336b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
