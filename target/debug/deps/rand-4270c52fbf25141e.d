/root/repo/target/debug/deps/rand-4270c52fbf25141e.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-4270c52fbf25141e: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
