/root/repo/target/debug/deps/hefv_math-6b858eeb5c9c7792.d: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/fixed.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs crates/math/src/zq.rs Cargo.toml

/root/repo/target/debug/deps/libhefv_math-6b858eeb5c9c7792.rmeta: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/fixed.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs crates/math/src/zq.rs Cargo.toml

crates/math/src/lib.rs:
crates/math/src/bigint.rs:
crates/math/src/fixed.rs:
crates/math/src/ntt.rs:
crates/math/src/poly.rs:
crates/math/src/primes.rs:
crates/math/src/rns.rs:
crates/math/src/zq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
