/root/repo/target/debug/deps/hefv_engine-d1eb49dbc60d8c68.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/engine.rs crates/engine/src/error.rs crates/engine/src/registry.rs crates/engine/src/request.rs crates/engine/src/sched.rs crates/engine/src/stats.rs crates/engine/src/wire.rs

/root/repo/target/debug/deps/hefv_engine-d1eb49dbc60d8c68: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/engine.rs crates/engine/src/error.rs crates/engine/src/registry.rs crates/engine/src/request.rs crates/engine/src/sched.rs crates/engine/src/stats.rs crates/engine/src/wire.rs

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/engine.rs:
crates/engine/src/error.rs:
crates/engine/src/registry.rs:
crates/engine/src/request.rs:
crates/engine/src/sched.rs:
crates/engine/src/stats.rs:
crates/engine/src/wire.rs:
