/root/repo/target/debug/deps/proptests-28f24bce7919f680.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-28f24bce7919f680.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
