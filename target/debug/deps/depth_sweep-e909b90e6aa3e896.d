/root/repo/target/debug/deps/depth_sweep-e909b90e6aa3e896.d: crates/bench/src/bin/depth_sweep.rs

/root/repo/target/debug/deps/depth_sweep-e909b90e6aa3e896: crates/bench/src/bin/depth_sweep.rs

crates/bench/src/bin/depth_sweep.rs:
