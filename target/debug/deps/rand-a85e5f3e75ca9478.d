/root/repo/target/debug/deps/rand-a85e5f3e75ca9478.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-a85e5f3e75ca9478.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
