/root/repo/target/debug/deps/hefv_engine-603d5f98a87f7564.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/engine.rs crates/engine/src/error.rs crates/engine/src/registry.rs crates/engine/src/request.rs crates/engine/src/sched.rs crates/engine/src/stats.rs crates/engine/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libhefv_engine-603d5f98a87f7564.rmeta: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/engine.rs crates/engine/src/error.rs crates/engine/src/registry.rs crates/engine/src/request.rs crates/engine/src/sched.rs crates/engine/src/stats.rs crates/engine/src/wire.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/engine.rs:
crates/engine/src/error.rs:
crates/engine/src/registry.rs:
crates/engine/src/request.rs:
crates/engine/src/sched.rs:
crates/engine/src/stats.rs:
crates/engine/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
