/root/repo/target/debug/deps/rns-6a10ea9462184b23.d: crates/bench/benches/rns.rs Cargo.toml

/root/repo/target/debug/deps/librns-6a10ea9462184b23.rmeta: crates/bench/benches/rns.rs Cargo.toml

crates/bench/benches/rns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
