/root/repo/target/debug/deps/depth_sweep-1f740ce600961254.d: crates/bench/src/bin/depth_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libdepth_sweep-1f740ce600961254.rmeta: crates/bench/src/bin/depth_sweep.rs Cargo.toml

crates/bench/src/bin/depth_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
