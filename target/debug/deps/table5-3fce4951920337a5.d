/root/repo/target/debug/deps/table5-3fce4951920337a5.d: crates/bench/src/bin/table5.rs

/root/repo/target/debug/deps/table5-3fce4951920337a5: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
