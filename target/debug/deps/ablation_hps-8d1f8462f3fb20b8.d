/root/repo/target/debug/deps/ablation_hps-8d1f8462f3fb20b8.d: crates/bench/src/bin/ablation_hps.rs Cargo.toml

/root/repo/target/debug/deps/libablation_hps-8d1f8462f3fb20b8.rmeta: crates/bench/src/bin/ablation_hps.rs Cargo.toml

crates/bench/src/bin/ablation_hps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
