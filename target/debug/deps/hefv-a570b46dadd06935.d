/root/repo/target/debug/deps/hefv-a570b46dadd06935.d: src/lib.rs

/root/repo/target/debug/deps/libhefv-a570b46dadd06935.rlib: src/lib.rs

/root/repo/target/debug/deps/libhefv-a570b46dadd06935.rmeta: src/lib.rs

src/lib.rs:
