/root/repo/target/debug/deps/table2-86170980e4dcfd43.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-86170980e4dcfd43: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
