/root/repo/target/debug/deps/hefv_sim-a3fd4cbdf8e45c16.d: crates/sim/src/lib.rs crates/sim/src/bram.rs crates/sim/src/clock.rs crates/sim/src/coproc.rs crates/sim/src/cost.rs crates/sim/src/dma.rs crates/sim/src/functional.rs crates/sim/src/liftsim.rs crates/sim/src/nttsched.rs crates/sim/src/power.rs crates/sim/src/program.rs crates/sim/src/resources.rs crates/sim/src/rpau.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libhefv_sim-a3fd4cbdf8e45c16.rlib: crates/sim/src/lib.rs crates/sim/src/bram.rs crates/sim/src/clock.rs crates/sim/src/coproc.rs crates/sim/src/cost.rs crates/sim/src/dma.rs crates/sim/src/functional.rs crates/sim/src/liftsim.rs crates/sim/src/nttsched.rs crates/sim/src/power.rs crates/sim/src/program.rs crates/sim/src/resources.rs crates/sim/src/rpau.rs crates/sim/src/system.rs

/root/repo/target/debug/deps/libhefv_sim-a3fd4cbdf8e45c16.rmeta: crates/sim/src/lib.rs crates/sim/src/bram.rs crates/sim/src/clock.rs crates/sim/src/coproc.rs crates/sim/src/cost.rs crates/sim/src/dma.rs crates/sim/src/functional.rs crates/sim/src/liftsim.rs crates/sim/src/nttsched.rs crates/sim/src/power.rs crates/sim/src/program.rs crates/sim/src/resources.rs crates/sim/src/rpau.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/bram.rs:
crates/sim/src/clock.rs:
crates/sim/src/coproc.rs:
crates/sim/src/cost.rs:
crates/sim/src/dma.rs:
crates/sim/src/functional.rs:
crates/sim/src/liftsim.rs:
crates/sim/src/nttsched.rs:
crates/sim/src/power.rs:
crates/sim/src/program.rs:
crates/sim/src/resources.rs:
crates/sim/src/rpau.rs:
crates/sim/src/system.rs:
