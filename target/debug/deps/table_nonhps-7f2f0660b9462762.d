/root/repo/target/debug/deps/table_nonhps-7f2f0660b9462762.d: crates/bench/src/bin/table_nonhps.rs

/root/repo/target/debug/deps/table_nonhps-7f2f0660b9462762: crates/bench/src/bin/table_nonhps.rs

crates/bench/src/bin/table_nonhps.rs:
