/root/repo/target/debug/deps/serde-1811532e5d1b7daf.d: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-1811532e5d1b7daf: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
