/root/repo/target/debug/deps/hefv_bench-a41e2fa61c113999.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhefv_bench-a41e2fa61c113999.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
