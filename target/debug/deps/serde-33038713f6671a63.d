/root/repo/target/debug/deps/serde-33038713f6671a63.d: crates/shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-33038713f6671a63.so: crates/shims/serde/src/lib.rs Cargo.toml

crates/shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
