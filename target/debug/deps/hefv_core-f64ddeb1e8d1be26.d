/root/repo/target/debug/deps/hefv_core-f64ddeb1e8d1be26.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/encoder.rs crates/core/src/encrypt.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/galois.rs crates/core/src/keys.rs crates/core/src/noise.rs crates/core/src/parallel.rs crates/core/src/params.rs crates/core/src/rnspoly.rs crates/core/src/sampler.rs crates/core/src/security.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libhefv_core-f64ddeb1e8d1be26.rlib: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/encoder.rs crates/core/src/encrypt.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/galois.rs crates/core/src/keys.rs crates/core/src/noise.rs crates/core/src/parallel.rs crates/core/src/params.rs crates/core/src/rnspoly.rs crates/core/src/sampler.rs crates/core/src/security.rs crates/core/src/wire.rs

/root/repo/target/debug/deps/libhefv_core-f64ddeb1e8d1be26.rmeta: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/encoder.rs crates/core/src/encrypt.rs crates/core/src/error.rs crates/core/src/eval.rs crates/core/src/galois.rs crates/core/src/keys.rs crates/core/src/noise.rs crates/core/src/parallel.rs crates/core/src/params.rs crates/core/src/rnspoly.rs crates/core/src/sampler.rs crates/core/src/security.rs crates/core/src/wire.rs

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/encoder.rs:
crates/core/src/encrypt.rs:
crates/core/src/error.rs:
crates/core/src/eval.rs:
crates/core/src/galois.rs:
crates/core/src/keys.rs:
crates/core/src/noise.rs:
crates/core/src/parallel.rs:
crates/core/src/params.rs:
crates/core/src/rnspoly.rs:
crates/core/src/sampler.rs:
crates/core/src/security.rs:
crates/core/src/wire.rs:
