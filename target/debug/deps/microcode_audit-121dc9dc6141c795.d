/root/repo/target/debug/deps/microcode_audit-121dc9dc6141c795.d: tests/microcode_audit.rs

/root/repo/target/debug/deps/microcode_audit-121dc9dc6141c795: tests/microcode_audit.rs

tests/microcode_audit.rs:
