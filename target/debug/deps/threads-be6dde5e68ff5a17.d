/root/repo/target/debug/deps/threads-be6dde5e68ff5a17.d: crates/bench/src/bin/threads.rs Cargo.toml

/root/repo/target/debug/deps/libthreads-be6dde5e68ff5a17.rmeta: crates/bench/src/bin/threads.rs Cargo.toml

crates/bench/src/bin/threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
