/root/repo/target/debug/deps/fig3-ca98dd02a9132788.d: crates/bench/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-ca98dd02a9132788.rmeta: crates/bench/src/bin/fig3.rs Cargo.toml

crates/bench/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
