/root/repo/target/debug/deps/microcode_audit-5ad52956c6144ca9.d: tests/microcode_audit.rs Cargo.toml

/root/repo/target/debug/deps/libmicrocode_audit-5ad52956c6144ca9.rmeta: tests/microcode_audit.rs Cargo.toml

tests/microcode_audit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
