/root/repo/target/debug/deps/hefv-c4d03373cca1d5da.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libhefv-c4d03373cca1d5da.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
