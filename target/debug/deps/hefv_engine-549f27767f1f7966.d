/root/repo/target/debug/deps/hefv_engine-549f27767f1f7966.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/engine.rs crates/engine/src/error.rs crates/engine/src/registry.rs crates/engine/src/request.rs crates/engine/src/sched.rs crates/engine/src/stats.rs crates/engine/src/wire.rs

/root/repo/target/debug/deps/libhefv_engine-549f27767f1f7966.rlib: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/engine.rs crates/engine/src/error.rs crates/engine/src/registry.rs crates/engine/src/request.rs crates/engine/src/sched.rs crates/engine/src/stats.rs crates/engine/src/wire.rs

/root/repo/target/debug/deps/libhefv_engine-549f27767f1f7966.rmeta: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/engine.rs crates/engine/src/error.rs crates/engine/src/registry.rs crates/engine/src/request.rs crates/engine/src/sched.rs crates/engine/src/stats.rs crates/engine/src/wire.rs

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/engine.rs:
crates/engine/src/error.rs:
crates/engine/src/registry.rs:
crates/engine/src/request.rs:
crates/engine/src/sched.rs:
crates/engine/src/stats.rs:
crates/engine/src/wire.rs:
