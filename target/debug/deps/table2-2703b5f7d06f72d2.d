/root/repo/target/debug/deps/table2-2703b5f7d06f72d2.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-2703b5f7d06f72d2.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
