/root/repo/target/debug/deps/serde-1faacb44bbd33552.d: crates/shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-1faacb44bbd33552.rmeta: crates/shims/serde/src/lib.rs Cargo.toml

crates/shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
