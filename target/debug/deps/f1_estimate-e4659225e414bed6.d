/root/repo/target/debug/deps/f1_estimate-e4659225e414bed6.d: crates/bench/src/bin/f1_estimate.rs

/root/repo/target/debug/deps/f1_estimate-e4659225e414bed6: crates/bench/src/bin/f1_estimate.rs

crates/bench/src/bin/f1_estimate.rs:
