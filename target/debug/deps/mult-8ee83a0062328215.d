/root/repo/target/debug/deps/mult-8ee83a0062328215.d: crates/bench/benches/mult.rs Cargo.toml

/root/repo/target/debug/deps/libmult-8ee83a0062328215.rmeta: crates/bench/benches/mult.rs Cargo.toml

crates/bench/benches/mult.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
