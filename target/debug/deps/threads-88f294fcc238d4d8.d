/root/repo/target/debug/deps/threads-88f294fcc238d4d8.d: crates/bench/src/bin/threads.rs Cargo.toml

/root/repo/target/debug/deps/libthreads-88f294fcc238d4d8.rmeta: crates/bench/src/bin/threads.rs Cargo.toml

crates/bench/src/bin/threads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
