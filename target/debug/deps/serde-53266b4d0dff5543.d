/root/repo/target/debug/deps/serde-53266b4d0dff5543.d: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-53266b4d0dff5543.so: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
