/root/repo/target/debug/deps/wire_and_galois_props-dcbaa008f5c466aa.d: crates/core/tests/wire_and_galois_props.rs Cargo.toml

/root/repo/target/debug/deps/libwire_and_galois_props-dcbaa008f5c466aa.rmeta: crates/core/tests/wire_and_galois_props.rs Cargo.toml

crates/core/tests/wire_and_galois_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
