/root/repo/target/debug/deps/table1-5408dcd9907f1e87.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5408dcd9907f1e87: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
