/root/repo/target/debug/deps/hefv_apps-51204c6b40dd4603.d: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

/root/repo/target/debug/deps/libhefv_apps-51204c6b40dd4603.rlib: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

/root/repo/target/debug/deps/libhefv_apps-51204c6b40dd4603.rmeta: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

crates/apps/src/lib.rs:
crates/apps/src/cloud.rs:
crates/apps/src/meter.rs:
crates/apps/src/rasta.rs:
crates/apps/src/search.rs:
crates/apps/src/sorting.rs:
