/root/repo/target/debug/deps/speedup-9f74945433c0e7eb.d: crates/bench/src/bin/speedup.rs

/root/repo/target/debug/deps/speedup-9f74945433c0e7eb: crates/bench/src/bin/speedup.rs

crates/bench/src/bin/speedup.rs:
