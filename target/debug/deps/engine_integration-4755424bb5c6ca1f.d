/root/repo/target/debug/deps/engine_integration-4755424bb5c6ca1f.d: crates/engine/tests/engine_integration.rs Cargo.toml

/root/repo/target/debug/deps/libengine_integration-4755424bb5c6ca1f.rmeta: crates/engine/tests/engine_integration.rs Cargo.toml

crates/engine/tests/engine_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
