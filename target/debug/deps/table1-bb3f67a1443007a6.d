/root/repo/target/debug/deps/table1-bb3f67a1443007a6.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-bb3f67a1443007a6.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
