/root/repo/target/debug/deps/table4-834daee47b1a2030.d: crates/bench/src/bin/table4.rs

/root/repo/target/debug/deps/table4-834daee47b1a2030: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
