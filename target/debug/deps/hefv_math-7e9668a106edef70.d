/root/repo/target/debug/deps/hefv_math-7e9668a106edef70.d: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/fixed.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs crates/math/src/zq.rs

/root/repo/target/debug/deps/libhefv_math-7e9668a106edef70.rlib: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/fixed.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs crates/math/src/zq.rs

/root/repo/target/debug/deps/libhefv_math-7e9668a106edef70.rmeta: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/fixed.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs crates/math/src/zq.rs

crates/math/src/lib.rs:
crates/math/src/bigint.rs:
crates/math/src/fixed.rs:
crates/math/src/ntt.rs:
crates/math/src/poly.rs:
crates/math/src/primes.rs:
crates/math/src/rns.rs:
crates/math/src/zq.rs:
