/root/repo/target/debug/deps/f1_estimate-3cd73d0fca0465f6.d: crates/bench/src/bin/f1_estimate.rs Cargo.toml

/root/repo/target/debug/deps/libf1_estimate-3cd73d0fca0465f6.rmeta: crates/bench/src/bin/f1_estimate.rs Cargo.toml

crates/bench/src/bin/f1_estimate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
