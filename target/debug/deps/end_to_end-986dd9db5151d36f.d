/root/repo/target/debug/deps/end_to_end-986dd9db5151d36f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-986dd9db5151d36f: tests/end_to_end.rs

tests/end_to_end.rs:
