/root/repo/target/debug/deps/proptest-3795c40002b6132f.d: crates/shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-3795c40002b6132f.rmeta: crates/shims/proptest/src/lib.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
