/root/repo/target/debug/deps/proptests-31db1463a59b3a90.d: crates/math/tests/proptests.rs

/root/repo/target/debug/deps/proptests-31db1463a59b3a90: crates/math/tests/proptests.rs

crates/math/tests/proptests.rs:
