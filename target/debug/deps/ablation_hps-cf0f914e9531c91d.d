/root/repo/target/debug/deps/ablation_hps-cf0f914e9531c91d.d: crates/bench/src/bin/ablation_hps.rs Cargo.toml

/root/repo/target/debug/deps/libablation_hps-cf0f914e9531c91d.rmeta: crates/bench/src/bin/ablation_hps.rs Cargo.toml

crates/bench/src/bin/ablation_hps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
