/root/repo/target/debug/deps/wire_props-5a265184bad7e3f7.d: crates/engine/tests/wire_props.rs

/root/repo/target/debug/deps/wire_props-5a265184bad7e3f7: crates/engine/tests/wire_props.rs

crates/engine/tests/wire_props.rs:
