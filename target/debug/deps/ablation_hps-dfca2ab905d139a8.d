/root/repo/target/debug/deps/ablation_hps-dfca2ab905d139a8.d: crates/bench/src/bin/ablation_hps.rs

/root/repo/target/debug/deps/ablation_hps-dfca2ab905d139a8: crates/bench/src/bin/ablation_hps.rs

crates/bench/src/bin/ablation_hps.rs:
