/root/repo/target/debug/deps/hefv_sim-52f9268ee69e7328.d: crates/sim/src/lib.rs crates/sim/src/bram.rs crates/sim/src/clock.rs crates/sim/src/coproc.rs crates/sim/src/cost.rs crates/sim/src/dma.rs crates/sim/src/functional.rs crates/sim/src/liftsim.rs crates/sim/src/nttsched.rs crates/sim/src/power.rs crates/sim/src/program.rs crates/sim/src/resources.rs crates/sim/src/rpau.rs crates/sim/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libhefv_sim-52f9268ee69e7328.rmeta: crates/sim/src/lib.rs crates/sim/src/bram.rs crates/sim/src/clock.rs crates/sim/src/coproc.rs crates/sim/src/cost.rs crates/sim/src/dma.rs crates/sim/src/functional.rs crates/sim/src/liftsim.rs crates/sim/src/nttsched.rs crates/sim/src/power.rs crates/sim/src/program.rs crates/sim/src/resources.rs crates/sim/src/rpau.rs crates/sim/src/system.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/bram.rs:
crates/sim/src/clock.rs:
crates/sim/src/coproc.rs:
crates/sim/src/cost.rs:
crates/sim/src/dma.rs:
crates/sim/src/functional.rs:
crates/sim/src/liftsim.rs:
crates/sim/src/nttsched.rs:
crates/sim/src/power.rs:
crates/sim/src/program.rs:
crates/sim/src/resources.rs:
crates/sim/src/rpau.rs:
crates/sim/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
