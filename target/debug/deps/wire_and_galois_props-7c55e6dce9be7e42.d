/root/repo/target/debug/deps/wire_and_galois_props-7c55e6dce9be7e42.d: crates/core/tests/wire_and_galois_props.rs

/root/repo/target/debug/deps/wire_and_galois_props-7c55e6dce9be7e42: crates/core/tests/wire_and_galois_props.rs

crates/core/tests/wire_and_galois_props.rs:
