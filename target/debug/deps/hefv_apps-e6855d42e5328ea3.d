/root/repo/target/debug/deps/hefv_apps-e6855d42e5328ea3.d: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

/root/repo/target/debug/deps/libhefv_apps-e6855d42e5328ea3.rlib: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

/root/repo/target/debug/deps/libhefv_apps-e6855d42e5328ea3.rmeta: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

crates/apps/src/lib.rs:
crates/apps/src/cloud.rs:
crates/apps/src/meter.rs:
crates/apps/src/rasta.rs:
crates/apps/src/search.rs:
crates/apps/src/sorting.rs:
