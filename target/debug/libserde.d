/root/repo/target/debug/libserde.so: /root/repo/crates/shims/serde/src/lib.rs
