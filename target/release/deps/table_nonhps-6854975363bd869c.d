/root/repo/target/release/deps/table_nonhps-6854975363bd869c.d: crates/bench/src/bin/table_nonhps.rs

/root/repo/target/release/deps/table_nonhps-6854975363bd869c: crates/bench/src/bin/table_nonhps.rs

crates/bench/src/bin/table_nonhps.rs:
