/root/repo/target/release/deps/hefv_sim-801bb305bd67e20d.d: crates/sim/src/lib.rs crates/sim/src/bram.rs crates/sim/src/clock.rs crates/sim/src/coproc.rs crates/sim/src/cost.rs crates/sim/src/dma.rs crates/sim/src/functional.rs crates/sim/src/liftsim.rs crates/sim/src/nttsched.rs crates/sim/src/power.rs crates/sim/src/program.rs crates/sim/src/resources.rs crates/sim/src/rpau.rs crates/sim/src/system.rs

/root/repo/target/release/deps/libhefv_sim-801bb305bd67e20d.rlib: crates/sim/src/lib.rs crates/sim/src/bram.rs crates/sim/src/clock.rs crates/sim/src/coproc.rs crates/sim/src/cost.rs crates/sim/src/dma.rs crates/sim/src/functional.rs crates/sim/src/liftsim.rs crates/sim/src/nttsched.rs crates/sim/src/power.rs crates/sim/src/program.rs crates/sim/src/resources.rs crates/sim/src/rpau.rs crates/sim/src/system.rs

/root/repo/target/release/deps/libhefv_sim-801bb305bd67e20d.rmeta: crates/sim/src/lib.rs crates/sim/src/bram.rs crates/sim/src/clock.rs crates/sim/src/coproc.rs crates/sim/src/cost.rs crates/sim/src/dma.rs crates/sim/src/functional.rs crates/sim/src/liftsim.rs crates/sim/src/nttsched.rs crates/sim/src/power.rs crates/sim/src/program.rs crates/sim/src/resources.rs crates/sim/src/rpau.rs crates/sim/src/system.rs

crates/sim/src/lib.rs:
crates/sim/src/bram.rs:
crates/sim/src/clock.rs:
crates/sim/src/coproc.rs:
crates/sim/src/cost.rs:
crates/sim/src/dma.rs:
crates/sim/src/functional.rs:
crates/sim/src/liftsim.rs:
crates/sim/src/nttsched.rs:
crates/sim/src/power.rs:
crates/sim/src/program.rs:
crates/sim/src/resources.rs:
crates/sim/src/rpau.rs:
crates/sim/src/system.rs:
