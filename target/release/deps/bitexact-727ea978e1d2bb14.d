/root/repo/target/release/deps/bitexact-727ea978e1d2bb14.d: crates/bench/src/bin/bitexact.rs

/root/repo/target/release/deps/bitexact-727ea978e1d2bb14: crates/bench/src/bin/bitexact.rs

crates/bench/src/bin/bitexact.rs:
