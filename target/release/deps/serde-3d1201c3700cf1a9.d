/root/repo/target/release/deps/serde-3d1201c3700cf1a9.d: crates/shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-3d1201c3700cf1a9.so: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
