/root/repo/target/release/deps/ablation_hps-aaeab9e7dc9450ee.d: crates/bench/src/bin/ablation_hps.rs

/root/repo/target/release/deps/ablation_hps-aaeab9e7dc9450ee: crates/bench/src/bin/ablation_hps.rs

crates/bench/src/bin/ablation_hps.rs:
