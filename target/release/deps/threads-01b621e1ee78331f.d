/root/repo/target/release/deps/threads-01b621e1ee78331f.d: crates/bench/src/bin/threads.rs

/root/repo/target/release/deps/threads-01b621e1ee78331f: crates/bench/src/bin/threads.rs

crates/bench/src/bin/threads.rs:
