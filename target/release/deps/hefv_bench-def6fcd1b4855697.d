/root/repo/target/release/deps/hefv_bench-def6fcd1b4855697.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhefv_bench-def6fcd1b4855697.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libhefv_bench-def6fcd1b4855697.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
