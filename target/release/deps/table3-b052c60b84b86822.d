/root/repo/target/release/deps/table3-b052c60b84b86822.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-b052c60b84b86822: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
