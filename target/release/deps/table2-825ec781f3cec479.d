/root/repo/target/release/deps/table2-825ec781f3cec479.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-825ec781f3cec479: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
