/root/repo/target/release/deps/hefv_engine-1fa32ca0ddcd1097.d: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/engine.rs crates/engine/src/error.rs crates/engine/src/registry.rs crates/engine/src/request.rs crates/engine/src/sched.rs crates/engine/src/stats.rs crates/engine/src/wire.rs

/root/repo/target/release/deps/libhefv_engine-1fa32ca0ddcd1097.rlib: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/engine.rs crates/engine/src/error.rs crates/engine/src/registry.rs crates/engine/src/request.rs crates/engine/src/sched.rs crates/engine/src/stats.rs crates/engine/src/wire.rs

/root/repo/target/release/deps/libhefv_engine-1fa32ca0ddcd1097.rmeta: crates/engine/src/lib.rs crates/engine/src/batch.rs crates/engine/src/engine.rs crates/engine/src/error.rs crates/engine/src/registry.rs crates/engine/src/request.rs crates/engine/src/sched.rs crates/engine/src/stats.rs crates/engine/src/wire.rs

crates/engine/src/lib.rs:
crates/engine/src/batch.rs:
crates/engine/src/engine.rs:
crates/engine/src/error.rs:
crates/engine/src/registry.rs:
crates/engine/src/request.rs:
crates/engine/src/sched.rs:
crates/engine/src/stats.rs:
crates/engine/src/wire.rs:
