/root/repo/target/release/deps/engine-594b8b81003d9553.d: crates/bench/benches/engine.rs

/root/repo/target/release/deps/engine-594b8b81003d9553: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
