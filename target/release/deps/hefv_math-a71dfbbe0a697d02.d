/root/repo/target/release/deps/hefv_math-a71dfbbe0a697d02.d: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/fixed.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs crates/math/src/zq.rs

/root/repo/target/release/deps/libhefv_math-a71dfbbe0a697d02.rlib: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/fixed.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs crates/math/src/zq.rs

/root/repo/target/release/deps/libhefv_math-a71dfbbe0a697d02.rmeta: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/fixed.rs crates/math/src/ntt.rs crates/math/src/poly.rs crates/math/src/primes.rs crates/math/src/rns.rs crates/math/src/zq.rs

crates/math/src/lib.rs:
crates/math/src/bigint.rs:
crates/math/src/fixed.rs:
crates/math/src/ntt.rs:
crates/math/src/poly.rs:
crates/math/src/primes.rs:
crates/math/src/rns.rs:
crates/math/src/zq.rs:
