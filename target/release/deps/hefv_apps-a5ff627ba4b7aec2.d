/root/repo/target/release/deps/hefv_apps-a5ff627ba4b7aec2.d: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

/root/repo/target/release/deps/libhefv_apps-a5ff627ba4b7aec2.rlib: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

/root/repo/target/release/deps/libhefv_apps-a5ff627ba4b7aec2.rmeta: crates/apps/src/lib.rs crates/apps/src/cloud.rs crates/apps/src/meter.rs crates/apps/src/rasta.rs crates/apps/src/search.rs crates/apps/src/sorting.rs

crates/apps/src/lib.rs:
crates/apps/src/cloud.rs:
crates/apps/src/meter.rs:
crates/apps/src/rasta.rs:
crates/apps/src/search.rs:
crates/apps/src/sorting.rs:
