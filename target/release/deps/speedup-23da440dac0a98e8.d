/root/repo/target/release/deps/speedup-23da440dac0a98e8.d: crates/bench/src/bin/speedup.rs

/root/repo/target/release/deps/speedup-23da440dac0a98e8: crates/bench/src/bin/speedup.rs

crates/bench/src/bin/speedup.rs:
