/root/repo/target/release/deps/table1-e7864406e3dcee7b.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-e7864406e3dcee7b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
