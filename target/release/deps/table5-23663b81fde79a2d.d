/root/repo/target/release/deps/table5-23663b81fde79a2d.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-23663b81fde79a2d: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
