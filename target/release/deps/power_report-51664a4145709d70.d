/root/repo/target/release/deps/power_report-51664a4145709d70.d: crates/bench/src/bin/power_report.rs

/root/repo/target/release/deps/power_report-51664a4145709d70: crates/bench/src/bin/power_report.rs

crates/bench/src/bin/power_report.rs:
