/root/repo/target/release/deps/f1_estimate-590035f9099b9e76.d: crates/bench/src/bin/f1_estimate.rs

/root/repo/target/release/deps/f1_estimate-590035f9099b9e76: crates/bench/src/bin/f1_estimate.rs

crates/bench/src/bin/f1_estimate.rs:
