/root/repo/target/release/deps/depth_sweep-e1dfe2695c704f45.d: crates/bench/src/bin/depth_sweep.rs

/root/repo/target/release/deps/depth_sweep-e1dfe2695c704f45: crates/bench/src/bin/depth_sweep.rs

crates/bench/src/bin/depth_sweep.rs:
