/root/repo/target/release/deps/table4-29e53e04039ea184.d: crates/bench/src/bin/table4.rs

/root/repo/target/release/deps/table4-29e53e04039ea184: crates/bench/src/bin/table4.rs

crates/bench/src/bin/table4.rs:
