/root/repo/target/release/deps/serde-bd18cb432cd1bfdb.d: crates/shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-bd18cb432cd1bfdb.so: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
