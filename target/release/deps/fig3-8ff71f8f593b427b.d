/root/repo/target/release/deps/fig3-8ff71f8f593b427b.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-8ff71f8f593b427b: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
