/root/repo/target/release/deps/hefv-d3cc44efd0bc82aa.d: src/lib.rs

/root/repo/target/release/deps/libhefv-d3cc44efd0bc82aa.rlib: src/lib.rs

/root/repo/target/release/deps/libhefv-d3cc44efd0bc82aa.rmeta: src/lib.rs

src/lib.rs:
