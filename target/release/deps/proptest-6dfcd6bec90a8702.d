/root/repo/target/release/deps/proptest-6dfcd6bec90a8702.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6dfcd6bec90a8702.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6dfcd6bec90a8702.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
