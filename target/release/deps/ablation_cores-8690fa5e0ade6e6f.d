/root/repo/target/release/deps/ablation_cores-8690fa5e0ade6e6f.d: crates/bench/src/bin/ablation_cores.rs

/root/repo/target/release/deps/ablation_cores-8690fa5e0ade6e6f: crates/bench/src/bin/ablation_cores.rs

crates/bench/src/bin/ablation_cores.rs:
