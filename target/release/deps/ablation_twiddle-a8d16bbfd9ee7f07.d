/root/repo/target/release/deps/ablation_twiddle-a8d16bbfd9ee7f07.d: crates/bench/src/bin/ablation_twiddle.rs

/root/repo/target/release/deps/ablation_twiddle-a8d16bbfd9ee7f07: crates/bench/src/bin/ablation_twiddle.rs

crates/bench/src/bin/ablation_twiddle.rs:
