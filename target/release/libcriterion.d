/root/repo/target/release/libcriterion.rlib: /root/repo/crates/shims/criterion/src/lib.rs
