/root/repo/target/release/libserde.so: /root/repo/crates/shims/serde/src/lib.rs
