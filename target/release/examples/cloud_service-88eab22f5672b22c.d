/root/repo/target/release/examples/cloud_service-88eab22f5672b22c.d: examples/cloud_service.rs

/root/repo/target/release/examples/cloud_service-88eab22f5672b22c: examples/cloud_service.rs

examples/cloud_service.rs:
