/root/repo/target/release/examples/smart_meter-ad3a97400e4079d9.d: examples/smart_meter.rs

/root/repo/target/release/examples/smart_meter-ad3a97400e4079d9: examples/smart_meter.rs

examples/smart_meter.rs:
