/root/repo/target/release/examples/quickstart-b51f80874c01b5e3.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b51f80874c01b5e3: examples/quickstart.rs

examples/quickstart.rs:
