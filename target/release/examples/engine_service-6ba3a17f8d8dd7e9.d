/root/repo/target/release/examples/engine_service-6ba3a17f8d8dd7e9.d: examples/engine_service.rs

/root/repo/target/release/examples/engine_service-6ba3a17f8d8dd7e9: examples/engine_service.rs

examples/engine_service.rs:
