/root/repo/target/release/librand.rlib: /root/repo/crates/shims/rand/src/lib.rs
