//! Programming the coprocessor: the paper's pitch is a *domain-specific
//! programmable* accelerator ("the Arm processor [supports] various cloud
//! computing applications using this FPGA-based co-processor", §IV-A).
//! This example writes a custom routine in the coprocessor's assembly — an
//! encrypted fused multiply-add `r = a·m + b` — runs it on the simulated
//! machine, and prices it with the Table II cycle model.
//!
//! Run with: `cargo run --release --example programmable`

use hefv::core::prelude::*;
use hefv::sim::clock::ClockConfig;
use hefv::sim::program::{assemble_fma, Machine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), String> {
    println!("Programming the coprocessor: fused multiply-add on ciphertext\n");
    let ctx = FvContext::new(FvParams::hpca19_with_t(1 << 10))?;
    let mut rng = StdRng::seed_from_u64(90);
    let (sk, pk, _) = keygen(&ctx, &mut rng);
    let k = ctx.params().k();
    let n = ctx.params().n;

    // r = a·m + b with encrypted a, b and public plaintext m.
    let pa = Plaintext::new(vec![3, 1], 1 << 10, n); // a = 3 + x
    let pb = Plaintext::new(vec![5], 1 << 10, n); // b = 5
    let m = Plaintext::new(vec![2, 0, 7], 1 << 10, n); // m = 2 + 7x²
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cb = encrypt(&ctx, &pk, &pb, &mut rng);

    let program = assemble_fma(k);
    println!(
        "routine '{}' — {} instructions:",
        program.name,
        program.code.len()
    );
    for op in &program.code {
        println!("    {op:?}");
    }

    // The Arm side drives both ciphertext halves through the routine.
    let mut machine = Machine::new(&ctx, 8);
    let mut mpoly = hefv::core::encoder::plaintext_to_rns(&ctx, &m);
    mpoly.ntt_forward(ctx.ntt_q());
    let mut total_us = 0.0;
    let clocks = ClockConfig::default();
    let mut run_half = |a_rows: &[Vec<u64>], b_rows: &[Vec<u64>]| {
        machine.load(0, 0, a_rows);
        machine.load(1, 0, &mpoly.to_rows());
        machine.load(2, 0, b_rows);
        let report = machine.run(&program);
        total_us += report.us(&clocks);
        machine.store(3, 0, k)
    };
    let r0 = run_half(&ca.c0().to_rows(), &cb.c0().to_rows());
    let r1 = run_half(&ca.c1().to_rows(), &cb.c1().to_rows());
    let out = Ciphertext::from_parts(
        RnsPoly::from_residues(r0, Domain::Coefficient),
        RnsPoly::from_residues(r1, Domain::Coefficient),
    );

    let got = decrypt(&ctx, &sk, &out);
    // a·m + b = (3+x)(2+7x²) + 5 = 11 + 2x + 21x² + 7x³
    assert_eq!(got.coeffs()[..4], [11, 2, 21, 7]);
    println!("\ndecrypted a·m + b = 11 + 2x + 21x² + 7x³ ✓");
    println!("modeled coprocessor time for the custom routine: {total_us:.1} µs");
    println!(
        "(vs {:.0} µs for a full ciphertext·ciphertext Mult — plaintext",
        4458.0
    );
    println!(" multiplication avoids Lift/Scale/ReLin entirely)");
    println!("OK");
    Ok(())
}
