//! Multi-tenant evaluation-engine service demo.
//!
//! Two tenants share one engine. Each registers its own key material, then
//! drives the engine concurrently with (a) op-graph jobs over its own
//! encrypted inputs and (b) scalar requests that the batching front-end
//! coalesces into slot-packed ciphertexts. Every result is decrypted with
//! the owning tenant's secret key and checked against the plaintext
//! reference.
//!
//! Run with: `cargo run --release --example engine_service`

use hefv::core::galois::GaloisKeySet;
use hefv::core::prelude::*;
use hefv::engine::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct Tenant {
    id: TenantId,
    sk: SecretKey,
    pk: PublicKey,
}

fn main() -> Result<(), String> {
    // SIMD-friendly small parameters: t = 7681 ≡ 1 (mod 2n) for n = 256.
    let mut params = FvParams::insecure_medium();
    params.t = 7681;
    let t = params.t;
    let ctx = Arc::new(FvContext::new(params)?);
    let engine = Engine::start(
        Arc::clone(&ctx),
        EngineConfig {
            workers: 2,
            max_batch: 8,
            ..EngineConfig::default()
        },
    );
    println!(
        "engine: {} workers over n={}, t={} ({} SIMD slots)",
        engine.workers(),
        ctx.params().n,
        t,
        engine.batch_encoder().map(|e| e.slots()).unwrap_or(0)
    );

    // --- Tenant onboarding: independent keys, one registry. -------------
    let mut rng = StdRng::seed_from_u64(2026);
    let tenants: Vec<Tenant> = (1..=2)
        .map(|id| {
            let (sk, pk, rlk) = keygen(&ctx, &mut rng);
            let galois = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
            engine.register_tenant(id, TenantKeys::full(pk.clone(), rlk, galois));
            Tenant { id, sk, pk }
        })
        .collect();
    println!("registered {} tenants", engine.registry().len());

    // --- Concurrent op-graph jobs: (a·b) + c per tenant. ----------------
    let mut expected = Vec::new();
    let mut handles = Vec::new();
    for tenant in &tenants {
        for (a, b, c) in [(2u64, 3, 4), (5, 6, 7), (100, 200, 300)] {
            let n = ctx.params().n;
            let mut enc = |v| encrypt(&ctx, &tenant.pk, &Plaintext::new(vec![v], t, n), &mut rng);
            let req = EvalRequest {
                tenant: tenant.id,
                inputs: vec![enc(a), enc(b), enc(c)],
                plaintexts: vec![],
                ops: vec![
                    EvalOp::Mul(ValRef::Input(0), ValRef::Input(1)),
                    EvalOp::Add(ValRef::Op(0), ValRef::Input(2)),
                ],
                deadline_us: None,
                trace_id: None,
            };
            expected.push((tenant.id, (a * b + c) % t));
            handles.push(engine.submit(req).map_err(String::from)?);
        }
    }
    for ((tenant_id, expect), handle) in expected.into_iter().zip(handles) {
        let resp = handle.wait().map_err(String::from)?;
        let tenant = tenants.iter().find(|t| t.id == tenant_id).unwrap();
        let got = decrypt(&ctx, &tenant.sk, &resp.result).coeffs()[0];
        assert_eq!(got, expect, "tenant {tenant_id}");
        println!(
            "tenant {tenant_id}: a·b+c = {got:>6}  worker {}  est {:>8.1} µs  noise {:>4.1} bits",
            resp.report.worker, resp.report.est_cost_us, resp.report.noise_bits_consumed
        );
    }

    // --- Batched scalar traffic: coalesced per (tenant, op). ------------
    let mut tickets = Vec::new();
    for i in 0..8u64 {
        for tenant in &tenants {
            let (lhs, rhs) = (10 + i + tenant.id, 20 + 2 * i);
            tickets.push((
                tenant.id,
                lhs * rhs % t,
                engine
                    .submit_scalar(ScalarRequest {
                        tenant: tenant.id,
                        op: ScalarOp::Mul,
                        lhs,
                        rhs,
                    })
                    .map_err(String::from)?,
            ));
        }
    }
    engine.flush_batches();
    let encoder = engine.batch_encoder().expect("SIMD params").clone();
    for (tenant_id, expect, ticket) in tickets {
        let r = ticket.wait().map_err(String::from)?;
        let tenant = tenants.iter().find(|t| t.id == tenant_id).unwrap();
        let slots = encoder.decode(&decrypt(&ctx, &tenant.sk, &r.packed));
        assert_eq!(slots[r.slot], expect, "tenant {tenant_id} slot {}", r.slot);
    }
    println!("16 scalar products verified via slot-packed batches");

    println!("\n--- engine telemetry ---\n{}", engine.stats());
    engine.shutdown();
    Ok(())
}
