//! Loopback TCP service smoke: the CI `net-smoke` workload.
//!
//! A four-shard router is served over TCP by `hefv_net::NetServer`; four
//! client threads (one tenant each, every tenant hashing to a distinct
//! shard) pipeline 256 encrypted additions apiece through one connection
//! each, half-close, and collect replies in completion order. The
//! process exits non-zero if any frame is lost, duplicated, misrouted
//! (reply stamped with the wrong shard), or decrypts to the wrong value.
//!
//! Run with: `cargo run --release --example tcp_service`

use hefv::core::prelude::*;
use hefv::engine::prelude::*;
use hefv::engine::router::ShardSpec;
use hefv::engine::wire;
use hefv::net::{Client, NetServer, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::Arc;

const SHARDS: usize = 4;
const CLIENTS: u64 = 4;
const FRAMES_PER_CLIENT: u64 = 256;

fn main() -> Result<(), String> {
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy())?);
    let t = ctx.params().t;
    let n = ctx.params().n;

    let router = Arc::new(ShardRouter::new());
    for i in 0..SHARDS {
        router
            .add_shard(ShardSpec {
                name: format!("net-{i}"),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers: 2,
                    threads_per_job: 1,
                    queue_capacity: 512,
                    ..EngineConfig::default()
                },
            })
            .map_err(String::from)?;
    }

    // One tenant per client, chosen so the four tenants hash to four
    // distinct shards — every shard sees traffic.
    let mut tenants: Vec<u64> = Vec::new();
    let mut shards_covered = HashSet::new();
    for candidate in 1u64.. {
        let shard = router.shard_for(candidate).expect("router has shards");
        if shards_covered.insert(shard) {
            tenants.push(candidate);
            if tenants.len() == CLIENTS as usize {
                break;
            }
        }
    }

    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            max_inflight: 64,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    println!("serving {SHARDS} shards on {addr}");

    let workers: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, &tenant)| {
            let ctx = Arc::clone(&ctx);
            let router = Arc::clone(&router);
            std::thread::spawn(move || -> Result<(), String> {
                let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                let (sk, pk, rlk) = keygen(&ctx, &mut rng);
                let home = router
                    .register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk))
                    .map_err(String::from)?;
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;

                // Pipeline every frame before reading a single reply.
                let mut expected = std::collections::HashMap::new();
                for f in 0..FRAMES_PER_CLIENT {
                    let (a, b) = (f % t, (f + i as u64) % t);
                    let enc =
                        |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
                    let req = EvalRequest::binary(
                        tenant,
                        EvalOp::Add,
                        enc(a, &mut rng),
                        enc(b, &mut rng),
                    );
                    // Every fourth frame is explicitly addressed to the
                    // tenant's home shard; the rest let the router place it.
                    let frame = if f % 4 == 0 {
                        wire::encode_request_for_shard(&req, home)
                    } else {
                        wire::encode_request(&req)
                    };
                    let corr = client.send_frame(&frame).map_err(|e| e.to_string())?;
                    expected.insert(corr, (a + b) % t);
                }
                client.finish_sending().map_err(|e| e.to_string())?;

                // Replies arrive in completion order; each corr exactly once.
                let mut seen = HashSet::new();
                for _ in 0..FRAMES_PER_CLIENT {
                    let (corr, reply) = client.recv_reply().map_err(|e| e.to_string())?;
                    if !seen.insert(corr) {
                        return Err(format!("duplicate reply for corr {corr}"));
                    }
                    let stamp = wire::peek_response_shard(&reply).map_err(String::from)?;
                    if u16::from(stamp) != home {
                        return Err(format!(
                            "misrouted: corr {corr} stamped shard {stamp}, tenant {tenant} lives on {home}"
                        ));
                    }
                    let expect = expected
                        .get(&corr)
                        .copied()
                        .ok_or_else(|| format!("reply for unknown corr {corr}"))?;
                    match wire::decode_response(&ctx, &reply).map_err(String::from)? {
                        wire::ResponseFrame::Ok(resp) => {
                            let got = decrypt(&ctx, &sk, &resp.result).coeffs()[0];
                            if got != expect {
                                return Err(format!("corr {corr}: got {got}, want {expect}"));
                            }
                        }
                        wire::ResponseFrame::Err { message, .. } => {
                            return Err(format!("corr {corr} failed: {message}"));
                        }
                    }
                }
                if seen.len() as u64 != FRAMES_PER_CLIENT {
                    return Err(format!("lost frames: {} of {FRAMES_PER_CLIENT}", seen.len()));
                }
                Ok(())
            })
        })
        .collect();

    for (i, w) in workers.into_iter().enumerate() {
        w.join()
            .map_err(|_| format!("client {i} panicked"))?
            .map_err(|e| format!("client {i}: {e}"))?;
    }

    let net = server.stats();
    let fleet = router.stats();
    println!(
        "{} frames in, {} replies out over {} connections",
        net.frames_in, net.replies_out, net.connections
    );
    for s in &fleet.per_shard {
        println!(
            "shard {} ({}): {} jobs",
            s.id, s.name, s.stats.jobs_completed
        );
    }
    let total = CLIENTS * FRAMES_PER_CLIENT;
    assert_eq!(net.frames_in, total, "server read every frame");
    assert_eq!(net.replies_out, total, "every reply was written");
    assert_eq!(fleet.total.jobs_completed, total, "every job completed");
    for s in &fleet.per_shard {
        assert!(
            s.stats.jobs_completed > 0,
            "shard {} served no traffic",
            s.id
        );
    }

    server.shutdown();
    router.shutdown();
    println!("net-smoke OK: {total} frames, exactly once, correctly stamped");
    Ok(())
}
