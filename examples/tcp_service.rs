//! Loopback TCP service smoke: the CI `net-smoke` workload.
//!
//! A four-shard router is served over TCP by `hefv_net::NetServer`; four
//! client threads (one tenant each, every tenant hashing to a distinct
//! shard) pipeline 256 encrypted additions apiece through one connection
//! each, half-close, and collect replies in completion order. Every
//! request envelope carries a deterministic trace id. The process exits
//! non-zero if any frame is lost, duplicated, misrouted (reply stamped
//! with the wrong shard), or decrypts to the wrong value — and then
//! exercises the `HEVS` admin route: a metrics scrape must return a
//! Prometheus exposition with the expected families and quantiles, and
//! a trace scrape must return spans whose ids are exactly the ones the
//! clients stamped.
//!
//! Run with: `cargo run --release --example tcp_service`
//!
//! Pass `--metrics` to dump the scraped exposition between
//! `=== HEVS metrics ===` / `=== end ===` markers (what CI parses).
//!
//! Pass `--soak` for the CI `chaos-soak` workload instead: ≥ 10⁴ frames
//! through clients that retry typed retryable refusals with backoff
//! ([`hefv::net::RetryPolicy`]), meant to run under
//! `HEFV_CHAOS=panic:0.01,delay:2ms` (worker-interior faults) and
//! `HEFV_NET_FAULT=drop:0.01,delay:5ms` (remote-transport faults, armed
//! when the topology has remote shards). The soak exits non-zero unless
//! every frame got exactly one reply (Ok or a *typed* refusal — nothing
//! vanished, nothing duplicated), client retries actually fired, an
//! infeasible-deadline burst was refused `DeadlineInfeasible` without
//! executing, and the scraped exposition parses line by line.

use hefv::core::prelude::*;
use hefv::engine::prelude::*;
use hefv::engine::router::ShardSpec;
use hefv::engine::wire;
use hefv::net::{Client, NetServer, RetryPolicy, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 4;
const CLIENTS: u64 = 4;
const FRAMES_PER_CLIENT: u64 = 256;
const SOAK_FRAMES_PER_CLIENT: u64 = 2_560; // 4 × 2560 = 10 240 ≥ 10⁴

/// Deterministic trace id for client `i`, frame `f` — recognizable in a
/// span dump and reproducible by the validator below.
fn trace_id(i: u64, f: u64) -> u64 {
    0x7C00_0000_0000_0000 | (i << 32) | f
}

fn main() -> Result<(), String> {
    let dump_metrics = std::env::args().any(|a| a == "--metrics");
    if std::env::args().any(|a| a == "--soak") {
        return run_soak(dump_metrics);
    }
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy())?);
    let t = ctx.params().t;
    let n = ctx.params().n;

    let router = Arc::new(ShardRouter::new());
    for i in 0..SHARDS {
        router
            .add_shard(ShardSpec {
                name: format!("net-{i}"),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers: 2,
                    threads_per_job: 1,
                    queue_capacity: 512,
                    ..EngineConfig::default()
                },
            })
            .map_err(String::from)?;
    }

    // One tenant per client, chosen so the four tenants hash to four
    // distinct shards — every shard sees traffic.
    let mut tenants: Vec<u64> = Vec::new();
    let mut shards_covered = HashSet::new();
    for candidate in 1u64.. {
        let shard = router.shard_for(candidate).expect("router has shards");
        if shards_covered.insert(shard) {
            tenants.push(candidate);
            if tenants.len() == CLIENTS as usize {
                break;
            }
        }
    }

    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            max_inflight: 64,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    println!("serving {SHARDS} shards on {addr}");

    let workers: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, &tenant)| {
            let ctx = Arc::clone(&ctx);
            let router = Arc::clone(&router);
            std::thread::spawn(move || -> Result<(), String> {
                let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                let (sk, pk, rlk) = keygen(&ctx, &mut rng);
                let home = router
                    .register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk))
                    .map_err(String::from)?;
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;

                // Pipeline every frame before reading a single reply.
                let mut expected = std::collections::HashMap::new();
                for f in 0..FRAMES_PER_CLIENT {
                    let (a, b) = (f % t, (f + i as u64) % t);
                    let enc =
                        |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
                    let req = EvalRequest::binary(
                        tenant,
                        EvalOp::Add,
                        enc(a, &mut rng),
                        enc(b, &mut rng),
                    )
                    .with_trace_id(trace_id(i as u64, f));
                    // Every fourth frame is explicitly addressed to the
                    // tenant's home shard; the rest let the router place it.
                    let frame = if f % 4 == 0 {
                        wire::encode_request_for_shard(&req, home)
                    } else {
                        wire::encode_request(&req)
                    };
                    let corr = client.send_frame(&frame).map_err(|e| e.to_string())?;
                    expected.insert(corr, (a + b) % t);
                }
                client.finish_sending().map_err(|e| e.to_string())?;

                // Replies arrive in completion order; each corr exactly once.
                let mut seen = HashSet::new();
                for _ in 0..FRAMES_PER_CLIENT {
                    let (corr, reply) = client.recv_reply().map_err(|e| e.to_string())?;
                    if !seen.insert(corr) {
                        return Err(format!("duplicate reply for corr {corr}"));
                    }
                    let stamp = wire::peek_response_shard(&reply).map_err(String::from)?;
                    if u16::from(stamp) != home {
                        return Err(format!(
                            "misrouted: corr {corr} stamped shard {stamp}, tenant {tenant} lives on {home}"
                        ));
                    }
                    let expect = expected
                        .get(&corr)
                        .copied()
                        .ok_or_else(|| format!("reply for unknown corr {corr}"))?;
                    match wire::decode_response(&ctx, &reply).map_err(String::from)? {
                        wire::ResponseFrame::Ok(resp) => {
                            let got = decrypt(&ctx, &sk, &resp.result).coeffs()[0];
                            if got != expect {
                                return Err(format!("corr {corr}: got {got}, want {expect}"));
                            }
                        }
                        wire::ResponseFrame::Err { message, .. } => {
                            return Err(format!("corr {corr} failed: {message}"));
                        }
                    }
                }
                if seen.len() as u64 != FRAMES_PER_CLIENT {
                    return Err(format!("lost frames: {} of {FRAMES_PER_CLIENT}", seen.len()));
                }
                Ok(())
            })
        })
        .collect();

    for (i, w) in workers.into_iter().enumerate() {
        w.join()
            .map_err(|_| format!("client {i} panicked"))?
            .map_err(|e| format!("client {i}: {e}"))?;
    }

    // Transport and fleet invariants, snapshotted before the admin
    // scrapes add their own frames to the counters.
    let net = server.stats();
    let fleet = router.stats();
    let total = CLIENTS * FRAMES_PER_CLIENT;
    assert_eq!(net.frames_in, total, "server read every frame");
    assert_eq!(net.replies_out, total, "every reply was written");
    assert_eq!(fleet.total.jobs_completed, total, "every job completed");
    for s in &fleet.per_shard {
        assert!(
            s.stats.jobs_completed > 0,
            "shard {} served no traffic",
            s.id
        );
    }
    println!(
        "{} frames in, {} replies out over {} connections",
        net.frames_in, net.replies_out, net.connections
    );

    // The HEVS admin route, over the same TCP protocol as the workload.
    let mut admin = Client::connect(addr).map_err(|e| e.to_string())?;
    let metrics = admin
        .scrape_stats(wire::StatsKind::Metrics)
        .map_err(|e| e.to_string())?;
    for family in [
        "hefv_jobs_submitted_total",
        "hefv_jobs_completed_total",
        "hefv_jobs_rejected_total",
        "hefv_op_latency_seconds",
        "hefv_backend_latency_seconds",
        "hefv_queue_wait_seconds",
        "hefv_tenant_requests_total",
        "hefv_shard_up",
        "hefv_shard_op_latency_seconds",
        "hefv_net_connections_total",
        "hefv_net_replies_out_total",
    ] {
        assert!(metrics.contains(family), "scrape missing family {family}");
    }
    for q in ["quantile=\"0.5\"", "quantile=\"0.95\"", "quantile=\"0.99\""] {
        assert!(metrics.contains(q), "scrape missing {q}");
    }
    if dump_metrics {
        println!("=== HEVS metrics ===");
        print!("{metrics}");
        println!("=== end ===");
    }

    // Every span the trace dump mentions must carry an id some client
    // stamped — trace ids propagate end to end, never get reminted.
    let sent: HashSet<u64> = (0..CLIENTS)
        .flat_map(|i| (0..FRAMES_PER_CLIENT).map(move |f| trace_id(i, f)))
        .collect();
    let traces = admin
        .scrape_stats(wire::StatsKind::Traces)
        .map_err(|e| e.to_string())?;
    let mut matched = 0u64;
    for line in traces.lines().filter(|l| !l.starts_with('#')) {
        let token = line
            .split_whitespace()
            .find_map(|w| w.strip_prefix("trace=0x"))
            .ok_or_else(|| format!("span line without a trace id: {line}"))?;
        let id = u64::from_str_radix(token, 16).map_err(|e| e.to_string())?;
        if !sent.contains(&id) {
            return Err(format!("span with an id nobody sent: {line}"));
        }
        matched += 1;
    }
    assert!(matched > 0, "trace scrape returned no spans");
    println!("trace scrape: {matched} spans, all ids match sent envelopes");

    // Percentile and per-tenant summary from the merged snapshot — the
    // operator's view, not raw totals.
    let s = 1.0 / 1e9;
    for op in &fleet.total.per_op {
        if op.count == 0 {
            continue;
        }
        println!(
            "op {:>9}: {:>5} jobs  p50 {:>9.6}s  p95 {:>9.6}s  p99 {:>9.6}s  max {:>9.6}s",
            op.name,
            op.count,
            op.latency.quantile(0.5) as f64 * s,
            op.latency.quantile(0.95) as f64 * s,
            op.latency.quantile(0.99) as f64 * s,
            op.max_ns as f64 * s,
        );
    }
    for tn in &fleet.total.per_tenant {
        println!(
            "tenant {:>3}: {:>5} requests  {:>9.6}s total latency  {:.3} noise bits",
            tn.tenant,
            tn.requests,
            tn.latency_ns as f64 * s,
            tn.noise_bits,
        );
    }

    server.shutdown();
    router.shutdown();
    println!("net-smoke OK: {total} frames, exactly once, correctly stamped and traced");
    Ok(())
}

/// Per-client accounting for the soak: every frame lands in exactly one
/// bucket, so the totals reconcile against the frame count at the end.
struct SoakTally {
    ok: u64,
    /// Contained worker panics surfaced as typed `Internal` refusals
    /// after the client's retry budget ran out.
    panicked: u64,
    /// `Quarantined` refusals (not retryable — the door is fenced).
    fenced: u64,
}

/// The CI `chaos-soak` workload (`--soak`): ≥ 10⁴ frames with client
/// backoff under engine-interior chaos. See the module docs for the
/// invariants this enforces.
fn run_soak(dump_metrics: bool) -> Result<(), String> {
    // Injected worker panics would spray default-hook backtraces over
    // the output (panic:0.01 × 10⁴ frames ≈ a hundred of them); filter
    // exactly the chaos-stamped payloads, delegate everything else.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("chaos:"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("chaos:"));
        if !injected {
            prev(info);
        }
    }));
    let chaos = std::env::var("HEFV_CHAOS").unwrap_or_default();
    let chaos_armed = !chaos.is_empty();
    println!(
        "chaos-soak: HEFV_CHAOS={} HEFV_NET_FAULT={}",
        if chaos_armed {
            chaos.as_str()
        } else {
            "<unset>"
        },
        std::env::var("HEFV_NET_FAULT").unwrap_or_else(|_| "<unset>".into()),
    );

    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy())?);
    let t = ctx.params().t;
    let n = ctx.params().n;

    let router = Arc::new(ShardRouter::new());
    for i in 0..SHARDS {
        router
            .add_shard(ShardSpec {
                name: format!("soak-{i}"),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers: 2,
                    threads_per_job: 1,
                    queue_capacity: 512,
                    // Soak-tuned fences: a panic burst trips quarantine
                    // quickly but releases within one backoff horizon,
                    // so a fenced signature costs refusals, not minutes
                    // of wall clock.
                    shedding: SheddingPolicy {
                        quarantine_after: 4,
                        quarantine_ttl: Duration::from_millis(300),
                        ..SheddingPolicy::default()
                    },
                    ..EngineConfig::default()
                },
            })
            .map_err(String::from)?;
    }
    let mut tenants: Vec<u64> = Vec::new();
    let mut shards_covered = HashSet::new();
    for candidate in 1u64.. {
        let shard = router.shard_for(candidate).expect("router has shards");
        if shards_covered.insert(shard) {
            tenants.push(candidate);
            if tenants.len() == CLIENTS as usize {
                break;
            }
        }
    }

    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            max_inflight: 64,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let total = CLIENTS * SOAK_FRAMES_PER_CLIENT;
    println!("chaos-soak: {SHARDS} shards on {addr}, {total} frames");

    // One sequential request at a time per client, each through the
    // retry helper: a retryable refusal (e.g. a contained worker panic)
    // is re-submitted with jittered backoff; what comes back is either
    // an Ok (value-checked against the plaintext sum) or a typed
    // refusal. Anything else — a lost frame, an untyped error, an
    // unexpected refusal class — fails the soak.
    let workers: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, &tenant)| {
            let ctx = Arc::clone(&ctx);
            let router = Arc::clone(&router);
            std::thread::spawn(move || -> Result<SoakTally, String> {
                let mut rng = StdRng::seed_from_u64(9000 + i as u64);
                let (sk, pk, rlk) = keygen(&ctx, &mut rng);
                router
                    .register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk))
                    .map_err(String::from)?;
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                let policy = RetryPolicy::default();
                let mut tally = SoakTally {
                    ok: 0,
                    panicked: 0,
                    fenced: 0,
                };
                for f in 0..SOAK_FRAMES_PER_CLIENT {
                    let (a, b) = (f % t, (f + i as u64) % t);
                    let enc = |v, rng: &mut StdRng| {
                        encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng)
                    };
                    let req = EvalRequest::binary(
                        tenant,
                        EvalOp::Add,
                        enc(a, &mut rng),
                        enc(b, &mut rng),
                    )
                    .with_trace_id(trace_id(i as u64, f));
                    let frame = wire::encode_request(&req);
                    let reply = client
                        .call_with_retry(&frame, &policy)
                        .map_err(|e| e.to_string())?;
                    match wire::peek_response_error(&reply).map_err(String::from)? {
                        None => {
                            let resp =
                                match wire::decode_response(&ctx, &reply).map_err(String::from)? {
                                    wire::ResponseFrame::Ok(resp) => resp,
                                    wire::ResponseFrame::Err { message, .. } => {
                                        return Err(format!(
                                            "frame {f}: peek said Ok, decode said Err: {message}"
                                        ));
                                    }
                                };
                            let got = decrypt(&ctx, &sk, &resp.result).coeffs()[0];
                            if got != (a + b) % t {
                                return Err(format!("frame {f}: got {got}, want {}", (a + b) % t));
                            }
                            tally.ok += 1;
                        }
                        Some(info) => match info.code {
                            ErrorCode::Internal => tally.panicked += 1,
                            ErrorCode::Quarantined => {
                                tally.fenced += 1;
                                // Honor the fence: wait out the hint so
                                // the client is not hammering a door
                                // that cannot open yet.
                                if let Some(us) = info.retry_after_us {
                                    std::thread::sleep(Duration::from_micros(us.min(400_000)));
                                }
                            }
                            code => {
                                return Err(format!(
                                    "frame {f}: unexpected refusal class {code}: {}",
                                    info.message
                                ));
                            }
                        },
                    }
                }
                Ok(tally)
            })
        })
        .collect();

    let (mut ok, mut panicked, mut fenced) = (0u64, 0u64, 0u64);
    for (i, w) in workers.into_iter().enumerate() {
        let tally = w
            .join()
            .map_err(|_| format!("client {i} panicked"))?
            .map_err(|e| format!("client {i}: {e}"))?;
        ok += tally.ok;
        panicked += tally.panicked;
        fenced += tally.fenced;
    }
    assert_eq!(
        ok + panicked + fenced,
        total,
        "every frame answered exactly once"
    );
    let retries = hefv::net::client_retries_total();
    println!(
        "chaos-soak: {ok} ok, {panicked} contained panics, {fenced} quarantine refusals, \
         {retries} client retries"
    );
    if chaos_armed {
        assert!(
            panicked + fenced > 0,
            "chaos armed but no injected failure surfaced"
        );
        assert!(
            retries > 0,
            "retryable refusals must have driven client backoff"
        );
    }

    // Zero lost correlations at the transport: the server answered every
    // frame it read — workload, retries and refusals included.
    let net = server.stats();
    assert_eq!(
        net.frames_in, net.replies_out,
        "every frame read got exactly one reply"
    );
    assert!(net.frames_in >= total, "retries can only add frames");

    // Infeasible-deadline burst: every frame is refused
    // `DeadlineInfeasible` at the admission door, and none executes.
    let completed_before = router.stats().total.jobs_completed;
    const BURST: u64 = 32;
    {
        let mut rng = StdRng::seed_from_u64(4242);
        let (_sk, pk, rlk) = keygen(&ctx, &mut rng);
        let tenant = 0xDEAD;
        router
            .register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk))
            .map_err(String::from)?;
        let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
        for f in 0..BURST {
            let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
            let req =
                EvalRequest::binary(tenant, EvalOp::Add, enc(1, &mut rng), enc(f % t, &mut rng))
                    .with_deadline(0.001); // 1 ns of budget: infeasible by construction
            let reply = client
                .call(&wire::encode_request(&req))
                .map_err(|e| e.to_string())?;
            let info = wire::peek_response_error(&reply)
                .map_err(String::from)?
                .ok_or_else(|| format!("burst frame {f}: an infeasible deadline was admitted"))?;
            if info.code != ErrorCode::DeadlineInfeasible {
                return Err(format!(
                    "burst frame {f}: want DeadlineInfeasible, got {}: {}",
                    info.code, info.message
                ));
            }
        }
    }
    let snap = router.stats();
    assert_eq!(
        snap.total.jobs_completed, completed_before,
        "the infeasible burst executed nothing"
    );
    let shed_deadline = snap
        .total
        .shed_by_reason
        .iter()
        .find(|&&(r, _)| r == "deadline_infeasible")
        .map_or(0, |&(_, v)| v);
    assert!(
        shed_deadline >= BURST,
        "deadline_infeasible shed counter covers the burst: {shed_deadline}"
    );
    println!("chaos-soak: deadline burst of {BURST} refused DeadlineInfeasible, none executed");

    // The exposition must carry the overload/containment families and
    // parse line by line: every sample is `name{labels} value` with a
    // float value — a malformed line would poison a real scraper.
    let mut admin = Client::connect(addr).map_err(|e| e.to_string())?;
    let metrics = admin
        .scrape_stats(wire::StatsKind::Metrics)
        .map_err(|e| e.to_string())?;
    for family in [
        "hefv_jobs_submitted_total",
        "hefv_jobs_completed_total",
        "hefv_shed_total",
        "hefv_quarantine_active",
        "hefv_client_retries_total",
        "hefv_net_connections_total",
        "hefv_net_replies_out_total",
    ] {
        assert!(metrics.contains(family), "scrape missing family {family}");
    }
    let mut parsed = 0u64;
    for line in metrics.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("metrics line without a value: {line}"))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("unparseable sample value in: {line}"))?;
        let name = &series[..series.find('{').unwrap_or(series.len())];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("bad metric name in: {line}"));
        }
        if series.contains('{') && !series.ends_with('}') {
            return Err(format!("unterminated label set in: {line}"));
        }
        parsed += 1;
    }
    assert!(parsed > 0, "metrics scrape was empty");
    if chaos_armed {
        let rendered: f64 = metrics
            .lines()
            .filter(|l| l.starts_with("hefv_client_retries_total"))
            .find_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse().ok()))
            .ok_or("hefv_client_retries_total sample missing")?;
        assert!(rendered > 0.0, "exposition shows zero client retries");
    }
    if dump_metrics {
        println!("=== HEVS metrics ===");
        print!("{metrics}");
        println!("=== end ===");
    }

    server.shutdown();
    router.shutdown();
    println!(
        "chaos-soak OK: {total} frames answered exactly once under chaos, \
         {parsed} metric samples parsed"
    );
    Ok(())
}
