//! Loopback TCP service smoke: the CI `net-smoke` workload.
//!
//! A four-shard router is served over TCP by `hefv_net::NetServer`; four
//! client threads (one tenant each, every tenant hashing to a distinct
//! shard) pipeline 256 encrypted additions apiece through one connection
//! each, half-close, and collect replies in completion order. Every
//! request envelope carries a deterministic trace id. The process exits
//! non-zero if any frame is lost, duplicated, misrouted (reply stamped
//! with the wrong shard), or decrypts to the wrong value — and then
//! exercises the `HEVS` admin route: a metrics scrape must return a
//! Prometheus exposition with the expected families and quantiles, and
//! a trace scrape must return spans whose ids are exactly the ones the
//! clients stamped.
//!
//! Run with: `cargo run --release --example tcp_service`
//!
//! Pass `--metrics` to dump the scraped exposition between
//! `=== HEVS metrics ===` / `=== end ===` markers (what CI parses).

use hefv::core::prelude::*;
use hefv::engine::prelude::*;
use hefv::engine::router::ShardSpec;
use hefv::engine::wire;
use hefv::net::{Client, NetServer, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::sync::Arc;

const SHARDS: usize = 4;
const CLIENTS: u64 = 4;
const FRAMES_PER_CLIENT: u64 = 256;

/// Deterministic trace id for client `i`, frame `f` — recognizable in a
/// span dump and reproducible by the validator below.
fn trace_id(i: u64, f: u64) -> u64 {
    0x7C00_0000_0000_0000 | (i << 32) | f
}

fn main() -> Result<(), String> {
    let dump_metrics = std::env::args().any(|a| a == "--metrics");
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy())?);
    let t = ctx.params().t;
    let n = ctx.params().n;

    let router = Arc::new(ShardRouter::new());
    for i in 0..SHARDS {
        router
            .add_shard(ShardSpec {
                name: format!("net-{i}"),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers: 2,
                    threads_per_job: 1,
                    queue_capacity: 512,
                    ..EngineConfig::default()
                },
            })
            .map_err(String::from)?;
    }

    // One tenant per client, chosen so the four tenants hash to four
    // distinct shards — every shard sees traffic.
    let mut tenants: Vec<u64> = Vec::new();
    let mut shards_covered = HashSet::new();
    for candidate in 1u64.. {
        let shard = router.shard_for(candidate).expect("router has shards");
        if shards_covered.insert(shard) {
            tenants.push(candidate);
            if tenants.len() == CLIENTS as usize {
                break;
            }
        }
    }

    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            max_inflight: 64,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    println!("serving {SHARDS} shards on {addr}");

    let workers: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, &tenant)| {
            let ctx = Arc::clone(&ctx);
            let router = Arc::clone(&router);
            std::thread::spawn(move || -> Result<(), String> {
                let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                let (sk, pk, rlk) = keygen(&ctx, &mut rng);
                let home = router
                    .register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk))
                    .map_err(String::from)?;
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;

                // Pipeline every frame before reading a single reply.
                let mut expected = std::collections::HashMap::new();
                for f in 0..FRAMES_PER_CLIENT {
                    let (a, b) = (f % t, (f + i as u64) % t);
                    let enc =
                        |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
                    let req = EvalRequest::binary(
                        tenant,
                        EvalOp::Add,
                        enc(a, &mut rng),
                        enc(b, &mut rng),
                    )
                    .with_trace_id(trace_id(i as u64, f));
                    // Every fourth frame is explicitly addressed to the
                    // tenant's home shard; the rest let the router place it.
                    let frame = if f % 4 == 0 {
                        wire::encode_request_for_shard(&req, home)
                    } else {
                        wire::encode_request(&req)
                    };
                    let corr = client.send_frame(&frame).map_err(|e| e.to_string())?;
                    expected.insert(corr, (a + b) % t);
                }
                client.finish_sending().map_err(|e| e.to_string())?;

                // Replies arrive in completion order; each corr exactly once.
                let mut seen = HashSet::new();
                for _ in 0..FRAMES_PER_CLIENT {
                    let (corr, reply) = client.recv_reply().map_err(|e| e.to_string())?;
                    if !seen.insert(corr) {
                        return Err(format!("duplicate reply for corr {corr}"));
                    }
                    let stamp = wire::peek_response_shard(&reply).map_err(String::from)?;
                    if u16::from(stamp) != home {
                        return Err(format!(
                            "misrouted: corr {corr} stamped shard {stamp}, tenant {tenant} lives on {home}"
                        ));
                    }
                    let expect = expected
                        .get(&corr)
                        .copied()
                        .ok_or_else(|| format!("reply for unknown corr {corr}"))?;
                    match wire::decode_response(&ctx, &reply).map_err(String::from)? {
                        wire::ResponseFrame::Ok(resp) => {
                            let got = decrypt(&ctx, &sk, &resp.result).coeffs()[0];
                            if got != expect {
                                return Err(format!("corr {corr}: got {got}, want {expect}"));
                            }
                        }
                        wire::ResponseFrame::Err { message, .. } => {
                            return Err(format!("corr {corr} failed: {message}"));
                        }
                    }
                }
                if seen.len() as u64 != FRAMES_PER_CLIENT {
                    return Err(format!("lost frames: {} of {FRAMES_PER_CLIENT}", seen.len()));
                }
                Ok(())
            })
        })
        .collect();

    for (i, w) in workers.into_iter().enumerate() {
        w.join()
            .map_err(|_| format!("client {i} panicked"))?
            .map_err(|e| format!("client {i}: {e}"))?;
    }

    // Transport and fleet invariants, snapshotted before the admin
    // scrapes add their own frames to the counters.
    let net = server.stats();
    let fleet = router.stats();
    let total = CLIENTS * FRAMES_PER_CLIENT;
    assert_eq!(net.frames_in, total, "server read every frame");
    assert_eq!(net.replies_out, total, "every reply was written");
    assert_eq!(fleet.total.jobs_completed, total, "every job completed");
    for s in &fleet.per_shard {
        assert!(
            s.stats.jobs_completed > 0,
            "shard {} served no traffic",
            s.id
        );
    }
    println!(
        "{} frames in, {} replies out over {} connections",
        net.frames_in, net.replies_out, net.connections
    );

    // The HEVS admin route, over the same TCP protocol as the workload.
    let mut admin = Client::connect(addr).map_err(|e| e.to_string())?;
    let metrics = admin
        .scrape_stats(wire::StatsKind::Metrics)
        .map_err(|e| e.to_string())?;
    for family in [
        "hefv_jobs_submitted_total",
        "hefv_jobs_completed_total",
        "hefv_jobs_rejected_total",
        "hefv_op_latency_seconds",
        "hefv_backend_latency_seconds",
        "hefv_queue_wait_seconds",
        "hefv_tenant_requests_total",
        "hefv_shard_up",
        "hefv_shard_op_latency_seconds",
        "hefv_net_connections_total",
        "hefv_net_replies_out_total",
    ] {
        assert!(metrics.contains(family), "scrape missing family {family}");
    }
    for q in ["quantile=\"0.5\"", "quantile=\"0.95\"", "quantile=\"0.99\""] {
        assert!(metrics.contains(q), "scrape missing {q}");
    }
    if dump_metrics {
        println!("=== HEVS metrics ===");
        print!("{metrics}");
        println!("=== end ===");
    }

    // Every span the trace dump mentions must carry an id some client
    // stamped — trace ids propagate end to end, never get reminted.
    let sent: HashSet<u64> = (0..CLIENTS)
        .flat_map(|i| (0..FRAMES_PER_CLIENT).map(move |f| trace_id(i, f)))
        .collect();
    let traces = admin
        .scrape_stats(wire::StatsKind::Traces)
        .map_err(|e| e.to_string())?;
    let mut matched = 0u64;
    for line in traces.lines().filter(|l| !l.starts_with('#')) {
        let token = line
            .split_whitespace()
            .find_map(|w| w.strip_prefix("trace=0x"))
            .ok_or_else(|| format!("span line without a trace id: {line}"))?;
        let id = u64::from_str_radix(token, 16).map_err(|e| e.to_string())?;
        if !sent.contains(&id) {
            return Err(format!("span with an id nobody sent: {line}"));
        }
        matched += 1;
    }
    assert!(matched > 0, "trace scrape returned no spans");
    println!("trace scrape: {matched} spans, all ids match sent envelopes");

    // Percentile and per-tenant summary from the merged snapshot — the
    // operator's view, not raw totals.
    let s = 1.0 / 1e9;
    for op in &fleet.total.per_op {
        if op.count == 0 {
            continue;
        }
        println!(
            "op {:>9}: {:>5} jobs  p50 {:>9.6}s  p95 {:>9.6}s  p99 {:>9.6}s  max {:>9.6}s",
            op.name,
            op.count,
            op.latency.quantile(0.5) as f64 * s,
            op.latency.quantile(0.95) as f64 * s,
            op.latency.quantile(0.99) as f64 * s,
            op.max_ns as f64 * s,
        );
    }
    for tn in &fleet.total.per_tenant {
        println!(
            "tenant {:>3}: {:>5} requests  {:>9.6}s total latency  {:.3} noise bits",
            tn.tenant,
            tn.requests,
            tn.latency_ns as f64 * s,
            tn.noise_bits,
        );
    }

    server.shutdown();
    router.shutdown();
    println!("net-smoke OK: {total} frames, exactly once, correctly stamped and traced");
    Ok(())
}
