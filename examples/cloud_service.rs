//! The full Fig. 11 service: a cloud server with two coprocessor workers
//! behind a dispatcher, clients shipping ciphertexts in the paper's DMA
//! wire format — plus an encrypted-aggregation query using rotations.
//!
//! Run with: `cargo run --release --example cloud_service`

use hefv::apps::cloud::{client, CloudServer};
use hefv::apps::meter::aggregate_total;
use hefv::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), String> {
    println!("HEAT cloud service — two simulated coprocessors behind a dispatcher\n");
    let ctx = Arc::new(FvContext::new(FvParams::hpca19_batching())?);
    let mut rng = StdRng::seed_from_u64(2718);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let enc = BatchEncoder::new(ctx.params().t, ctx.params().n)?;

    let server = CloudServer::start(Arc::clone(&ctx), Arc::new(rlk), 2);
    println!("server up with {} coprocessor workers", server.workers());

    // Client: encrypt two slot-vectors and request element-wise ops.
    let a: Vec<u64> = (0..enc.slots() as u64).collect();
    let b: Vec<u64> = (0..enc.slots() as u64).map(|i| i + 2).collect();
    let ca = encrypt(&ctx, &pk, &enc.encode(&a), &mut rng);
    let cb = encrypt(&ctx, &pk, &enc.encode(&b), &mut rng);
    println!(
        "client: sending {} KiB per ciphertext (wire format: 4 B/coefficient)",
        (ca.transfer_bytes() + 12) / 1024
    );

    // Fire eight mixed requests concurrently.
    let t0 = Instant::now();
    let pending: Vec<_> = (0..8)
        .map(|i| {
            let req = if i % 2 == 0 {
                client::mult_request(&ca, &cb)
            } else {
                client::add_request(&ca, &cb)
            };
            (i, server.submit(req))
        })
        .collect();
    let mut sim_us = 0.0;
    for (i, rx) in pending {
        let resp = rx.recv().map_err(|_| "server died")??;
        sim_us += resp.coproc_us;
        let out = client::unpack(&ctx, &resp)?;
        let slots = enc.decode(&decrypt(&ctx, &sk, &out));
        let expect = if i % 2 == 0 {
            (a[3] * b[3]) % ctx.params().t
        } else {
            (a[3] + b[3]) % ctx.params().t
        };
        assert_eq!(slots[3], expect, "request {i}");
        println!(
            "  request {i}: worker {} | simulated coprocessor {:>8.1} µs | verified",
            resp.worker, resp.coproc_us
        );
    }
    println!(
        "\n8 requests done in {:.2?} wall-clock (software execution)",
        t0.elapsed()
    );
    println!(
        "simulated coprocessor busy time: {:.1} ms total, {:.1} ms per worker",
        sim_us / 1000.0,
        sim_us / 2000.0
    );

    // Aggregation query: the operator wants only the grid total.
    let keys = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
    let agg = aggregate_total(&ctx, &ca, &keys);
    let total = enc.decode(&decrypt(&ctx, &sk, &agg))[0];
    let expect: u64 = a.iter().sum::<u64>() % ctx.params().t;
    assert_eq!(total, expect);
    println!("\nencrypted aggregation: grid total = {total} (12 rotations, verified)");

    server.shutdown();
    println!("OK");
    Ok(())
}
