//! Transciphering with a Rasta-style cipher at the paper's full parameter
//! size — §III-A's "evaluation of low-complexity block cipher such as
//! Rasta on ciphertext".
//!
//! A sensor encrypts data with a cheap symmetric keystream; the cloud,
//! holding only the *FV-encrypted* symmetric key, evaluates the keystream
//! homomorphically and converts the data into FV ciphertexts it can
//! compute on — without anything ever being decrypted.
//!
//! Run with: `cargo run --release --example transciphering`

use hefv::apps::rasta::ToyRasta;
use hefv::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), String> {
    println!("Transciphering: Rasta-style keystream evaluated under FV\n");
    let ctx = FvContext::new(FvParams::hpca19())?; // t = 2
    let mut rng = StdRng::seed_from_u64(1337);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);

    // Public per-session cipher instance: 7-bit block, 2 χ-rounds
    // (depth 2 of the 4 available — headroom left for computing on the
    // transciphered data).
    let cipher = ToyRasta::new(7, 2, 0xD00D);
    let key = [1u8, 0, 1, 1, 0, 0, 1];
    let data = [0u8, 1, 1, 0, 1, 0, 1];

    // Sensor side: cheap XOR encryption.
    let stream = cipher.keystream(&key);
    let sym: Vec<u8> = data.iter().zip(&stream).map(|(&d, &s)| d ^ s).collect();
    println!("sensor:   data {data:?}\n          xor'd {sym:?} (symmetric, cheap)");

    // Client uploads the FV-encrypted symmetric key once.
    let enc_key: Vec<Ciphertext> = key
        .iter()
        .map(|&b| {
            encrypt(
                &ctx,
                &pk,
                &Plaintext::new(vec![b as u64], 2, ctx.params().n),
                &mut rng,
            )
        })
        .collect();
    println!(
        "client:   uploaded {} FV-encrypted key bits ({} KiB)",
        enc_key.len(),
        enc_key.len() * enc_key[0].transfer_bytes() / 1024
    );

    // Cloud: homomorphic keystream, then XOR the symmetric ciphertext in.
    let t0 = Instant::now();
    let hom_stream = cipher.keystream_encrypted(&ctx, &enc_key, &rlk, Backend::default());
    let fv_data: Vec<Ciphertext> = hom_stream
        .iter()
        .zip(&sym)
        .map(|(ks, &bit)| {
            let b = trivial_encrypt(&ctx, &Plaintext::new(vec![bit as u64], 2, ctx.params().n));
            add(&ctx, ks, &b)
        })
        .collect();
    println!(
        "cloud:    evaluated {} χ-AND gates homomorphically in {:.2?}",
        cipher.block * cipher.rounds,
        t0.elapsed()
    );

    // The cloud can now compute on fv_data; prove it holds the data and
    // still has budget by AND-ing two bits.
    let and01 = mul(&ctx, &fv_data[2], &fv_data[4], &rlk, Backend::default());
    let got: Vec<u8> = fv_data
        .iter()
        .map(|c| decrypt(&ctx, &sk, c).coeffs()[0] as u8)
        .collect();
    assert_eq!(got, data.to_vec(), "transciphered data matches");
    assert_eq!(
        decrypt(&ctx, &sk, &and01).coeffs()[0] as u8,
        data[2] & data[4],
        "post-transcipher compute works"
    );
    let budget = measure(&ctx, &sk, &and01).budget_bits;
    println!("\nverify:   transciphered bits {got:?} == original data");
    println!("          post-transcipher AND correct, {budget:.0} bits of budget left");
    println!("OK");
    Ok(())
}
