//! Sharded multi-engine serving: `ShardRouter` placing tenants across
//! engine shards by consistent hashing, with per-job Traditional-vs-HPS
//! datapath dispatch (`Backend::Auto`), per-tenant weights, deadlines and
//! the shard-addressed wire seam.
//!
//! Run with: `cargo run --release --example shard_router`

use hefv::core::eval::Backend;
use hefv::core::prelude::*;
use hefv::engine::prelude::*;
use hefv::engine::router::ShardSpec;
use hefv::engine::wire;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), String> {
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy())?);
    let t = ctx.params().t;
    let n = ctx.params().n;
    let mut rng = StdRng::seed_from_u64(2019);

    // --- A three-shard fleet over one parameter set. --------------------
    // Every shard runs Backend::Auto: the scheduler prices each job on
    // both the HPS (Table II) and traditional-CRT (§VI-C) cycle models
    // and executes on the cheaper datapath.
    let router = ShardRouter::new();
    for name in ["auto-0", "auto-1", "auto-2"] {
        router
            .add_shard(ShardSpec {
                name: name.into(),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers: 2,
                    threads_per_job: 1,
                    backend: Backend::Auto,
                    ..EngineConfig::default()
                },
            })
            .map_err(String::from)?;
    }

    // --- Tenants land on shards by consistent hash. ---------------------
    // Tenant 2 is pinned to shard 0 explicitly (overriding the hash);
    // pins go in before key registration so the keys land on the right
    // shard.
    router.pin_tenant(2, 0).map_err(String::from)?;
    struct Tenant {
        id: u64,
        sk: SecretKey,
        pk: PublicKey,
    }
    let tenants: Vec<Tenant> = (1..=6u64)
        .map(|id| {
            let (sk, pk, rlk) = keygen(&ctx, &mut rng);
            let galois = hefv::core::galois::GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
            let shard = router
                .register_tenant(id, TenantKeys::full(pk.clone(), rlk, galois))
                .expect("router has shards");
            println!("tenant {id} -> shard {shard}");
            Tenant { id, sk, pk }
        })
        .collect();

    // Tenant 1 is premium: 4x the fair-share weight.
    router
        .set_tenant_weight(tenants[0].id, 4.0)
        .map_err(String::from)?;

    // --- Mixed traffic: Mult-heavy and rotation-heavy jobs. -------------
    // On this small ring the traditional datapath wins Mult (its
    // long-integer Lift/Scale scales with n) AND the key switch (3x
    // smaller switching key); at the paper's n = 4096 Mult flips to HPS.
    let mut handles = Vec::new();
    let mut expected = Vec::new();
    for tenant in &tenants {
        let enc =
            |v, rng: &mut StdRng| encrypt(&ctx, &tenant.pk, &Plaintext::new(vec![v], t, n), rng);
        // A product with a deadline: served EDF-first once at stake.
        let req = EvalRequest::binary(tenant.id, EvalOp::Mul, enc(3, &mut rng), enc(4, &mut rng))
            .with_deadline(50_000.0);
        expected.push((tenant.id, 12 % t));
        handles.push(router.submit(req).map_err(String::from)?);
        // A rotation chain (key-switch bound).
        let req = EvalRequest {
            tenant: tenant.id,
            inputs: vec![enc(5, &mut rng)],
            plaintexts: vec![],
            ops: vec![
                EvalOp::Rotate(ValRef::Input(0), 3),
                EvalOp::Rotate(ValRef::Op(0), 3),
            ],
            deadline_us: None,
            trace_id: None,
        };
        expected.push((tenant.id, 5));
        handles.push(router.submit(req).map_err(String::from)?);
    }
    for ((tenant_id, expect), handle) in expected.into_iter().zip(handles) {
        let resp = handle.wait().map_err(String::from)?;
        let tenant = tenants.iter().find(|t| t.id == tenant_id).unwrap();
        let got = decrypt(&ctx, &tenant.sk, &resp.result).coeffs()[0];
        assert_eq!(got, expect, "tenant {tenant_id}");
    }
    println!("\nall op-graph jobs verified");

    // --- The wire seam a TCP front-end would use. -----------------------
    let tenant = &tenants[0];
    let enc = |v, rng: &mut StdRng| encrypt(&ctx, &tenant.pk, &Plaintext::new(vec![v], t, n), rng);
    let req = EvalRequest::binary(tenant.id, EvalOp::Add, enc(20, &mut rng), enc(22, &mut rng));
    let frame = wire::encode_request(&req); // unrouted: router places it
    let reply = router.dispatch_frame(&frame);
    let shard = wire::peek_response_shard(&reply).map_err(String::from)?;
    match wire::decode_response(&ctx, &reply).map_err(String::from)? {
        wire::ResponseFrame::Ok(resp) => {
            let got = decrypt(&ctx, &tenant.sk, &resp.result).coeffs()[0];
            println!("frame dispatch -> shard {shard}, result {got}");
            assert_eq!(got, 42 % t);
        }
        wire::ResponseFrame::Err { message, .. } => return Err(message),
    }

    // --- Fleet telemetry. ----------------------------------------------
    println!("\n{}", router.stats());
    let total = router.stats().total;
    println!(
        "datapath dispatch: {} traditional vs {} HPS (Auto picked per job)",
        total.jobs_traditional, total.jobs_hps
    );
    router.shutdown();
    Ok(())
}
