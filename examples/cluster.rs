//! Multi-node cluster smoke: the CI `cluster-smoke` workload.
//!
//! One process plays a whole deployment. Three *nodes* — each a
//! single-shard `ShardRouter` behind its own `NetServer` — sit behind a
//! *front* router that reaches them through `RemoteShard` proxies over
//! real TCP (`hefv_net::TcpConnector`), and the front is itself served
//! over TCP. Four clients pipeline 256 encrypted additions each through
//! the front door while the run exercises the cluster machinery:
//!
//! 1. **Key migration before ring commit** — a tenant is registered,
//!    then pinned to a node that verifiably does *not* hold its keys;
//!    the pin must stream the keys (HEVK push, acked) before it commits,
//!    proven by querying the new owner node directly over its own
//!    socket.
//! 2. **Node kill mid-run** — after ~300 replies one node is shut down
//!    cold. The circuit breaker must eject it, hedged retries and
//!    failover must land its tenants' jobs on the replica that already
//!    holds their keys, and every one of the 1024 frames must come back
//!    exactly once, decrypting correctly — with zero client-side key
//!    re-registration.
//! 3. **Kill and recover** — the victim's key vault is serialized to an
//!    `HEVR` snapshot the instant before the kill. A replacement node
//!    restores from that snapshot, proves it can serve a victim-homed
//!    tenant directly, and the front's existing `RemoteShard` is
//!    retargeted at it. The breaker must close on probes, the node must
//!    come back flagged *catching up* (replica-eligible, not primary),
//!    and an anti-entropy sweep must verify its keys and re-admit it as
//!    primary — proven by a victim-homed request coming back stamped
//!    with its shard id.
//!
//! The process exits non-zero if any frame is lost, duplicated, fails,
//! or decrypts wrong, if the breaker never ejects the dead node, if the
//! migrated tenant's keys are not at the new owner, or if the restored
//! node is never re-admitted.
//!
//! Run with: `cargo run --release --example cluster`
//!
//! `HEFV_NET_FAULT=drop:0.01,corrupt:0.002,delay:5ms` (see
//! `crates/net/README.md`) makes the front↔node links lossy, slow and
//! bit-flipping; the run must still end green — that is CI's
//! fault-injection leg.

use hefv::core::prelude::*;
use hefv::engine::prelude::*;
use hefv::engine::router::{RemoteShardSpec, RouterConfig, ShardSpec};
use hefv::engine::wire;
use hefv::net::{Client, NetServer, ServerConfig, TcpConnector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: usize = 3;
const CLIENTS: u64 = 4;
const FRAMES_PER_CLIENT: u64 = 256;
/// Replies through the front before one node is killed cold.
const KILL_AFTER_REPLIES: u64 = 300;

struct Node {
    addr: SocketAddr,
    server: NetServer,
    router: Arc<ShardRouter>,
}

fn spawn_node(ctx: &Arc<FvContext>, i: usize) -> Result<Node, String> {
    let router = Arc::new(ShardRouter::with_config(RouterConfig {
        key_replicas: 1,
        hedge: None,
        ..RouterConfig::default()
    }));
    router
        .add_shard(ShardSpec {
            name: format!("node{i}-s0"),
            ctx: Arc::clone(ctx),
            config: EngineConfig {
                workers: 2,
                threads_per_job: 1,
                queue_capacity: 512,
                ..EngineConfig::default()
            },
        })
        .map_err(String::from)?;
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&router),
        ServerConfig {
            max_inflight: 256,
            // A killed node must die cold, not linger draining — that is
            // the failure the front has to absorb.
            drain_timeout: Duration::ZERO,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    Ok(Node {
        addr,
        server,
        router,
    })
}

/// Total replies the front has collected from its nodes.
fn replies_total(front: &ShardRouter) -> u64 {
    front.stats().remote.iter().map(|r| r.stats.replies).sum()
}

fn main() -> Result<(), String> {
    let fault = std::env::var("HEFV_NET_FAULT").unwrap_or_default();
    if !fault.is_empty() {
        println!("fault injection active: HEFV_NET_FAULT={fault}");
    }
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy())?);
    let (t, n) = (ctx.params().t, ctx.params().n);

    // --- The fleet: three TCP nodes behind one front router. ---------
    let mut nodes = Vec::new();
    for i in 0..NODES {
        nodes.push(spawn_node(&ctx, i)?);
    }
    let node_addrs: Vec<SocketAddr> = nodes.iter().map(|nd| nd.addr).collect();

    let front = Arc::new(ShardRouter::with_config(RouterConfig {
        key_replicas: 2,
        hedge: Some(HedgeConfig {
            delay: Duration::from_millis(150),
            deadline_fraction: 0.5,
        }),
        ..RouterConfig::default()
    }));
    let mut connectors = Vec::new();
    for (i, nd) in nodes.iter().enumerate() {
        let connector = Arc::new(TcpConnector::new(nd.addr));
        connectors.push(Arc::clone(&connector));
        let id = front
            .add_remote_shard(RemoteShardSpec {
                name: format!("node{i}"),
                ctx: Arc::clone(&ctx),
                connector,
                config: RemoteShardConfig {
                    connections: 2,
                    // Headroom for the failover surge: when a node dies,
                    // every outstanding job it held re-homes to a replica
                    // at once (on top of hedges and re-sends still waiting
                    // out dropped frames), and a replica at max_inflight
                    // refuses the failover instead of absorbing it.
                    max_inflight: 1024,
                    reply_timeout: Duration::from_secs(2),
                    probe_interval: Duration::from_millis(100),
                    probe_timeout: Duration::from_millis(300),
                    eject_after: 3,
                    send_attempts: 4,
                    reconnect_backoff: Duration::from_millis(100),
                },
            })
            .map_err(String::from)?;
        // Front shard ids mirror node indices — the stamp on a reply
        // names the node that served it.
        assert_eq!(id as usize, i);
    }
    let front_server = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&front),
        ServerConfig {
            max_inflight: 64,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let front_addr = front_server.local_addr();
    println!("front door on {front_addr}, nodes on {node_addrs:?}");

    // --- Leg 1: key migration must precede the ring commit. ----------
    // Register a tenant, find a node that verifiably lacks its keys,
    // pin the tenant there, and prove the keys arrived by asking that
    // node directly over its own socket.
    {
        let mut rng = StdRng::seed_from_u64(7);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let tenant = 0xA110u64;
        front
            .register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk))
            .map_err(String::from)?;
        let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
        let probe_req = |rng: &mut StdRng| {
            wire::encode_request(&EvalRequest::binary(
                tenant,
                EvalOp::Add,
                enc(20, rng),
                enc(22, rng),
            ))
        };
        // With key_replicas=2 of 3 nodes, exactly one node must reject
        // the tenant as unknown — that is the migration target.
        let mut target = None;
        for (i, &addr) in node_addrs.iter().enumerate() {
            let mut probe = Client::connect(addr).map_err(|e| e.to_string())?;
            let reply = probe
                .call(&probe_req(&mut rng))
                .map_err(|e| e.to_string())?;
            if matches!(
                wire::decode_response(&ctx, &reply).map_err(String::from)?,
                wire::ResponseFrame::Err { .. }
            ) {
                target = Some(i);
            }
        }
        let target = target.ok_or("every node already held the tenant's keys")?;

        let pushes_before = front.stats().hedge.key_pushes;
        front
            .pin_tenant(tenant, target as u16)
            .map_err(String::from)?;
        if front.stats().hedge.key_pushes <= pushes_before {
            return Err("pin committed without streaming keys to the new owner".into());
        }
        // pin_tenant has returned, so the commit is done — the keys must
        // already be live at the new owner. Ask it directly.
        let mut check = Client::connect(node_addrs[target]).map_err(|e| e.to_string())?;
        let reply = check
            .call(&probe_req(&mut rng))
            .map_err(|e| e.to_string())?;
        match wire::decode_response(&ctx, &reply).map_err(String::from)? {
            wire::ResponseFrame::Ok(resp) => {
                let got = decrypt(&ctx, &sk, &resp.result).coeffs()[0];
                if got != 42 % t {
                    return Err(format!("migrated tenant computed {got}, want {}", 42 % t));
                }
            }
            wire::ResponseFrame::Err { message, .. } => {
                return Err(format!(
                    "keys were not at node {target} after the pin committed: {message}"
                ));
            }
        }
        println!("leg 1 OK: pin streamed keys to node {target} before committing");
    }

    // --- Leg 2: pipelined workload with a mid-run node kill. ---------
    // Four tenants chosen to cover all three nodes, so the victim is
    // guaranteed to be serving traffic when it dies.
    let mut tenants: Vec<u64> = Vec::new();
    let mut covered = HashSet::new();
    for candidate in 1u64.. {
        let shard = front.shard_for(candidate).expect("front has shards");
        if covered.insert(shard) || (covered.len() == NODES && tenants.len() < CLIENTS as usize) {
            tenants.push(candidate);
            if tenants.len() == CLIENTS as usize {
                break;
            }
        }
    }
    let victim = front.shard_for(tenants[0]).expect("front has shards");
    println!(
        "tenants {tenants:?} cover nodes; node {victim} will be killed after {KILL_AFTER_REPLIES} replies"
    );

    // The assassin watches the front's reply counters and takes the
    // victim node down cold — sockets closed, engine gone.
    let victim_node = nodes.remove(victim as usize);
    let assassin = {
        let front = Arc::clone(&front);
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(300);
            while replies_total(&front) < KILL_AFTER_REPLIES && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            let at = replies_total(&front);
            // The node's durable state, as of the instant it dies: leg 3
            // restores a replacement from exactly this snapshot.
            let snapshot = victim_node.router.snapshot_keys();
            victim_node.server.shutdown();
            victim_node.router.shutdown();
            (at, snapshot)
        })
    };

    let rescued = Arc::new(AtomicU16::new(0));
    let clients: Vec<_> = tenants
        .iter()
        .enumerate()
        .map(|(i, &tenant)| {
            let ctx = Arc::clone(&ctx);
            let front = Arc::clone(&front);
            let rescued = Arc::clone(&rescued);
            std::thread::spawn(move || -> Result<(), String> {
                let mut rng = StdRng::seed_from_u64(1000 + i as u64);
                let (sk, pk, rlk) = keygen(&ctx, &mut rng);
                let home = front
                    .register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk))
                    .map_err(String::from)?;
                let mut client = Client::connect(front_addr).map_err(|e| e.to_string())?;

                // Pipeline everything, then collect replies in
                // completion order.
                let mut expected = HashMap::new();
                for f in 0..FRAMES_PER_CLIENT {
                    let (a, b) = (f % t, (f + i as u64) % t);
                    let enc = |v, rng: &mut StdRng| {
                        encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng)
                    };
                    let req = EvalRequest::binary(
                        tenant,
                        EvalOp::Add,
                        enc(a, &mut rng),
                        enc(b, &mut rng),
                    );
                    let corr = client
                        .send_frame(&wire::encode_request(&req))
                        .map_err(|e| e.to_string())?;
                    expected.insert(corr, (a + b) % t);
                }
                client.finish_sending().map_err(|e| e.to_string())?;

                // Exactly once: each corr appears a single time and
                // every reply is a correct Ok — through the kill.
                let mut seen = HashSet::new();
                for _ in 0..FRAMES_PER_CLIENT {
                    let (corr, reply) = client.recv_reply().map_err(|e| e.to_string())?;
                    if !seen.insert(corr) {
                        return Err(format!("duplicate reply for corr {corr}"));
                    }
                    let stamp = wire::peek_response_shard(&reply).map_err(String::from)?;
                    if usize::from(stamp) >= NODES {
                        let detail = match wire::decode_response(&ctx, &reply) {
                            Ok(wire::ResponseFrame::Err { message, .. }) => message,
                            _ => "not an error frame".into(),
                        };
                        return Err(format!(
                            "corr {corr} stamped unknown shard {stamp}: {detail}"
                        ));
                    }
                    if u16::from(stamp) != home {
                        // Served by the hedge/failover replica, not the
                        // tenant's home node.
                        rescued.fetch_add(1, Ordering::Relaxed);
                    }
                    let expect = expected
                        .get(&corr)
                        .copied()
                        .ok_or_else(|| format!("reply for unknown corr {corr}"))?;
                    match wire::decode_response(&ctx, &reply).map_err(String::from)? {
                        wire::ResponseFrame::Ok(resp) => {
                            let got = decrypt(&ctx, &sk, &resp.result).coeffs()[0];
                            if got != expect {
                                return Err(format!("corr {corr}: got {got}, want {expect}"));
                            }
                        }
                        wire::ResponseFrame::Err { message, .. } => {
                            return Err(format!("corr {corr} failed: {message}"));
                        }
                    }
                }
                Ok(())
            })
        })
        .collect();

    for (i, c) in clients.into_iter().enumerate() {
        c.join()
            .map_err(|_| format!("client {i} panicked"))?
            .map_err(|e| format!("client {i}: {e}"))?;
    }
    let (killed_at, victim_snapshot) = assassin.join().map_err(|_| "assassin panicked")?;
    println!("node {victim} killed after {killed_at} replies");
    if killed_at >= CLIENTS * FRAMES_PER_CLIENT {
        return Err("node was killed only after the workload finished — no fault tolerated".into());
    }

    // --- Verification pass. ------------------------------------------
    let stats = front.stats();
    let victim_stats = stats
        .remote
        .iter()
        .find(|r| r.id == victim)
        .ok_or("victim vanished from stats")?;
    if victim_stats.stats.healthy {
        return Err("circuit breaker never ejected the killed node".into());
    }
    if victim_stats.stats.ejections == 0 {
        return Err("no ejection recorded for the killed node".into());
    }
    for r in &stats.remote {
        if r.id != victim && !r.stats.healthy {
            return Err(format!("surviving node {} reported unhealthy", r.id));
        }
    }
    let h = stats.hedge;
    if h.fired + h.failovers == 0 {
        return Err("kill absorbed without any hedge or failover — suspicious".into());
    }
    let net = front_server.stats();
    let total = CLIENTS * FRAMES_PER_CLIENT;
    if net.frames_in != total || net.replies_out != total {
        return Err(format!(
            "front door saw {} frames in / {} replies out, want {total}/{total}",
            net.frames_in, net.replies_out
        ));
    }
    println!(
        "leg 2 OK: {total} frames exactly once through a node kill \
         ({} rescued by replica; hedges armed {} fired {} wins {}, failovers {})",
        rescued.load(Ordering::Relaxed),
        h.armed,
        h.fired,
        h.wins,
        h.failovers,
    );
    for r in &stats.remote {
        let s = &r.stats;
        println!(
            "  {} [{}]: healthy={} forwarded={} replies={} retries={} timeouts={} \
             ejections={} recoveries={}",
            r.name,
            r.endpoint,
            s.healthy,
            s.frames_forwarded,
            s.replies,
            s.retries,
            s.timeouts,
            s.ejections,
            s.recoveries,
        );
    }

    // --- Leg 3: restore from snapshot, anti-entropy re-admission. ----
    {
        // A replacement node rises from the victim's HEVR snapshot —
        // keys come from the checksummed blob, not from any client.
        let reborn = spawn_node(&ctx, NODES)?;
        let restored = reborn
            .router
            .restore_keys(&victim_snapshot)
            .map_err(String::from)?;
        if restored == 0 {
            return Err("victim snapshot restored zero tenants".into());
        }

        // The restored node serves a victim-homed tenant directly: the
        // client key seed reproduces client 0's keys exactly.
        let mut rng = StdRng::seed_from_u64(1000);
        let (sk, pk, _rlk) = keygen(&ctx, &mut rng);
        let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
        let victim_req = |rng: &mut StdRng| {
            wire::encode_request(&EvalRequest::binary(
                tenants[0],
                EvalOp::Add,
                enc(8, rng),
                enc(9, rng),
            ))
        };
        let mut check = Client::connect(reborn.addr).map_err(|e| e.to_string())?;
        let reply = check
            .call(&victim_req(&mut rng))
            .map_err(|e| e.to_string())?;
        match wire::decode_response(&ctx, &reply).map_err(String::from)? {
            wire::ResponseFrame::Ok(resp) => {
                let got = decrypt(&ctx, &sk, &resp.result).coeffs()[0];
                if got != 17 % t {
                    return Err(format!("restored node computed {got}, want {}", 17 % t));
                }
            }
            wire::ResponseFrame::Err { message, .. } => {
                return Err(format!(
                    "restored node cannot serve tenant {} from its snapshot: {message}",
                    tenants[0]
                ));
            }
        }

        // Point the front's existing RemoteShard at the replacement.
        // No re-attach, no key push from here: recovery must come from
        // the probe loop and anti-entropy alone.
        connectors[victim as usize].retarget(reborn.addr);
        let victim_snap = |front: &ShardRouter| {
            front
                .stats()
                .remote
                .into_iter()
                .find(|r| r.id == victim)
                .map(|r| r.stats)
        };
        let deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < deadline && !victim_snap(&front).is_some_and(|s| s.healthy) {
            std::thread::sleep(Duration::from_millis(20));
        }
        let s = victim_snap(&front).ok_or("victim vanished from stats")?;
        if !s.healthy {
            return Err("breaker never closed on the restored node".into());
        }
        if !s.catching_up {
            return Err(
                "restored node skipped the catch-up gate: it must serve as replica only \
                 until anti-entropy verifies its keys"
                    .into(),
            );
        }

        // Anti-entropy verifies every replica set and clears the flag
        // (retried: CI runs this leg under fault injection).
        let mut repushed = 0usize;
        let deadline = Instant::now() + Duration::from_secs(60);
        while Instant::now() < deadline {
            repushed += front.anti_entropy_sweep();
            if victim_snap(&front).is_some_and(|s| !s.catching_up) {
                break;
            }
            // Under fault injection a sweep's pushes can be dropped or
            // refused; give the probe loop room to re-close the breaker
            // before the next attempt instead of hammering it shut.
            std::thread::sleep(Duration::from_millis(200));
        }
        let s = victim_snap(&front).ok_or("victim vanished from stats")?;
        if s.catching_up {
            return Err("anti-entropy never caught the restored node up".into());
        }

        // Re-admitted as primary: a victim-homed request through the
        // front door comes back stamped with the victim's shard id.
        let mut fclient = Client::connect(front_addr).map_err(|e| e.to_string())?;
        let mut readmitted = false;
        for _ in 0..5 {
            let reply = fclient
                .call(&victim_req(&mut rng))
                .map_err(|e| e.to_string())?;
            match wire::decode_response(&ctx, &reply).map_err(String::from)? {
                wire::ResponseFrame::Ok(resp) => {
                    let got = decrypt(&ctx, &sk, &resp.result).coeffs()[0];
                    if got != 17 % t {
                        return Err(format!("re-homed request computed {got}, want {}", 17 % t));
                    }
                }
                wire::ResponseFrame::Err { message, .. } => {
                    return Err(format!("re-homed request failed: {message}"));
                }
            }
            // A hedge replica may win an occasional race; any one
            // victim-stamped reply proves primary re-admission.
            if u16::from(wire::peek_response_shard(&reply).map_err(String::from)?) == victim {
                readmitted = true;
                break;
            }
        }
        if !readmitted {
            return Err("tenant never re-homed to the restored node".into());
        }

        // Durability counters, straight off the front's HEVS scrape.
        let metrics = fclient
            .scrape_stats(wire::StatsKind::Metrics)
            .map_err(|e| e.to_string())?;
        println!(
            "leg 3 OK: {restored} tenants restored from snapshot, {repushed} keys re-pushed \
             by anti-entropy, node {victim} re-admitted as primary"
        );
        for family in [
            "hefv_failover_total",
            "hefv_keys_replicated_total",
            "hefv_keys_evicted_total",
            "hefv_snapshot_restore_total",
            "hefv_node_catching_up",
            "hefv_integrity_failures_total",
        ] {
            if !metrics.contains(family) {
                return Err(format!("HEVS scrape missing the {family} family"));
            }
            for line in metrics.lines().filter(|l| l.starts_with(family)) {
                println!("  {line}");
            }
        }
        reborn.server.shutdown();
        reborn.router.shutdown();
    }

    front_server.shutdown();
    front.shutdown();
    for nd in nodes {
        nd.server.shutdown();
        nd.router.shutdown();
    }
    println!(
        "cluster-smoke OK: exactly-once through kill, keys migrated before commit, \
         snapshot-restored node re-admitted by anti-entropy"
    );
    Ok(())
}
