//! Drive the cycle-level coprocessor simulator: execute a real encrypted
//! multiplication through it and print the timing/throughput summary the
//! paper reports.
//!
//! Run with: `cargo run --release --example coprocessor_sim`

use hefv::core::prelude::*;
use hefv::sim::coproc::Coprocessor;
use hefv::sim::power::PowerModel;
use hefv::sim::resources::{table4, utilization, ZCU102};
use hefv::sim::system::System;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), String> {
    println!("HEAT coprocessor simulator — paper parameter set\n");
    let ctx = FvContext::new(FvParams::hpca19())?;
    let mut rng = StdRng::seed_from_u64(1);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);

    // A real multiplication through the simulated coprocessor.
    let pa = Plaintext::new(vec![1, 1], 2, ctx.params().n); // 1 + x
    let ca = encrypt(&ctx, &pk, &pa, &mut rng);
    let cop = Coprocessor::default();
    let (prod, report) = cop.execute_mult(&ctx, &ca, &ca, &rlk);
    assert_eq!(decrypt(&ctx, &sk, &prod).coeffs()[..3], [1, 0, 1]);
    println!("executed (1+x)^2 on the simulated coprocessor: result verified\n");

    println!("instruction calls (Table II microcode):");
    let mut calls: Vec<_> = report.calls.iter().collect();
    calls.sort();
    for (name, count) in calls {
        println!("  {count:>3} x {name}");
    }
    println!(
        "\ninstruction cycles (FPGA @200 MHz): {}",
        report.instr_fpga_cycles
    );
    println!(
        "relin-key DMA                     : {:.0} us",
        report.rlk_dma_us
    );
    println!(
        "Mult total                        : {:.3} ms ({} Arm cycles; paper: 4.458 ms)",
        report.total_us / 1000.0,
        report.total_arm_cycles
    );

    let sys = System::default();
    println!("\nplatform (two coprocessors):");
    println!(
        "  Mult latency incl. transfers : {:.2} ms",
        sys.mult_latency_ms(&ctx)
    );
    println!(
        "  throughput                   : {:.0} Mult/s (paper: 400)",
        sys.mult_throughput_per_s(&ctx)
    );
    println!(
        "  SW/HW Add ratio              : {:.0}x (paper: 80x)",
        sys.add_sw_hw_ratio(&ctx)
    );

    let r = table4(2);
    let u = utilization(r, ZCU102);
    println!("\nresources (2 coprocessors + interface on ZCU102):");
    println!(
        "  LUT {} ({:.0}%)  Reg {} ({:.0}%)  BRAM {} ({:.0}%)  DSP {} ({:.0}%)",
        r.lut, u[0], r.reg, u[1], r.bram, u[2], r.dsp, u[3]
    );

    let p = PowerModel::default();
    println!(
        "\npower: static {:.1} W, dual-core dynamic {:.1} W, peak {:.1} W",
        p.static_w,
        p.dynamic_w(2),
        p.total_w(2)
    );
    println!("\nOK");
    Ok(())
}
