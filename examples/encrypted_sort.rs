//! Encrypted sorting — §III-A's "encrypted sorting" with a Batcher
//! comparator network on encrypted bits (t = 2, the paper's binary
//! plaintext configuration).
//!
//! Run with: `cargo run --release --example encrypted_sort`

use hefv::apps::sorting::{sort_bits, SortingNetwork};
use hefv::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), String> {
    println!("Encrypted sorting (4-input Batcher network, t = 2)\n");
    let ctx = FvContext::new(FvParams::hpca19())?;
    let mut rng = StdRng::seed_from_u64(16);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);

    let input = [1u64, 0, 1, 0];
    println!("client input bits: {input:?}");
    let bits: Vec<Ciphertext> = input
        .iter()
        .map(|&b| {
            encrypt(
                &ctx,
                &pk,
                &Plaintext::new(vec![b], 2, ctx.params().n),
                &mut rng,
            )
        })
        .collect();

    let net = SortingNetwork::batcher4();
    println!(
        "network: {} comparators in {} layers (multiplicative depth {})",
        net.layers.iter().map(|l| l.len()).sum::<usize>(),
        net.layers.len(),
        net.depth()
    );

    let t0 = Instant::now();
    let sorted = sort_bits(&ctx, &net, &bits, &rlk, Backend::default());
    println!("cloud-side sort: {:.2?} (5 ciphertext Mults)", t0.elapsed());

    let got: Vec<u64> = sorted
        .iter()
        .map(|c| decrypt(&ctx, &sk, c).coeffs()[0])
        .collect();
    println!("\ndecrypted sorted bits: {got:?}");
    let mut expect = input.to_vec();
    expect.sort_unstable();
    assert_eq!(got, expect);

    // Show the budget headroom after three levels.
    let r = measure(&ctx, &sk, &sorted[1]);
    println!(
        "noise budget remaining on a depth-3 wire: {:.0} bits",
        r.budget_bits
    );
    println!("OK");
    Ok(())
}
