//! Privacy-friendly smart-meter forecasting in the cloud — the paper's
//! §III-A motivating application, at full parameter size with 4096
//! households packed into SIMD slots.
//!
//! Run with: `cargo run --release --example smart_meter`

use hefv::apps::meter::{synthetic_readings, Forecaster};
use hefv::core::prelude::*;
use hefv::sim::system::System;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), String> {
    println!("Smart-meter forecasting on encrypted data (4096 households)\n");
    let ctx = FvContext::new(FvParams::hpca19_batching())?;
    let enc = BatchEncoder::new(ctx.params().t, ctx.params().n)?;
    let mut rng = StdRng::seed_from_u64(4);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);

    // Households: three epochs of synthetic consumption readings
    // (stand-ins for the paper's non-public utility traces).
    let readings = synthetic_readings(&mut rng, enc.slots());
    let mut epoch = |i: usize| {
        let vals: Vec<u64> = readings.iter().map(|r| r[i]).collect();
        encrypt(&ctx, &pk, &enc.encode(&vals), &mut rng)
    };
    let cts = [epoch(0), epoch(1), epoch(2)];
    println!("encrypted 3 epochs x {} households", enc.slots());

    // Cloud-side forecast (never sees a plaintext).
    let f = Forecaster::default();
    let t0 = Instant::now();
    let result = f.forecast(&ctx, &enc, &cts, &rlk, Backend::default());
    let sw_time = t0.elapsed();
    println!("cloud forecast (software)      : {sw_time:.2?}");

    // What the paper's coprocessor would take for the same work
    // (1 Mult + 4 plaintext muls ≈ dominated by the Mult).
    let sys = System::default();
    let hw_ms = sys.mult_latency_ms(&ctx);
    println!("projected on 1 coprocessor     : {hw_ms:.2} ms (Mult incl. transfers)");

    // Verify a sample of households.
    let slots = enc.decode(&decrypt(&ctx, &sk, &result));
    let mut checked = 0;
    for h in (0..enc.slots()).step_by(997) {
        let expect = f.forecast_plain(ctx.params().t, readings[h]);
        assert_eq!(slots[h], expect, "household {h}");
        checked += 1;
    }
    println!("\nverified {checked} sampled households against the plaintext reference");
    println!(
        "household 0: readings {:?} -> forecast {}",
        readings[0], slots[0]
    );
    println!("OK");
    Ok(())
}
