//! Encrypted table search (PIR by equality) — §III-A's "encrypted search
//! in a table of 2^16 entries", with the table packed into SIMD slots and
//! the query key encrypted bit-by-bit.
//!
//! Run with: `cargo run --release --example encrypted_search`

use hefv::apps::search::{encrypt_query, extract, search, Table};
use hefv::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), String> {
    println!("Encrypted database search\n");
    let ctx = FvContext::new(FvParams::hpca19_batching())?;
    let enc = BatchEncoder::new(ctx.params().t, ctx.params().n)?;
    let mut rng = StdRng::seed_from_u64(8);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);

    // Server's table: 4096 records, 8-bit keys (depth 1 + log2(8) = 4,
    // the paper's exact depth budget).
    let key_bits = 8;
    let records = 256usize;
    let keys: Vec<u64> = (0..records as u64).collect();
    let values: Vec<u64> = keys.iter().map(|k| 1000 + k * 7).collect();
    let table = Table::new(keys, values, key_bits);
    println!("server table: {records} records, {key_bits}-bit keys");

    // Client encrypts the query key.
    let wanted = 142u64;
    let q = encrypt_query(&ctx, &enc, &pk, wanted, key_bits, &mut rng);
    println!("client query: key {wanted} (encrypted as {key_bits} bit-ciphertexts)");

    // Server searches without learning the key.
    let t0 = Instant::now();
    let masked = search(&ctx, &enc, &table, &q, &rlk, Backend::default());
    println!(
        "server-side search: {:.2?} ({} ciphertext Mults)",
        t0.elapsed(),
        key_bits + key_bits - 1
    );

    // Client decrypts the masked value column.
    let pt = decrypt(&ctx, &sk, &masked);
    match extract(&enc, &pt, records) {
        Some((slot, value)) => {
            println!("\nfound: slot {slot}, value {value}");
            assert_eq!(slot as u64, wanted);
            assert_eq!(value, 1000 + wanted * 7);
        }
        None => panic!("key should be present"),
    }
    println!("OK");
    Ok(())
}
