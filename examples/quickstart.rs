//! Quickstart: encrypt, compute on ciphertext, decrypt — with the paper's
//! full parameter set (n = 4096, 180-bit q, depth 4).
//!
//! Run with: `cargo run --release --example quickstart`

use hefv::core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), String> {
    println!("HEAT-rs quickstart — FV over Z[x]/(x^4096 + 1), 180-bit q\n");

    let t0 = Instant::now();
    let ctx = FvContext::new(FvParams::hpca19_with_t(1 << 12))?;
    println!(
        "context built in {:.1?} (q = {} bits, Q = {} bits)",
        t0.elapsed(),
        ctx.params().log_q(),
        ctx.params().log_big_q()
    );

    let mut rng = StdRng::seed_from_u64(2019);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);

    // Encode two integers with the signed binary encoder.
    let encoder = IntegerEncoder::new(ctx.params().t, ctx.params().n);
    let a = 123;
    let b = -45;
    let ca = encrypt(&ctx, &pk, &encoder.encode(a), &mut rng);
    let cb = encrypt(&ctx, &pk, &encoder.encode(b), &mut rng);
    println!(
        "\nencrypted a = {a}, b = {b}  ({} KiB per ciphertext)",
        ca.transfer_bytes() / 1024
    );

    // a + b and a · b on ciphertext.
    let t1 = Instant::now();
    let sum = add(&ctx, &ca, &cb);
    println!("homomorphic Add   : {:>10.2?}", t1.elapsed());

    let t2 = Instant::now();
    let prod = mul(&ctx, &ca, &cb, &rlk, Backend::default());
    println!(
        "homomorphic Mult  : {:>10.2?}  (HPS fixed-point backend)",
        t2.elapsed()
    );

    // (a·b) + a
    let combo = add(&ctx, &prod, &ca);

    println!(
        "\ndecrypt(a + b)     = {}",
        encoder.decode(&decrypt(&ctx, &sk, &sum))
    );
    println!(
        "decrypt(a · b)     = {}",
        encoder.decode(&decrypt(&ctx, &sk, &prod))
    );
    println!(
        "decrypt(a·b + a)   = {}",
        encoder.decode(&decrypt(&ctx, &sk, &combo))
    );
    assert_eq!(encoder.decode(&decrypt(&ctx, &sk, &sum)), a + b);
    assert_eq!(encoder.decode(&decrypt(&ctx, &sk, &prod)), a * b);
    assert_eq!(encoder.decode(&decrypt(&ctx, &sk, &combo)), a * b + a);

    // Noise budget after one multiplication.
    let fresh = measure(&ctx, &sk, &ca);
    let used = measure(&ctx, &sk, &prod);
    println!(
        "\nnoise budget: fresh {:.0} bits -> after Mult {:.0} bits",
        fresh.budget_bits, used.budget_bits
    );
    println!("\nOK — all results decrypted correctly.");
    Ok(())
}
