//! Negacyclic Number Theoretic Transform over `Z_q[x]/(x^n + 1)`.
//!
//! Implements the iterative NTT of the paper's Alg. 1 in its merged
//! negacyclic form (twiddles are powers of a primitive `2n`-th root `ψ`, so
//! no separate pre-/post-multiplication by `ψ^i` is needed). Twiddle factors
//! are precomputed and stored — the paper stores them in on-chip ROM
//! precisely to avoid the 20% pipeline-bubble penalty of computing them on
//! the fly (§V-A4).
//!
//! * [`NttTable::forward`]: Cooley-Tukey decimation-in-time butterflies;
//!   natural-order input, bit-reversed output.
//! * [`NttTable::inverse`]: Gentleman-Sande butterflies; bit-reversed input,
//!   natural-order output, with the final scaling by `n^{-1}` folded in.
//!
//! # Harvey lazy reduction
//!
//! The hot transforms use David Harvey's lazy-reduction butterflies
//! ("Faster arithmetic for number-theoretic transforms", J. Symb. Comp.
//! 2014) instead of strictly reduced arithmetic. The range invariants are:
//!
//! * **Forward (CT)**: operands enter a butterfly in `[0, 4q)`. The upper
//!   operand is folded once into `[0, 2q)`, the twiddle product uses
//!   [`crate::zq::ShoupMul::mul_lazy`] (result in `[0, 2q)` for *any*
//!   64-bit input), and the two outputs `u + v` and `u + 2q − v` stay in
//!   `[0, 4q)`. One final pass reduces everything to `[0, q)`.
//! * **Inverse (GS)**: values stay in `[0, 2q)` across all stages — the
//!   sum `u + v < 4q` is folded once, and the lazy twiddle product of
//!   `u + 2q − v < 4q` again lands in `[0, 2q)`. The closing `n^{-1}`
//!   scaling pass uses the strict Shoup product, which both scales and
//!   performs the single final reduction to `[0, q)`.
//!
//! Soundness needs `4q ≤ 2^64` so the relaxed values never wrap; every
//! [`Modulus`] enforces `q < 2^62`, which is exactly that bound. Because
//! each lazy intermediate is congruent mod `q` to its strictly reduced
//! counterpart and the final pass reduces exactly, the lazy transforms are
//! **bit-identical** to the strict reference ([`NttTable::forward_strict`],
//! [`NttTable::inverse_strict`]) — a property-test suite asserts this.
//!
//! Pointwise multiplication between two forward transforms followed by the
//! inverse transform computes negacyclic convolution, which the test suite
//! checks against a schoolbook reference.

use crate::primes::primitive_2n_root;
use crate::zq::{Modulus, ShoupMul};

/// Bit-reverses the low `log2(n)` bits of `i`.
#[inline]
pub fn bit_reverse(i: usize, log_n: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - log_n)
}

/// Applies the bit-reversal permutation in place.
///
/// This is the paper's `BitReverse()` step, realized in hardware by the
/// *Memory Rearrange* instruction (Table II).
///
/// # Panics
///
/// Panics if `a.len()` is not a power of two.
pub fn bit_reverse_permute<T>(a: &mut [T]) {
    let n = a.len();
    assert!(n.is_power_of_two(), "length must be a power of two");
    let log_n = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, log_n);
        if i < j {
            a.swap(i, j);
        }
    }
}

/// Precomputed index permutation realizing the Galois automorphism
/// `σ_g : a(x) ↦ a(x^g)` directly on NTT-domain (evaluation) vectors.
///
/// The negacyclic forward transform evaluates `a` at the odd powers of a
/// primitive `2n`-th root `ψ`, storing `a(ψ^{2·brev(i)+1})` at index `i`
/// (Cooley-Tukey bit-reversed output — see [`NttTable::forward`]). Since
/// `σ_g(a)(ψ^e) = a(ψ^{g·e mod 2n})` and odd `g` permutes the odd
/// exponents, the automorphism acts on an NTT vector as a **pure index
/// permutation with no negations**: the sign flips of the coefficient-domain
/// automorphism (`x^n = −1`) are absorbed by the evaluation points.
///
/// The table depends only on `(n, g)` — *not* on the prime — because every
/// [`NttTable`] uses the same index↦exponent map `i ↦ 2·brev(i)+1`
/// regardless of which `ψ` the modulus provides. One table therefore serves
/// all residue rows of an RNS polynomial, which is what makes hoisted
/// key-switching's per-rotation work a cheap gather.
///
/// # Example
///
/// ```
/// use hefv_math::{ntt::{GaloisPermutation, NttTable}, primes::ntt_prime, zq::Modulus};
/// let n = 16;
/// let q = ntt_prime(30, n, 0).unwrap();
/// let t = NttTable::new(Modulus::new(q), n).unwrap();
/// let mut a: Vec<u64> = (0..n as u64).collect();
/// // Reference: automorphism in the coefficient domain, then transform.
/// let g = 3;
/// let mut sigma_a = vec![0u64; n];
/// for (i, &c) in a.iter().enumerate() {
///     let pos = (i * g) % (2 * n);
///     if pos < n { sigma_a[pos] = c; } else { sigma_a[pos - n] = Modulus::new(q).neg(c); }
/// }
/// t.forward(&mut a);
/// t.forward(&mut sigma_a);
/// // NTT-domain: the same automorphism is just a permutation.
/// let perm = GaloisPermutation::new(n, g);
/// let mut out = vec![0u64; n];
/// perm.apply(&a, &mut out);
/// assert_eq!(out, sigma_a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaloisPermutation {
    g: usize,
    n: usize,
    /// `out[i] = in[perm[i]]` for every residue row.
    perm: Vec<u32>,
}

impl GaloisPermutation {
    /// Builds the permutation for exponent `g` (odd, `1 ≤ g < 2n`) over
    /// ring degree `n` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or `g` is even / out of range.
    pub fn new(n: usize, g: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2, "n must be a power of two");
        assert!(g % 2 == 1 && g < 2 * n, "invalid Galois exponent {g}");
        let log_n = n.trailing_zeros();
        let mask = 2 * n - 1;
        let perm = (0..n)
            .map(|i| {
                // Slot i holds the evaluation at exponent 2·brev(i)+1;
                // σ_g reads the evaluation at g times that exponent.
                let e = (g * (2 * bit_reverse(i, log_n) + 1)) & mask;
                bit_reverse((e - 1) / 2, log_n) as u32
            })
            .collect();
        GaloisPermutation { g, n, perm }
    }

    /// The automorphism exponent.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Ring degree.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The gather index: output slot `i` reads input slot `index(i)`.
    #[inline(always)]
    pub fn index(&self, i: usize) -> usize {
        self.perm[i] as usize
    }

    /// The raw gather table (`out[i] = in[table[i]]`).
    pub fn table(&self) -> &[u32] {
        &self.perm
    }

    /// Applies the permutation to one NTT-domain residue row.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ from `n`.
    pub fn apply(&self, src: &[u64], dst: &mut [u64]) {
        assert_eq!(src.len(), self.n, "row length mismatch");
        assert_eq!(dst.len(), self.n, "row length mismatch");
        for (d, &p) in dst.iter_mut().zip(&self.perm) {
            *d = src[p as usize];
        }
    }
}

/// Precomputed twiddle tables for a fixed `(q, n)` pair.
///
/// # Example
///
/// ```
/// use hefv_math::{ntt::NttTable, primes::ntt_prime, zq::Modulus};
/// let n = 64;
/// let q = ntt_prime(30, n, 0).unwrap();
/// let t = NttTable::new(Modulus::new(q), n).unwrap();
/// // (x + 1)^2 = x^2 + 2x + 1 in Z_q[x]/(x^64 + 1)
/// let mut a = vec![0u64; n]; a[0] = 1; a[1] = 1;
/// let mut b = a.clone();
/// t.forward(&mut a);
/// t.forward(&mut b);
/// let mut c: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| t.modulus().mul(x, y)).collect();
/// t.inverse(&mut c);
/// assert_eq!(&c[..3], &[1, 2, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    modulus: Modulus,
    n: usize,
    log_n: u32,
    /// ψ^brev(i) with Shoup constants, for the CT forward pass.
    psi_brev: Vec<ShoupMul>,
    /// ψ^{-brev(i)} with Shoup constants, for the GS inverse pass.
    inv_psi_brev: Vec<ShoupMul>,
    /// n^{-1} mod q.
    n_inv: ShoupMul,
    /// ψ, kept for inspection / the simulator's ROM model.
    psi: u64,
}

impl NttTable {
    /// Builds twiddle tables for ring degree `n` (a power of two) over
    /// prime modulus `q ≡ 1 (mod 2n)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` does not support a primitive `2n`-th root.
    pub fn new(modulus: Modulus, n: usize) -> Result<Self, String> {
        assert!(
            n.is_power_of_two() && n >= 2,
            "n must be a power of two >= 2"
        );
        let q = modulus.value();
        let psi = primitive_2n_root(q, n)?;
        let psi_inv = modulus.inv(psi);
        let log_n = n.trailing_zeros();

        let mut psi_pows = vec![1u64; n];
        let mut inv_pows = vec![1u64; n];
        for i in 1..n {
            psi_pows[i] = modulus.mul(psi_pows[i - 1], psi);
            inv_pows[i] = modulus.mul(inv_pows[i - 1], psi_inv);
        }
        let psi_brev = (0..n)
            .map(|i| ShoupMul::new(psi_pows[bit_reverse(i, log_n)], q))
            .collect();
        let inv_psi_brev = (0..n)
            .map(|i| ShoupMul::new(inv_pows[bit_reverse(i, log_n)], q))
            .collect();
        let n_inv = ShoupMul::new(modulus.inv(n as u64), q);
        Ok(NttTable {
            modulus,
            n,
            log_n,
            psi_brev,
            inv_psi_brev,
            n_inv,
            psi,
        })
    }

    /// The modulus this table transforms over.
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// Ring degree `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `log2(n)` — the number of butterfly stages.
    pub fn stages(&self) -> u32 {
        self.log_n
    }

    /// The primitive `2n`-th root of unity used.
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// Twiddle `ψ^brev(i)` (the ROM contents of the paper's NTT core).
    pub fn twiddle(&self, i: usize) -> u64 {
        self.psi_brev[i].w
    }

    /// Inverse twiddle `ψ^{-brev(i)}` (the inverse-NTT ROM contents).
    pub fn inv_twiddle(&self, i: usize) -> u64 {
        self.inv_psi_brev[i].w
    }

    /// `n^{-1} mod q`, applied by the inverse transform's scaling pass.
    pub fn n_inv(&self) -> u64 {
        self.n_inv.w
    }

    /// The forward twiddle ROM with Shoup constants (for the SIMD lanes).
    #[inline]
    pub(crate) fn psi_brev_table(&self) -> &[ShoupMul] {
        &self.psi_brev
    }

    /// The inverse twiddle ROM with Shoup constants (for the SIMD lanes).
    #[inline]
    pub(crate) fn inv_psi_brev_table(&self) -> &[ShoupMul] {
        &self.inv_psi_brev
    }

    /// `n^{-1}` with its Shoup constant (for the SIMD scaling pass).
    #[inline]
    pub(crate) fn n_inv_shoup(&self) -> ShoupMul {
        self.n_inv
    }

    /// Forward negacyclic NTT: natural-order input, bit-reversed output.
    ///
    /// Routes through the process-wide [`crate::dispatch`] kernel table
    /// (AVX2 lanes when the CPU has them, the scalar Harvey butterflies
    /// otherwise). Every backend produces the same exactly reduced
    /// `[0, q)` output, so the choice is unobservable apart from speed;
    /// output is bit-identical to [`NttTable::forward_strict`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        crate::dispatch::kernels().ntt_forward(self, a);
    }

    /// Forward Harvey NTT, portable scalar implementation — the
    /// dispatch table's fallback entry (coefficients relaxed to
    /// `[0, 4q)` between stages, one exact reduction pass at the end —
    /// see the module docs for the invariants).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_scalar(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        let q = self.modulus.value();
        let two_q = q << 1;
        let mut t = self.n;
        let mut m = 1usize;
        while m < self.n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_brev[m + i];
                for j in j1..j1 + t {
                    // Inputs < 4q. Fold u once to < 2q; the lazy twiddle
                    // product is < 2q for any 64-bit v; outputs < 4q.
                    let mut u = a[j];
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = s.mul_lazy(a[j + t], q);
                    a[j] = u + v;
                    a[j + t] = u + two_q - v;
                }
            }
            m <<= 1;
        }
        for x in a.iter_mut() {
            let mut r = *x;
            if r >= two_q {
                r -= two_q;
            }
            if r >= q {
                r -= q;
            }
            *x = r;
        }
    }

    /// Strictly reduced forward NTT — the pre-lazy reference path, kept
    /// for equivalence tests and before/after benchmarking.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_strict(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        let q = self.modulus.value();
        let mut t = self.n;
        let mut m = 1usize;
        while m < self.n {
            t >>= 1;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_brev[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = s.mul(a[j + t], q);
                    a[j] = self.modulus.add(u, v);
                    a[j + t] = self.modulus.sub(u, v);
                }
            }
            m <<= 1;
        }
    }

    /// Inverse negacyclic NTT: bit-reversed input, natural-order output,
    /// including the `n^{-1}` scaling.
    ///
    /// Routes through the process-wide [`crate::dispatch`] kernel table,
    /// like [`NttTable::forward`]. Output is bit-identical to
    /// [`NttTable::inverse_strict`].
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        crate::dispatch::kernels().ntt_inverse(self, a);
    }

    /// Inverse Harvey NTT, portable scalar implementation — the
    /// dispatch table's fallback entry (coefficients stay in `[0, 2q)`
    /// across stages; the strict `n^{-1}` Shoup product doubles as the
    /// single final reduction).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_scalar(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        let q = self.modulus.value();
        let two_q = q << 1;
        let mut t = 1usize;
        let mut m = self.n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let s = self.inv_psi_brev[h + i];
                for j in j1..j1 + t {
                    // Inputs < 2q: the folded sum stays < 2q and the lazy
                    // product of u + 2q − v (< 4q) lands < 2q again.
                    let u = a[j];
                    let v = a[j + t];
                    let mut sum = u + v;
                    if sum >= two_q {
                        sum -= two_q;
                    }
                    a[j] = sum;
                    a[j + t] = s.mul_lazy(u + two_q - v, q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            *x = self.n_inv.mul(*x, q);
        }
    }

    /// Strictly reduced inverse NTT — the pre-lazy reference path, kept
    /// for equivalence tests and before/after benchmarking.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_strict(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "polynomial length mismatch");
        let q = self.modulus.value();
        let mut t = 1usize;
        let mut m = self.n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0usize;
            for i in 0..h {
                let s = self.inv_psi_brev[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = self.modulus.add(u, v);
                    a[j + t] = s.mul(self.modulus.sub(u, v), q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        for x in a.iter_mut() {
            *x = self.n_inv.mul(*x, q);
        }
    }

    /// Negacyclic convolution `a * b mod (x^n + 1, q)` via NTT.
    ///
    /// A convenience wrapper used by tests and the software FV backend.
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ from `n`.
    pub fn negacyclic_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        assert_eq!(a.len(), self.n);
        assert_eq!(b.len(), self.n);
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = self.modulus.mul(*x, *y);
        }
        self.inverse(&mut fa);
        fa
    }
}

/// Schoolbook negacyclic multiplication; the O(n²) reference oracle.
pub fn negacyclic_mul_schoolbook(a: &[u64], b: &[u64], modulus: &Modulus) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            let prod = modulus.mul(ai, bj);
            let k = i + j;
            if k < n {
                out[k] = modulus.add(out[k], prod);
            } else {
                out[k - n] = modulus.sub(out[k - n], prod); // x^n = -1
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::ntt_prime;

    fn table(n: usize) -> NttTable {
        let q = ntt_prime(30, n, 0).unwrap();
        NttTable::new(Modulus::new(q), n).unwrap()
    }

    #[test]
    fn bit_reverse_basics() {
        assert_eq!(bit_reverse(0, 3), 0);
        assert_eq!(bit_reverse(1, 3), 4);
        assert_eq!(bit_reverse(3, 3), 6);
        assert_eq!(bit_reverse(7, 3), 7);
    }

    #[test]
    fn bit_reverse_permute_is_involution() {
        let mut v: Vec<usize> = (0..64).collect();
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, orig);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [4usize, 16, 256, 4096] {
            let t = table(n);
            let q = t.modulus().value();
            let mut a: Vec<u64> = (0..n as u64).map(|i| (i * 0x9E3779B9 + 7) % q).collect();
            let orig = a.clone();
            t.forward(&mut a);
            assert_ne!(a, orig, "transform must change a generic vector");
            t.inverse(&mut a);
            assert_eq!(a, orig, "n={n}");
        }
    }

    #[test]
    fn transform_of_constant() {
        // NTT of the constant polynomial c is c at every evaluation point.
        let n = 16;
        let t = table(n);
        let mut a = vec![42u64; 1]
            .into_iter()
            .chain(vec![0; n - 1])
            .collect::<Vec<_>>();
        t.forward(&mut a);
        assert!(a.iter().all(|&x| x == 42));
    }

    #[test]
    fn linearity() {
        let n = 64;
        let t = table(n);
        let q = t.modulus();
        let a: Vec<u64> = (0..n as u64).map(|i| i * i % q.value()).collect();
        let b: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 5) % q.value()).collect();
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.add(x, y)).collect();
        let (mut fa, mut fb, mut fs) = (a.clone(), b.clone(), sum.clone());
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        for i in 0..n {
            assert_eq!(fs[i], q.add(fa[i], fb[i]));
        }
    }

    #[test]
    fn convolution_matches_schoolbook() {
        for n in [8usize, 32, 128] {
            let t = table(n);
            let q = t.modulus().value();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 7919 + 13) % q).collect();
            let b: Vec<u64> = (0..n as u64).map(|i| (i * 104729 + 3) % q).collect();
            let fast = t.negacyclic_mul(&a, &b);
            let slow = negacyclic_mul_schoolbook(&a, &b, t.modulus());
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // x^(n-1) * x = x^n = -1
        let n = 8;
        let t = table(n);
        let q = t.modulus().value();
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        let c = t.negacyclic_mul(&a, &b);
        assert_eq!(c[0], q - 1, "constant term is -1");
        assert!(c[1..].iter().all(|&x| x == 0));
    }

    #[test]
    fn twiddles_are_roots_of_unity() {
        let n = 256;
        let t = table(n);
        let m = t.modulus();
        assert_eq!(m.pow(t.psi(), 2 * n as u64), 1);
        assert_eq!(m.pow(t.psi(), n as u64), m.value() - 1);
        // Table entry 1 is psi^brev(1) = psi^(n/2), a primitive 4th root.
        let w = t.twiddle(1);
        assert_eq!(m.mul(w, w), m.value() - 1);
    }

    #[test]
    fn paper_sized_transform() {
        // The paper's n = 4096 with a 30-bit prime; full roundtrip plus a
        // spot convolution against schoolbook on sparse inputs.
        let n = 4096;
        let t = table(n);
        let q = t.modulus().value();
        let mut a = vec![0u64; n];
        let mut b = vec![0u64; n];
        a[0] = 3;
        a[2048] = q - 2;
        b[1] = 5;
        b[4095] = 7;
        let fast = t.negacyclic_mul(&a, &b);
        let slow = negacyclic_mul_schoolbook(&a, &b, t.modulus());
        assert_eq!(fast, slow);
    }

    #[test]
    fn lazy_matches_strict_both_directions() {
        for n in [4usize, 64, 1024] {
            let t = table(n);
            let q = t.modulus().value();
            let a: Vec<u64> = (0..n as u64).map(|i| (i * 0x9E3779B9 + 11) % q).collect();
            let (mut lazy_f, mut strict_f) = (a.clone(), a.clone());
            t.forward(&mut lazy_f);
            t.forward_strict(&mut strict_f);
            assert_eq!(lazy_f, strict_f, "forward n={n}");
            let (mut lazy_i, mut strict_i) = (lazy_f.clone(), lazy_f);
            t.inverse(&mut lazy_i);
            t.inverse_strict(&mut strict_i);
            assert_eq!(lazy_i, strict_i, "inverse n={n}");
            assert_eq!(lazy_i, a, "roundtrip n={n}");
        }
    }

    #[test]
    fn lazy_matches_strict_near_62_bit_bound() {
        // The 4q ≤ 2^64 invariant is tightest for the largest admissible
        // moduli; exercise a 61-bit NTT prime with extremal coefficients.
        let n = 64;
        let q = ntt_prime(61, n, 0).unwrap();
        let t = NttTable::new(Modulus::new(q), n).unwrap();
        let mut a: Vec<u64> = (0..n as u64).map(|i| (q - 1).wrapping_sub(i) % q).collect();
        a[0] = q - 1;
        let mut strict = a.clone();
        t.forward(&mut a);
        t.forward_strict(&mut strict);
        assert_eq!(a, strict);
        t.inverse(&mut a);
        t.inverse_strict(&mut strict);
        assert_eq!(a, strict);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn forward_rejects_wrong_length() {
        let t = table(16);
        let mut a = vec![0u64; 8];
        t.forward(&mut a);
    }

    /// Coefficient-domain automorphism reference: `i·g mod 2n` with a sign
    /// flip past `n`.
    fn automorphism_coeff(a: &[u64], g: usize, m: &Modulus) -> Vec<u64> {
        let n = a.len();
        let mut out = vec![0u64; n];
        for (i, &c) in a.iter().enumerate() {
            let pos = (i * g) % (2 * n);
            if pos < n {
                out[pos] = c;
            } else {
                out[pos - n] = m.neg(c);
            }
        }
        out
    }

    #[test]
    fn galois_permutation_matches_coefficient_automorphism() {
        // For several (n, g, prime) combinations: permuting the forward
        // transform equals transforming the coefficient-domain automorphism.
        for n in [4usize, 16, 64, 256] {
            for offset in [0, 1] {
                let q = ntt_prime(30, n, offset).unwrap();
                let t = NttTable::new(Modulus::new(q), n).unwrap();
                for g in [1usize, 3, 5, n - 1, n + 1, 2 * n - 1] {
                    if g % 2 == 0 {
                        continue;
                    }
                    let a: Vec<u64> = (0..n as u64).map(|i| (i * 7919 + 31) % q).collect();
                    let mut via_coeff = automorphism_coeff(&a, g, t.modulus());
                    t.forward(&mut via_coeff);
                    let mut fa = a.clone();
                    t.forward(&mut fa);
                    let perm = GaloisPermutation::new(n, g);
                    let mut via_perm = vec![0u64; n];
                    perm.apply(&fa, &mut via_perm);
                    assert_eq!(via_perm, via_coeff, "n={n} g={g} q={q}");
                }
            }
        }
    }

    #[test]
    fn galois_permutation_is_prime_independent_and_bijective() {
        let n = 64;
        let perm = GaloisPermutation::new(n, 3);
        assert_eq!(perm.g(), 3);
        assert_eq!(perm.n(), n);
        let mut seen = vec![false; n];
        for i in 0..n {
            let j = perm.index(i);
            assert!(!seen[j], "index {j} hit twice");
            seen[j] = true;
        }
        // Identity exponent produces the identity permutation.
        let id = GaloisPermutation::new(n, 1);
        assert!((0..n).all(|i| id.index(i) == i));
    }

    #[test]
    #[should_panic(expected = "invalid Galois exponent")]
    fn galois_permutation_rejects_even_exponent() {
        let _ = GaloisPermutation::new(16, 4);
    }
}
