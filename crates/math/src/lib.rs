//! # hefv-math
//!
//! Arithmetic substrate for the HEAT-rs reproduction of the HPCA 2019 paper
//! *"FPGA-Based High-Performance Parallel Architecture for Homomorphic
//! Computing on Encrypted Data"* (Sinha Roy et al.).
//!
//! This crate implements, in pure Rust, every arithmetic building block the
//! paper's FPGA datapath implements in Verilog:
//!
//! * [`zq`] — arithmetic modulo 30-bit NTT-friendly primes, including both a
//!   Barrett-style reduction and the paper's §V-A4 *sliding-window* reduction.
//! * [`primes`] — generation of the RNS bases (`q_i ≡ 1 mod 2n`).
//! * [`bigint`] — arbitrary-precision integers used by the *traditional CRT*
//!   datapath (Fig. 5 / Fig. 8) and as the exactness oracle for HPS.
//! * [`ntt`] — the negacyclic Number Theoretic Transform with precomputed
//!   twiddle tables (the paper stores twiddles in on-chip ROM).
//! * [`poly`] — residue polynomials and coefficient-wise operations.
//! * [`rns`] — RNS contexts: exact CRT reconstruction, traditional and HPS
//!   base extension (`Lift q→Q`), traditional and HPS scaling (`Scale Q→q`).
//! * [`fixed`] — the fixed-point reciprocal arithmetic the paper substitutes
//!   for HPS's floating-point divisions (89-bit fractions).
//!
//! # Example
//!
//! ```
//! use hefv_math::{ntt::NttTable, primes::ntt_prime, zq::Modulus};
//!
//! let q = ntt_prime(30, 1 << 8, 0).expect("prime exists");
//! let table = NttTable::new(Modulus::new(q), 1 << 8).expect("NTT-friendly");
//! let mut a = vec![0u64; 256];
//! a[1] = 1; // the polynomial x
//! let orig = a.clone();
//! table.forward(&mut a);
//! table.inverse(&mut a);
//! assert_eq!(a, orig);
//! ```

pub mod bigint;
pub mod fixed;
pub mod ntt;
pub mod poly;
pub mod primes;
pub mod rns;
pub mod zq;

pub use bigint::UBig;
pub use ntt::NttTable;
pub use poly::ResiduePoly;
pub use rns::{RnsBasis, RnsContext};
pub use zq::Modulus;
