//! # hefv-math
//!
//! Arithmetic substrate for the HEAT-rs reproduction of the HPCA 2019 paper
//! *"FPGA-Based High-Performance Parallel Architecture for Homomorphic
//! Computing on Encrypted Data"* (Sinha Roy et al.).
//!
//! This crate implements, in pure Rust, every arithmetic building block the
//! paper's FPGA datapath implements in Verilog:
//!
//! * [`zq`] — arithmetic modulo 30-bit NTT-friendly primes, including both a
//!   Barrett-style reduction and the paper's §V-A4 *sliding-window* reduction.
//! * [`primes`] — generation of the RNS bases (`q_i ≡ 1 mod 2n`).
//! * [`bigint`] — arbitrary-precision integers used by the *traditional CRT*
//!   datapath (Fig. 5 / Fig. 8) and as the exactness oracle for HPS.
//! * [`ntt`] — the negacyclic Number Theoretic Transform with precomputed
//!   twiddle tables (the paper stores twiddles in on-chip ROM).
//! * [`poly`] — residue polynomials and coefficient-wise operations.
//! * [`rns`] — RNS contexts: exact CRT reconstruction, traditional and HPS
//!   base extension (`Lift q→Q`), traditional and HPS scaling (`Scale Q→q`).
//! * [`fixed`] — the fixed-point reciprocal arithmetic the paper substitutes
//!   for HPS's floating-point divisions (89-bit fractions).
//! * [`dispatch`] — the runtime kernel seam: the NTT butterflies, the
//!   pointwise products and the hoisted key-switch sum-of-products all
//!   route through a per-process function table that picks AVX2 lane
//!   implementations when the CPU has them (scalar fallback otherwise,
//!   `HEFV_FORCE_SCALAR` / `HEFV_KERNEL` to override).
//!
//! # The kernel dispatch seam
//!
//! [`dispatch::kernels`] resolves once per process, in order: an explicit
//! `HEFV_KERNEL=scalar|avx2` request, then `HEFV_FORCE_SCALAR`, then
//! `is_x86_feature_detected!("avx2")`. Backend choice is unobservable
//! except in speed: every dispatched kernel ends with an exact reduction
//! to the canonical `[0, q)` representative, and since that representative
//! is unique, any backend that computes congruent intermediates within its
//! proven lane ranges produces **bit-identical** output. The AVX2 lanes
//! (in the crate-private `simd` module) come in two widths — a narrow path
//! for `q < 2^30` whose relaxed `[0, 4q)` values fit 32-bit `pmuludq`
//! operands (the truncated Shoup constant `⌊w·2^32/q⌋` is just the high
//! half of the stored 64-bit one, so no extra twiddle storage), and a wide
//! path for any `q < 2^62` that evaluates the exact scalar formulas with
//! 4×64-bit lanes. `tests/simd_equivalence.rs` property-tests bit-identity
//! across both widths, including `[0, 4q)` extremes near `q = 2^62`.
//!
//! # Lazy-reduction range invariants
//!
//! The NTT hot path uses Harvey's lazy reduction: butterflies operate on
//! *relaxed* residues instead of strictly reduced ones, and a single exact
//! pass restores canonical `[0, q)` form at the end. The invariants, all
//! checked by property tests:
//!
//! * [`zq::ShoupMul::mul_lazy`] returns a value in `[0, 2q)` congruent to
//!   the strict product, for **any** 64-bit operand — the Shoup quotient
//!   estimate undershoots by at most one, so at most one extra `q`
//!   survives.
//! * [`ntt::NttTable::forward`] keeps coefficients in `[0, 4q)` across
//!   Cooley-Tukey stages (each butterfly folds its upper operand once into
//!   `[0, 2q)`, then adds/subtracts a lazy product `< 2q`).
//! * [`ntt::NttTable::inverse`] keeps coefficients in `[0, 2q)` across
//!   Gentleman-Sande stages; the strict `n^{-1}` scaling pass doubles as
//!   the final reduction.
//!
//! These are safe because [`zq::Modulus::new`] enforces `q < 2^62`, so the
//! relaxed bound `4q` never exceeds `2^64` and `u64` arithmetic cannot
//! wrap. The lazy transforms are bit-identical to the strict reference
//! paths ([`ntt::NttTable::forward_strict`] /
//! [`ntt::NttTable::inverse_strict`]), which stay in-tree as oracles and
//! as the before/after benchmark baseline.
//!
//! # Example
//!
//! ```
//! use hefv_math::{ntt::NttTable, primes::ntt_prime, zq::Modulus};
//!
//! let q = ntt_prime(30, 1 << 8, 0).expect("prime exists");
//! let table = NttTable::new(Modulus::new(q), 1 << 8).expect("NTT-friendly");
//! let mut a = vec![0u64; 256];
//! a[1] = 1; // the polynomial x
//! let orig = a.clone();
//! table.forward(&mut a);
//! table.inverse(&mut a);
//! assert_eq!(a, orig);
//! ```

pub mod bigint;
pub mod dispatch;
pub mod fixed;
pub mod ntt;
pub mod poly;
pub mod primes;
pub mod rns;
#[cfg(target_arch = "x86_64")]
mod simd;
pub mod zq;

pub use bigint::UBig;
pub use ntt::NttTable;
pub use poly::ResiduePoly;
pub use rns::{RnsBasis, RnsContext};
pub use zq::Modulus;
