//! Arbitrary-precision unsigned integers.
//!
//! The paper's *traditional CRT* datapath (Fig. 5 and Fig. 8) performs
//! long-integer summation-of-products, division by `q` (via multiplication by
//! a stored reciprocal) and multi-precision modular reduction. This module is
//! the software equivalent, and also serves as the exactness oracle against
//! which the HPS approximate datapath is property-tested.
//!
//! Representation: little-endian `u64` limbs, normalized (no trailing zero
//! limbs; zero is the empty limb vector).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Rem, Shl, Shr, Sub, SubAssign};

/// Arbitrary-precision unsigned integer (little-endian `u64` limbs).
///
/// # Example
///
/// ```
/// use hefv_math::bigint::UBig;
/// let a = UBig::from(u64::MAX);
/// let b = &a * &a;
/// let (quot, rem) = b.div_rem(&a);
/// assert_eq!(quot, a);
/// assert_eq!(rem, UBig::zero());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct UBig {
    limbs: Vec<u64>,
}

impl UBig {
    /// The value 0.
    pub fn zero() -> Self {
        UBig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        UBig { limbs: vec![1] }
    }

    /// Builds from little-endian limbs (normalizes trailing zeros).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        UBig { limbs }
    }

    /// Little-endian limb view.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// The value of bit `i` (false beyond the top).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|&l| (l >> off) & 1 == 1)
    }

    /// Converts to `u64`, if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128`, if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// Converts to `f64` (with rounding; infinite for huge values).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + l as f64;
        }
        acc
    }

    /// `self * rhs` where `rhs` is a single limb.
    pub fn mul_u64(&self, rhs: u64) -> UBig {
        if rhs == 0 || self.is_zero() {
            return UBig::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let t = l as u128 * rhs as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        UBig::from_limbs(out)
    }

    /// `self mod m` where `m` is a single nonzero limb.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "division by zero");
        let mut r = 0u128;
        for &l in self.limbs.iter().rev() {
            r = ((r << 64) | l as u128) % m as u128;
        }
        r as u64
    }

    /// Euclidean division: returns `(self / rhs, self mod rhs)`.
    ///
    /// Knuth Algorithm D for multi-limb divisors.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &UBig) -> (UBig, UBig) {
        assert!(!rhs.is_zero(), "division by zero");
        match self.cmp(rhs) {
            Ordering::Less => return (UBig::zero(), self.clone()),
            Ordering::Equal => return (UBig::one(), UBig::zero()),
            Ordering::Greater => {}
        }
        if rhs.limbs.len() == 1 {
            let d = rhs.limbs[0];
            let mut q = vec![0u64; self.limbs.len()];
            let mut r = 0u128;
            for i in (0..self.limbs.len()).rev() {
                let cur = (r << 64) | self.limbs[i] as u128;
                q[i] = (cur / d as u128) as u64;
                r = cur % d as u128;
            }
            return (UBig::from_limbs(q), UBig::from(r as u64));
        }

        // Knuth D. Normalize so the divisor's top limb has its MSB set.
        let shift = rhs.limbs.last().unwrap().leading_zeros() as usize;
        let v = rhs << shift;
        let mut u = (self << shift).limbs;
        let n = v.limbs.len();
        let m = u.len() - n;
        u.push(0); // u has m + n + 1 limbs
        let vn = &v.limbs;
        let mut q = vec![0u64; m + 1];

        for j in (0..=m).rev() {
            // Estimate qhat from the top two limbs of the current remainder
            // against the top limb of v.
            let numer = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = numer / vn[n - 1] as u128;
            let mut rhat = numer % vn[n - 1] as u128;
            while qhat >> 64 != 0
                || qhat * vn[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += vn[n - 1] as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract qhat * v from u[j .. j+n].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (u[j + i] as i128) - (p as u64 as i128) + borrow;
                u[j + i] = sub as u64;
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = (u[j + n] as i128) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            let went_negative = sub < 0;

            q[j] = qhat as u64;
            if went_negative {
                // Add back one v (Knuth's rare correction step).
                q[j] -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let t = u[j + i] as u128 + vn[i] as u128 + carry;
                    u[j + i] = t as u64;
                    carry = t >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
        }
        u.truncate(n);
        let rem = &UBig::from_limbs(u) >> shift;
        (UBig::from_limbs(q), rem)
    }

    /// Rounded division `round(self / rhs)` (ties round up, matching the
    /// paper's `⌈·⌋` notation).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_round(&self, rhs: &UBig) -> UBig {
        let (q, r) = self.div_rem(rhs);
        // round up when 2r >= rhs
        if &(&r + &r) >= rhs {
            &q + &UBig::one()
        } else {
            q
        }
    }

    /// Parses from a decimal string.
    ///
    /// # Errors
    ///
    /// Returns an error for empty strings or non-digit characters.
    pub fn from_decimal(s: &str) -> Result<UBig, String> {
        if s.is_empty() {
            return Err("empty string".into());
        }
        let mut acc = UBig::zero();
        for c in s.chars() {
            let d = c.to_digit(10).ok_or_else(|| format!("bad digit {c:?}"))?;
            acc = acc.mul_u64(10);
            acc += &UBig::from(d as u64);
        }
        Ok(acc)
    }

    /// Decimal string representation.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut digits = Vec::new();
        let mut cur = self.clone();
        let chunk = 10_000_000_000_000_000_000u64; // 10^19
        loop {
            let (q, r) = cur.div_rem(&UBig::from(chunk));
            digits.push(r.to_u64().unwrap());
            if q.is_zero() {
                break;
            }
            cur = q;
        }
        let mut s = digits.pop().unwrap().to_string();
        for d in digits.iter().rev() {
            s.push_str(&format!("{d:019}"));
        }
        s
    }
}

impl fmt::Debug for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UBig({})", self.to_decimal())
    }
}

impl fmt::Display for UBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl From<u64> for UBig {
    fn from(v: u64) -> Self {
        UBig::from_limbs(vec![v])
    }
}

impl From<u128> for UBig {
    fn from(v: u128) -> Self {
        UBig::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for UBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for UBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add for &UBig {
    type Output = UBig;
    fn add(self, rhs: &UBig) -> UBig {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut out = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u128;
        for i in 0..long.limbs.len() {
            let t =
                long.limbs[i] as u128 + short.limbs.get(i).copied().unwrap_or(0) as u128 + carry;
            out.push(t as u64);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        UBig::from_limbs(out)
    }
}

impl AddAssign<&UBig> for UBig {
    fn add_assign(&mut self, rhs: &UBig) {
        *self = &*self + rhs;
    }
}

impl Sub for &UBig {
    type Output = UBig;
    /// # Panics
    /// Panics if `rhs > self` (unsigned subtraction would underflow).
    fn sub(self, rhs: &UBig) -> UBig {
        assert!(self >= rhs, "UBig subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let t = self.limbs[i] as i128 - rhs.limbs.get(i).copied().unwrap_or(0) as i128 + borrow;
            out.push(t as u64);
            borrow = t >> 64;
        }
        debug_assert_eq!(borrow, 0);
        UBig::from_limbs(out)
    }
}

impl SubAssign<&UBig> for UBig {
    fn sub_assign(&mut self, rhs: &UBig) {
        *self = &*self - rhs;
    }
}

impl Mul for &UBig {
    type Output = UBig;
    fn mul(self, rhs: &UBig) -> UBig {
        if self.is_zero() || rhs.is_zero() {
            return UBig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            out[i + rhs.limbs.len()] = carry as u64;
        }
        UBig::from_limbs(out)
    }
}

impl Rem for &UBig {
    type Output = UBig;
    fn rem(self, rhs: &UBig) -> UBig {
        self.div_rem(rhs).1
    }
}

impl Shl<usize> for &UBig {
    type Output = UBig;
    fn shl(self, shift: usize) -> UBig {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        UBig::from_limbs(out)
    }
}

impl Shr<usize> for &UBig {
    type Output = UBig;
    fn shr(self, shift: usize) -> UBig {
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        if limb_shift >= self.limbs.len() {
            return UBig::zero();
        }
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return UBig::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
        }
        UBig::from_limbs(out)
    }
}

/// A signed arbitrary-precision integer, as (sign, magnitude).
///
/// Used for centered CRT representatives in the traditional `Scale Q→q`
/// datapath and in noise measurement.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IBig {
    /// True when the value is negative (zero is always non-negative).
    negative: bool,
    magnitude: UBig,
}

impl IBig {
    /// Zero.
    pub fn zero() -> Self {
        IBig {
            negative: false,
            magnitude: UBig::zero(),
        }
    }

    /// Builds from sign and magnitude (normalizes −0 to +0).
    pub fn new(negative: bool, magnitude: UBig) -> Self {
        let negative = negative && !magnitude.is_zero();
        IBig {
            negative,
            magnitude,
        }
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &UBig {
        &self.magnitude
    }

    /// Whether the value is negative.
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// `round(self * t / d)` with ties away from zero, as a signed value.
    pub fn scale_round(&self, t: &UBig, d: &UBig) -> IBig {
        let scaled = &self.magnitude * t;
        IBig::new(self.negative, scaled.div_round(d))
    }

    /// Canonical representative in `[0, m)`.
    pub fn rem_euclid(&self, m: &UBig) -> UBig {
        let r = &self.magnitude % m;
        if self.negative && !r.is_zero() {
            m - &r
        } else {
            r
        }
    }
}

impl fmt::Display for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negative {
            write!(f, "-{}", self.magnitude)
        } else {
            write!(f, "{}", self.magnitude)
        }
    }
}

/// Centers `v ∈ [0, m)` to the representative in `(-m/2, m/2]` as an [`IBig`].
pub fn center(v: &UBig, m: &UBig) -> IBig {
    let half = m >> 1;
    if v > &half {
        IBig::new(true, m - v)
    } else {
        IBig::new(false, v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> UBig {
        UBig::from_decimal(s).unwrap()
    }

    #[test]
    fn zero_and_one() {
        assert!(UBig::zero().is_zero());
        assert_eq!(UBig::zero().bits(), 0);
        assert_eq!(UBig::one().bits(), 1);
        assert_eq!(UBig::zero().to_decimal(), "0");
    }

    #[test]
    fn from_limbs_normalizes() {
        let a = UBig::from_limbs(vec![5, 0, 0]);
        assert_eq!(a.limbs(), &[5]);
        assert_eq!(a, UBig::from(5u64));
    }

    #[test]
    fn add_sub_roundtrip_u128() {
        let a = UBig::from(u128::MAX - 12345);
        let b = UBig::from(987_654_321u64);
        let s = &a + &b;
        assert_eq!(&s - &b, a);
        assert_eq!(&s - &a, b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &UBig::from(1u64) - &UBig::from(2u64);
    }

    #[test]
    fn mul_matches_u128() {
        for (a, b) in [(u64::MAX, u64::MAX), (12345, 67890), (0, 5), (1, u64::MAX)] {
            let prod = &UBig::from(a) * &UBig::from(b);
            assert_eq!(prod, UBig::from(a as u128 * b as u128));
        }
    }

    #[test]
    fn mul_large_known_value() {
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let a = UBig::from(u128::MAX);
        let sq = &a * &a;
        let expected = &(&(&UBig::one() << 256) - &(&UBig::one() << 129)) + &UBig::one();
        assert_eq!(sq, expected);
    }

    #[test]
    fn shifts() {
        let a = big("123456789012345678901234567890");
        assert_eq!(&(&a << 64) >> 64, a);
        assert_eq!(&(&a << 7) >> 7, a);
        assert_eq!(&a >> 1000, UBig::zero());
        assert_eq!((&a << 3), a.mul_u64(8));
    }

    #[test]
    fn bit_access() {
        let a = UBig::from(0b1011u64);
        assert!(a.bit(0) && a.bit(1) && !a.bit(2) && a.bit(3));
        assert!(!a.bit(64));
    }

    #[test]
    fn div_rem_single_limb() {
        let a = big("340282366920938463463374607431768211455"); // 2^128-1
        let (q, r) = a.div_rem(&UBig::from(10u64));
        assert_eq!(q.to_decimal(), "34028236692093846346337460743176821145");
        assert_eq!(r.to_u64(), Some(5));
    }

    #[test]
    fn div_rem_multi_limb_identity() {
        let a = big("9999999999999999999999999999999999999999999999999999999999");
        let b = big("12345678901234567890123456789");
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_rem_exercises_correction_step() {
        // Values engineered with top limbs that trigger the qhat adjustment.
        let a = UBig::from_limbs(vec![0, 0, u64::MAX, u64::MAX - 1]);
        let b = UBig::from_limbs(vec![u64::MAX, u64::MAX]);
        let (q, r) = a.div_rem(&b);
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn div_smaller_dividend() {
        let a = UBig::from(5u64);
        let b = big("123456789012345678901234567890");
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = UBig::one().div_rem(&UBig::zero());
    }

    #[test]
    fn div_round_ties() {
        // 7/2 = 3.5 -> 4 (ties up); 5/3 -> 2; 4/3 -> 1
        assert_eq!(
            UBig::from(7u64).div_round(&UBig::from(2u64)),
            UBig::from(4u64)
        );
        assert_eq!(
            UBig::from(5u64).div_round(&UBig::from(3u64)),
            UBig::from(2u64)
        );
        assert_eq!(
            UBig::from(4u64).div_round(&UBig::from(3u64)),
            UBig::from(1u64)
        );
    }

    #[test]
    fn rem_u64_matches_div_rem() {
        let a = big("98765432109876543210987654321098765432109876543210");
        for m in [3u64, 997, 1_073_479_681, u64::MAX] {
            assert_eq!(
                a.rem_u64(m),
                a.div_rem(&UBig::from(m)).1.to_u64().unwrap(),
                "m={m}"
            );
        }
    }

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551615",
            "18446744073709551616",
            "123456789012345678901234567890123456789012345678901234567890",
        ] {
            assert_eq!(big(s).to_decimal(), s);
        }
    }

    #[test]
    fn decimal_rejects_garbage() {
        assert!(UBig::from_decimal("").is_err());
        assert!(UBig::from_decimal("12a3").is_err());
    }

    #[test]
    fn ordering() {
        let a = big("99999999999999999999");
        let b = big("100000000000000000000");
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert!(UBig::zero() < UBig::one());
    }

    #[test]
    fn to_f64_reasonable() {
        let a = &UBig::one() << 100;
        let expect = 2f64.powi(100);
        assert!((a.to_f64() - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn ibig_center_and_rem_euclid() {
        let m = UBig::from(97u64);
        // 96 mod 97 centers to -1
        let c = center(&UBig::from(96u64), &m);
        assert!(c.is_negative());
        assert_eq!(c.magnitude(), &UBig::one());
        assert_eq!(c.rem_euclid(&m), UBig::from(96u64));
        // 3 centers to +3
        let c = center(&UBig::from(3u64), &m);
        assert!(!c.is_negative());
        assert_eq!(c.rem_euclid(&m), UBig::from(3u64));
        // zero stays zero and non-negative
        let z = IBig::new(true, UBig::zero());
        assert!(!z.is_negative());
    }

    #[test]
    fn ibig_scale_round() {
        // round(-7 * 2 / 4) = round(-3.5) = -4 (ties away from zero)
        let v = IBig::new(true, UBig::from(7u64));
        let r = v.scale_round(&UBig::from(2u64), &UBig::from(4u64));
        assert!(r.is_negative());
        assert_eq!(r.magnitude(), &UBig::from(4u64));
    }
}
