//! Arithmetic modulo small (≤ 62-bit, typically 30-bit) primes.
//!
//! The paper's residue arithmetic cores operate on 30-bit primes so that a
//! product fits in one 60-bit DSP-chain result. Two reduction strategies are
//! provided:
//!
//! * [`Modulus::reduce`] — Barrett-style reduction, used by the software
//!   library for speed.
//! * [`Modulus::reduce_sliding_window`] — the iterative 6-bit sliding-window
//!   reduction of §V-A4 ("a table containing 64 integers `w · 2^30 mod q`"),
//!   which is what the RTL implements. Both agree bit-for-bit and the test
//!   suite checks this.
//!
//! For NTT inner loops, [`ShoupMul`] provides Victor Shoup's fused
//! multiply-reduce for a fixed multiplicand (the FPGA's equivalent is the
//! pipelined multiplier + reduction unit of Fig. 4).

use serde::{Deserialize, Serialize};

/// A modulus `q` with precomputed reduction constants.
///
/// Supports any odd `q` with `3 <= q < 2^62`, which covers the paper's 30-bit
/// RNS primes as well as the larger moduli used in tests.
///
/// # Example
///
/// ```
/// use hefv_math::zq::Modulus;
/// let q = Modulus::new(1_073_479_681); // a 30-bit NTT-friendly prime
/// assert_eq!(q.mul(q.value() - 1, q.value() - 1), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Modulus {
    q: u64,
    /// floor(2^128 / q), stored as (hi, lo) 64-bit halves.
    barrett_hi: u64,
    barrett_lo: u64,
    /// floor((2^64 − 1) / q) — the single-word Barrett constant for
    /// [`Modulus::reduce_u64`].
    barrett_64: u64,
}

impl Modulus {
    /// Creates a new modulus with precomputed Barrett constants.
    ///
    /// # Panics
    ///
    /// Panics if `q < 3` or `q >= 2^62`.
    pub fn new(q: u64) -> Self {
        assert!(q >= 3, "modulus must be at least 3");
        assert!(q < (1u64 << 62), "modulus must be below 2^62");
        // floor(2^128 / q) via 128-bit long division in two halves.
        let hi = u128::MAX / q as u128; // floor((2^128 - 1) / q)
                                        // (2^128 - 1)/q and 2^128/q differ only when q | 2^128, impossible for odd q>1;
                                        // for even q it can differ by 1, but we only ever use odd moduli. Still, be exact:
        let r = u128::MAX % q as u128;
        let exact = if r == q as u128 - 1 { hi + 1 } else { hi };
        Modulus {
            q,
            barrett_hi: (exact >> 64) as u64,
            barrett_lo: exact as u64,
            barrett_64: u64::MAX / q,
        }
    }

    /// The modulus value.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        self.q
    }

    /// Number of significant bits of `q`.
    pub fn bits(&self) -> u32 {
        64 - self.q.leading_zeros()
    }

    /// `⌊(2^64−1)/q⌋` — exposed to the SIMD lanes so their vector
    /// reduction evaluates the exact same Barrett formula as
    /// [`Modulus::reduce_u64`].
    #[inline(always)]
    pub(crate) fn barrett_64(&self) -> u64 {
        self.barrett_64
    }

    /// Reduces a full 128-bit value modulo `q` (Barrett).
    #[inline]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        // q_hat = floor(x * floor(2^128/q) / 2^128) approximates floor(x/q)
        // with error at most 2. Standard Barrett argument.
        let xl = x as u64;
        let xh = (x >> 64) as u64;
        // (xh*2^64 + xl) * (bh*2^64 + bl) >> 128
        let ll = (xl as u128 * self.barrett_lo as u128) >> 64;
        let lh = xl as u128 * self.barrett_hi as u128;
        let hl = xh as u128 * self.barrett_lo as u128;
        let mid = ll + (lh & 0xFFFF_FFFF_FFFF_FFFF) + (hl & 0xFFFF_FFFF_FFFF_FFFF);
        let hh = xh as u128 * self.barrett_hi as u128;
        let q_hat = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
        // The Barrett quotient underestimates floor(x/q) by at most 2, so
        // the remainder sits in [0, 3q) — and 3q < 2^64 since q < 2^62.
        // Two conditional subtractions therefore replace the unbounded
        // correction loop (constant work per reduction, branch-predictable).
        let mut r = (x.wrapping_sub(q_hat.wrapping_mul(self.q as u128))) as u64;
        if r >= self.q << 1 {
            r -= self.q << 1;
        }
        if r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Reduces a 64-bit value modulo `q`.
    #[inline(always)]
    pub fn reduce(&self, x: u64) -> u64 {
        if x < self.q {
            x
        } else {
            self.reduce_u128(x as u128)
        }
    }

    /// Reduces a full 64-bit value modulo `q` with the single-word Barrett
    /// constant: one widening multiply and at most three conditional
    /// subtractions — roughly half the cost of routing a 64-bit value
    /// through [`Modulus::reduce_u128`]. This is the reduction the hoisted
    /// key-switch SoP runs once per slot.
    ///
    /// Soundness: with `b = ⌊(2^64−1)/q⌋`, the estimate
    /// `q̂ = ⌊x·b/2^64⌋` undershoots `⌊x/q⌋` by less than 3 (since
    /// `2^64 − q·b ≤ q + b` and `x < 2^64`), so the remainder lands in
    /// `[0, 4q)` — in range for `u64` because `q < 2^62`.
    #[inline(always)]
    pub fn reduce_u64(&self, x: u64) -> u64 {
        let q_hat = ((x as u128 * self.barrett_64 as u128) >> 64) as u64;
        let mut r = x.wrapping_sub(q_hat.wrapping_mul(self.q));
        while r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Modular addition of two values already in `[0, q)`.
    #[inline(always)]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        let s = a + b;
        if s >= self.q {
            s - self.q
        } else {
            s
        }
    }

    /// Modular subtraction of two values already in `[0, q)`.
    #[inline(always)]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        if a >= b {
            a - b
        } else {
            a + self.q - b
        }
    }

    /// Modular negation of a value in `[0, q)`.
    #[inline(always)]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        if a == 0 {
            0
        } else {
            self.q - a
        }
    }

    /// Modular multiplication of two values in `[0, q)`.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.reduce_u128(a as u128 * b as u128)
    }

    /// Fused multiply-add: `(a*b + c) mod q`.
    #[inline(always)]
    pub fn mul_add(&self, a: u64, b: u64, c: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q && c < self.q);
        self.reduce_u128(a as u128 * b as u128 + c as u128)
    }

    /// Pointwise slice product `dst[i] = a[i]·b[i] mod q`, routed
    /// through the [`crate::dispatch`] kernel seam (AVX2 lanes for
    /// `q < 2^32`, the scalar Barrett path otherwise). Bit-identical to
    /// calling [`Modulus::mul`] element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn mul_slice(&self, a: &[u64], b: &[u64], dst: &mut [u64]) {
        crate::dispatch::kernels().pointwise_mul(self, a, b, dst)
    }

    /// In-place pointwise slice product `dst[i] = dst[i]·b[i] mod q`,
    /// routed through the [`crate::dispatch`] kernel seam.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn mul_slice_assign(&self, dst: &mut [u64], b: &[u64]) {
        crate::dispatch::kernels().pointwise_mul_assign(self, dst, b)
    }

    /// Pointwise multiply-accumulate `acc[i] = (a[i]·b[i] + acc[i]) mod
    /// q`, routed through the [`crate::dispatch`] kernel seam.
    /// Bit-identical to calling [`Modulus::mul_add`] element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn mul_acc_slice(&self, a: &[u64], b: &[u64], acc: &mut [u64]) {
        crate::dispatch::kernels().pointwise_mul_acc(self, a, b, acc)
    }

    /// Modular exponentiation `base^exp mod q` by square-and-multiply.
    pub fn pow(&self, base: u64, mut exp: u64) -> u64 {
        let mut base = self.reduce(base);
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse via Fermat's little theorem.
    ///
    /// Only valid when `q` is prime and `a` is nonzero mod `q`.
    ///
    /// # Panics
    ///
    /// Panics if `a ≡ 0 (mod q)`.
    pub fn inv(&self, a: u64) -> u64 {
        let a = self.reduce(a);
        assert!(a != 0, "zero has no modular inverse");
        self.pow(a, self.q - 2)
    }

    /// Maps a signed value into `[0, q)`.
    #[inline]
    pub fn from_i64(&self, v: i64) -> u64 {
        let r = v.rem_euclid(self.q as i64);
        r as u64
    }

    /// Maps a value in `[0, q)` to its centered representative in
    /// `(-q/2, q/2]`.
    #[inline]
    pub fn to_centered(&self, v: u64) -> i64 {
        debug_assert!(v < self.q);
        if v > self.q / 2 {
            v as i64 - self.q as i64
        } else {
            v as i64
        }
    }

    /// The paper's §V-A4 sliding-window reduction of a (≤66-bit)
    /// multiply-accumulate result.
    ///
    /// Mirrors the unrolled RTL: with a window of `W = 6` bits, each
    /// pipeline stage folds the 6 bits at positions `[30+6k, 36+6k)` via a
    /// 64-entry table `w · 2^{30+6k} mod q`, working from the top stage
    /// down ("the sliding window selects the most significant 6 bits ...
    /// these sequential steps are fully unrolled"), then performs the final
    /// conditional subtractions of `q_i` or `2·q_i`.
    ///
    /// Only meaningful for ~30-bit moduli (the hardware's lane width); for
    /// larger moduli it falls back to Barrett. Tests assert bit-equality
    /// with [`Modulus::reduce_u128`].
    ///
    /// # Panics
    ///
    /// Panics (debug) if the table belongs to a different modulus.
    pub fn reduce_sliding_window(&self, x: u128, table: &SlidingWindowTable) -> u64 {
        debug_assert_eq!(table.q, self.q);
        if self.bits() > 31 {
            return self.reduce_u128(x);
        }
        // Top stage window sits at bit 60; with the guard bit the datapath
        // accepts inputs up to 67 bits (a 60-bit product plus accumulates).
        debug_assert!(x < 1u128 << (30 + 6 * SlidingWindowTable::STAGES as u32 + 1));
        let mut acc = x;
        // Unrolled stages: fold the window at bit position 30 + 6k for
        // k = STAGES-1 .. 1. Each fold replaces up to 6 high bits by a
        // < 2^30 table value, so the accumulator shrinks monotonically.
        for k in (1..SlidingWindowTable::STAGES).rev() {
            let s = 30 + 6 * k as u32;
            let w = (acc >> s) as usize;
            // The previous stage's table-value addition can carry one bit
            // past the window, so w ranges over [0, 128); the table carries
            // the guard-bit entries (the RTL adds one conditional term).
            debug_assert!(w < 2 * SlidingWindowTable::SIZE);
            acc = (acc & ((1u128 << s) - 1)) + table.entries[k][w] as u128;
        }
        // Last stage (position 30) may need a second pass because earlier
        // additions can carry into the window; the RTL sizes the final
        // stage for this.
        while acc >> 31 != 0 {
            let w = (acc >> 30) as usize;
            acc = (acc & ((1u128 << 30) - 1)) + table.entries[0][w] as u128;
        }
        let mut r = acc as u64;
        while r >= self.q {
            r -= self.q;
        }
        r
    }
}

/// The §V-A4 "reduction table": per unrolled stage `k`, 64 entries
/// `w · 2^{30+6k} mod q` for `w = 0..63`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlidingWindowTable {
    q: u64,
    entries: Vec<Vec<u64>>,
}

impl SlidingWindowTable {
    /// Window width in bits (the paper uses 6).
    pub const WINDOW: u32 = 6;
    /// Number of table entries per stage (`2^WINDOW`).
    pub const SIZE: usize = 1 << Self::WINDOW;
    /// Number of unrolled stages: windows at bits 30, 36, 42, 48, 54, 60,
    /// covering a 66-bit multiply-accumulate result.
    pub const STAGES: usize = 6;

    /// Builds the reduction tables for a modulus.
    ///
    /// # Example
    ///
    /// ```
    /// use hefv_math::zq::{Modulus, SlidingWindowTable};
    /// let q = Modulus::new(1_073_479_681);
    /// let t = SlidingWindowTable::new(&q);
    /// assert_eq!(q.reduce_sliding_window(12345u128 * 67890u128, &t),
    ///            q.reduce_u128(12345u128 * 67890u128));
    /// ```
    pub fn new(modulus: &Modulus) -> Self {
        let q = modulus.value();
        // 2·SIZE entries per stage: the upper half is the guard-bit
        // extension for the carry out of the next-lower stage.
        let entries = (0..Self::STAGES)
            .map(|k| {
                (0..2 * Self::SIZE as u64)
                    .map(|w| modulus.reduce_u128((w as u128) << (30 + 6 * k as u32)))
                    .collect()
            })
            .collect();
        SlidingWindowTable { q, entries }
    }

    /// Number of stored entries across all stages.
    pub fn len(&self) -> usize {
        self.entries.iter().map(|s| s.len()).sum()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Shoup precomputed multiplication by a fixed constant `w < q`.
///
/// Precomputes `w' = floor(w * 2^64 / q)`; then `mul(a)` costs two integer
/// multiplications and one conditional subtraction. This is the software
/// analogue of the paper's fully pipelined twiddle multiplier (Fig. 4), where
/// the twiddle factor comes from ROM together with its precomputed constant.
// `repr(C)` pins the (w, w_shoup) field order so the SIMD twiddle loads
// can read pairs of table entries as four consecutive `u64` lanes.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShoupMul {
    /// The multiplicand `w`.
    pub w: u64,
    /// `floor(w << 64 / q)`.
    pub w_shoup: u64,
}

impl ShoupMul {
    /// Precomputes the Shoup constant for multiplicand `w` modulo `q`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `w >= q`.
    #[inline]
    pub fn new(w: u64, q: u64) -> Self {
        debug_assert!(w < q);
        ShoupMul {
            w,
            w_shoup: (((w as u128) << 64) / q as u128) as u64,
        }
    }

    /// Computes `a * w mod q`; result in `[0, q)`. Like
    /// [`ShoupMul::mul_lazy`] this accepts any `a < 2^64` — lazily
    /// relaxed operands included — since the lazy product is below `2q`
    /// and one conditional subtraction finishes the reduction.
    #[inline(always)]
    pub fn mul(&self, a: u64, q: u64) -> u64 {
        let r = self.mul_lazy(a, q);
        if r >= q {
            r - q
        } else {
            r
        }
    }

    /// Harvey's lazy Shoup product: `a * w mod q` **without** the final
    /// correction — the result lands in `[0, 2q)` and is congruent to
    /// `a·w` modulo `q`.
    ///
    /// Valid for *any* `a < 2^64` (not just `a < q`): with
    /// `w' = ⌊w·2^64/q⌋` the quotient estimate `⌊w'·a/2^64⌋`
    /// undershoots `⌊w·a/q⌋` by less than `1 + a·(w·2^64 mod q)/2^64 <
    /// 2`, so exactly zero or one extra `q` survives. This is what lets
    /// the NTT butterflies run with relaxed `[0, 4q)` operands (see
    /// [`crate::ntt`]); soundness needs `2q < 2^64`, guaranteed by
    /// [`Modulus::new`]'s `q < 2^62` bound.
    #[inline(always)]
    pub fn mul_lazy(&self, a: u64, q: u64) -> u64 {
        let q_hat = ((self.w_shoup as u128 * a as u128) >> 64) as u64;
        (self.w.wrapping_mul(a)).wrapping_sub(q_hat.wrapping_mul(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P30: u64 = 1_073_479_681; // 30-bit prime, ≡ 1 mod 2^17
    const P31: u64 = 2_147_473_409;

    #[test]
    fn new_rejects_tiny_modulus() {
        let r = std::panic::catch_unwind(|| Modulus::new(2));
        assert!(r.is_err());
    }

    #[test]
    fn reduce_small_is_identity() {
        let m = Modulus::new(97);
        for x in 0..97 {
            assert_eq!(m.reduce(x), x);
        }
    }

    #[test]
    fn reduce_u128_matches_naive() {
        let m = Modulus::new(P30);
        let cases: [u128; 6] = [
            0,
            P30 as u128,
            P30 as u128 - 1,
            u64::MAX as u128,
            (P30 as u128 - 1) * (P30 as u128 - 1),
            u128::MAX >> 2,
        ];
        for &x in &cases {
            assert_eq!(m.reduce_u128(x) as u128, x % P30 as u128);
        }
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let m = Modulus::new(P30);
        let a = 123_456_789;
        let b = 987_654_321;
        assert_eq!(m.sub(m.add(a, b), b), a);
        assert_eq!(m.add(a, m.neg(a)), 0);
        assert_eq!(m.neg(0), 0);
    }

    #[test]
    fn mul_matches_u128() {
        let m = Modulus::new(P31);
        let pairs = [
            (1u64, 1u64),
            (P31 - 1, P31 - 1),
            (12345, 67890),
            (P31 - 2, 2),
        ];
        for (a, b) in pairs {
            assert_eq!(m.mul(a, b) as u128, (a as u128 * b as u128) % P31 as u128);
        }
    }

    #[test]
    fn mul_add_matches_u128() {
        let m = Modulus::new(P30);
        let (a, b, c) = (999_999_937u64, 888_888_883u64, 777_777_777u64);
        assert_eq!(
            m.mul_add(a, b, c) as u128,
            (a as u128 * b as u128 + c as u128) % P30 as u128
        );
    }

    #[test]
    fn pow_and_inv() {
        let m = Modulus::new(P30);
        assert_eq!(m.pow(2, 10), 1024);
        assert_eq!(m.pow(7, 0), 1);
        for a in [1u64, 2, 12345, P30 - 1] {
            let ai = m.inv(a);
            assert_eq!(m.mul(a, ai), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "zero has no modular inverse")]
    fn inv_zero_panics() {
        let m = Modulus::new(P30);
        m.inv(0);
    }

    #[test]
    fn fermat_holds() {
        let m = Modulus::new(P30);
        for a in [2u64, 3, 5, 1_000_000_007 % P30] {
            assert_eq!(m.pow(a, P30 - 1), 1);
        }
    }

    #[test]
    fn signed_roundtrip() {
        let m = Modulus::new(P30);
        for v in [-5i64, -1, 0, 1, 5, (P30 / 2) as i64, -((P30 / 2) as i64)] {
            let u = m.from_i64(v);
            assert!(u < P30);
            assert_eq!(m.to_centered(u), v);
        }
    }

    #[test]
    fn sliding_window_matches_barrett() {
        let m = Modulus::new(P30);
        let t = SlidingWindowTable::new(&m);
        assert_eq!(t.len(), 128 * SlidingWindowTable::STAGES);
        assert!(!t.is_empty());
        let cases: [u128; 7] = [
            0,
            1,
            P30 as u128,
            (P30 as u128 - 1) * (P30 as u128 - 1),
            (P30 as u128 - 1) * (P30 as u128 - 1) + (P30 as u128 - 1), // MAC-sized
            (1u128 << 60) - 1,
            (1u128 << 61) + 12345,
        ];
        for &x in &cases {
            assert_eq!(m.reduce_sliding_window(x, &t), m.reduce_u128(x), "x={x}");
        }
    }

    #[test]
    fn sliding_window_randomized() {
        let m = Modulus::new(P30);
        let t = SlidingWindowTable::new(&m);
        // simple LCG so the test is deterministic
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state % P30;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = state % P30;
            let x = a as u128 * b as u128;
            assert_eq!(m.reduce_sliding_window(x, &t), m.reduce_u128(x));
        }
    }

    #[test]
    fn shoup_mul_matches() {
        let q = P30;
        let m = Modulus::new(q);
        for w in [0u64, 1, 2, 12345, q - 1] {
            let s = ShoupMul::new(w, q);
            for a in [0u64, 1, 7, q / 2, q - 1] {
                assert_eq!(s.mul(a, q), m.mul(a, w), "w={w} a={a}");
            }
        }
    }

    #[test]
    fn shoup_mul_lazy_range_and_congruence() {
        // mul_lazy must stay below 2q and agree with the strict product
        // mod q — including for operands already relaxed into [q, 4q).
        for q in [P30, P31, (1u64 << 61) - 1] {
            let m = Modulus::new(q);
            for w in [0u64, 1, q / 3, q - 1] {
                let s = ShoupMul::new(w, q);
                for a in [0u64, 1, q - 1, q, 2 * q - 1, 4 * q - 1] {
                    let lazy = s.mul_lazy(a, q);
                    assert!(lazy < 2 * q, "q={q} w={w} a={a}: {lazy}");
                    let strict = m.mul(m.reduce(a), w);
                    assert_eq!(lazy % q, strict, "q={q} w={w} a={a}");
                }
            }
        }
    }

    #[test]
    fn reduce_u64_matches_naive_across_magnitudes() {
        for q in [3u64, 97, P30, P31, (1u64 << 61) - 1, (1u64 << 62) - 57] {
            let m = Modulus::new(q);
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for _ in 0..2000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                assert_eq!(m.reduce_u64(state), state % q, "q={q} x={state}");
            }
            for x in [0u64, 1, q - 1, q, q + 1, 2 * q - 1, u64::MAX] {
                assert_eq!(m.reduce_u64(x), x % q, "q={q} x={x}");
            }
        }
    }

    #[test]
    fn reduce_u128_worst_case_corrections() {
        // Inputs engineered so the Barrett estimate needs 0, 1 and 2
        // corrective subtractions; the bounded two-step must cover all.
        for q in [3u64, P30, (1u64 << 61) - 1, (1u64 << 62) - 57] {
            let m = Modulus::new(q);
            for &x in &[
                0u128,
                q as u128 - 1,
                q as u128,
                2 * q as u128 - 1,
                3 * q as u128 - 1,
                (q as u128) * (q as u128) - 1,
                u128::MAX >> 4,
                u128::MAX >> 1,
            ] {
                assert_eq!(m.reduce_u128(x) as u128, x % q as u128, "q={q} x={x}");
            }
        }
    }

    #[test]
    fn modulus_works_for_large_primes() {
        // 62-bit-boundary behaviour: 2^61-1 is a Mersenne prime.
        let q = (1u64 << 61) - 1;
        let m = Modulus::new(q);
        assert_eq!(m.mul(q - 1, q - 1), 1);
        assert_eq!(m.pow(3, q - 1), 1);
    }
}
