//! Fixed-point reciprocal arithmetic.
//!
//! The HPS algorithm (Halevi-Polyakov-Shoup 2018) uses IEEE-754 doubles for
//! the divisions by `q_i`. The paper's hardware replaces this with integer
//! multiplication by stored reciprocals: "The constant reciprocals are stored
//! in the ROM memory with a precision of 89-bits after the decimal point.
//! Actually the first 29 bits after the decimal point in each reciprocal
//! `1/q_i` are all-zeros. Hence, the multiplications are actually computed
//! between 30-bit `a'_i` and 60 non-zero bits of `1/q_i`." (§V-B2)
//!
//! [`SmallReciprocal`] implements exactly that datapath. [`WideReciprocal`]
//! is the long-integer analogue used by the *traditional* architecture
//! (Fig. 5 / Fig. 8), where division by `q` (180-bit) or by `q` of a 390-bit
//! value "is performed by multiplying ... with the reciprocal of q".

use crate::bigint::UBig;
use serde::{Deserialize, Serialize};

/// Reciprocal of a ~30-bit modulus with 89 fractional bits, stored as the
/// 60 non-zero bits (the paper's ROM layout).
///
/// # Example
///
/// ```
/// use hefv_math::fixed::SmallReciprocal;
/// let r = SmallReciprocal::new(1_073_479_681);
/// // round(sum_i y_i / q) computed purely with integer ops:
/// let v = SmallReciprocal::round_sum(&[r.mul(1_000_000_000)]);
/// assert_eq!(v, 1); // 1e9 / 1.073e9 ≈ 0.93 → rounds to 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmallReciprocal {
    q: u64,
    /// `floor(2^89 / q)`; for a 30-bit `q` this has at most 60 bits.
    recip: u64,
}

impl SmallReciprocal {
    /// Fractional precision in bits (the paper's value).
    pub const FRAC_BITS: u32 = 89;

    /// Builds the stored reciprocal `floor(2^89 / q)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[2^29, 2^31)` — the hardware's 30-bit lane —
    /// because larger `q` would overflow the 60-bit ROM word.
    pub fn new(q: u64) -> Self {
        assert!(
            ((1u64 << 29)..(1u64 << 31)).contains(&q),
            "SmallReciprocal requires a 30/31-bit modulus, got {q}"
        );
        let recip = ((1u128 << Self::FRAC_BITS) / q as u128) as u64;
        SmallReciprocal { q, recip }
    }

    /// The modulus.
    pub fn q(&self) -> u64 {
        self.q
    }

    /// The stored 60-bit reciprocal word.
    pub fn stored_word(&self) -> u64 {
        self.recip
    }

    /// One MAC term: `y * (1/q)` in Q89 fixed point (`y < 2^31`).
    #[inline]
    pub fn mul(&self, y: u64) -> u128 {
        debug_assert!(y < 1 << 31);
        y as u128 * self.recip as u128
    }

    /// Rounds a sum of up to 2^33 Q89 terms to the nearest integer —
    /// the `v' = round(Σ y_i/q_i)` step of HPS Eq. (2).
    #[inline]
    pub fn round_sum(terms: &[u128]) -> u64 {
        let sum: u128 = terms.iter().sum();
        ((sum + (1u128 << (Self::FRAC_BITS - 1))) >> Self::FRAC_BITS) as u64
    }
}

/// Reciprocal of an arbitrary-size modulus with a configurable fractional
/// precision, used by the traditional-CRT division blocks.
///
/// With `frac_bits >= dividend.bits() + 1`, [`WideReciprocal::div_round`]
/// is *exact* (a final correction step absorbs the approximation error,
/// mirroring the RTL's conditional subtract).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WideReciprocal {
    modulus: UBig,
    frac_bits: usize,
    recip: UBig,
}

impl WideReciprocal {
    /// Builds `floor(2^frac_bits / modulus)`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn new(modulus: UBig, frac_bits: usize) -> Self {
        assert!(!modulus.is_zero(), "modulus must be nonzero");
        let recip = (&UBig::one() << frac_bits).div_rem(&modulus).0;
        WideReciprocal {
            modulus,
            frac_bits,
            recip,
        }
    }

    /// The reciprocal's fractional precision.
    pub fn frac_bits(&self) -> usize {
        self.frac_bits
    }

    /// The modulus.
    pub fn modulus(&self) -> &UBig {
        &self.modulus
    }

    /// Approximate floor division `x / modulus` by reciprocal
    /// multiplication, then exact correction (at most two adjustment steps
    /// when `frac_bits >= x.bits()`).
    pub fn div_floor(&self, x: &UBig) -> UBig {
        let mut quot = &(x * &self.recip) >> self.frac_bits;
        // Correct: ensure quot*m <= x < (quot+1)*m.
        let mut prod = &quot * &self.modulus;
        while &prod > x {
            quot -= &UBig::one();
            prod -= &self.modulus;
        }
        while &(&prod + &self.modulus) <= x {
            quot += &UBig::one();
            prod += &self.modulus;
        }
        quot
    }

    /// Exact rounded division `round(x / modulus)` (ties up).
    pub fn div_round(&self, x: &UBig) -> UBig {
        let q = self.div_floor(x);
        let rem = x - &(&q * &self.modulus);
        if (&rem + &rem) >= self.modulus {
            &q + &UBig::one()
        } else {
            q
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P30: u64 = 1_073_479_681;

    #[test]
    fn small_reciprocal_top_29_bits_zero() {
        // The paper's observation: 1/q for a 30-bit q has 29 leading zero
        // fraction bits, so the stored word fits in 60 bits.
        let r = SmallReciprocal::new(P30);
        assert!(r.stored_word() < 1 << 60);
        assert!(r.stored_word() >= 1 << 59);
    }

    #[test]
    fn small_round_matches_rational() {
        let r = SmallReciprocal::new(P30);
        for y in [0u64, 1, P30 / 2, P30 - 1, P30, 2 * P30 - 1] {
            let fixed = SmallReciprocal::round_sum(&[r.mul(y)]);
            let exact = (2 * y + P30) / (2 * P30); // round(y/q)
            assert_eq!(fixed, exact, "y={y}");
        }
    }

    #[test]
    fn small_round_sum_of_many() {
        // 13 terms, as in the paper's 13-prime basis.
        let qs: Vec<u64> = (0..13).map(|i| P30 - 8192 * i as u64).collect();
        let rs: Vec<SmallReciprocal> = qs.iter().map(|&q| SmallReciprocal::new(q)).collect();
        let ys: Vec<u64> = qs.iter().map(|&q| q / 3 + 7).collect();
        let terms: Vec<u128> = rs.iter().zip(&ys).map(|(r, &y)| r.mul(y)).collect();
        let fixed = SmallReciprocal::round_sum(&terms);
        let float: f64 = ys.iter().zip(&qs).map(|(&y, &q)| y as f64 / q as f64).sum();
        assert_eq!(fixed, float.round() as u64);
    }

    #[test]
    #[should_panic(expected = "30/31-bit modulus")]
    fn small_rejects_wrong_size() {
        SmallReciprocal::new(12345);
    }

    #[test]
    fn wide_div_floor_exact() {
        let m = UBig::from_decimal("123456789012345678901234567890123").unwrap();
        let r = WideReciprocal::new(m.clone(), 512);
        for mult in [0u64, 1, 7, 1000] {
            let x = &(&m * &UBig::from(mult)) + &UBig::from(41u64);
            assert_eq!(r.div_floor(&x), UBig::from(mult));
        }
    }

    #[test]
    fn wide_div_round_matches_bigint() {
        let m = UBig::from_decimal("987654321987654321987654321").unwrap();
        let r = WideReciprocal::new(m.clone(), 400);
        let xs = [
            UBig::from_decimal("123456789123456789123456789123456789").unwrap(),
            UBig::from(5u64),
            &m >> 1, // just below the rounding boundary
            &(&m >> 1) + &UBig::one(),
        ];
        for x in xs {
            assert_eq!(r.div_round(&x), x.div_round(&m), "x={x}");
        }
    }

    #[test]
    fn wide_low_precision_still_corrected() {
        // Even with insufficient precision the correction loop makes the
        // result exact (just slower) — this exercises the adjust path.
        let m = UBig::from(1_000_003u64);
        let r = WideReciprocal::new(m.clone(), 24);
        let x = UBig::from(123_456_789_012u64);
        assert_eq!(r.div_floor(&x), UBig::from(123_456_789_012u64 / 1_000_003));
    }
}
