//! Residue Number System contexts: CRT, base extension and scaling.
//!
//! This module implements both algorithm families the paper evaluates:
//!
//! * **Traditional CRT** (§IV-C "Using traditional CRT", Fig. 5/8): exact
//!   reconstruction with long-integer arithmetic ([`Extender::extend_exact`],
//!   [`ScaleContext::scale_exact`]), built on [`crate::bigint`].
//! * **HPS approximate CRT** (§IV-C/D "Using approximate CRT", Fig. 6/9,
//!   after Halevi-Polyakov-Shoup 2018): all arithmetic on 30-bit words, with
//!   the quotient `v' = ⌈Σ (a_i·q̃_i mod q_i)/q_i⌋` computed either in
//!   `f64` (the HPS paper) or in the paper's 89-bit fixed point
//!   ([`crate::fixed::SmallReciprocal`]).
//!
//! Because the quotient uses *rounding* (not floor), the extension produces
//! the residues of the **centered** representative — exactly what FV's
//! multiplication needs. Mis-rounding probability is ≈ 2^-47 per coefficient
//! for `f64` and ≈ 2^-53 for the fixed-point variant, and a mis-round only
//! perturbs the result by one multiple of the source modulus, which FV
//! absorbs as noise (§IV-C: "This negligible error has in practice no impact
//! on the correctness of HE").

use crate::bigint::{center, IBig, UBig};
use crate::fixed::SmallReciprocal;
use crate::zq::Modulus;
use serde::{Deserialize, Serialize};

/// Upper bound on RNS limbs per basis supported by the allocation-free
/// column-streaming kernels (their per-coefficient scratch rows live on the
/// stack at this size, so the hot loops perform zero heap allocation). Far
/// above any realistic parameter set — the paper's largest shape uses
/// 12 + 13 limbs.
pub const MAX_STREAM_LIMBS: usize = 64;

/// Which arithmetic computes the HPS approximate quotient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HpsPrecision {
    /// IEEE-754 double precision, as in the original HPS paper (error 2^-53).
    F64,
    /// The paper's 89-bit fixed-point reciprocals stored in ROM (§V-B2).
    Fixed,
}

/// An RNS basis: pairwise-coprime moduli `m_0, …, m_{k-1}` with the CRT
/// constants for exact reconstruction.
///
/// # Example
///
/// ```
/// use hefv_math::{bigint::UBig, rns::RnsBasis};
/// let basis = RnsBasis::new(&[1_073_479_681, 1_073_184_769]).unwrap();
/// let x = UBig::from(123_456_789_012_345u64);
/// let residues = basis.encode(&x);
/// assert_eq!(basis.decode(&residues), x);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RnsBasis {
    moduli: Vec<Modulus>,
    product: UBig,
    /// `M / m_i` for each i.
    m_over_mi: Vec<UBig>,
    /// `(M/m_i)^{-1} mod m_i` — the paper's `q̃_i`.
    mi_tilde: Vec<u64>,
}

impl RnsBasis {
    /// Builds a basis from distinct primes.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or contains duplicates.
    pub fn new(primes: &[u64]) -> Result<Self, String> {
        if primes.is_empty() {
            return Err("RNS basis needs at least one modulus".into());
        }
        for (i, &a) in primes.iter().enumerate() {
            if !crate::primes::is_prime(a) {
                return Err(format!("modulus {a} is not prime"));
            }
            for &b in &primes[i + 1..] {
                if a == b {
                    return Err(format!("duplicate modulus {a}"));
                }
            }
        }
        let moduli: Vec<Modulus> = primes.iter().map(|&p| Modulus::new(p)).collect();
        let mut product = UBig::one();
        for &p in primes {
            product = product.mul_u64(p);
        }
        let m_over_mi: Vec<UBig> = primes
            .iter()
            .map(|&p| product.div_rem(&UBig::from(p)).0)
            .collect();
        let mi_tilde: Vec<u64> = moduli
            .iter()
            .zip(&m_over_mi)
            .map(|(m, moi)| m.inv(moi.rem_u64(m.value())))
            .collect();
        Ok(RnsBasis {
            moduli,
            product,
            m_over_mi,
            mi_tilde,
        })
    }

    /// Number of moduli in the basis.
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// True iff the basis has no moduli (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// The i-th modulus.
    pub fn modulus(&self, i: usize) -> &Modulus {
        &self.moduli[i]
    }

    /// All moduli.
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// The basis product `M`.
    pub fn product(&self) -> &UBig {
        &self.product
    }

    /// The CRT constant `q̃_i = (M/m_i)^{-1} mod m_i`.
    pub fn tilde(&self, i: usize) -> u64 {
        self.mi_tilde[i]
    }

    /// `M / m_i`.
    pub fn m_over(&self, i: usize) -> &UBig {
        &self.m_over_mi[i]
    }

    /// Residues of `x mod M`.
    pub fn encode(&self, x: &UBig) -> Vec<u64> {
        self.moduli.iter().map(|m| x.rem_u64(m.value())).collect()
    }

    /// Residues of a signed value.
    pub fn encode_signed(&self, x: &IBig) -> Vec<u64> {
        self.moduli
            .iter()
            .map(|m| x.rem_euclid(&UBig::from(m.value())).to_u64().unwrap())
            .collect()
    }

    /// Exact CRT reconstruction into `[0, M)` (Theorem 1 of the paper).
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the basis size.
    pub fn decode(&self, residues: &[u64]) -> UBig {
        assert_eq!(residues.len(), self.len(), "residue count mismatch");
        let mut acc = UBig::zero();
        for (i, &r) in residues.iter().enumerate() {
            // y_i = a_i * tilde_i mod m_i ; acc += y_i * (M/m_i)
            let y = self.moduli[i].mul(self.moduli[i].reduce(r), self.mi_tilde[i]);
            acc += &self.m_over_mi[i].mul_u64(y);
        }
        acc.div_rem(&self.product).1
    }

    /// CRT reconstruction to the centered representative in `(-M/2, M/2]`.
    pub fn decode_centered(&self, residues: &[u64]) -> IBig {
        let v = self.decode(residues);
        center(&v, &self.product)
    }
}

/// Base extension from one RNS basis to another — the paper's `Lift q→Q`
/// computational kernel (and, in the reverse direction, the second half of
/// `Scale Q→q`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Extender {
    from: RnsBasis,
    to: RnsBasis,
    /// `(M_from/m_i) mod t_j`, indexed `[i][j]`.
    cross: Vec<Vec<u64>>,
    /// `M_from mod t_j`.
    product_mod_to: Vec<u64>,
    /// Fixed-point reciprocals `1/m_i`.
    recips: Vec<SmallReciprocal>,
    /// `1.0 / m_i` as doubles.
    recips_f64: Vec<f64>,
}

impl Extender {
    /// Precomputes the extension tables between two bases.
    pub fn new(from: &RnsBasis, to: &RnsBasis) -> Self {
        let cross = (0..from.len())
            .map(|i| {
                (0..to.len())
                    .map(|j| from.m_over(i).rem_u64(to.modulus(j).value()))
                    .collect()
            })
            .collect();
        let product_mod_to = (0..to.len())
            .map(|j| from.product().rem_u64(to.modulus(j).value()))
            .collect();
        let recips = from
            .moduli()
            .iter()
            .map(|m| SmallReciprocal::new(m.value()))
            .collect();
        let recips_f64 = from
            .moduli()
            .iter()
            .map(|m| 1.0 / m.value() as f64)
            .collect();
        Extender {
            from: from.clone(),
            to: to.clone(),
            cross,
            product_mod_to,
            recips,
            recips_f64,
        }
    }

    /// The source basis.
    pub fn from_basis(&self) -> &RnsBasis {
        &self.from
    }

    /// The destination basis.
    pub fn to_basis(&self) -> &RnsBasis {
        &self.to
    }

    /// ROM constants `(M_from/m_i) mod t_j`, indexed `[i][j]` — the
    /// contents of the hardware's Block-2 constant memory (Fig. 6).
    pub fn cross_table(&self) -> &[Vec<u64>] {
        &self.cross
    }

    /// ROM constants `M_from mod t_j` (Block 4 of Fig. 6).
    pub fn product_mod_to_table(&self) -> &[u64] {
        &self.product_mod_to
    }

    /// The stored fixed-point reciprocals `1/m_i` (Block 3 of Fig. 6).
    pub fn reciprocal_roms(&self) -> &[SmallReciprocal] {
        &self.recips
    }

    /// The `y_i = a_i · q̃_i mod q_i` premultiplication (Fig. 6 "Block 1"),
    /// written into a caller-provided scratch row (the hot path calls this
    /// once per coefficient and must not allocate).
    fn premultiply_into(&self, residues: &[u64], ys: &mut [u64]) {
        assert_eq!(residues.len(), self.from.len(), "residue count mismatch");
        for (i, y) in ys.iter_mut().enumerate() {
            let m = self.from.modulus(i);
            *y = m.mul(m.reduce(residues[i]), self.from.tilde(i));
        }
    }

    /// The HPS quotient `v' = ⌈Σ y_i/q_i⌋` (Fig. 6 "Block 3").
    fn quotient(&self, ys: &[u64], precision: HpsPrecision) -> u64 {
        match precision {
            HpsPrecision::F64 => {
                let s: f64 = ys
                    .iter()
                    .zip(&self.recips_f64)
                    .map(|(&y, r)| y as f64 * r)
                    .sum();
                s.round() as u64
            }
            HpsPrecision::Fixed => {
                // Exact u128 accumulation (each term < 2^91, k ≤ a few
                // dozen), equivalent to `SmallReciprocal::round_sum` but
                // without materializing the term list.
                let s: u128 = ys.iter().zip(&self.recips).map(|(&y, r)| r.mul(y)).sum();
                ((s + (1u128 << (SmallReciprocal::FRAC_BITS - 1))) >> SmallReciprocal::FRAC_BITS)
                    as u64
            }
        }
    }

    /// Shared HPS extension kernel: premultiplied `ys` in, one output
    /// residue per destination modulus out through `put(j, value)`.
    #[inline]
    fn extend_core_hps(
        &self,
        ys: &[u64],
        precision: HpsPrecision,
        mut put: impl FnMut(usize, u64),
    ) {
        let v = self.quotient(ys, precision);
        for j in 0..self.to.len() {
            let m = self.to.modulus(j);
            let mut acc = 0u128;
            for (&y, row) in ys.iter().zip(&self.cross) {
                acc += y as u128 * row[j] as u128;
            }
            let pos = m.reduce_u128(acc);
            let neg = m.reduce_u128(v as u128 * self.product_mod_to[j] as u128);
            put(j, m.sub(pos, neg));
        }
    }

    /// Exact base extension of the **centered** representative, via long
    /// integers — the traditional-CRT datapath (Fig. 5).
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the source basis size.
    pub fn extend_exact(&self, residues: &[u64]) -> Vec<u64> {
        let centered = self.from.decode_centered(residues);
        self.to.encode_signed(&centered)
    }

    /// HPS approximate base extension (Eq. 2 of the paper): all arithmetic
    /// on 30-bit words. Because the quotient rounds, the result is the
    /// extension of the centered representative (with mis-round probability
    /// ≤ 2^-47, in which case the result is off by one multiple of the
    /// source product — absorbed by FV as noise).
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the source basis size.
    pub fn extend_hps(&self, residues: &[u64], precision: HpsPrecision) -> Vec<u64> {
        let mut ys = vec![0u64; self.from.len()];
        self.premultiply_into(residues, &mut ys);
        let mut out = vec![0u64; self.to.len()];
        self.extend_core_hps(&ys, precision, |j, v| out[j] = v);
        out
    }

    /// HPS extension of a column range of a flat residue-major polynomial.
    ///
    /// `src` holds the source polynomial as one contiguous
    /// `from.len() × n` buffer (limb-major: coefficient `c` of residue `i`
    /// at `src[i·n + c]`). The destination residues of columns `cols` are
    /// written into `out`, laid out `to.len() × cols.len()` with stride
    /// `cols.len()`. No allocation happens per coefficient — this is the
    /// software analogue of the paper's block-pipelined Lift datapath
    /// streaming one coefficient per initiation interval.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`out` sizes or the column range are inconsistent.
    pub fn extend_poly_hps_cols_into(
        &self,
        src: &[u64],
        n: usize,
        cols: std::ops::Range<usize>,
        out: &mut [u64],
        precision: HpsPrecision,
    ) {
        let k = self.from.len();
        let l = self.to.len();
        assert_eq!(src.len(), k * n, "flat source length mismatch");
        assert!(cols.end <= n, "column range out of bounds");
        let w = cols.len();
        assert_eq!(out.len(), l * w, "flat destination length mismatch");
        assert!(k <= MAX_STREAM_LIMBS, "basis exceeds MAX_STREAM_LIMBS");
        let mut ys_buf = [0u64; MAX_STREAM_LIMBS];
        let ys = &mut ys_buf[..k];
        for (o, c) in cols.enumerate() {
            for (i, y) in ys.iter_mut().enumerate() {
                let m = self.from.modulus(i);
                *y = m.mul(m.reduce(src[i * n + c]), self.from.tilde(i));
            }
            self.extend_core_hps(ys, precision, |j, v| out[j * w + o] = v);
        }
    }

    /// HPS extension of a whole flat residue-major polynomial into a
    /// caller-provided `to.len() × n` buffer. See
    /// [`Extender::extend_poly_hps_cols_into`] for the layout.
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes are inconsistent.
    pub fn extend_poly_hps_into(
        &self,
        src: &[u64],
        n: usize,
        out: &mut [u64],
        precision: HpsPrecision,
    ) {
        self.extend_poly_hps_cols_into(src, n, 0..n, out, precision);
    }

    /// Exact (long-integer) extension of a column range; the oracle and
    /// the traditional architecture's behaviour. Layout as in
    /// [`Extender::extend_poly_hps_cols_into`].
    ///
    /// # Panics
    ///
    /// Panics if `src`/`out` sizes or the column range are inconsistent.
    pub fn extend_poly_exact_cols_into(
        &self,
        src: &[u64],
        n: usize,
        cols: std::ops::Range<usize>,
        out: &mut [u64],
    ) {
        let k = self.from.len();
        let l = self.to.len();
        assert_eq!(src.len(), k * n, "flat source length mismatch");
        assert!(cols.end <= n, "column range out of bounds");
        let w = cols.len();
        assert_eq!(out.len(), l * w, "flat destination length mismatch");
        let mut buf = vec![0u64; k];
        for (o, c) in cols.enumerate() {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = src[i * n + c];
            }
            let centered = self.from.decode_centered(&buf);
            for j in 0..l {
                let m = self.to.modulus(j);
                out[j * w + o] = centered
                    .rem_euclid(&UBig::from(m.value()))
                    .to_u64()
                    .expect("residue fits u64");
            }
        }
    }

    /// Exact extension of a whole flat polynomial into a caller-provided
    /// `to.len() × n` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes are inconsistent.
    pub fn extend_poly_exact_into(&self, src: &[u64], n: usize, out: &mut [u64]) {
        self.extend_poly_exact_cols_into(src, n, 0..n, out);
    }
}

/// A paired RNS context: the ciphertext basis `q` and the extension basis
/// `p` with `Q = q·p`, plus both direction extenders.
///
/// This mirrors the paper's setup: `q` is six 30-bit primes (180 bits), `p`
/// seven more (`Q` is 390 bits).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RnsContext {
    base_q: RnsBasis,
    base_p: RnsBasis,
    /// Basis for all of `Q = q·p` (q primes then p primes).
    base_full: RnsBasis,
    big_q: UBig,
    ext_q_to_p: Extender,
    ext_p_to_q: Extender,
}

impl RnsContext {
    /// Builds a context from the `q`-basis primes and `p`-basis primes.
    ///
    /// # Errors
    ///
    /// Returns an error if any basis is invalid or the primes overlap.
    pub fn new(q_primes: &[u64], p_primes: &[u64]) -> Result<Self, String> {
        let base_q = RnsBasis::new(q_primes)?;
        let base_p = RnsBasis::new(p_primes)?;
        let all: Vec<u64> = q_primes.iter().chain(p_primes).copied().collect();
        let base_full = RnsBasis::new(&all)?; // rejects overlaps
        let big_q = &base_q.product().clone() * base_p.product();
        let ext_q_to_p = Extender::new(&base_q, &base_p);
        let ext_p_to_q = Extender::new(&base_p, &base_q);
        Ok(RnsContext {
            base_q,
            base_p,
            base_full,
            big_q,
            ext_q_to_p,
            ext_p_to_q,
        })
    }

    /// The ciphertext basis `q`.
    pub fn base_q(&self) -> &RnsBasis {
        &self.base_q
    }

    /// The extension basis `p`.
    pub fn base_p(&self) -> &RnsBasis {
        &self.base_p
    }

    /// The combined basis of `Q = q·p` (q moduli first).
    pub fn base_full(&self) -> &RnsBasis {
        &self.base_full
    }

    /// `Q = q · p`.
    pub fn big_q(&self) -> &UBig {
        &self.big_q
    }

    /// The `q → p` extender (the `Lift q→Q` kernel).
    pub fn lift(&self) -> &Extender {
        &self.ext_q_to_p
    }

    /// The `p → q` extender (second half of `Scale Q→q`).
    pub fn unlift(&self) -> &Extender {
        &self.ext_p_to_q
    }
}

/// Precomputed constants for `Scale Q→q` with plaintext modulus `t`:
/// `d = ⌈t·a/q⌋ mod q`, for `a` given in the full basis of `Q`.
///
/// Follows §IV-D: step 1 computes `d` in the RNS of `p` with 30-bit
/// arithmetic; step 2 switches basis `p → q` using the lift machinery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleContext {
    t: u64,
    /// `Q̃_i = (Q/q_i)^{-1} mod q_i` for the q-basis part.
    big_q_tilde_q: Vec<u64>,
    /// `Q̃_j = (Q/p_j)^{-1} mod p_j` for the p-basis part.
    big_q_tilde_p: Vec<u64>,
    /// `t·(p/p_j) mod p_m`, indexed `[j][m]`.
    c_jm: Vec<Vec<u64>>,
    /// `floor(t·p/q_i) mod p_m`, indexed `[i][m]` (the constants `I_i`).
    int_im: Vec<Vec<u64>>,
    /// `frac(t·p/q_i)` in Q64 fixed point (the constants `R_i`, §V-C).
    frac_fixed: Vec<u64>,
    /// `frac(t·p/q_i)` as doubles.
    frac_f64: Vec<f64>,
}

impl ScaleContext {
    /// Precomputes the scaling constants for plaintext modulus `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero or not far smaller than every prime.
    pub fn new(ctx: &RnsContext, t: u64) -> Self {
        assert!(t >= 1, "plaintext modulus must be positive");
        let qb = ctx.base_q();
        let pb = ctx.base_p();
        assert!(
            t < pb.modulus(0).value() / 2,
            "plaintext modulus too large for this basis"
        );
        let big_q = ctx.big_q();

        let big_q_tilde_q = (0..qb.len())
            .map(|i| {
                let m = qb.modulus(i);
                let q_over = big_q.div_rem(&UBig::from(m.value())).0;
                m.inv(q_over.rem_u64(m.value()))
            })
            .collect();
        let big_q_tilde_p = (0..pb.len())
            .map(|j| {
                let m = pb.modulus(j);
                let q_over = big_q.div_rem(&UBig::from(m.value())).0;
                m.inv(q_over.rem_u64(m.value()))
            })
            .collect();

        let p_prod = pb.product();
        let c_jm = (0..pb.len())
            .map(|j| {
                let tp_over_pj = pb.m_over(j).mul_u64(t);
                (0..pb.len())
                    .map(|m| tp_over_pj.rem_u64(pb.modulus(m).value()))
                    .collect()
            })
            .collect();

        let mut int_im = Vec::with_capacity(qb.len());
        let mut frac_fixed = Vec::with_capacity(qb.len());
        let mut frac_f64 = Vec::with_capacity(qb.len());
        for i in 0..qb.len() {
            let qi = qb.modulus(i).value();
            let tp = p_prod.mul_u64(t);
            let (ipart, rem) = tp.div_rem(&UBig::from(qi));
            int_im.push(
                (0..pb.len())
                    .map(|m| ipart.rem_u64(pb.modulus(m).value()))
                    .collect(),
            );
            let r = rem.to_u64().unwrap();
            frac_fixed.push((((r as u128) << 64) / qi as u128) as u64);
            frac_f64.push(r as f64 / qi as f64);
        }
        ScaleContext {
            t,
            big_q_tilde_q,
            big_q_tilde_p,
            c_jm,
            int_im,
            frac_fixed,
            frac_f64,
        }
    }

    /// The plaintext modulus `t`.
    pub fn t(&self) -> u64 {
        self.t
    }

    /// ROM constants `Q̃_i mod q_i` over the q basis (Fig. 9 Block 3).
    pub fn big_q_tilde_q_table(&self) -> &[u64] {
        &self.big_q_tilde_q
    }

    /// ROM constants `Q̃_j mod p_j` over the p basis.
    pub fn big_q_tilde_p_table(&self) -> &[u64] {
        &self.big_q_tilde_p
    }

    /// ROM constants `t·(p/p_j) mod p_m`, indexed `[j][m]`.
    pub fn c_jm_table(&self) -> &[Vec<u64>] {
        &self.c_jm
    }

    /// ROM constants `floor(t·p/q_i) mod p_m` (the integer parts `I_i`).
    pub fn int_table(&self) -> &[Vec<u64>] {
        &self.int_im
    }

    /// ROM constants `frac(t·p/q_i)` in Q64 (the real parts `R_i`).
    pub fn frac_fixed_table(&self) -> &[u64] {
        &self.frac_fixed
    }

    /// Step 1 of HPS `Scale Q→q`: computes `d = ⌈t·a/q⌋ mod p_m` for every
    /// `p`-basis modulus, using only small-number arithmetic (Fig. 9,
    /// Blocks 1–3).
    ///
    /// `a_q` are the residues of `a` in the q basis, `a_p` in the p basis.
    ///
    /// # Panics
    ///
    /// Panics if residue counts mismatch the context bases.
    pub fn scale_to_p(
        &self,
        ctx: &RnsContext,
        a_q: &[u64],
        a_p: &[u64],
        precision: HpsPrecision,
    ) -> Vec<u64> {
        let qb = ctx.base_q();
        let pb = ctx.base_p();
        assert_eq!(a_q.len(), qb.len(), "q-basis residue count mismatch");
        assert_eq!(a_p.len(), pb.len(), "p-basis residue count mismatch");
        let mut yq = vec![0u64; qb.len()];
        let mut yp = vec![0u64; pb.len()];
        let mut d_p = vec![0u64; pb.len()];
        self.scale_to_p_core(
            qb,
            pb,
            |i| a_q[i],
            |j| a_p[j],
            &mut yq,
            &mut yp,
            &mut d_p,
            precision,
        );
        d_p
    }

    /// Fig. 9 Blocks 1–3 on one coefficient, running entirely on
    /// caller-provided scratch rows (`yq`/`yp`) — the single source of the
    /// step-1 arithmetic shared by the scalar [`ScaleContext::scale_to_p`]
    /// and the polynomial column-streaming path. `a(i)` / `b(j)` yield the
    /// q- and p-basis residues of the coefficient; `d_p` receives
    /// `⌈t·a/q⌋ mod p_m`.
    #[allow(clippy::too_many_arguments)]
    fn scale_to_p_core(
        &self,
        qb: &RnsBasis,
        pb: &RnsBasis,
        a: impl Fn(usize) -> u64,
        b: impl Fn(usize) -> u64,
        yq: &mut [u64],
        yp: &mut [u64],
        d_p: &mut [u64],
        precision: HpsPrecision,
    ) {
        // y_k = a_k * Q̃_k mod m_k for every modulus of Q.
        for (i, y) in yq.iter_mut().enumerate() {
            let m = qb.modulus(i);
            *y = m.mul(m.reduce(a(i)), self.big_q_tilde_q[i]);
        }
        for (j, y) in yp.iter_mut().enumerate() {
            let m = pb.modulus(j);
            *y = m.mul(m.reduce(b(j)), self.big_q_tilde_p[j]);
        }

        // Rounded fractional contribution G = ⌈Σ_i y_i · frac(t·p/q_i)⌋.
        let g: u64 = match precision {
            HpsPrecision::F64 => {
                let s: f64 = yq
                    .iter()
                    .zip(&self.frac_f64)
                    .map(|(&y, &f)| y as f64 * f)
                    .sum();
                s.round() as u64
            }
            HpsPrecision::Fixed => {
                let s: u128 = yq
                    .iter()
                    .zip(&self.frac_fixed)
                    .map(|(&y, &f)| y as u128 * f as u128)
                    .sum();
                ((s + (1u128 << 63)) >> 64) as u64
            }
        };

        for (m_idx, d) in d_p.iter_mut().enumerate() {
            let modulus = pb.modulus(m_idx);
            let mut acc = g as u128;
            for (j, &y) in yp.iter().enumerate() {
                acc += y as u128 * self.c_jm[j][m_idx] as u128;
            }
            for (i, &y) in yq.iter().enumerate() {
                acc += y as u128 * self.int_im[i][m_idx] as u128;
            }
            *d = modulus.reduce_u128(acc);
        }
    }

    /// Full HPS `Scale Q→q` on one coefficient: step 1 then the `p → q`
    /// basis switch (which the paper implements by reusing the `Lift`
    /// datapath).
    pub fn scale_hps(
        &self,
        ctx: &RnsContext,
        a_q: &[u64],
        a_p: &[u64],
        precision: HpsPrecision,
    ) -> Vec<u64> {
        let d_p = self.scale_to_p(ctx, a_q, a_p, precision);
        ctx.unlift().extend_hps(&d_p, precision)
    }

    /// Exact `Scale Q→q` via long integers (the traditional architecture
    /// and the property-test oracle): reconstruct `a mod Q`, center,
    /// compute `⌈t·a/q⌋`, reduce into the q basis.
    pub fn scale_exact(&self, ctx: &RnsContext, a_full: &[u64]) -> Vec<u64> {
        let a = ctx.base_full().decode_centered(a_full);
        let d = a.scale_round(&UBig::from(self.t), ctx.base_q().product());
        ctx.base_q().encode_signed(&d)
    }

    /// HPS `Scale Q→q` of a column range of a flat residue-major
    /// polynomial over the full `Q` basis (q residues first: coefficient
    /// `c` of residue `i` at `src[i·n + c]`, `i < k + l`). Output columns
    /// land in `out`, laid out `k × cols.len()` with stride `cols.len()`.
    /// Per-coefficient work runs entirely on hoisted scratch rows — no
    /// allocation inside the loop.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`out` sizes or the column range are inconsistent.
    pub fn scale_poly_hps_cols_into(
        &self,
        ctx: &RnsContext,
        src: &[u64],
        n: usize,
        cols: std::ops::Range<usize>,
        out: &mut [u64],
        precision: HpsPrecision,
    ) {
        let qb = ctx.base_q();
        let pb = ctx.base_p();
        let (k, l) = (qb.len(), pb.len());
        assert_eq!(src.len(), (k + l) * n, "flat source length mismatch");
        assert!(cols.end <= n, "column range out of bounds");
        let w = cols.len();
        assert_eq!(out.len(), k * w, "flat destination length mismatch");
        let unlift = ctx.unlift();
        assert!(
            k <= MAX_STREAM_LIMBS && l <= MAX_STREAM_LIMBS,
            "basis exceeds MAX_STREAM_LIMBS"
        );
        let mut yq_buf = [0u64; MAX_STREAM_LIMBS];
        let mut yp_buf = [0u64; MAX_STREAM_LIMBS];
        let mut d_p_buf = [0u64; MAX_STREAM_LIMBS];
        let mut ys_buf = [0u64; MAX_STREAM_LIMBS];
        let yq = &mut yq_buf[..k];
        let yp = &mut yp_buf[..l];
        let d_p = &mut d_p_buf[..l];
        let ys = &mut ys_buf[..l];
        for (o, c) in cols.enumerate() {
            // Step 1 (Fig. 9 Blocks 1–3): d = ⌈t·a/q⌋ in the p basis —
            // the same core the scalar path runs, fed by strided reads.
            self.scale_to_p_core(
                qb,
                pb,
                |i| src[i * n + c],
                |j| src[(k + j) * n + c],
                yq,
                yp,
                d_p,
                precision,
            );
            // Step 2: basis switch p → q through the Lift datapath.
            unlift.premultiply_into(d_p, ys);
            unlift.extend_core_hps(ys, precision, |i, v| out[i * w + o] = v);
        }
    }

    /// HPS `Scale Q→q` of a whole flat polynomial into a caller-provided
    /// `k × n` buffer. See [`ScaleContext::scale_poly_hps_cols_into`].
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes are inconsistent.
    pub fn scale_poly_hps_into(
        &self,
        ctx: &RnsContext,
        src: &[u64],
        n: usize,
        out: &mut [u64],
        precision: HpsPrecision,
    ) {
        self.scale_poly_hps_cols_into(ctx, src, n, 0..n, out, precision);
    }

    /// Exact `Scale Q→q` of a column range (oracle / traditional
    /// architecture); layout as in
    /// [`ScaleContext::scale_poly_hps_cols_into`].
    ///
    /// # Panics
    ///
    /// Panics if `src`/`out` sizes or the column range are inconsistent.
    pub fn scale_poly_exact_cols_into(
        &self,
        ctx: &RnsContext,
        src: &[u64],
        n: usize,
        cols: std::ops::Range<usize>,
        out: &mut [u64],
    ) {
        let k = ctx.base_q().len();
        let l = ctx.base_p().len();
        assert_eq!(src.len(), (k + l) * n, "flat source length mismatch");
        assert!(cols.end <= n, "column range out of bounds");
        let w = cols.len();
        assert_eq!(out.len(), k * w, "flat destination length mismatch");
        let mut buf = vec![0u64; k + l];
        for (o, c) in cols.enumerate() {
            for (i, b) in buf.iter_mut().enumerate() {
                *b = src[i * n + c];
            }
            let d = self.scale_exact(ctx, &buf);
            for (i, &v) in d.iter().enumerate() {
                out[i * w + o] = v;
            }
        }
    }

    /// Exact `Scale Q→q` of a whole flat polynomial into a caller-provided
    /// `k × n` buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer sizes are inconsistent.
    pub fn scale_poly_exact_into(&self, ctx: &RnsContext, src: &[u64], n: usize, out: &mut [u64]) {
        self.scale_poly_exact_cols_into(ctx, src, n, 0..n, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::ntt_primes;

    fn paper_context() -> RnsContext {
        let ps = ntt_primes(30, 4096, 13).unwrap();
        RnsContext::new(&ps[..6], &ps[6..]).unwrap()
    }

    #[test]
    fn basis_rejects_bad_input() {
        assert!(RnsBasis::new(&[]).is_err());
        assert!(RnsBasis::new(&[97, 97]).is_err());
        assert!(RnsContext::new(&[1_073_479_681], &[1_073_479_681]).is_err());
    }

    #[test]
    fn basis_rejects_composite() {
        assert!(RnsBasis::new(&[1_073_086_465]).is_err()); // divisible by 5
    }

    #[test]
    fn encode_decode_roundtrip() {
        let basis = RnsBasis::new(&ntt_primes(30, 64, 3).unwrap()).unwrap();
        let vals = [
            UBig::zero(),
            UBig::one(),
            UBig::from(u64::MAX),
            basis.product() - &UBig::one(),
        ];
        for v in vals {
            assert_eq!(basis.decode(&basis.encode(&v)), v);
        }
    }

    #[test]
    fn decode_centered_signs() {
        let basis = RnsBasis::new(&[97, 101]).unwrap();
        // -5 mod 9797
        let neg5 = basis.encode(&UBig::from(9797u64 - 5));
        let c = basis.decode_centered(&neg5);
        assert!(c.is_negative());
        assert_eq!(c.magnitude(), &UBig::from(5u64));
    }

    #[test]
    fn paper_bases_have_paper_sizes() {
        let ctx = paper_context();
        assert_eq!(ctx.base_q().len(), 6);
        assert_eq!(ctx.base_p().len(), 7);
        assert_eq!(ctx.base_q().product().bits(), 180, "q is 180-bit");
        assert_eq!(ctx.big_q().bits(), 390, "Q is 390-bit");
    }

    #[test]
    fn exact_extension_is_centered() {
        let ctx = paper_context();
        let q = ctx.base_q().product().clone();
        // a = q - 3 represents -3; extension must give -3 mod p_j.
        let a = &q - &UBig::from(3u64);
        let res = ctx.base_q().encode(&a);
        let ext = ctx.lift().extend_exact(&res);
        for (j, &e) in ext.iter().enumerate() {
            let pj = ctx.base_p().modulus(j).value();
            assert_eq!(e, pj - 3, "j={j}");
        }
    }

    #[test]
    fn hps_extension_matches_exact_small_values() {
        let ctx = paper_context();
        for v in [0u64, 1, 2, 12345, 1 << 29] {
            let res = ctx.base_q().encode(&UBig::from(v));
            for prec in [HpsPrecision::F64, HpsPrecision::Fixed] {
                assert_eq!(
                    ctx.lift().extend_hps(&res, prec),
                    ctx.lift().extend_exact(&res),
                    "v={v} prec={prec:?}"
                );
            }
        }
    }

    #[test]
    fn hps_extension_matches_exact_random() {
        let ctx = paper_context();
        let mut state = 0xDEAD_BEEF_1234_5678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..500 {
            let res: Vec<u64> = (0..6)
                .map(|i| next() % ctx.base_q().modulus(i).value())
                .collect();
            let exact = ctx.lift().extend_exact(&res);
            assert_eq!(ctx.lift().extend_hps(&res, HpsPrecision::F64), exact);
            assert_eq!(ctx.lift().extend_hps(&res, HpsPrecision::Fixed), exact);
        }
    }

    #[test]
    fn poly_extension_layouts() {
        let ctx = paper_context();
        let n = 8;
        let mut src = vec![0u64; 6 * n];
        for i in 0..6 {
            for c in 0..n {
                src[i * n + c] =
                    (c as u64 * 7919 + i as u64 * 104729) % ctx.base_q().modulus(i).value();
            }
        }
        let mut hps = vec![0u64; 7 * n];
        let mut exact = vec![0u64; 7 * n];
        ctx.lift()
            .extend_poly_hps_into(&src, n, &mut hps, HpsPrecision::Fixed);
        ctx.lift().extend_poly_exact_into(&src, n, &mut exact);
        assert_eq!(hps, exact);
        // Column-range calls must agree with the full-width call.
        let mut cols = vec![0u64; 7 * 3];
        ctx.lift()
            .extend_poly_hps_cols_into(&src, n, 2..5, &mut cols, HpsPrecision::Fixed);
        for j in 0..7 {
            assert_eq!(&cols[j * 3..(j + 1) * 3], &hps[j * n + 2..j * n + 5]);
        }
        // And with the scalar per-coefficient path.
        let buf: Vec<u64> = (0..6).map(|i| src[i * n + 3]).collect();
        let scalar = ctx.lift().extend_hps(&buf, HpsPrecision::Fixed);
        for j in 0..7 {
            assert_eq!(scalar[j], hps[j * n + 3]);
        }
    }

    #[test]
    fn scale_exact_basic() {
        let ctx = paper_context();
        let sc = ScaleContext::new(&ctx, 2);
        // a = 3q → t·a/q = 6 exactly.
        let a = &ctx.base_q().product().clone() * &UBig::from(3u64);
        let res = ctx.base_full().encode(&a);
        let d = sc.scale_exact(&ctx, &res);
        let got = ctx.base_q().decode(&d);
        assert_eq!(got, UBig::from(6u64));
    }

    #[test]
    fn scale_hps_matches_exact_random() {
        let ctx = paper_context();
        let sc = ScaleContext::new(&ctx, 2);
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        // Values bounded like FV tensor coefficients: |a| < n·(q)^2·t ≪ Q/2.
        let bound = {
            let q = ctx.base_q().product().clone();
            (&(&q * &q) << 12).mul_u64(2)
        };
        assert!(bound < (ctx.big_q() >> 1), "tensor bound below Q/2");
        for trial in 0..200 {
            // random value in [0, bound), possibly representing a negative
            let mut v = UBig::zero();
            for _ in 0..7 {
                v = &(&v << 64) + &UBig::from(next());
            }
            let v = v.div_rem(&bound).1;
            let signed = trial % 2 == 1;
            let rep = if signed { ctx.big_q() - &v } else { v.clone() };
            let res = ctx.base_full().encode(&rep);
            let exact = sc.scale_exact(&ctx, &res);
            let hps_f = sc.scale_hps(&ctx, &res[..6], &res[6..], HpsPrecision::F64);
            let hps_x = sc.scale_hps(&ctx, &res[..6], &res[6..], HpsPrecision::Fixed);
            assert_eq!(hps_f, exact, "trial={trial} f64");
            assert_eq!(hps_x, exact, "trial={trial} fixed");
        }
    }

    #[test]
    fn scale_to_p_consistent_with_exact() {
        let ctx = paper_context();
        let sc = ScaleContext::new(&ctx, 2);
        let a = UBig::from_decimal("123456789012345678901234567890123456789").unwrap();
        let res = ctx.base_full().encode(&a);
        let d_p = sc.scale_to_p(&ctx, &res[..6], &res[6..], HpsPrecision::Fixed);
        // oracle: round(t*a/q) mod p_j
        let d = center(&a, ctx.big_q()).scale_round(&UBig::from(2u64), ctx.base_q().product());
        for (j, &got) in d_p.iter().enumerate() {
            let pj = UBig::from(ctx.base_p().modulus(j).value());
            assert_eq!(UBig::from(got), d.rem_euclid(&pj), "j={j}");
        }
    }

    #[test]
    fn scale_poly_layouts() {
        let ctx = paper_context();
        let sc = ScaleContext::new(&ctx, 2);
        let n = 4;
        // Encode bounded values (like FV tensor coefficients, far below
        // Q/2) — HPS scaling is only specified for such inputs.
        let q = ctx.base_q().product().clone();
        let vals: Vec<UBig> = (0..n as u64)
            .map(|c| (&(&q * &q) >> 3).mul_u64(c + 1))
            .collect();
        let mut src = vec![0u64; 13 * n];
        for i in 0..13 {
            for (c, v) in vals.iter().enumerate() {
                src[i * n + c] = v.rem_u64(ctx.base_full().modulus(i).value());
            }
        }
        let mut hps = vec![0u64; 6 * n];
        let mut exact = vec![0u64; 6 * n];
        sc.scale_poly_hps_into(&ctx, &src, n, &mut hps, HpsPrecision::Fixed);
        sc.scale_poly_exact_into(&ctx, &src, n, &mut exact);
        assert_eq!(hps, exact);
        // Column-range call agrees with the full-width call.
        let mut cols = vec![0u64; 6 * 2];
        sc.scale_poly_hps_cols_into(&ctx, &src, n, 1..3, &mut cols, HpsPrecision::Fixed);
        for i in 0..6 {
            assert_eq!(&cols[i * 2..(i + 1) * 2], &hps[i * n + 1..i * n + 3]);
        }
    }

    #[test]
    #[should_panic(expected = "plaintext modulus too large")]
    fn scale_context_rejects_huge_t() {
        let ctx = paper_context();
        let _ = ScaleContext::new(&ctx, 1 << 40);
    }
}
