//! AVX2 lane implementations of the three dominant kernels: the Harvey
//! NTT butterflies, pointwise (Hadamard) multiplication, and the hoisted
//! key-switch sum-of-products line.
//!
//! Everything here is selected at runtime by [`crate::dispatch`]; nothing
//! in this module is reachable unless `is_x86_feature_detected!("avx2")`
//! returned true (or a test asked for the AVX2 table explicitly on a
//! machine that has it). All functions are `#[target_feature(enable =
//! "avx2")]` and therefore `unsafe` to call; the dispatch layer owns the
//! one safety obligation (the feature is present).
//!
//! # Lane-range invariants
//!
//! The scalar Harvey transforms already keep every intermediate in a
//! fixed, branch-free range (forward `[0, 4q)`, inverse `[0, 2q)` — see
//! [`crate::ntt`]), which is exactly what packed lanes need. Two widths:
//!
//! * **Narrow** (`q < 2^30`, the paper's 30-bit RNS primes): all relaxed
//!   values satisfy `4q < 2^32`, so a lazy Shoup product is three
//!   `pmuludq` per 4 lanes using the *truncated* Shoup constant
//!   `⌊w·2^32/q⌋ = w_shoup >> 32` — no extra twiddle storage. The
//!   truncated estimate still undershoots `⌊w·v/q⌋` by less than 2 for
//!   any `v < 2^32`, so the product lands in `[0, 2q)` like the scalar
//!   one. Intermediate *representatives* may differ from the scalar
//!   path's, but both transforms end with the same exact reduction to
//!   `[0, q)`, so outputs are **bit-identical** (a proptest pins this).
//! * **Wide** (any `q < 2^62`): a generic 64×64 high/low multiply built
//!   from four `pmuludq` partial products evaluates the *same* formula
//!   as the scalar `ShoupMul::mul_lazy`, so even intermediates match
//!   bit-for-bit. Values can exceed `2^63`, so conditional subtractions
//!   use sign-bias-corrected comparisons.
//!
//! Pointwise multiplication is vectorized for `q < 2^32` (the product
//! fits one `u64` lane; reduction is the same single-word Barrett as
//! [`crate::zq::Modulus::reduce_u64`], giving identical values); wider
//! moduli fall back to the scalar 128-bit path at the dispatch layer.

#![allow(unsafe_op_in_unsafe_fn)]

use crate::ntt::NttTable;
use crate::zq::Modulus;
use core::arch::x86_64::*;

/// Moduli below this bound use the narrow (32-bit-operand) NTT kernels:
/// `q < 2^30` keeps the relaxed range `[0, 4q)` inside 32 bits.
pub(crate) const NARROW_NTT_BOUND: u64 = 1 << 30;

/// Moduli below this bound use the vector pointwise kernels: operands in
/// `[0, q)` with `q < 2^32` keep the full product inside one 64-bit lane.
pub(crate) const NARROW_POINTWISE_BOUND: u64 = 1 << 32;

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load4(p: *const u64) -> __m256i {
    _mm256_loadu_si256(p as *const __m256i)
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn store4(p: *mut u64, v: __m256i) {
    _mm256_storeu_si256(p as *mut __m256i, v)
}

/// `x >= m ? x - m : x` per lane, valid when both values are `< 2^63`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn csub(x: __m256i, m: __m256i) -> __m256i {
    let keep = _mm256_cmpgt_epi64(m, x);
    _mm256_sub_epi64(x, _mm256_andnot_si256(keep, m))
}

/// `x >= m ? x - m : x` per lane for full-range `u64` values: the signed
/// comparison is bias-corrected by flipping the sign bit of both sides.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn csub_u(x: __m256i, m: __m256i) -> __m256i {
    let bias = _mm256_set1_epi64x(i64::MIN);
    let keep = _mm256_cmpgt_epi64(_mm256_xor_si256(m, bias), _mm256_xor_si256(x, bias));
    _mm256_sub_epi64(x, _mm256_andnot_si256(keep, m))
}

/// High 64 bits of the unsigned 64×64 product, per lane, from four
/// `pmuludq` partial products with exact carry propagation.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mulhi64(a: __m256i, b: __m256i) -> __m256i {
    let lomask = _mm256_set1_epi64x(0xFFFF_FFFF);
    let ah = _mm256_srli_epi64(a, 32);
    let bh = _mm256_srli_epi64(b, 32);
    let ll = _mm256_mul_epu32(a, b);
    let lh = _mm256_mul_epu32(a, bh);
    let hl = _mm256_mul_epu32(ah, b);
    let hh = _mm256_mul_epu32(ah, bh);
    // mid < 3·2^32 fits a lane; the final sum is the exact high word.
    let mid = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32), _mm256_and_si256(lh, lomask)),
        _mm256_and_si256(hl, lomask),
    );
    _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(hl, 32), _mm256_srli_epi64(mid, 32)),
    )
}

/// Low 64 bits of the unsigned 64×64 product (wrapping), per lane.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mullo64(a: __m256i, b: __m256i) -> __m256i {
    let cross = _mm256_add_epi64(
        _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)),
        _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
    );
    _mm256_add_epi64(_mm256_mul_epu32(a, b), _mm256_slli_epi64(cross, 32))
}

/// Narrow lazy Shoup product: `w·v mod q` relaxed to `[0, 2q)`, for
/// `v < 2^32`, `q < 2^30`, using the truncated constant `⌊w·2^32/q⌋`
/// (the high half of the stored 64-bit Shoup constant). Three `pmuludq`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mul_lazy_narrow(v: __m256i, w: __m256i, w_shoup32: __m256i, q: __m256i) -> __m256i {
    let q_hat = _mm256_srli_epi64(_mm256_mul_epu32(w_shoup32, v), 32);
    _mm256_sub_epi64(_mm256_mul_epu32(w, v), _mm256_mul_epu32(q_hat, q))
}

/// Wide lazy Shoup product — the exact vector transcription of
/// [`crate::zq::ShoupMul::mul_lazy`]: valid for any 64-bit `v`, result
/// in `[0, 2q)`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn mul_lazy_wide(v: __m256i, w: __m256i, w_shoup: __m256i, q: __m256i) -> __m256i {
    let q_hat = mulhi64(w_shoup, v);
    _mm256_sub_epi64(mullo64(w, v), mullo64(q_hat, q))
}

// ---------------------------------------------------------------------------
// NTT kernels
// ---------------------------------------------------------------------------

/// Exact `[0, 4q) → [0, q)` reduction of one narrow vector (values are
/// `< 2^32`, so plain signed compares suffice).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn reduce4q(x: __m256i, qv: __m256i, two_qv: __m256i) -> __m256i {
    csub(csub(x, two_qv), qv)
}

/// Forward Harvey NTT, narrow path (`q < 2^30`). Same stage structure as
/// [`NttTable::forward_scalar`]; butterflies run 4 lanes wide at every
/// stage — spans `t ≥ 4` directly, `t = 2` via 128-bit-lane shuffles
/// (two groups per vector), `t = 1` via 64-bit interleaves (four groups
/// per vector) with the final exact-reduction pass **fused into the last
/// stage's outputs**, so no separate sweep over the array is needed.
/// Tail-stage twiddles are loaded pairwise straight out of the
/// `repr(C)` [`crate::zq::ShoupMul`] table.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn ntt_forward_narrow(table: &NttTable, a: &mut [u64]) {
    let q = table.modulus().value();
    debug_assert!(q < NARROW_NTT_BOUND);
    let two_q = q << 1;
    let n = table.n();
    let psi = table.psi_brev_table();
    let psi_ptr = psi.as_ptr();
    let qv = _mm256_set1_epi64x(q as i64);
    let two_qv = _mm256_set1_epi64x(two_q as i64);
    let base = a.as_mut_ptr();
    let mut t = n;
    let mut m = 1usize;
    while m < n {
        t >>= 1;
        if t >= 4 {
            for i in 0..m {
                let s = psi[m + i];
                let w = _mm256_set1_epi64x(s.w as i64);
                let ws32 = _mm256_set1_epi64x((s.w_shoup >> 32) as i64);
                let j1 = 2 * i * t;
                let mut j = j1;
                // Two independent butterfly vectors per iteration hide
                // the pmuludq latency.
                while j + 8 <= j1 + t {
                    let u0 = csub(load4(base.add(j)), two_qv);
                    let u1 = csub(load4(base.add(j + 4)), two_qv);
                    let v0 = mul_lazy_narrow(load4(base.add(j + t)), w, ws32, qv);
                    let v1 = mul_lazy_narrow(load4(base.add(j + t + 4)), w, ws32, qv);
                    store4(base.add(j), _mm256_add_epi64(u0, v0));
                    store4(base.add(j + 4), _mm256_add_epi64(u1, v1));
                    store4(
                        base.add(j + t),
                        _mm256_add_epi64(u0, _mm256_sub_epi64(two_qv, v0)),
                    );
                    store4(
                        base.add(j + t + 4),
                        _mm256_add_epi64(u1, _mm256_sub_epi64(two_qv, v1)),
                    );
                    j += 8;
                }
                while j < j1 + t {
                    let u = csub(load4(base.add(j)), two_qv);
                    let v = mul_lazy_narrow(load4(base.add(j + t)), w, ws32, qv);
                    store4(base.add(j), _mm256_add_epi64(u, v));
                    store4(
                        base.add(j + t),
                        _mm256_add_epi64(u, _mm256_sub_epi64(two_qv, v)),
                    );
                    j += 4;
                }
            }
        } else if t == 2 {
            // Groups are 4 contiguous values [u0, u1, v0, v1]; two groups
            // ride one vector pair via 128-bit-lane permutes, and their
            // twiddle pair loads as one vector from the repr(C) table.
            let pairs = m / 2;
            for p in 0..pairs {
                let g = 2 * p;
                let ptr = base.add(4 * g);
                let x = load4(ptr);
                let y = load4(ptr.add(4));
                let us = _mm256_permute2x128_si256(x, y, 0x20);
                let vs = _mm256_permute2x128_si256(x, y, 0x31);
                let tw = load4(psi_ptr.add(m + g) as *const u64);
                let w = _mm256_permute4x64_epi64(tw, 0b10_10_00_00);
                let ws32 = _mm256_srli_epi64(_mm256_permute4x64_epi64(tw, 0b11_11_01_01), 32);
                let u = csub(us, two_qv);
                let v = mul_lazy_narrow(vs, w, ws32, qv);
                let lo = _mm256_add_epi64(u, v);
                let hi = _mm256_add_epi64(u, _mm256_sub_epi64(two_qv, v));
                store4(ptr, _mm256_permute2x128_si256(lo, hi, 0x20));
                store4(ptr.add(4), _mm256_permute2x128_si256(lo, hi, 0x31));
            }
            for i in (2 * pairs)..m {
                let s = psi[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let mut u = a[j];
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = s.mul_lazy(a[j + t], q);
                    a[j] = u + v;
                    a[j + t] = u + two_q - v;
                }
            }
        } else {
            // Final stage (t = 1): groups are adjacent pairs [u, v]; four
            // groups per vector pair via 64-bit interleaves. The exact
            // reduction to [0, q) is fused into the outputs, replacing
            // the scalar path's separate final pass.
            let quads = m / 4;
            for p in 0..quads {
                let g = 4 * p;
                let ptr = base.add(2 * g);
                let x = load4(ptr);
                let y = load4(ptr.add(4));
                // us = [u0, u2, u1, u3], vs = [v0, v2, v1, v3] — the
                // twiddle loads interleave into the identical order.
                let us = _mm256_unpacklo_epi64(x, y);
                let vs = _mm256_unpackhi_epi64(x, y);
                let t0 = load4(psi_ptr.add(m + g) as *const u64);
                let t1 = load4(psi_ptr.add(m + g + 2) as *const u64);
                let w = _mm256_unpacklo_epi64(t0, t1);
                let ws32 = _mm256_srli_epi64(_mm256_unpackhi_epi64(t0, t1), 32);
                let u = csub(us, two_qv);
                let v = mul_lazy_narrow(vs, w, ws32, qv);
                let lo = reduce4q(_mm256_add_epi64(u, v), qv, two_qv);
                let hi = reduce4q(_mm256_add_epi64(u, _mm256_sub_epi64(two_qv, v)), qv, two_qv);
                store4(ptr, _mm256_unpacklo_epi64(lo, hi));
                store4(ptr.add(4), _mm256_unpackhi_epi64(lo, hi));
            }
            for i in (4 * quads)..m {
                let s = psi[m + i];
                let j = 2 * i;
                let mut u = a[j];
                if u >= two_q {
                    u -= two_q;
                }
                let v = s.mul_lazy(a[j + 1], q);
                let mut x0 = u + v;
                let mut x1 = u + two_q - v;
                if x0 >= two_q {
                    x0 -= two_q;
                }
                if x0 >= q {
                    x0 -= q;
                }
                if x1 >= two_q {
                    x1 -= two_q;
                }
                if x1 >= q {
                    x1 -= q;
                }
                a[j] = x0;
                a[j + 1] = x1;
            }
        }
        m <<= 1;
    }
}

/// Forward Harvey NTT, wide path (any `q < 2^62`) — bit-identical
/// intermediates to the scalar transform, with bias-corrected compares
/// because relaxed values can cross `2^63`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn ntt_forward_wide(table: &NttTable, a: &mut [u64]) {
    let q = table.modulus().value();
    let two_q = q << 1;
    let n = table.n();
    let psi = table.psi_brev_table();
    let qv = _mm256_set1_epi64x(q as i64);
    let two_qv = _mm256_set1_epi64x(two_q as i64);
    let base = a.as_mut_ptr();
    let mut t = n;
    let mut m = 1usize;
    while m < n {
        t >>= 1;
        if t >= 4 {
            for i in 0..m {
                let s = psi[m + i];
                let w = _mm256_set1_epi64x(s.w as i64);
                let ws = _mm256_set1_epi64x(s.w_shoup as i64);
                let j1 = 2 * i * t;
                let mut j = j1;
                while j < j1 + t {
                    let u = csub_u(load4(base.add(j)), two_qv);
                    let v = mul_lazy_wide(load4(base.add(j + t)), w, ws, qv);
                    store4(base.add(j), _mm256_add_epi64(u, v));
                    store4(
                        base.add(j + t),
                        _mm256_add_epi64(u, _mm256_sub_epi64(two_qv, v)),
                    );
                    j += 4;
                }
            }
        } else {
            for i in 0..m {
                let s = psi[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    let mut u = a[j];
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = s.mul_lazy(a[j + t], q);
                    a[j] = u + v;
                    a[j + t] = u + two_q - v;
                }
            }
        }
        m <<= 1;
    }
    final_reduce_u(a, q, two_q);
}

/// Inverse Harvey NTT, narrow path (`q < 2^30`). The first two stages
/// (`t ∈ {1,2}`) run 4 lanes wide via interleave/permute shuffles with
/// pairwise twiddle loads; for `n ≥ 8` the closing `n^{-1}` scaling pass
/// is **fused into the last GS stage** (single twiddle, composed with
/// `n^{-1}` into one exact Shoup product), so the array is swept once
/// less. Outputs stay canonical `[0, q)` exactly like the scalar path.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn ntt_inverse_narrow(table: &NttTable, a: &mut [u64]) {
    let q = table.modulus().value();
    debug_assert!(q < NARROW_NTT_BOUND);
    let two_q = q << 1;
    let n = table.n();
    let inv_psi = table.inv_psi_brev_table();
    let inv_ptr = inv_psi.as_ptr();
    let n_inv = table.n_inv_shoup();
    let qv = _mm256_set1_epi64x(q as i64);
    let two_qv = _mm256_set1_epi64x(two_q as i64);
    let base = a.as_mut_ptr();
    let mut scaled = false;
    let mut t = 1usize;
    let mut m = n;
    while m > 1 {
        let h = m >> 1;
        if t >= 4 {
            if h == 1 {
                // Last stage: one group, one twiddle. Fold the n^{-1}
                // scaling in — sum branch scaled by n^{-1}, product
                // branch by the composed constant n^{-1}·w — and emit
                // exact [0, q) values (lazy product + one csub).
                let s = inv_psi[1];
                let comp = crate::zq::ShoupMul::new(table.modulus().mul(n_inv.w, s.w), q);
                let ws = _mm256_set1_epi64x(n_inv.w as i64);
                let wss32 = _mm256_set1_epi64x((n_inv.w_shoup >> 32) as i64);
                let wc = _mm256_set1_epi64x(comp.w as i64);
                let wcs32 = _mm256_set1_epi64x((comp.w_shoup >> 32) as i64);
                let mut j = 0usize;
                while j < t {
                    let u = load4(base.add(j));
                    let v = load4(base.add(j + t));
                    let sum = csub(_mm256_add_epi64(u, v), two_qv);
                    let diff = _mm256_add_epi64(u, _mm256_sub_epi64(two_qv, v));
                    store4(base.add(j), csub(mul_lazy_narrow(sum, ws, wss32, qv), qv));
                    store4(
                        base.add(j + t),
                        csub(mul_lazy_narrow(diff, wc, wcs32, qv), qv),
                    );
                    j += 4;
                }
                scaled = true;
            } else {
                let mut j1 = 0usize;
                for i in 0..h {
                    let s = inv_psi[h + i];
                    let w = _mm256_set1_epi64x(s.w as i64);
                    let ws32 = _mm256_set1_epi64x((s.w_shoup >> 32) as i64);
                    let mut j = j1;
                    while j + 8 <= j1 + t {
                        let u0 = load4(base.add(j));
                        let u1 = load4(base.add(j + 4));
                        let v0 = load4(base.add(j + t));
                        let v1 = load4(base.add(j + t + 4));
                        store4(base.add(j), csub(_mm256_add_epi64(u0, v0), two_qv));
                        store4(base.add(j + 4), csub(_mm256_add_epi64(u1, v1), two_qv));
                        let d0 = _mm256_add_epi64(u0, _mm256_sub_epi64(two_qv, v0));
                        let d1 = _mm256_add_epi64(u1, _mm256_sub_epi64(two_qv, v1));
                        store4(base.add(j + t), mul_lazy_narrow(d0, w, ws32, qv));
                        store4(base.add(j + t + 4), mul_lazy_narrow(d1, w, ws32, qv));
                        j += 8;
                    }
                    while j < j1 + t {
                        let u = load4(base.add(j));
                        let v = load4(base.add(j + t));
                        store4(base.add(j), csub(_mm256_add_epi64(u, v), two_qv));
                        let diff = _mm256_add_epi64(u, _mm256_sub_epi64(two_qv, v));
                        store4(base.add(j + t), mul_lazy_narrow(diff, w, ws32, qv));
                        j += 4;
                    }
                    j1 += 2 * t;
                }
            }
        } else if t == 2 {
            // Mirror of the forward t = 2 stage: two groups of
            // [u0, u1, v0, v1] per vector pair via 128-bit permutes.
            let pairs = h / 2;
            for p in 0..pairs {
                let g = 2 * p;
                let ptr = base.add(4 * g);
                let x = load4(ptr);
                let y = load4(ptr.add(4));
                let us = _mm256_permute2x128_si256(x, y, 0x20);
                let vs = _mm256_permute2x128_si256(x, y, 0x31);
                let tw = load4(inv_ptr.add(h + g) as *const u64);
                let w = _mm256_permute4x64_epi64(tw, 0b10_10_00_00);
                let ws32 = _mm256_srli_epi64(_mm256_permute4x64_epi64(tw, 0b11_11_01_01), 32);
                let sum = csub(_mm256_add_epi64(us, vs), two_qv);
                let diff = _mm256_add_epi64(us, _mm256_sub_epi64(two_qv, vs));
                let prod = mul_lazy_narrow(diff, w, ws32, qv);
                store4(ptr, _mm256_permute2x128_si256(sum, prod, 0x20));
                store4(ptr.add(4), _mm256_permute2x128_si256(sum, prod, 0x31));
            }
            for i in (2 * pairs)..h {
                let s = inv_psi[h + i];
                let j1 = 4 * i;
                for j in j1..j1 + 2 {
                    let u = a[j];
                    let v = a[j + 2];
                    let mut sum = u + v;
                    if sum >= two_q {
                        sum -= two_q;
                    }
                    a[j] = sum;
                    a[j + 2] = s.mul_lazy(u + two_q - v, q);
                }
            }
        } else {
            // First stage (t = 1): four adjacent [u, v] groups per
            // vector pair via 64-bit interleaves; the twiddle pair loads
            // interleave into the same scrambled lane order as the data.
            let quads = h / 4;
            for p in 0..quads {
                let g = 4 * p;
                let ptr = base.add(2 * g);
                let x = load4(ptr);
                let y = load4(ptr.add(4));
                let us = _mm256_unpacklo_epi64(x, y);
                let vs = _mm256_unpackhi_epi64(x, y);
                let t0 = load4(inv_ptr.add(h + g) as *const u64);
                let t1 = load4(inv_ptr.add(h + g + 2) as *const u64);
                let w = _mm256_unpacklo_epi64(t0, t1);
                let ws32 = _mm256_srli_epi64(_mm256_unpackhi_epi64(t0, t1), 32);
                let sum = csub(_mm256_add_epi64(us, vs), two_qv);
                let diff = _mm256_add_epi64(us, _mm256_sub_epi64(two_qv, vs));
                let prod = mul_lazy_narrow(diff, w, ws32, qv);
                store4(ptr, _mm256_unpacklo_epi64(sum, prod));
                store4(ptr.add(4), _mm256_unpackhi_epi64(sum, prod));
            }
            for i in (4 * quads)..h {
                let s = inv_psi[h + i];
                let j = 2 * i;
                let u = a[j];
                let v = a[j + 1];
                let mut sum = u + v;
                if sum >= two_q {
                    sum -= two_q;
                }
                a[j] = sum;
                a[j + 1] = s.mul_lazy(u + two_q - v, q);
            }
        }
        t <<= 1;
        m = h;
    }
    if !scaled {
        // Tiny n (< 8) never reached a fuseable vector stage: close with
        // the strict n^{-1} scaling sweep.
        for x in a.iter_mut() {
            *x = n_inv.mul(*x, q);
        }
    }
}

/// Inverse Harvey NTT, wide path (any `q < 2^62`).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn ntt_inverse_wide(table: &NttTable, a: &mut [u64]) {
    let q = table.modulus().value();
    let two_q = q << 1;
    let n = table.n();
    let inv_psi = table.inv_psi_brev_table();
    let qv = _mm256_set1_epi64x(q as i64);
    let two_qv = _mm256_set1_epi64x(two_q as i64);
    let base = a.as_mut_ptr();
    let mut t = 1usize;
    let mut m = n;
    while m > 1 {
        let h = m >> 1;
        if t >= 4 {
            let mut j1 = 0usize;
            for i in 0..h {
                let s = inv_psi[h + i];
                let w = _mm256_set1_epi64x(s.w as i64);
                let ws = _mm256_set1_epi64x(s.w_shoup as i64);
                let mut j = j1;
                while j < j1 + t {
                    let u = load4(base.add(j));
                    let v = load4(base.add(j + t));
                    store4(base.add(j), csub_u(_mm256_add_epi64(u, v), two_qv));
                    let diff = _mm256_add_epi64(u, _mm256_sub_epi64(two_qv, v));
                    store4(base.add(j + t), mul_lazy_wide(diff, w, ws, qv));
                    j += 4;
                }
                j1 += 2 * t;
            }
        } else {
            let mut j1 = 0usize;
            for i in 0..h {
                let s = inv_psi[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    let mut sum = u + v;
                    if sum >= two_q {
                        sum -= two_q;
                    }
                    a[j] = sum;
                    a[j + t] = s.mul_lazy(u + two_q - v, q);
                }
                j1 += 2 * t;
            }
        }
        t <<= 1;
        m = h;
    }
    let s = table.n_inv_shoup();
    let w = _mm256_set1_epi64x(s.w as i64);
    let ws = _mm256_set1_epi64x(s.w_shoup as i64);
    let mut i = 0usize;
    while i + 4 <= n {
        let r = mul_lazy_wide(load4(base.add(i)), w, ws, qv);
        store4(base.add(i), csub_u(r, qv));
        i += 4;
    }
    for x in &mut a[i..] {
        *x = s.mul(*x, q);
    }
}

/// Exact final reduction `[0, 4q) → [0, q)` for full-range values.
#[target_feature(enable = "avx2")]
unsafe fn final_reduce_u(a: &mut [u64], q: u64, two_q: u64) {
    let qv = _mm256_set1_epi64x(q as i64);
    let two_qv = _mm256_set1_epi64x(two_q as i64);
    let base = a.as_mut_ptr();
    let mut i = 0usize;
    while i + 4 <= a.len() {
        let r = csub(csub_u(load4(base.add(i)), two_qv), qv);
        store4(base.add(i), r);
        i += 4;
    }
    for x in &mut a[i..] {
        let mut r = *x;
        if r >= two_q {
            r -= two_q;
        }
        if r >= q {
            r -= q;
        }
        *x = r;
    }
}

// ---------------------------------------------------------------------------
// Pointwise kernels (q < 2^32)
// ---------------------------------------------------------------------------

/// Vector single-word Barrett reduction of a full 64-bit lane value —
/// the exact transcription of [`Modulus::reduce_u64`] (same quotient
/// estimate, at most three corrective subtractions).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn reduce_u64_vec(x: __m256i, b64: __m256i, qv: __m256i) -> __m256i {
    let q_hat = mulhi64(x, b64);
    let r = _mm256_sub_epi64(x, mullo64(q_hat, qv));
    // r < 4q < 2^34: plain signed compares are safe.
    csub(csub(csub(r, qv), qv), qv)
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn pointwise_mul_narrow(m: &Modulus, a: &[u64], b: &[u64], dst: &mut [u64]) {
    let qv = _mm256_set1_epi64x(m.value() as i64);
    let b64 = _mm256_set1_epi64x(m.barrett_64() as i64);
    let n = dst.len();
    let (pa, pb, pd) = (a.as_ptr(), b.as_ptr(), dst.as_mut_ptr());
    let mut i = 0usize;
    while i + 4 <= n {
        let prod = _mm256_mul_epu32(load4(pa.add(i)), load4(pb.add(i)));
        store4(pd.add(i), reduce_u64_vec(prod, b64, qv));
        i += 4;
    }
    for j in i..n {
        dst[j] = m.mul(a[j], b[j]);
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn pointwise_mul_assign_narrow(m: &Modulus, dst: &mut [u64], b: &[u64]) {
    let qv = _mm256_set1_epi64x(m.value() as i64);
    let b64 = _mm256_set1_epi64x(m.barrett_64() as i64);
    let n = dst.len();
    let (pb, pd) = (b.as_ptr(), dst.as_mut_ptr());
    let mut i = 0usize;
    while i + 4 <= n {
        let prod = _mm256_mul_epu32(load4(pd.add(i)), load4(pb.add(i)));
        store4(pd.add(i), reduce_u64_vec(prod, b64, qv));
        i += 4;
    }
    for j in i..n {
        dst[j] = m.mul(dst[j], b[j]);
    }
}

#[target_feature(enable = "avx2")]
pub(crate) unsafe fn pointwise_mul_acc_narrow(m: &Modulus, a: &[u64], b: &[u64], acc: &mut [u64]) {
    let qv = _mm256_set1_epi64x(m.value() as i64);
    let b64 = _mm256_set1_epi64x(m.barrett_64() as i64);
    let n = acc.len();
    let (pa, pb, pc) = (a.as_ptr(), b.as_ptr(), acc.as_mut_ptr());
    let mut i = 0usize;
    while i + 4 <= n {
        // a·b < q² ≤ (2^32−1)², so adding the accumulator (< q) cannot wrap.
        let prod = _mm256_mul_epu32(load4(pa.add(i)), load4(pb.add(i)));
        let sum = _mm256_add_epi64(prod, load4(pc.add(i)));
        store4(pc.add(i), reduce_u64_vec(sum, b64, qv));
        i += 4;
    }
    for j in i..n {
        acc[j] = m.mul_add(a[j], b[j], acc[j]);
    }
}

// ---------------------------------------------------------------------------
// Hoisted key-switch sum-of-products (narrow layout)
// ---------------------------------------------------------------------------

/// One residue row of the narrow SoP: for each slot `t`, accumulate
/// `Σ_i digits[π(t)·k + i] · ksk{0,1}[t·k + i]` (plus the optional hoisted
/// `c0` seed on the first accumulator), reduce once, and fold into
/// `acc0`/`acc1`. The digit lanes ride 4-wide in `u64` lanes via
/// `pmuludq`; the caller guarantees no-overflow (`narrow_sop_ok`), so any
/// summation order — including lane partials — yields the same exact sum.
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
pub(crate) unsafe fn sop_narrow_row(
    m: &Modulus,
    perm: &[u32],
    digits: &[u32],
    ksk0: &[u32],
    ksk1: &[u32],
    c0_row: Option<&[u64]>,
    acc0: &mut [u64],
    acc1: &mut [u64],
) {
    let n = perm.len();
    let k = digits.len() / n;
    debug_assert!(k >= 4);
    for t in 0..n {
        let p = perm[t] as usize;
        let dl = digits.as_ptr().add(p * k);
        let x0 = ksk0.as_ptr().add(t * k);
        let x1 = ksk1.as_ptr().add(t * k);
        let mut v0 = _mm256_setzero_si256();
        let mut v1 = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= k {
            let d = _mm256_cvtepu32_epi64(_mm_loadu_si128(dl.add(i) as *const __m128i));
            let w0 = _mm256_cvtepu32_epi64(_mm_loadu_si128(x0.add(i) as *const __m128i));
            let w1 = _mm256_cvtepu32_epi64(_mm_loadu_si128(x1.add(i) as *const __m128i));
            v0 = _mm256_add_epi64(v0, _mm256_mul_epu32(d, w0));
            v1 = _mm256_add_epi64(v1, _mm256_mul_epu32(d, w1));
            i += 4;
        }
        if i + 2 <= k {
            // Two-digit tail (the paper's k = 6 lands here): a 64-bit
            // partial load leaves the upper lanes zero, which contribute
            // nothing to the lane sums.
            let d = _mm256_cvtepu32_epi64(_mm_loadl_epi64(dl.add(i) as *const __m128i));
            let w0 = _mm256_cvtepu32_epi64(_mm_loadl_epi64(x0.add(i) as *const __m128i));
            let w1 = _mm256_cvtepu32_epi64(_mm_loadl_epi64(x1.add(i) as *const __m128i));
            v0 = _mm256_add_epi64(v0, _mm256_mul_epu32(d, w0));
            v1 = _mm256_add_epi64(v1, _mm256_mul_epu32(d, w1));
            i += 2;
        }
        let mut s0 = match c0_row {
            Some(row) => row[p],
            None => 0,
        };
        let mut s1 = 0u64;
        let (h0, h1) = hsum_pair(v0, v1);
        s0 = s0.wrapping_add(h0);
        s1 = s1.wrapping_add(h1);
        while i < k {
            let d = *dl.add(i) as u64;
            s0 = s0.wrapping_add(d * *x0.add(i) as u64);
            s1 = s1.wrapping_add(d * *x1.add(i) as u64);
            i += 1;
        }
        acc0[t] = m.add(acc0[t], m.reduce_u64(s0));
        acc1[t] = m.add(acc1[t], m.reduce_u64(s1));
    }
}

/// Horizontal wrapping sums of two accumulators at once, sharing the
/// cross-lane shuffles.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum_pair(v0: __m256i, v1: __m256i) -> (u64, u64) {
    let s0 = _mm_add_epi64(_mm256_castsi256_si128(v0), _mm256_extracti128_si256(v0, 1));
    let s1 = _mm_add_epi64(_mm256_castsi256_si128(v1), _mm256_extracti128_si256(v1, 1));
    let t = _mm_add_epi64(_mm_unpacklo_epi64(s0, s1), _mm_unpackhi_epi64(s0, s1));
    (_mm_cvtsi128_si64(t) as u64, _mm_extract_epi64(t, 1) as u64)
}
