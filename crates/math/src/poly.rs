//! Residue polynomials: elements of `Z_{q_i}[x]/(x^n + 1)` for one RNS prime.
//!
//! A [`ResiduePoly`] is what one of the paper's RPAUs operates on: 4096
//! coefficients, each under 30 bits. Coefficient-wise addition, subtraction
//! and (NTT-domain) multiplication are the RPAU's `CWA`/`CWS`/`CWM`
//! instructions.

use crate::ntt::NttTable;
use crate::zq::Modulus;
use serde::{Deserialize, Serialize};

/// A polynomial with coefficients in `[0, q_i)` for a single RNS prime.
///
/// Whether the coefficients are in the ordinary (coefficient) domain or the
/// NTT (evaluation) domain is tracked by the caller; the arithmetic here is
/// domain-agnostic coefficient-wise work, matching the RPAU instructions.
///
/// # Example
///
/// ```
/// use hefv_math::{poly::ResiduePoly, zq::Modulus};
/// let q = Modulus::new(97);
/// let a = ResiduePoly::from_coeffs(vec![1, 2, 3, 4], q);
/// let b = a.add(&a);
/// assert_eq!(b.coeffs(), &[2, 4, 6, 8]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResiduePoly {
    coeffs: Vec<u64>,
    modulus: Modulus,
}

impl ResiduePoly {
    /// The zero polynomial of degree bound `n`.
    pub fn zero(n: usize, modulus: Modulus) -> Self {
        ResiduePoly {
            coeffs: vec![0; n],
            modulus,
        }
    }

    /// Builds from coefficients, reducing each into `[0, q)`.
    pub fn from_coeffs(coeffs: Vec<u64>, modulus: Modulus) -> Self {
        let coeffs = coeffs.into_iter().map(|c| modulus.reduce(c)).collect();
        ResiduePoly { coeffs, modulus }
    }

    /// Builds from signed coefficients (maps into `[0, q)`).
    pub fn from_signed(coeffs: &[i64], modulus: Modulus) -> Self {
        ResiduePoly {
            coeffs: coeffs.iter().map(|&c| modulus.from_i64(c)).collect(),
            modulus,
        }
    }

    /// The coefficients.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable coefficient access.
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }

    /// The modulus.
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// Degree bound `n`.
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// True iff the polynomial has no coefficients.
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// True iff all coefficients are zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    fn check_compat(&self, other: &Self) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        assert_eq!(
            self.modulus.value(),
            other.modulus.value(),
            "modulus mismatch"
        );
    }

    /// Coefficient-wise addition (the RPAU `CWA` instruction).
    ///
    /// # Panics
    ///
    /// Panics if lengths or moduli differ.
    pub fn add(&self, other: &Self) -> Self {
        self.check_compat(other);
        ResiduePoly {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| self.modulus.add(a, b))
                .collect(),
            modulus: self.modulus,
        }
    }

    /// Coefficient-wise subtraction (the RPAU `CWS` instruction).
    ///
    /// # Panics
    ///
    /// Panics if lengths or moduli differ.
    pub fn sub(&self, other: &Self) -> Self {
        self.check_compat(other);
        ResiduePoly {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| self.modulus.sub(a, b))
                .collect(),
            modulus: self.modulus,
        }
    }

    /// Coefficient-wise negation.
    pub fn neg(&self) -> Self {
        ResiduePoly {
            coeffs: self.coeffs.iter().map(|&a| self.modulus.neg(a)).collect(),
            modulus: self.modulus,
        }
    }

    /// Coefficient-wise (Hadamard) product — the RPAU `CWM` instruction,
    /// meaningful for NTT-domain operands.
    ///
    /// # Panics
    ///
    /// Panics if lengths or moduli differ.
    pub fn pointwise_mul(&self, other: &Self) -> Self {
        self.check_compat(other);
        ResiduePoly {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| self.modulus.mul(a, b))
                .collect(),
            modulus: self.modulus,
        }
    }

    /// Multiplies every coefficient by a scalar.
    pub fn scalar_mul(&self, s: u64) -> Self {
        let s = self.modulus.reduce(s);
        ResiduePoly {
            coeffs: self
                .coeffs
                .iter()
                .map(|&a| self.modulus.mul(a, s))
                .collect(),
            modulus: self.modulus,
        }
    }

    /// In-place forward NTT using the given table.
    ///
    /// # Panics
    ///
    /// Panics if the table's modulus or size differ from this polynomial's.
    pub fn ntt_forward(&mut self, table: &NttTable) {
        assert_eq!(table.modulus().value(), self.modulus.value());
        table.forward(&mut self.coeffs);
    }

    /// In-place inverse NTT using the given table.
    ///
    /// # Panics
    ///
    /// Panics if the table's modulus or size differ from this polynomial's.
    pub fn ntt_inverse(&mut self, table: &NttTable) {
        assert_eq!(table.modulus().value(), self.modulus.value());
        table.inverse(&mut self.coeffs);
    }

    /// Full negacyclic product via the table (forward × forward → inverse).
    pub fn negacyclic_mul(&self, other: &Self, table: &NttTable) -> Self {
        self.check_compat(other);
        ResiduePoly {
            coeffs: table.negacyclic_mul(&self.coeffs, &other.coeffs),
            modulus: self.modulus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::ntt_prime;

    fn modulus() -> Modulus {
        Modulus::new(97)
    }

    #[test]
    fn zero_is_zero() {
        let p = ResiduePoly::zero(8, modulus());
        assert!(p.is_zero());
        assert!(!p.is_empty());
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn from_coeffs_reduces() {
        let p = ResiduePoly::from_coeffs(vec![97, 98, 200], modulus());
        assert_eq!(p.coeffs(), &[0, 1, 6]);
    }

    #[test]
    fn from_signed_maps() {
        let p = ResiduePoly::from_signed(&[-1, -96, 5], modulus());
        assert_eq!(p.coeffs(), &[96, 1, 5]);
    }

    #[test]
    fn add_sub_neg() {
        let a = ResiduePoly::from_coeffs(vec![1, 2, 3], modulus());
        let b = ResiduePoly::from_coeffs(vec![96, 95, 94], modulus());
        let s = a.add(&b);
        assert_eq!(s.coeffs(), &[0, 0, 0]);
        assert_eq!(a.sub(&b).coeffs(), &[2, 4, 6]);
        assert_eq!(a.neg().coeffs(), &[96, 95, 94]);
    }

    #[test]
    fn pointwise_and_scalar() {
        let a = ResiduePoly::from_coeffs(vec![2, 3, 4], modulus());
        let b = ResiduePoly::from_coeffs(vec![10, 20, 30], modulus());
        assert_eq!(a.pointwise_mul(&b).coeffs(), &[20, 60, 23]);
        assert_eq!(a.scalar_mul(50).coeffs(), &[3, 53, 6]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_length_mismatch_panics() {
        let a = ResiduePoly::zero(4, modulus());
        let b = ResiduePoly::zero(8, modulus());
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic(expected = "modulus mismatch")]
    fn add_modulus_mismatch_panics() {
        let a = ResiduePoly::zero(4, Modulus::new(97));
        let b = ResiduePoly::zero(4, Modulus::new(101));
        let _ = a.add(&b);
    }

    #[test]
    fn ntt_roundtrip_through_poly() {
        let n = 128;
        let q = ntt_prime(30, n, 0).unwrap();
        let m = Modulus::new(q);
        let table = NttTable::new(m, n).unwrap();
        let mut p = ResiduePoly::from_coeffs((0..n as u64).map(|i| i * 37 + 11).collect(), m);
        let orig = p.clone();
        p.ntt_forward(&table);
        p.ntt_inverse(&table);
        assert_eq!(p, orig);
    }

    #[test]
    fn negacyclic_mul_via_poly() {
        let n = 32;
        let q = ntt_prime(30, n, 0).unwrap();
        let m = Modulus::new(q);
        let table = NttTable::new(m, n).unwrap();
        let a = ResiduePoly::from_signed(&vec![1i64; n], m);
        let one = {
            let mut c = vec![0i64; n];
            c[0] = 1;
            ResiduePoly::from_signed(&c, m)
        };
        assert_eq!(a.negacyclic_mul(&one, &table), a);
    }
}
