//! Generation of NTT-friendly RNS primes.
//!
//! The paper builds its RNS bases from 30-bit primes: six primes for `q`
//! (180 bits) and seven more for `p = Q/q` (so `Q = q·p` is 390 bits).
//! Negacyclic NTT over `Z_q[x]/(x^n + 1)` requires a primitive `2n`-th root
//! of unity, i.e. primes with `q ≡ 1 (mod 2n)`.

use crate::zq::Modulus;

#[inline]
fn mulmod(a: u64, b: u64, n: u64) -> u64 {
    ((a as u128 * b as u128) % n as u128) as u64
}

fn powmod(mut base: u64, mut exp: u64, n: u64) -> u64 {
    let mut acc = 1u64 % n;
    base %= n;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulmod(acc, base, n);
        }
        base = mulmod(base, base, n);
        exp >>= 1;
    }
    acc
}

/// Deterministic Miller-Rabin primality test, exact for all `n < 2^64`.
///
/// Uses the standard 12-base witness set.
///
/// # Example
///
/// ```
/// use hefv_math::primes::is_prime;
/// assert!(is_prime(1_073_479_681));
/// assert!(!is_prime(1_073_479_683));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let d = n - 1;
    let s = d.trailing_zeros();
    let d = d >> s;
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = powmod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mulmod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Returns the `index`-th largest prime `q < 2^bits` with `q ≡ 1 (mod 2n)`.
///
/// Scanning downward from `2^bits` guarantees distinct primes for distinct
/// indices, which is how the RNS bases are assembled.
///
/// Returns `None` if no such prime exists in `[2n+1, 2^bits)`.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 62, or if `n` is not a power of two.
pub fn ntt_prime(bits: u32, n: usize, index: usize) -> Option<u64> {
    assert!(bits > 0 && bits <= 62, "prime size out of range");
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    let step = 2 * n as u64;
    let top = 1u64 << bits;
    // Largest candidate ≡ 1 (mod 2n) below 2^bits.
    let mut cand = top - ((top - 1) % step);
    let mut found = 0usize;
    while cand > step {
        if is_prime(cand) {
            if found == index {
                return Some(cand);
            }
            found += 1;
        }
        cand -= step;
    }
    None
}

/// Generates `count` distinct NTT-friendly primes of the given bit size for
/// ring degree `n` (all `≡ 1 mod 2n`), largest first.
///
/// # Errors
///
/// Returns an error message if the range does not contain enough primes.
pub fn ntt_primes(bits: u32, n: usize, count: usize) -> Result<Vec<u64>, String> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        match ntt_prime(bits, n, i) {
            Some(p) => out.push(p),
            None => {
                return Err(format!(
                    "only {i} NTT-friendly {bits}-bit primes exist for n={n}, need {count}"
                ))
            }
        }
    }
    Ok(out)
}

/// Finds a primitive `2n`-th root of unity modulo prime `q`.
///
/// Requires `q ≡ 1 (mod 2n)`. The returned `ψ` satisfies `ψ^n ≡ -1 (mod q)`
/// (hence `ψ^{2n} ≡ 1`), which is exactly what the negacyclic NTT needs.
///
/// # Errors
///
/// Returns an error if `q ≢ 1 (mod 2n)`.
pub fn primitive_2n_root(q: u64, n: usize) -> Result<u64, String> {
    let m = Modulus::new(q);
    let two_n = 2 * n as u64;
    if !(q - 1).is_multiple_of(two_n) {
        return Err(format!("q={q} is not ≡ 1 mod 2n (n={n})"));
    }
    let cofactor = (q - 1) / two_n;
    // Try small bases; x^cofactor is a 2n-th root of unity, primitive iff
    // its n-th power is -1.
    for base in 2u64.. {
        if base >= q {
            break;
        }
        let cand = m.pow(base, cofactor);
        if m.pow(cand, n as u64) == q - 1 {
            return Ok(cand);
        }
        if base > 1000 {
            break;
        }
    }
    Err(format!("no primitive 2n-th root found for q={q}, n={n}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_prime_small() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 101];
        let composites = [0u64, 1, 4, 6, 9, 15, 91, 100];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in composites {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn is_prime_carmichael() {
        // Carmichael numbers fool Fermat tests but not Miller-Rabin.
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041] {
            assert!(!is_prime(c), "{c} is a Carmichael number");
        }
    }

    #[test]
    fn is_prime_large() {
        assert!(is_prime((1u64 << 61) - 1)); // Mersenne
        assert!(is_prime(0xFFFF_FFFF_FFFF_FFC5)); // largest prime < 2^64
        assert!(!is_prime(u64::MAX));
    }

    #[test]
    fn ntt_prime_properties() {
        let n = 4096;
        let p = ntt_prime(30, n, 0).unwrap();
        assert!(is_prime(p));
        assert!(p < 1 << 30);
        assert_eq!((p - 1) % (2 * n as u64), 0);
    }

    #[test]
    fn ntt_primes_distinct_and_sorted() {
        let n = 4096;
        let ps = ntt_primes(30, n, 13).unwrap();
        assert_eq!(ps.len(), 13);
        for w in ps.windows(2) {
            assert!(w[0] > w[1], "descending and distinct");
        }
        for &p in &ps {
            assert!(is_prime(p) && (p - 1) % (2 * n as u64) == 0);
        }
        // Six 30-bit primes give a 180-bit q, as in the paper.
        let total_bits: u32 = ps.iter().take(6).map(|p| 64 - p.leading_zeros()).sum();
        assert_eq!(total_bits, 180);
    }

    #[test]
    fn root_is_primitive() {
        let n = 256;
        let q = ntt_prime(30, n, 0).unwrap();
        let m = Modulus::new(q);
        let psi = primitive_2n_root(q, n).unwrap();
        assert_eq!(m.pow(psi, n as u64), q - 1, "psi^n = -1");
        assert_eq!(m.pow(psi, 2 * n as u64), 1, "psi^2n = 1");
        // Primitivity: psi^k != 1 for all proper divisors of 2n.
        assert_ne!(m.pow(psi, n as u64), 1);
        assert_ne!(m.pow(psi, n as u64 / 2), 1);
    }

    #[test]
    fn root_rejects_bad_modulus() {
        assert!(primitive_2n_root(97, 4096).is_err());
    }

    #[test]
    fn paper_parameter_bases_exist() {
        // The paper's parameter set: thirteen 30-bit primes for n = 4096.
        let ps = ntt_primes(30, 4096, 13).unwrap();
        assert_eq!(ps.len(), 13);
        // And the Table V scaled sets remain satisfiable at n = 2^15.
        let ps = ntt_primes(30, 1 << 15, 48);
        assert!(ps.is_ok(), "48 primes needed for the (2^15, 1440-bit) set");
    }
}
