//! Runtime-dispatched kernel seam for the three dominant kernels.
//!
//! Per-op telemetry shows NTTs, pointwise (Hadamard) products and the
//! hoisted key-switch sum-of-products dominate eval time; this module is
//! the single seam those hot paths route through. A [`Kernels`] table of
//! function pointers is selected **once** per process:
//!
//! 1. `HEFV_KERNEL=scalar|avx2` — explicit choice (an unavailable or
//!    unknown value falls back to auto-detection, never a crash);
//! 2. `HEFV_FORCE_SCALAR` — any value other than empty or `0` pins the
//!    portable scalar fallback (the CI test matrix uses this);
//! 3. otherwise `is_x86_feature_detected!("avx2")` picks the AVX2 lane
//!    implementations in the crate-private `simd` module when the CPU
//!    has them.
//!
//! The scalar implementations are the pre-existing portable code, kept
//! verbatim ([`NttTable::forward_scalar`] and friends); every vector
//! kernel is **bit-identical** to its scalar counterpart because all
//! dispatched kernels end with an exact reduction to the canonical
//! `[0, q)` representative (see the `simd` module source for the lane-range
//! argument, and `tests/simd_equivalence.rs` for the proptest pinning
//! it). The seam is also the intended landing point for a future real
//! accelerator backend: a backend supplies one more `Kernels` table, and
//! every call site upstream is already routed.
//!
//! Tests can bypass the process-wide selection with [`scalar_kernels`]
//! and [`avx2_kernels`] to compare both paths in one process.

use crate::ntt::NttTable;
use crate::zq::Modulus;
use std::sync::OnceLock;

/// Which lane implementation a [`Kernels`] table uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable scalar code — the pre-SIMD hot paths, kept verbatim.
    Scalar,
    /// `core::arch::x86_64` AVX2 intrinsics, 4 lanes of `u64` per op.
    Avx2,
}

impl KernelBackend {
    /// Stable lowercase name (used in logs, benches and metrics).
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
        }
    }
}

/// A resolved table of kernel entry points. Obtain the process-wide one
/// with [`kernels`]; all entries of one table agree on the backend.
pub struct Kernels {
    backend: KernelBackend,
    ntt_forward: fn(&NttTable, &mut [u64]),
    ntt_inverse: fn(&NttTable, &mut [u64]),
    pointwise_mul: fn(&Modulus, &[u64], &[u64], &mut [u64]),
    pointwise_mul_assign: fn(&Modulus, &mut [u64], &[u64]),
    pointwise_mul_acc: fn(&Modulus, &[u64], &[u64], &mut [u64]),
    #[allow(clippy::type_complexity)]
    sop_narrow_row:
        fn(&Modulus, &[u32], &[u32], &[u32], &[u32], Option<&[u64]>, &mut [u64], &mut [u64]),
}

impl Kernels {
    /// The backend this table dispatches to.
    pub fn backend(&self) -> KernelBackend {
        self.backend
    }

    /// Forward negacyclic NTT of one residue row (see
    /// [`NttTable::forward`] for the contract).
    #[inline]
    pub fn ntt_forward(&self, table: &NttTable, a: &mut [u64]) {
        (self.ntt_forward)(table, a)
    }

    /// Inverse negacyclic NTT of one residue row (see
    /// [`NttTable::inverse`] for the contract).
    #[inline]
    pub fn ntt_inverse(&self, table: &NttTable, a: &mut [u64]) {
        (self.ntt_inverse)(table, a)
    }

    /// Forward NTT of a contiguous batch of same-degree residue rows —
    /// row `r` of `flat` transforms under `tables[r]`. Batching keeps
    /// the lanes full across the limb dimension under the existing
    /// per-limb thread parallelism (each worker hands its whole
    /// contiguous row range to one call).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != tables.len() * n`.
    pub fn ntt_forward_batch(&self, tables: &[NttTable], flat: &mut [u64]) {
        let n = tables.first().map_or(0, |t| t.n());
        assert_eq!(flat.len(), tables.len() * n, "batch length mismatch");
        for (table, row) in tables.iter().zip(flat.chunks_exact_mut(n)) {
            (self.ntt_forward)(table, row);
        }
    }

    /// Inverse counterpart of [`Kernels::ntt_forward_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != tables.len() * n`.
    pub fn ntt_inverse_batch(&self, tables: &[NttTable], flat: &mut [u64]) {
        let n = tables.first().map_or(0, |t| t.n());
        assert_eq!(flat.len(), tables.len() * n, "batch length mismatch");
        for (table, row) in tables.iter().zip(flat.chunks_exact_mut(n)) {
            (self.ntt_inverse)(table, row);
        }
    }

    /// `dst[i] = a[i]·b[i] mod q`, all operands in `[0, q)`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn pointwise_mul(&self, m: &Modulus, a: &[u64], b: &[u64], dst: &mut [u64]) {
        assert!(
            a.len() == b.len() && a.len() == dst.len(),
            "length mismatch"
        );
        (self.pointwise_mul)(m, a, b, dst)
    }

    /// `dst[i] = dst[i]·b[i] mod q`, all operands in `[0, q)`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn pointwise_mul_assign(&self, m: &Modulus, dst: &mut [u64], b: &[u64]) {
        assert_eq!(dst.len(), b.len(), "length mismatch");
        (self.pointwise_mul_assign)(m, dst, b)
    }

    /// `acc[i] = (a[i]·b[i] + acc[i]) mod q`, all operands in `[0, q)`.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn pointwise_mul_acc(&self, m: &Modulus, a: &[u64], b: &[u64], acc: &mut [u64]) {
        assert!(
            a.len() == b.len() && a.len() == acc.len(),
            "length mismatch"
        );
        (self.pointwise_mul_acc)(m, a, b, acc)
    }

    /// One residue row of the narrow hoisted key-switch sum-of-products:
    /// for each slot `t` with gather index `p = perm[t]`,
    ///
    /// ```text
    /// s0 = c0_row[p] (or 0) + Σ_i digits[p·k + i] · ksk0[t·k + i]
    /// s1 =                    Σ_i digits[p·k + i] · ksk1[t·k + i]
    /// acc0[t] += s0 mod q;    acc1[t] += s1 mod q
    /// ```
    ///
    /// The caller guarantees the no-overflow precondition of the narrow
    /// layout (`(k(q−1)+1)(q−1) < 2^64`, see `narrow_sop_ok` in
    /// `hefv-core`), which also makes the summation order immaterial —
    /// lane-partial sums reduce to the identical value.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths are inconsistent with `n = perm.len()`
    /// and `k = digits.len() / n`.
    #[allow(clippy::too_many_arguments)]
    pub fn sop_narrow_row(
        &self,
        m: &Modulus,
        perm: &[u32],
        digits: &[u32],
        ksk0: &[u32],
        ksk1: &[u32],
        c0_row: Option<&[u64]>,
        acc0: &mut [u64],
        acc1: &mut [u64],
    ) {
        let n = perm.len();
        assert!(
            n > 0 && digits.len().is_multiple_of(n),
            "digit layout mismatch"
        );
        let k = digits.len() / n;
        assert!(k > 0, "empty digit lines");
        assert_eq!(ksk0.len(), n * k, "ksk0 length mismatch");
        assert_eq!(ksk1.len(), n * k, "ksk1 length mismatch");
        assert_eq!(acc0.len(), n, "acc0 length mismatch");
        assert_eq!(acc1.len(), n, "acc1 length mismatch");
        if let Some(row) = c0_row {
            assert_eq!(row.len(), n, "c0 row length mismatch");
        }
        (self.sop_narrow_row)(m, perm, digits, ksk0, ksk1, c0_row, acc0, acc1)
    }
}

// ---------------------------------------------------------------------------
// Scalar table — the portable fallback, routing to the verbatim code.
// ---------------------------------------------------------------------------

fn ntt_forward_scalar(table: &NttTable, a: &mut [u64]) {
    table.forward_scalar(a)
}

fn ntt_inverse_scalar(table: &NttTable, a: &mut [u64]) {
    table.inverse_scalar(a)
}

fn pointwise_mul_scalar(m: &Modulus, a: &[u64], b: &[u64], dst: &mut [u64]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = m.mul(x, y);
    }
}

fn pointwise_mul_assign_scalar(m: &Modulus, dst: &mut [u64], b: &[u64]) {
    for (d, &y) in dst.iter_mut().zip(b) {
        *d = m.mul(*d, y);
    }
}

fn pointwise_mul_acc_scalar(m: &Modulus, a: &[u64], b: &[u64], acc: &mut [u64]) {
    for ((d, &x), &y) in acc.iter_mut().zip(a).zip(b) {
        *d = m.mul_add(x, y, *d);
    }
}

#[allow(clippy::too_many_arguments)]
fn sop_narrow_row_scalar(
    m: &Modulus,
    perm: &[u32],
    digits: &[u32],
    ksk0: &[u32],
    ksk1: &[u32],
    c0_row: Option<&[u64]>,
    acc0: &mut [u64],
    acc1: &mut [u64],
) {
    let n = perm.len();
    let k = digits.len() / n;
    for t in 0..n {
        let p = perm[t] as usize;
        let dl = &digits[p * k..p * k + k];
        let w0 = &ksk0[t * k..t * k + k];
        let w1 = &ksk1[t * k..t * k + k];
        let mut s0 = match c0_row {
            Some(row) => row[p],
            None => 0,
        };
        let mut s1 = 0u64;
        for ((&d, &x0), &x1) in dl.iter().zip(w0).zip(w1) {
            let d = d as u64;
            s0 += d * x0 as u64;
            s1 += d * x1 as u64;
        }
        acc0[t] = m.add(acc0[t], m.reduce_u64(s0));
        acc1[t] = m.add(acc1[t], m.reduce_u64(s1));
    }
}

static SCALAR: Kernels = Kernels {
    backend: KernelBackend::Scalar,
    ntt_forward: ntt_forward_scalar,
    ntt_inverse: ntt_inverse_scalar,
    pointwise_mul: pointwise_mul_scalar,
    pointwise_mul_assign: pointwise_mul_assign_scalar,
    pointwise_mul_acc: pointwise_mul_acc_scalar,
    sop_narrow_row: sop_narrow_row_scalar,
};

// ---------------------------------------------------------------------------
// AVX2 table — per-call width selection, scalar fallback where a vector
// path does not apply (wide pointwise moduli, short SoP digit lines).
// ---------------------------------------------------------------------------

// Safety of every `unsafe` call below: these functions are only reachable
// through the `AVX2` table, which is only ever handed out after
// `is_x86_feature_detected!("avx2")` returned true.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;
    use crate::simd;

    fn ntt_forward(table: &NttTable, a: &mut [u64]) {
        if table.modulus().value() < simd::NARROW_NTT_BOUND {
            unsafe { simd::ntt_forward_narrow(table, a) }
        } else {
            unsafe { simd::ntt_forward_wide(table, a) }
        }
    }

    fn ntt_inverse(table: &NttTable, a: &mut [u64]) {
        if table.modulus().value() < simd::NARROW_NTT_BOUND {
            unsafe { simd::ntt_inverse_narrow(table, a) }
        } else {
            unsafe { simd::ntt_inverse_wide(table, a) }
        }
    }

    fn pointwise_mul(m: &Modulus, a: &[u64], b: &[u64], dst: &mut [u64]) {
        if m.value() < simd::NARROW_POINTWISE_BOUND {
            unsafe { simd::pointwise_mul_narrow(m, a, b, dst) }
        } else {
            super::pointwise_mul_scalar(m, a, b, dst)
        }
    }

    fn pointwise_mul_assign(m: &Modulus, dst: &mut [u64], b: &[u64]) {
        if m.value() < simd::NARROW_POINTWISE_BOUND {
            unsafe { simd::pointwise_mul_assign_narrow(m, dst, b) }
        } else {
            super::pointwise_mul_assign_scalar(m, dst, b)
        }
    }

    fn pointwise_mul_acc(m: &Modulus, a: &[u64], b: &[u64], acc: &mut [u64]) {
        if m.value() < simd::NARROW_POINTWISE_BOUND {
            unsafe { simd::pointwise_mul_acc_narrow(m, a, b, acc) }
        } else {
            super::pointwise_mul_acc_scalar(m, a, b, acc)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn sop_narrow_row(
        m: &Modulus,
        perm: &[u32],
        digits: &[u32],
        ksk0: &[u32],
        ksk1: &[u32],
        c0_row: Option<&[u64]>,
        acc0: &mut [u64],
        acc1: &mut [u64],
    ) {
        let k = digits.len() / perm.len();
        if k >= 4 {
            unsafe { simd::sop_narrow_row(m, perm, digits, ksk0, ksk1, c0_row, acc0, acc1) }
        } else {
            super::sop_narrow_row_scalar(m, perm, digits, ksk0, ksk1, c0_row, acc0, acc1)
        }
    }

    pub(super) static TABLE: Kernels = Kernels {
        backend: KernelBackend::Avx2,
        ntt_forward,
        ntt_inverse,
        pointwise_mul,
        pointwise_mul_assign,
        pointwise_mul_acc,
        sop_narrow_row,
    };
}

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

/// The always-available portable table (test escape hatch; production
/// code should call [`kernels`]).
pub fn scalar_kernels() -> &'static Kernels {
    &SCALAR
}

/// The AVX2 table, if and only if this CPU supports AVX2 — independent
/// of the `HEFV_*` overrides, so equivalence tests can compare both
/// paths in one process.
pub fn avx2_kernels() -> Option<&'static Kernels> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(&avx2::TABLE);
        }
    }
    None
}

fn env_nonempty(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| !v.is_empty() && v != "0")
}

fn select() -> &'static Kernels {
    if let Ok(choice) = std::env::var("HEFV_KERNEL") {
        match choice.as_str() {
            "scalar" => return &SCALAR,
            "avx2" => return avx2_kernels().unwrap_or(&SCALAR),
            _ => {} // unknown value: fall through to auto-detection
        }
    }
    if env_nonempty("HEFV_FORCE_SCALAR") {
        return &SCALAR;
    }
    avx2_kernels().unwrap_or(&SCALAR)
}

/// The process-wide kernel table. Detection and the `HEFV_KERNEL` /
/// `HEFV_FORCE_SCALAR` overrides are evaluated once, on first use.
pub fn kernels() -> &'static Kernels {
    static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
    ACTIVE.get_or_init(select)
}

/// The backend of the process-wide table.
pub fn backend() -> KernelBackend {
    kernels().backend()
}

/// Stable name of the active backend (`"scalar"` or `"avx2"`).
pub fn backend_name() -> &'static str {
    backend().name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::ntt_prime;

    #[test]
    fn scalar_table_reports_scalar() {
        assert_eq!(scalar_kernels().backend(), KernelBackend::Scalar);
        assert_eq!(KernelBackend::Scalar.name(), "scalar");
        assert_eq!(KernelBackend::Avx2.name(), "avx2");
    }

    #[test]
    fn active_table_is_consistent() {
        let k = kernels();
        match k.backend() {
            KernelBackend::Scalar => {}
            KernelBackend::Avx2 => assert!(avx2_kernels().is_some()),
        }
        assert_eq!(backend_name(), k.backend().name());
    }

    #[test]
    fn batch_matches_per_row() {
        let n = 64;
        let tables: Vec<NttTable> = (0..3)
            .map(|i| {
                let q = ntt_prime(30, n, i).unwrap();
                NttTable::new(Modulus::new(q), n).unwrap()
            })
            .collect();
        let mut flat: Vec<u64> = (0..3 * n as u64).map(|i| i * 0x9E37 % 1000).collect();
        let mut rows = flat.clone();
        kernels().ntt_forward_batch(&tables, &mut flat);
        for (t, row) in tables.iter().zip(rows.chunks_exact_mut(n)) {
            t.forward(row);
        }
        assert_eq!(flat, rows);
        kernels().ntt_inverse_batch(&tables, &mut flat);
        for (t, row) in tables.iter().zip(rows.chunks_exact_mut(n)) {
            t.inverse(row);
        }
        assert_eq!(flat, rows);
    }

    #[test]
    #[should_panic(expected = "batch length mismatch")]
    fn batch_rejects_wrong_length() {
        let n = 16;
        let q = ntt_prime(30, n, 0).unwrap();
        let tables = vec![NttTable::new(Modulus::new(q), n).unwrap()];
        let mut flat = vec![0u64; n + 1];
        kernels().ntt_forward_batch(&tables, &mut flat);
    }
}
