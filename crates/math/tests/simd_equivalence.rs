//! Bit-identity of the AVX2 kernel table against the scalar fallback.
//!
//! Every dispatched kernel ends with an exact reduction to the canonical
//! `[0, q)` representative, so the SIMD and scalar paths must agree
//! **bit-for-bit** — not just mod q. These tests compare the two tables
//! directly via `dispatch::scalar_kernels()` / `dispatch::avx2_kernels()`,
//! independently of which one the process-wide `HEFV_FORCE_SCALAR` /
//! `HEFV_KERNEL` selection installed, so the suite is meaningful under
//! both settings of the CI matrix (on non-AVX2 hardware the comparisons
//! skip and only the scalar self-checks remain).
//!
//! Coverage deliberately includes both dispatch widths: moduli from 20
//! bits (narrow `pmuludq` path, `q < 2^30`), through the pointwise
//! narrow/wide boundary at `2^32`, up to the largest admissible primes
//! just under `2^62` (wide path), with inputs relaxed across the full
//! Harvey lazy range `[0, 4q)` for the forward transform and `[0, 2q)`
//! for the inverse.

use hefv_math::dispatch::{self, Kernels};
use hefv_math::ntt::NttTable;
use hefv_math::primes::ntt_prime;
use hefv_math::zq::Modulus;
use proptest::prelude::*;

fn both_tables() -> Option<(&'static Kernels, &'static Kernels)> {
    dispatch::avx2_kernels().map(|avx2| (dispatch::scalar_kernels(), avx2))
}

/// Deterministic fill of `len` values in `[0, bound)` from a seed.
fn fill(seed: u64, len: usize, bound: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state % bound
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ntt_bit_identical_across_widths(
        bits in 20u32..=62,
        log_n in 4u32..=12,
        seed in any::<u64>(),
    ) {
        let Some((scalar, avx2)) = both_tables() else { return Ok(()); };
        let n = 1usize << log_n;
        let Some(q) = ntt_prime(bits, n, 0) else { return Ok(()); };
        let table = NttTable::new(Modulus::new(q), n).unwrap();

        // Forward accepts the relaxed Harvey range [0, 4q) — min with
        // 2^64 for the largest moduli where 4q wraps.
        let relaxed = (4u128 * q as u128).min(u128::from(u64::MAX) + 1) as u64;
        let input = fill(seed, n, relaxed.max(1));
        let (mut a, mut b) = (input.clone(), input.clone());
        scalar.ntt_forward(&table, &mut a);
        avx2.ntt_forward(&table, &mut b);
        prop_assert_eq!(&a, &b, "forward q={} n={}", q, n);
        prop_assert!(a.iter().all(|&x| x < q), "forward output not canonical");

        // Inverse keeps values in [0, 2q); feed it the relaxed range too.
        let input = fill(seed ^ 0xDEAD_BEEF, n, 2 * q);
        let (mut a, mut b) = (input.clone(), input);
        scalar.ntt_inverse(&table, &mut a);
        avx2.ntt_inverse(&table, &mut b);
        prop_assert_eq!(&a, &b, "inverse q={} n={}", q, n);
        prop_assert!(a.iter().all(|&x| x < q), "inverse output not canonical");
    }

    #[test]
    fn pointwise_bit_identical_across_widths(
        bits in 20u32..=62,
        len in 1usize..200,
        seed in any::<u64>(),
    ) {
        let Some((scalar, avx2)) = both_tables() else { return Ok(()); };
        // Pointwise operands are canonical [0, q); any odd modulus works.
        let q = ntt_prime(bits, 8, 0).unwrap();
        let m = Modulus::new(q);
        let a = fill(seed, len, q);
        let b = fill(seed ^ 0x5EED, len, q);
        let acc = fill(seed ^ 0xACC, len, q);

        let (mut d0, mut d1) = (vec![0u64; len], vec![0u64; len]);
        scalar.pointwise_mul(&m, &a, &b, &mut d0);
        avx2.pointwise_mul(&m, &a, &b, &mut d1);
        prop_assert_eq!(&d0, &d1, "mul q={} len={}", q, len);

        let (mut d0, mut d1) = (a.clone(), a.clone());
        scalar.pointwise_mul_assign(&m, &mut d0, &b);
        avx2.pointwise_mul_assign(&m, &mut d1, &b);
        prop_assert_eq!(&d0, &d1, "mul_assign q={} len={}", q, len);

        let (mut d0, mut d1) = (acc.clone(), acc);
        scalar.pointwise_mul_acc(&m, &a, &b, &mut d0);
        avx2.pointwise_mul_acc(&m, &a, &b, &mut d1);
        prop_assert_eq!(&d0, &d1, "mul_acc q={} len={}", q, len);
    }

    #[test]
    fn sop_bit_identical_across_digit_counts(
        log_n in 2u32..=8,
        k in 1usize..=9,
        with_seed in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let Some((scalar, avx2)) = both_tables() else { return Ok(()); };
        let n = 1usize << log_n;
        // A 30-bit prime keeps k·(q−1)² + (q−1) < 2^64 for k ≤ 9 — the
        // same no-overflow precondition `narrow_sop_ok` enforces upstream.
        let q = ntt_prime(30, n, 0).unwrap();
        let m = Modulus::new(q);
        let digits: Vec<u32> = fill(seed, n * k, q).iter().map(|&v| v as u32).collect();
        let ksk0: Vec<u32> = fill(seed ^ 0xF00D, n * k, q).iter().map(|&v| v as u32).collect();
        let ksk1: Vec<u32> = fill(seed ^ 0xBEEF, n * k, q).iter().map(|&v| v as u32).collect();
        let c0: Vec<u64> = fill(seed ^ 0xC0, n, q);
        let c0_row = with_seed.then_some(c0.as_slice());
        // An arbitrary permutation (index reversal) exercises the gather.
        let perm: Vec<u32> = (0..n as u32).rev().collect();
        let acc_init0 = fill(seed ^ 0xA0, n, q);
        let acc_init1 = fill(seed ^ 0xA1, n, q);

        let (mut s0, mut s1) = (acc_init0.clone(), acc_init1.clone());
        scalar.sop_narrow_row(&m, &perm, &digits, &ksk0, &ksk1, c0_row, &mut s0, &mut s1);
        let (mut v0, mut v1) = (acc_init0, acc_init1);
        avx2.sop_narrow_row(&m, &perm, &digits, &ksk0, &ksk1, c0_row, &mut v0, &mut v1);
        prop_assert_eq!(&s0, &v0, "sop acc0 n={} k={}", n, k);
        prop_assert_eq!(&s1, &v1, "sop acc1 n={} k={}", n, k);
    }
}

/// The `4q ≤ 2^64` invariant is tightest for the largest admissible
/// moduli: pin bit-identity with every coefficient at the extreme ends
/// of the relaxed range for a prime just below `2^62`.
#[test]
fn ntt_extremes_near_62_bit_bound() {
    let Some((scalar, avx2)) = both_tables() else {
        eprintln!("skipping: AVX2 not available on this CPU");
        return;
    };
    for n in [16usize, 256, 4096] {
        let q = ntt_prime(62, n, 0).unwrap();
        assert!(q > (1 << 61), "expected a 62-bit prime");
        let table = NttTable::new(Modulus::new(q), n).unwrap();
        // Alternate the extremes of [0, 4q): 0, 4q−1, q−1, 2q, 2q−1, 3q...
        let four_q_minus_1 = q.wrapping_mul(4).wrapping_sub(1); // 4q − 1 mod 2^64
        let pattern = [0u64, four_q_minus_1, q - 1, 2 * q, 2 * q - 1, 3 * q, 1, q];
        let input: Vec<u64> = (0..n).map(|i| pattern[i % pattern.len()]).collect();
        let (mut a, mut b) = (input.clone(), input);
        scalar.ntt_forward(&table, &mut a);
        avx2.ntt_forward(&table, &mut b);
        assert_eq!(a, b, "forward extremes q={q} n={n}");

        let inv_pattern = [0u64, 2 * q - 1, q, q - 1, 1, 2 * q - 2];
        let input: Vec<u64> = (0..n).map(|i| inv_pattern[i % inv_pattern.len()]).collect();
        let (mut a, mut b) = (input.clone(), input);
        scalar.ntt_inverse(&table, &mut a);
        avx2.ntt_inverse(&table, &mut b);
        assert_eq!(a, b, "inverse extremes q={q} n={n}");
    }
}

/// The narrow/wide NTT boundary (`2^30`) and the narrow/wide pointwise
/// boundary (`2^32`) both dispatch correctly: primes straddling each
/// boundary agree with scalar and with the strict oracle.
#[test]
fn dispatch_width_boundaries() {
    let Some((scalar, avx2)) = both_tables() else {
        eprintln!("skipping: AVX2 not available on this CPU");
        return;
    };
    let n = 64usize;
    for bits in [29u32, 30, 31, 32, 33] {
        let Some(q) = ntt_prime(bits, n, 0) else {
            continue;
        };
        let table = NttTable::new(Modulus::new(q), n).unwrap();
        let m = Modulus::new(q);
        let input = fill(0x1234_5678 + bits as u64, n, q);
        let (mut a, mut b, mut strict) = (input.clone(), input.clone(), input.clone());
        scalar.ntt_forward(&table, &mut a);
        avx2.ntt_forward(&table, &mut b);
        table.forward_strict(&mut strict);
        assert_eq!(a, b, "forward bits={bits}");
        assert_eq!(a, strict, "forward vs strict bits={bits}");

        let x = fill(0x9999 + bits as u64, n, q);
        let (mut d0, mut d1) = (vec![0u64; n], vec![0u64; n]);
        scalar.pointwise_mul(&m, &x, &input, &mut d0);
        avx2.pointwise_mul(&m, &x, &input, &mut d1);
        assert_eq!(d0, d1, "pointwise bits={bits}");
    }
}

/// The process-wide selection honors the documented env-override order;
/// whichever table is active, its output matches the scalar table.
#[test]
fn active_table_matches_scalar() {
    let n = 256usize;
    let q = ntt_prime(30, n, 0).unwrap();
    let table = NttTable::new(Modulus::new(q), n).unwrap();
    let input = fill(42, n, q);
    let (mut active, mut scalar) = (input.clone(), input);
    dispatch::kernels().ntt_forward(&table, &mut active);
    dispatch::scalar_kernels().ntt_forward(&table, &mut scalar);
    assert_eq!(active, scalar, "backend={}", dispatch::backend_name());
}
