//! Property-based tests of the arithmetic substrate.

use hefv_math::bigint::{center, UBig};
use hefv_math::fixed::{SmallReciprocal, WideReciprocal};
use hefv_math::ntt::{negacyclic_mul_schoolbook, NttTable};
use hefv_math::primes::{is_prime, ntt_primes};
use hefv_math::rns::{HpsPrecision, RnsBasis, RnsContext, ScaleContext};
use hefv_math::zq::{Modulus, ShoupMul, SlidingWindowTable};
use proptest::prelude::*;

const P30: u64 = 1_073_479_681;

fn ubig_strategy() -> impl Strategy<Value = UBig> {
    prop::collection::vec(any::<u64>(), 0..6).prop_map(UBig::from_limbs)
}

proptest! {
    // ---------------- Modulus / Zq ----------------

    #[test]
    fn zq_mul_commutative_associative(a in 0..P30, b in 0..P30, c in 0..P30) {
        let m = Modulus::new(P30);
        prop_assert_eq!(m.mul(a, b), m.mul(b, a));
        prop_assert_eq!(m.mul(m.mul(a, b), c), m.mul(a, m.mul(b, c)));
    }

    #[test]
    fn zq_distributive(a in 0..P30, b in 0..P30, c in 0..P30) {
        let m = Modulus::new(P30);
        prop_assert_eq!(m.mul(a, m.add(b, c)), m.add(m.mul(a, b), m.mul(a, c)));
    }

    #[test]
    fn zq_inverse_is_inverse(a in 1..P30) {
        let m = Modulus::new(P30);
        prop_assert_eq!(m.mul(a, m.inv(a)), 1);
    }

    #[test]
    fn zq_reduce_u128_matches_rem(x in any::<u128>()) {
        let m = Modulus::new(P30);
        prop_assert_eq!(m.reduce_u128(x) as u128, x % P30 as u128);
    }

    #[test]
    fn sliding_window_equals_barrett(a in 0..P30, b in 0..P30, c in 0..P30) {
        let m = Modulus::new(P30);
        let t = SlidingWindowTable::new(&m);
        let x = a as u128 * b as u128 + c as u128; // MAC-shaped input
        prop_assert_eq!(m.reduce_sliding_window(x, &t), m.reduce_u128(x));
    }

    #[test]
    fn shoup_equals_plain_mul(a in 0..P30, w in 0..P30) {
        let m = Modulus::new(P30);
        let s = ShoupMul::new(w, P30);
        prop_assert_eq!(s.mul(a, P30), m.mul(a, w));
    }

    #[test]
    fn centered_roundtrip(v in 0..P30) {
        let m = Modulus::new(P30);
        prop_assert_eq!(m.from_i64(m.to_centered(v)), v);
    }

    // ---------------- UBig ----------------

    #[test]
    fn ubig_add_commutes(a in ubig_strategy(), b in ubig_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn ubig_add_sub_roundtrip(a in ubig_strategy(), b in ubig_strategy()) {
        let s = &a + &b;
        prop_assert_eq!(&(&s - &a), &b);
        prop_assert_eq!(&(&s - &b), &a);
    }

    #[test]
    fn ubig_mul_distributes(a in ubig_strategy(), b in ubig_strategy(), c in ubig_strategy()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn ubig_div_rem_invariant(a in ubig_strategy(), b in ubig_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn ubig_shift_roundtrip(a in ubig_strategy(), s in 0usize..200) {
        prop_assert_eq!(&(&(&a << s) >> s), &a);
    }

    #[test]
    fn ubig_decimal_roundtrip(a in ubig_strategy()) {
        prop_assert_eq!(UBig::from_decimal(&a.to_decimal()).unwrap(), a);
    }

    #[test]
    fn ubig_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(&UBig::from(a) * &UBig::from(b), UBig::from(a as u128 * b as u128));
    }

    #[test]
    fn center_magnitude_at_most_half(v in 0..P30) {
        let m = UBig::from(P30);
        let c = center(&UBig::from(v), &m);
        prop_assert!(c.magnitude() <= &(&m >> 1) || (c.is_negative() && c.magnitude() < &m));
        prop_assert_eq!(c.rem_euclid(&m).to_u64().unwrap(), v);
    }

    // ---------------- reciprocals ----------------

    #[test]
    fn small_reciprocal_round_exact(y in 0u64..(1 << 31)) {
        let r = SmallReciprocal::new(P30);
        let got = SmallReciprocal::round_sum(&[r.mul(y)]);
        let exact = (2 * y as u128 + P30 as u128) / (2 * P30 as u128);
        prop_assert_eq!(got as u128, exact);
    }

    #[test]
    fn wide_reciprocal_div_exact(a in ubig_strategy(), m in 2u64..) {
        let modulus = UBig::from(m);
        let r = WideReciprocal::new(modulus.clone(), 420);
        prop_assert_eq!(r.div_floor(&a), a.div_rem(&modulus).0);
        prop_assert_eq!(r.div_round(&a), a.div_round(&modulus));
    }
}

// ---------------- NTT ----------------

fn ntt_setup(n: usize) -> NttTable {
    let ps = ntt_primes(30, n, 1).unwrap();
    NttTable::new(Modulus::new(ps[0]), n).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ntt_roundtrip_random(coeffs in prop::collection::vec(any::<u64>(), 64)) {
        let t = ntt_setup(64);
        let q = t.modulus().value();
        let a: Vec<u64> = coeffs.iter().map(|&c| c % q).collect();
        let mut x = a.clone();
        t.forward(&mut x);
        t.inverse(&mut x);
        prop_assert_eq!(x, a);
    }

    #[test]
    fn ntt_convolution_theorem(
        a in prop::collection::vec(any::<u64>(), 32),
        b in prop::collection::vec(any::<u64>(), 32),
    ) {
        let t = ntt_setup(32);
        let q = t.modulus().value();
        let a: Vec<u64> = a.iter().map(|&c| c % q).collect();
        let b: Vec<u64> = b.iter().map(|&c| c % q).collect();
        prop_assert_eq!(
            t.negacyclic_mul(&a, &b),
            negacyclic_mul_schoolbook(&a, &b, t.modulus())
        );
    }

    #[test]
    fn lazy_ntt_bit_identical_to_strict(
        coeffs in prop::collection::vec(any::<u64>(), 128),
        bits in 20u32..62,
        size_sel in 0usize..4,
        idx in 0usize..2,
    ) {
        // Random (q, n): prime width 20..62 bits, n ∈ {16, 32, 64, 128}.
        let n = 16usize << size_sel;
        prop_assume!(bits >= 12 + size_sel as u32); // prime ≡ 1 mod 2n must exist below 2^bits
        let Some(q) = hefv_math::primes::ntt_prime(bits, n, idx) else {
            return Ok(());
        };
        let t = NttTable::new(Modulus::new(q), n).unwrap();
        let a: Vec<u64> = coeffs[..n].iter().map(|&c| c % q).collect();

        let (mut lazy, mut strict) = (a.clone(), a.clone());
        t.forward(&mut lazy);
        t.forward_strict(&mut strict);
        prop_assert_eq!(&lazy, &strict, "forward q={} n={}", q, n);

        // Inverse on the (bit-reversed) forward output and on a raw
        // random vector — both must match the strict path bit for bit.
        let (mut li, mut si) = (lazy.clone(), strict.clone());
        t.inverse(&mut li);
        t.inverse_strict(&mut si);
        prop_assert_eq!(&li, &si, "inverse q={} n={}", q, n);
        prop_assert_eq!(&li, &a, "roundtrip q={} n={}", q, n);

        let (mut ri, mut rs) = (a.clone(), a);
        t.inverse(&mut ri);
        t.inverse_strict(&mut rs);
        prop_assert_eq!(&ri, &rs, "inverse-of-raw q={} n={}", q, n);
    }

    #[test]
    fn lazy_ntt_convolution_still_matches_schoolbook(
        a in prop::collection::vec(any::<u64>(), 64),
        b in prop::collection::vec(any::<u64>(), 64),
    ) {
        // Regression for the Harvey rewrite: negacyclic convolution through
        // the lazy transforms must still equal the O(n²) reference.
        let t = ntt_setup(64);
        let q = t.modulus().value();
        let a: Vec<u64> = a.iter().map(|&c| c % q).collect();
        let b: Vec<u64> = b.iter().map(|&c| c % q).collect();
        prop_assert_eq!(
            t.negacyclic_mul(&a, &b),
            negacyclic_mul_schoolbook(&a, &b, t.modulus())
        );
    }

    #[test]
    fn ntt_is_linear(
        a in prop::collection::vec(any::<u64>(), 32),
        s in any::<u64>(),
    ) {
        let t = ntt_setup(32);
        let q = t.modulus();
        let s = q.reduce(s);
        let a: Vec<u64> = a.iter().map(|&c| q.reduce(c)).collect();
        let scaled: Vec<u64> = a.iter().map(|&c| q.mul(c, s)).collect();
        let (mut fa, mut fs) = (a, scaled);
        t.forward(&mut fa);
        t.forward(&mut fs);
        for (x, y) in fa.iter().zip(&fs) {
            prop_assert_eq!(q.mul(*x, s), *y);
        }
    }
}

// ---------------- RNS ----------------

fn rns_ctx() -> RnsContext {
    let ps = ntt_primes(30, 64, 13).unwrap();
    RnsContext::new(&ps[..6], &ps[6..]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rns_encode_decode_roundtrip(limbs in prop::collection::vec(any::<u64>(), 0..3)) {
        let ps = ntt_primes(30, 64, 4).unwrap();
        let basis = RnsBasis::new(&ps).unwrap();
        let v = UBig::from_limbs(limbs).div_rem(basis.product()).1;
        prop_assert_eq!(basis.decode(&basis.encode(&v)), v);
    }

    #[test]
    fn hps_lift_equals_exact_lift(residue_seed in any::<u64>()) {
        let ctx = rns_ctx();
        let mut st = residue_seed;
        let res: Vec<u64> = (0..6).map(|i| {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            st % ctx.base_q().modulus(i).value()
        }).collect();
        let exact = ctx.lift().extend_exact(&res);
        prop_assert_eq!(&ctx.lift().extend_hps(&res, HpsPrecision::F64), &exact);
        prop_assert_eq!(&ctx.lift().extend_hps(&res, HpsPrecision::Fixed), &exact);
    }

    #[test]
    fn hps_scale_equals_exact_scale(limbs in prop::collection::vec(any::<u64>(), 6), negate in any::<bool>()) {
        let ctx = rns_ctx();
        let sc = ScaleContext::new(&ctx, 2);
        // tensor-magnitude value: < n·q²·t ≪ Q/2
        let q = ctx.base_q().product().clone();
        let bound = &(&q * &q) << 7;
        let v = UBig::from_limbs(limbs).div_rem(&bound).1;
        let rep = if negate { ctx.big_q() - &v } else { v };
        let res = ctx.base_full().encode(&rep);
        let exact = sc.scale_exact(&ctx, &res);
        prop_assert_eq!(&sc.scale_hps(&ctx, &res[..6], &res[6..], HpsPrecision::F64), &exact);
        prop_assert_eq!(&sc.scale_hps(&ctx, &res[..6], &res[6..], HpsPrecision::Fixed), &exact);
    }

    #[test]
    fn prime_generator_output_is_prime(bits in 20u32..33, idx in 0usize..3) {
        if let Some(p) = hefv_math::primes::ntt_prime(bits, 64, idx) {
            prop_assert!(is_prime(p));
            prop_assert_eq!((p - 1) % 128, 0);
            prop_assert!(p < 1u64 << bits);
        }
    }
}
