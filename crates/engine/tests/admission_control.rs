//! Admission-control integration tests: every gate in
//! [`SheddingPolicy`] refuses at the door — before a job mints queue
//! state or touches a worker — with the right typed [`ErrorCode`], and
//! the refusals show up in the `hefv_shed_total` accounting.

use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn enc(ctx: &FvContext, pk: &PublicKey, v: u64, rng: &mut StdRng) -> Ciphertext {
    let (t, n) = (ctx.params().t, ctx.params().n);
    encrypt(ctx, pk, &Plaintext::new(vec![v], t, n), rng)
}

/// One engine on toy parameters with a registered compute tenant.
fn engine_with(config: EngineConfig, seed: u64) -> (Arc<FvContext>, Engine, PublicKey, StdRng) {
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
    let engine = Engine::start(Arc::clone(&ctx), config);
    let mut rng = StdRng::seed_from_u64(seed);
    let (_sk, pk, rlk) = keygen(&ctx, &mut rng);
    engine.register_tenant(1, TenantKeys::compute(pk.clone(), rlk));
    (ctx, engine, pk, rng)
}

/// A single Mul request, optionally with a deadline.
fn mul_req(
    ctx: &FvContext,
    pk: &PublicKey,
    rng: &mut StdRng,
    deadline_us: Option<f64>,
) -> EvalRequest {
    EvalRequest {
        tenant: 1,
        inputs: vec![enc(ctx, pk, 2, rng), enc(ctx, pk, 3, rng)],
        plaintexts: vec![],
        ops: vec![EvalOp::Mul(ValRef::Input(0), ValRef::Input(1))],
        deadline_us,
        trace_id: None,
    }
}

/// A chain of `depth` squarings — slow filler, and past the toy noise
/// budget once `depth` exceeds a handful of levels.
fn mul_chain(ctx: &FvContext, pk: &PublicKey, rng: &mut StdRng, depth: usize) -> EvalRequest {
    let mut ops = vec![EvalOp::Mul(ValRef::Input(0), ValRef::Input(0))];
    for i in 1..depth as u32 {
        ops.push(EvalOp::Mul(ValRef::Op(i - 1), ValRef::Op(i - 1)));
    }
    EvalRequest {
        tenant: 1,
        inputs: vec![enc(ctx, pk, 1, rng)],
        plaintexts: vec![],
        ops,
        deadline_us: None,
        trace_id: None,
    }
}

fn shed_count(snap: &StatsSnapshot, reason: &str) -> u64 {
    snap.shed_by_reason
        .iter()
        .find(|(name, _)| *name == reason)
        .map(|(_, v)| *v)
        .expect("unknown shed reason")
}

/// An infeasible deadline is refused at the door: nothing queues,
/// nothing executes, and the refusal names both sides of the inequality.
#[test]
fn infeasible_deadline_burst_is_refused_without_executing() {
    const BURST: usize = 8;
    let (ctx, engine, pk, mut rng) = engine_with(EngineConfig::default(), 41);

    for _ in 0..BURST {
        // Far below any possible Mul cost estimate.
        let err = engine
            .submit(mul_req(&ctx, &pk, &mut rng, Some(0.001)))
            .expect_err("a 1 ns deadline must be infeasible");
        assert_eq!(err.code(), ErrorCode::DeadlineInfeasible);
        assert!(
            !err.retryable(),
            "resubmitting the same impossible deadline cannot help"
        );
        match err {
            EngineError::DeadlineInfeasible {
                estimated_us,
                deadline_us,
            } => assert!(estimated_us > deadline_us),
            other => panic!("wrong refusal: {other}"),
        }
    }

    // A generous deadline on the identical job is admitted and runs.
    engine
        .call(mul_req(&ctx, &pk, &mut rng, Some(10_000_000.0)))
        .expect("a 10 s deadline on a toy Mul is feasible");

    let snap = engine.stats();
    assert_eq!(shed_count(&snap, "deadline_infeasible"), BURST as u64);
    assert_eq!(
        snap.jobs_completed, 1,
        "only the feasible job may have executed"
    );
    engine.shutdown();
}

/// Past the brownout occupancy mark, deadline-less traffic is shed with
/// a retryable Overload refusal carrying a drain-time hint.
#[test]
fn brownout_sheds_deadline_less_traffic_with_a_retry_hint() {
    let (ctx, engine, pk, mut rng) = engine_with(
        EngineConfig {
            workers: 1,
            threads_per_job: 1,
            queue_capacity: 16,
            shedding: SheddingPolicy {
                brownout_occupancy: 0.25, // trips at 4 queued jobs
                noise_admission: false,   // the filler chains are over-budget
                ..SheddingPolicy::default()
            },
            ..EngineConfig::default()
        },
        42,
    );

    let mut handles = Vec::new();
    let mut refusal = None;
    for _ in 0..16 {
        match engine.submit(mul_chain(&ctx, &pk, &mut rng, 64)) {
            Ok(h) => handles.push(h),
            Err(e) => {
                refusal = Some(e);
                break;
            }
        }
    }
    let err = refusal.expect("one worker cannot drain 16 deep chains below 25% occupancy");
    assert_eq!(err.code(), ErrorCode::Overload);
    assert!(err.retryable(), "brownout invites a retry");
    match err {
        EngineError::Overload { retry_after_us } => {
            let hint = retry_after_us.expect("brownout refusals carry a drain-time hint");
            assert!(hint >= 1);
        }
        other => panic!("wrong refusal: {other}"),
    }
    assert!(shed_count(&engine.stats(), "overload") >= 1);
    drop(handles);
    engine.shutdown();
}

/// Once pooled scratch bytes cross the configured high-water mark, new
/// submissions are refused MemoryPressure (retryable: pressure decays).
/// Chaos `alloc_pressure: 1.0` parks a 1 MiB chunk per executed job, so
/// the second submission deterministically finds the mark crossed.
#[test]
fn memory_pressure_gate_refuses_once_pooled_bytes_cross_the_mark() {
    let (ctx, engine, pk, mut rng) = engine_with(
        EngineConfig {
            workers: 1,
            shedding: SheddingPolicy {
                memory_high_water_bytes: 1024,
                ..SheddingPolicy::default()
            },
            chaos: Some(ChaosPlan {
                alloc_pressure: 1.0,
                ..ChaosPlan::default()
            }),
            ..EngineConfig::default()
        },
        43,
    );

    // First job: the gauge is still zero, so it is admitted — and its
    // execution parks ≥ 1 MiB of pressure in the worker arena.
    engine
        .call(mul_req(&ctx, &pk, &mut rng, None))
        .expect("an empty pool admits the first job");
    // The worker folds its arena occupancy into the gauge just after
    // delivering the reply; wait out that last stretch of the race.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while engine.stats().arena_pooled_bytes < 1024 {
        assert!(
            std::time::Instant::now() < deadline,
            "pressure chunk never reached the pooled-bytes gauge"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    let err = engine
        .submit(mul_req(&ctx, &pk, &mut rng, None))
        .expect_err("pooled bytes are past the 1 KiB mark now");
    assert_eq!(err.code(), ErrorCode::MemoryPressure);
    assert!(err.retryable(), "pressure decays; retrying can succeed");
    match err {
        EngineError::MemoryPressure {
            pooled_bytes,
            high_water_bytes,
        } => {
            assert_eq!(high_water_bytes, 1024);
            assert!(pooled_bytes >= high_water_bytes);
        }
        other => panic!("wrong refusal: {other}"),
    }
    assert_eq!(shed_count(&engine.stats(), "memory_pressure"), 1);
    engine.shutdown();
}

/// A graph whose worst-case noise cannot close under the parameter set's
/// budget is refused before wasting a worker on a garbage result.
#[test]
fn deep_graphs_are_refused_at_the_noise_budget() {
    let (ctx, engine, pk, mut rng) = engine_with(EngineConfig::default(), 44);

    let err = engine
        .submit(mul_chain(&ctx, &pk, &mut rng, 24))
        .expect_err("24 squarings are far past the toy budget");
    assert_eq!(err.code(), ErrorCode::NoiseBudgetExhausted);
    assert!(
        !err.retryable(),
        "the same graph can never fit the same budget"
    );
    match err {
        EngineError::NoiseBudgetExhausted {
            needed_bits,
            budget_bits,
        } => assert!(needed_bits > budget_bits),
        other => panic!("wrong refusal: {other}"),
    }

    let snap = engine.stats();
    assert_eq!(shed_count(&snap, "noise_budget_exhausted"), 1);
    assert_eq!(snap.jobs_completed, 0, "nothing may have executed");

    // A shallow graph on the same engine still clears the gate.
    engine
        .call(mul_req(&ctx, &pk, &mut rng, None))
        .expect("a single Mul fits the toy budget");
    engine.shutdown();
}

/// K repeated worker panics on one (tenant, op-class) signature
/// quarantine it: further submissions of that shape are refused
/// `Quarantined` with a TTL hint, other shapes keep flowing, and the
/// quarantine decays after the TTL.
#[test]
fn repeated_panics_quarantine_the_signature_until_ttl_expiry() {
    const TTL: Duration = Duration::from_millis(80);
    let (ctx, engine, pk, mut rng) = engine_with(
        EngineConfig {
            workers: 1,
            shedding: SheddingPolicy {
                quarantine_after: 2,
                quarantine_ttl: TTL,
                ..SheddingPolicy::default()
            },
            chaos: Some(ChaosPlan {
                panic: 1.0, // every executed job panics in the worker
                ..ChaosPlan::default()
            }),
            ..EngineConfig::default()
        },
        45,
    );

    // Two strikes: both jobs are admitted, panic inside the worker, and
    // come back as contained Internal failures — the engine survives.
    for _ in 0..2 {
        let err = engine
            .call(mul_req(&ctx, &pk, &mut rng, None))
            .expect_err("chaos panics every job");
        assert_eq!(err.code(), ErrorCode::Internal);
    }

    // Strike K reached: the signature is quarantined at admission.
    let err = engine
        .submit(mul_req(&ctx, &pk, &mut rng, None))
        .expect_err("two strikes quarantine the (tenant, Mul) signature");
    assert_eq!(err.code(), ErrorCode::Quarantined);
    match err {
        EngineError::Quarantined { retry_after_us } => {
            assert!(retry_after_us > 0, "the refusal names the remaining TTL");
            assert!(retry_after_us <= TTL.as_micros() as u64);
        }
        other => panic!("wrong refusal: {other}"),
    }
    let snap = engine.stats();
    assert_eq!(snap.quarantine_active, 1);
    assert_eq!(shed_count(&snap, "quarantined"), 1);

    // A different op-class from the same tenant is NOT quarantined: it
    // is admitted (and panics like everything else under this chaos).
    let add = EvalRequest::binary(
        1,
        EvalOp::Add,
        enc(&ctx, &pk, 1, &mut rng),
        enc(&ctx, &pk, 2, &mut rng),
    );
    let err = engine.call(add).expect_err("chaos panics every job");
    assert_eq!(
        err.code(),
        ErrorCode::Internal,
        "only the panicking signature is fenced, not the tenant"
    );

    // After the TTL the signature is admitted again (and strikes were
    // halved, not reset — a still-broken shape re-trips quickly).
    std::thread::sleep(TTL + Duration::from_millis(40));
    let snap = engine.stats(); // stats() sweeps expired quarantines
    assert_eq!(snap.quarantine_active, 0, "TTL expiry frees the signature");
    let err = engine
        .call(mul_req(&ctx, &pk, &mut rng, None))
        .expect_err("admitted again; chaos still panics it");
    assert_eq!(err.code(), ErrorCode::Internal);
    engine.shutdown();
}

/// Chaos injection is contained: with a moderate panic rate, every job
/// gets exactly one reply (Ok or typed error), and the engine's worker
/// pool survives to serve clean traffic once chaos is off the path.
#[test]
fn chaos_panics_never_lose_replies() {
    const JOBS: usize = 40;
    let (ctx, engine, pk, mut rng) = engine_with(
        EngineConfig {
            workers: 2,
            shedding: SheddingPolicy {
                // Strikes accumulate fast at panic:0.5; keep the door
                // open so every job reaches a worker.
                quarantine_after: u32::MAX,
                ..SheddingPolicy::default()
            },
            chaos: Some(ChaosPlan {
                panic: 0.5,
                delay: Duration::from_micros(200),
                ..ChaosPlan::default()
            }),
            ..EngineConfig::default()
        },
        46,
    );

    let mut handles = Vec::new();
    for _ in 0..JOBS {
        handles.push(engine.submit(mul_req(&ctx, &pk, &mut rng, None)).unwrap());
    }
    let mut ok = 0usize;
    let mut panicked = 0usize;
    for h in handles {
        match h.wait() {
            Ok(_) => ok += 1,
            Err(e) => {
                assert_eq!(e.code(), ErrorCode::Internal);
                panicked += 1;
            }
        }
    }
    assert_eq!(ok + panicked, JOBS, "every job answered exactly once");
    assert!(panicked > 0, "a 50% panic rate cannot miss 40 jobs");
    assert!(ok > 0, "a 50% panic rate cannot hit all 40 jobs");

    let snap = engine.stats();
    assert_eq!(snap.jobs_completed, ok as u64);
    assert_eq!(snap.jobs_failed, panicked as u64);
    engine.shutdown();
}
