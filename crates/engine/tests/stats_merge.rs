//! Distribution-merge properties: absorbing the snapshots of N
//! independently-loaded engines must be indistinguishable from one
//! engine that recorded the union of their workloads — counts, sums,
//! maxima, histogram buckets, quantiles and per-tenant accounting all
//! agree. This is what makes the router-wide `HEVS` exposition honest:
//! the fleet total is *defined* as the shard merge.

use hefv_core::eval::Backend;
use hefv_engine::stats::{EngineStats, Fold, StatsSnapshot, OP_KINDS};
use hefv_engine::SchedLevel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replays a deterministic pseudo-random workload onto `stats`. The
/// same `(seed, events)` always drives the identical recorder calls, so
/// the union workload can be reproduced by replaying every shard's
/// stream onto one recorder.
fn replay(stats: &EngineStats, seed: u64, events: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..events {
        match rng.gen_range(0..12u8) {
            // Turned away at capacity: never admitted, nothing to undo.
            0 => stats.on_refused(),
            // Admitted, then refused by a closing queue before any
            // worker picked it up.
            1 => {
                stats.on_submit();
                stats.on_reject();
            }
            2 => {
                stats.on_submit();
                stats.on_dequeue(
                    rng.gen_range(1..5_000_000u64),
                    SchedLevel::ALL[rng.gen_range(0..SchedLevel::ALL.len())],
                );
                stats.on_fail();
            }
            _ => {
                stats.on_submit();
                stats.on_dequeue(
                    rng.gen_range(1..5_000_000u64),
                    SchedLevel::ALL[rng.gen_range(0..SchedLevel::ALL.len())],
                );
                // `Auto` resolves to the HPS datapath, so both backend
                // tables see traffic.
                let backend = if rng.gen_bool(0.5) {
                    Backend::Traditional
                } else {
                    Backend::Auto
                };
                stats.on_backend(backend);
                let exec_ns = rng.gen_range(100..50_000_000u64);
                stats.on_complete(
                    exec_ns,
                    rng.gen_range(1..100_000u64) as f64 / 8.0,
                    rng.gen_range(0..64_000u64) as f64 / 1000.0,
                    backend,
                );
                stats.on_tenant(rng.gen_range(1..6u64), exec_ns, 0.25);
            }
        }
        let op = OP_KINDS[rng.gen_range(0..OP_KINDS.len())];
        stats.record_op(op, rng.gen_range(1..10_000_000u64));
        if rng.gen_bool(0.2) {
            stats.on_batch(rng.gen_range(1..9usize));
        }
        if rng.gen_bool(0.3) {
            stats.on_kernel_time(
                rng.gen_range(0..9_000u64) as f64,
                rng.gen_range(0..9_000u64) as f64,
            );
        }
        if rng.gen_bool(0.05) {
            stats.on_slow();
        }
        if rng.gen_bool(0.2) {
            // Arena occupancy deltas (always reported as prev → now).
            let prev = hefv_core::scratch::ArenaStats::default();
            let now = hefv_core::scratch::ArenaStats {
                pooled_buffers: rng.gen_range(1..8u64),
                pooled_bytes: rng.gen_range(64..4096u64),
                dropped: rng.gen_range(0..3u64),
            };
            stats.on_arena(&prev, &now);
        }
    }
}

/// Exact for everything integer-derived; the four fixed-point f64
/// fields tolerate the one-ulp-scale difference between `Σ(xᵢ/1000)`
/// and `(Σxᵢ)/1000`.
fn assert_snapshots_agree(merged: &StatsSnapshot, union: &StatsSnapshot) {
    for (m, u) in merged.per_op.iter().zip(&union.per_op) {
        assert_eq!(m.name, u.name);
        assert_eq!(m.count, u.count, "op {} count", m.name);
        assert_eq!(m.total_ns, u.total_ns, "op {} total", m.name);
        assert_eq!(m.max_ns, u.max_ns, "op {} max", m.name);
        assert_eq!(m.latency, u.latency, "op {} histogram", m.name);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(m.latency.quantile(q), u.latency.quantile(q));
        }
    }
    assert_eq!(merged.exec_by_backend, union.exec_by_backend);
    assert_eq!(merged.queue_wait_by_level, union.queue_wait_by_level);
    assert_eq!(merged.per_tenant.len(), union.per_tenant.len());
    for (m, u) in merged.per_tenant.iter().zip(&union.per_tenant) {
        assert_eq!(m.tenant, u.tenant);
        assert_eq!(m.requests, u.requests, "tenant {} requests", m.tenant);
        assert_eq!(m.latency_ns, u.latency_ns, "tenant {} latency", m.tenant);
        assert!((m.noise_bits - u.noise_bits).abs() <= 1e-9 * u.noise_bits.abs().max(1.0));
    }
    // Every scalar the snapshot carries, via the same exhaustive audit
    // the coverage test uses — a new field cannot dodge this comparison
    // without failing to compile `audit_fields` first.
    for ((name, m, fold), (uname, u, _)) in merged.audit_fields().iter().zip(&union.audit_fields())
    {
        assert_eq!(name, uname);
        match fold {
            Fold::Max => assert!(
                (m - u).abs() <= f64::EPSILON * u.abs(),
                "{name}: {m} vs {u}"
            ),
            Fold::Add => assert!(
                (m - u).abs() <= 1e-9 * u.abs().max(1.0),
                "{name}: {m} vs {u}"
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// N shards, each with its own workload: absorbing their snapshots
    /// in order equals recording all N workloads on one engine.
    #[test]
    fn absorbing_shard_snapshots_equals_recording_the_union(
        seed in any::<u64>(),
        shards in 2usize..5,
        events in 10usize..120,
    ) {
        let union = EngineStats::default();
        let mut merged: Option<StatsSnapshot> = None;
        for s in 0..shards {
            let shard = EngineStats::default();
            replay(&shard, seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15), events);
            replay(&union, seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15), events);
            let snap = shard.snapshot();
            match merged.as_mut() {
                None => merged = Some(snap),
                Some(m) => m.absorb(&snap),
            }
        }
        assert_snapshots_agree(&merged.unwrap(), &union.snapshot());
    }

    /// Merge order is irrelevant: absorbing A then B equals B then A.
    #[test]
    fn absorb_is_commutative(seed in any::<u64>(), events in 10usize..80) {
        let (a, b) = (EngineStats::default(), EngineStats::default());
        replay(&a, seed, events);
        replay(&b, !seed, events);
        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.absorb(&sb);
        let mut ba = sb;
        ba.absorb(&sa);
        assert_snapshots_agree(&ab, &ba);
    }
}

/// The recorder under real contention: many threads hammering one
/// `EngineStats` lose nothing — the lock-free counters and histogram
/// buckets account for every event exactly.
#[test]
fn concurrent_recording_loses_no_events() {
    const THREADS: u64 = 8;
    const EVENTS: u64 = 10_000;
    let stats = EngineStats::default();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let stats = &stats;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                for i in 0..EVENTS {
                    stats.on_submit();
                    stats.on_dequeue(i + 1, SchedLevel::ALL[(i % 3) as usize]);
                    stats.on_complete(i + 1, 0.5, 0.001, Backend::Traditional);
                    stats.record_op("mul", rng.gen_range(1..1_000_000u64));
                    stats.on_tenant(t, i + 1, 0.001);
                }
            });
        }
    });
    let snap = stats.snapshot();
    assert_eq!(snap.jobs_submitted, THREADS * EVENTS);
    assert_eq!(snap.jobs_completed, THREADS * EVENTS);
    assert_eq!(snap.queue_depth, 0);
    let mul = &snap.per_op[hefv_engine::stats::op_index("mul").unwrap()];
    assert_eq!(mul.count, THREADS * EVENTS);
    assert_eq!(mul.latency.count, mul.latency.buckets.iter().sum::<u64>());
    // Each thread recorded 1..=EVENTS ns of exec, exactly once each.
    let per_thread: u64 = (1..=EVENTS).sum();
    assert_eq!(snap.exec_ns, THREADS * per_thread);
    assert_eq!(snap.per_tenant.len(), THREADS as usize);
    for t in &snap.per_tenant {
        assert_eq!(t.requests, EVENTS);
        assert_eq!(t.latency_ns, per_thread);
    }
}

/// Pins the `HistogramSnapshot::quantile` edge-case contract: empty
/// histograms, out-of-range `q` (both sides, including infinities), and
/// `NaN` all return defined values — never a panic, never a garbage
/// bucket.
#[test]
fn quantile_edge_case_contract() {
    use hefv_engine::{Histogram, HistogramSnapshot};

    let empty = HistogramSnapshot::default();
    for q in [
        f64::NAN,
        f64::NEG_INFINITY,
        -1.0,
        0.0,
        0.5,
        1.0,
        2.0,
        f64::INFINITY,
    ] {
        assert_eq!(empty.quantile(q), 0, "empty histogram, q={q}");
    }

    let h = Histogram::default();
    for v in [5u64, 17, 1000, 12_345] {
        h.record(v);
    }
    let s = h.snapshot();
    // q <= 0 and NaN target the first sample (5 sits in an exact linear
    // bucket, so the value is exact).
    let floor = s.quantile(0.0);
    assert_eq!(floor, 5);
    assert_eq!(s.quantile(f64::NAN), floor, "NaN behaves as q = 0");
    assert_eq!(s.quantile(-3.0), floor);
    assert_eq!(s.quantile(f64::NEG_INFINITY), floor);
    // q >= 1 returns the EXACT recorded max, not a bucket representative.
    assert_eq!(s.quantile(1.0), 12_345);
    assert_eq!(s.quantile(7.5), 12_345);
    assert_eq!(s.quantile(f64::INFINITY), 12_345);
    // Interior quantiles stay monotone between the pinned endpoints.
    let (mut prev, qs) = (floor, [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]);
    for q in qs {
        let v = s.quantile(q);
        assert!(v >= prev, "quantile not monotone at q={q}");
        prev = v;
    }
}

/// Regression for the in-flight gauge on adversarial (racy) snapshots:
/// the signed sum `submitted − completed − failed − queue_depth` is
/// computed once and clamped at the end, so a snapshot whose subtrahends
/// overshoot in *any* combination renders 0 — and a consistent snapshot
/// renders the exact difference.
#[test]
fn inflight_gauge_clamps_adversarial_snapshots() {
    use hefv_engine::{render_prometheus, RouterStats};

    let gauge = |snap: hefv_engine::StatsSnapshot| -> String {
        let text = render_prometheus(&RouterStats {
            per_shard: vec![],
            remote: vec![],
            hedge: Default::default(),
            keys_evicted: 0,
            total: snap,
        });
        text.lines()
            .find(|l| l.starts_with("hefv_jobs_inflight "))
            .expect("inflight gauge rendered")
            .to_string()
    };

    // Adversarial: every subtrahend individually exceeds what chained
    // clamping would leave (5 − 3 → 2, then −4 clamps, then −2 clamps).
    let mut snap = EngineStats::default().snapshot();
    snap.jobs_submitted = 5;
    snap.jobs_completed = 3;
    snap.jobs_failed = 4;
    snap.queue_depth = 2;
    assert_eq!(gauge(snap), "hefv_jobs_inflight 0");

    // Worst case: all subtrahends huge, submitted tiny — the signed sum
    // is deeply negative and must still clamp to 0, not wrap.
    let mut snap = EngineStats::default().snapshot();
    snap.jobs_submitted = 1;
    snap.jobs_completed = u64::MAX;
    snap.jobs_failed = u64::MAX;
    snap.queue_depth = u64::MAX;
    assert_eq!(gauge(snap), "hefv_jobs_inflight 0");

    // Consistent snapshot: exact difference.
    let mut snap = EngineStats::default().snapshot();
    snap.jobs_submitted = 10;
    snap.jobs_completed = 2;
    snap.jobs_failed = 3;
    snap.queue_depth = 1;
    assert_eq!(gauge(snap), "hefv_jobs_inflight 4");
}
