//! Deterministic scheduler tests: a fixed-seed load generator drives the
//! `JobQueue` (which runs on a virtual clock and never reads wall time)
//! and asserts the three scheduling invariants the engine relies on:
//!
//! (a) the aged-cost order never starves a job beyond the aging bound;
//! (b) earliest-deadline-first meets every deadline that is feasible;
//! (c) per-tenant weights converge to the configured shares.
//!
//! Because the queue's pop order is a pure function of the push sequence,
//! the whole suite is bit-stable across runs — pinned by an explicit
//! same-seed/same-order replay test.

use hefv_engine::sched::{JobQueue, QosSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated job: its queue cost and optional relative deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
struct GenJob {
    id: usize,
    cost_us: f64,
    tenant: u64,
    deadline_us: Option<f64>,
}

/// Fixed-seed load generator: `n` jobs with costs in `[lo, hi)`.
fn gen_jobs(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<GenJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| GenJob {
            id,
            cost_us: rng.gen_range(0..1_000_000) as f64 / 1_000_000.0 * (hi - lo) + lo,
            tenant: 0,
            deadline_us: None,
        })
        .collect()
}

/// Pushes every job, then pops them all, returning the service order.
fn service_order(queue: &JobQueue<usize>, jobs: &[GenJob]) -> Vec<usize> {
    for j in jobs {
        assert!(queue.push_qos(
            j.cost_us,
            QosSpec {
                tenant: j.tenant,
                deadline_us: j.deadline_us,
            },
            j.id,
        ));
    }
    (0..jobs.len()).map(|_| queue.pop().unwrap()).collect()
}

#[test]
fn aged_cost_never_starves_beyond_the_aging_bound() {
    // (a) A job with key seq·w + cost can be overtaken only by
    // later-arriving jobs whose key is smaller, i.e. at most
    // ceil(cost / w) of them. The generator's 1000:1 cost spread makes
    // this bite hard on the expensive tail.
    let aging = 10.0;
    let jobs = gen_jobs(0xA6ED, 400, 1.0, 10_000.0);
    let queue = JobQueue::new(aging, jobs.len());
    let order = service_order(&queue, &jobs);

    let mut served_at = vec![0usize; jobs.len()];
    for (pos, &id) in order.iter().enumerate() {
        served_at[id] = pos;
    }
    for job in &jobs {
        let bypassers = jobs
            .iter()
            .filter(|j| j.id > job.id && served_at[j.id] < served_at[job.id])
            .count();
        let bound = (job.cost_us / aging).ceil() as usize;
        assert!(
            bypassers <= bound,
            "job {} (cost {:.0}) bypassed {} times, bound {}",
            job.id,
            job.cost_us,
            bypassers,
            bound
        );
    }
    // And SJF is actually in effect: the cheapest decile is served well
    // before the most expensive decile on average.
    let mut by_cost: Vec<&GenJob> = jobs.iter().collect();
    by_cost.sort_by(|a, b| a.cost_us.partial_cmp(&b.cost_us).unwrap());
    let cheap: f64 = by_cost[..40].iter().map(|j| served_at[j.id] as f64).sum();
    let dear: f64 = by_cost[360..].iter().map(|j| served_at[j.id] as f64).sum();
    assert!(cheap / 40.0 < dear / 40.0, "SJF ordering lost");
}

#[test]
fn edf_meets_every_feasible_deadline() {
    // (b) Deadline jobs with a back-to-back-feasible EDF schedule
    // (deadline_i = Σ_{j≤i} cost_j + slack) are all served by their
    // deadlines on the virtual clock, even under a flood of cheap
    // background work that would otherwise run first.
    for slack in [0.0, 500.0] {
        let mut rng = StdRng::seed_from_u64(0xEDF0 + slack as u64);
        let queue: JobQueue<usize> = JobQueue::new(1e-9, 4096);
        let mut deadline_of = std::collections::HashMap::new();
        let mut prefix = 0.0;
        let mut pushed = 0usize;
        // Interleave background and deadline jobs in one arrival stream.
        for i in 0..200usize {
            if i % 4 == 0 {
                let cost = rng.gen_range(50..200) as f64;
                prefix += cost;
                let dl = prefix + slack;
                deadline_of.insert(pushed, dl);
                assert!(queue.push_qos(
                    cost,
                    QosSpec {
                        tenant: 1,
                        deadline_us: Some(dl),
                    },
                    pushed,
                ));
            } else {
                let cost = rng.gen_range(1..20) as f64;
                assert!(queue.push_qos(
                    cost,
                    QosSpec {
                        tenant: 1,
                        deadline_us: None,
                    },
                    pushed,
                ));
            }
            pushed += 1;
        }
        // All deadlines were computed relative to virtual time 0 (nothing
        // popped yet), so they are absolute.
        for _ in 0..pushed {
            let id = queue.pop().unwrap();
            if let Some(&dl) = deadline_of.get(&id) {
                let completed_at = queue.virtual_now_us();
                assert!(
                    completed_at <= dl + 1e-6,
                    "deadline job {id} finished at {completed_at:.1}, deadline {dl:.1} \
                     (slack {slack})"
                );
            }
        }
    }
}

#[test]
fn edf_guard_protects_low_slack_jobs_behind_earlier_deadlines() {
    // Regression: job A has the earliest deadline but plenty of slack;
    // job B's deadline is later but its slack is nearly gone. A guard
    // that only watches the earliest-deadline job would serve cheap
    // background work until A becomes urgent and blow B's deadline, even
    // though EDF order (A then B) was feasible. The latest-feasible-start
    // index must divert to EDF before any job overshoots B's last start.
    let queue: JobQueue<&str> = JobQueue::new(1e-9, 64);
    let push = |cost: f64, deadline: Option<f64>, tag: &'static str| {
        assert!(queue.push_qos(
            cost,
            QosSpec {
                tenant: 1,
                deadline_us: deadline,
            },
            tag,
        ));
    };
    push(1.0, Some(100.0), "A"); // lst 99
    push(195.0, Some(200.0), "B"); // lst 5
    for _ in 0..10 {
        push(10.0, None, "bg"); // any one of these would overshoot B's lst
    }
    assert_eq!(queue.pop(), Some("A"), "EDF order starts with A");
    assert!(queue.virtual_now_us() <= 100.0);
    assert_eq!(queue.pop(), Some("B"), "B starts before its last start");
    assert!(
        queue.virtual_now_us() <= 200.0 + 1e-9,
        "B completed at {:.1}, deadline 200",
        queue.virtual_now_us()
    );
    for _ in 0..10 {
        assert_eq!(queue.pop(), Some("bg"));
    }
}

#[test]
fn tenant_weights_converge_to_configured_shares() {
    // (c) Tenants with weights 1:2:3, all continuously backlogged with
    // equal-cost jobs: over any service window the per-tenant service
    // counts converge to 1/6, 2/6, 3/6 of the total.
    let weights = [(1u64, 1.0), (2, 2.0), (3, 3.0)];
    let total_weight: f64 = weights.iter().map(|&(_, w)| w).sum();
    for window in [60usize, 120, 240] {
        let queue: JobQueue<u64> = JobQueue::new(1e-9, 4096);
        for &(tenant, w) in &weights {
            queue.set_weight(tenant, w);
        }
        // Interleaved arrivals so no tenant gets a positional advantage.
        for _ in 0..120 {
            for &(tenant, _) in &weights {
                assert!(queue.push_qos(
                    30.0,
                    QosSpec {
                        tenant,
                        deadline_us: None,
                    },
                    tenant,
                ));
            }
        }
        let mut counts = std::collections::HashMap::new();
        for _ in 0..window {
            *counts.entry(queue.pop().unwrap()).or_insert(0usize) += 1;
        }
        for &(tenant, w) in &weights {
            let got = counts.get(&tenant).copied().unwrap_or(0) as f64 / window as f64;
            let want = w / total_weight;
            assert!(
                (got - want).abs() <= 0.05,
                "tenant {tenant}: share {got:.3} vs configured {want:.3} over {window} pops"
            );
        }
    }
}

#[test]
fn pop_order_is_identical_across_two_runs() {
    // The determinism claim itself: same seed, same pushes → the same pop
    // sequence, run twice from scratch (mixed tenants, deadlines, costs).
    let build_and_run = || {
        let mut rng = StdRng::seed_from_u64(0xDE7E);
        let queue: JobQueue<usize> = JobQueue::new(5.0, 4096);
        queue.set_weight(1, 1.0);
        queue.set_weight(2, 2.5);
        for id in 0..300usize {
            let tenant = 1 + (rng.gen_range(0..2u8) as u64);
            let cost = rng.gen_range(1..5_000) as f64;
            let deadline_us = (rng.gen_range(0..4u8) == 0).then_some(cost * 3.0 + 1_000.0);
            queue.push_qos(
                cost,
                QosSpec {
                    tenant,
                    deadline_us,
                },
                id,
            );
        }
        (0..300).map(|_| queue.pop().unwrap()).collect::<Vec<_>>()
    };
    assert_eq!(build_and_run(), build_and_run());
}
