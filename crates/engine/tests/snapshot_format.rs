//! Property tests of the `HEVR` registry-snapshot format: round-trips
//! over random tenant/key populations, and strict integrity — truncated,
//! trailing-garbage and bit-flipped snapshots are all refused with
//! `EngineError::IntegrityFailure`, never a panic and never a partial
//! restore.

use hefv_core::galois::GaloisKeySet;
use hefv_core::keys::keygen;
use hefv_core::params::FvParams;
use hefv_core::prelude::FvContext;
use hefv_engine::wire::{decode_registry_snapshot, encode_registry_snapshot, is_registry_snapshot};
use hefv_engine::{ErrorCode, TenantId, TenantKeys};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};

struct Fix {
    ctx: FvContext,
    /// The key-shape menu random populations draw from.
    shapes: Vec<TenantKeys>,
}

fn fix() -> &'static Fix {
    static F: OnceLock<Fix> = OnceLock::new();
    F.get_or_init(|| {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(0x5EED_5EED);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let galois = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
        let shapes = vec![
            TenantKeys::default(),
            TenantKeys::encrypt_only(pk.clone()),
            TenantKeys::compute(pk.clone(), rlk.clone()),
            TenantKeys::full(pk, rlk, galois),
        ];
        Fix { ctx, shapes }
    })
}

/// Builds a snapshot-able population from proptest-chosen tenant ids
/// (each tenant's key shape is derived from its id, so random ids cover
/// all four shapes): tenants deduplicated and sorted, like the router's
/// vault dump.
fn population(tenants: &[u64]) -> Vec<(TenantId, Arc<TenantKeys>)> {
    let f = fix();
    let mut entries: Vec<(TenantId, Arc<TenantKeys>)> = tenants
        .iter()
        .map(|&t| (t, Arc::new(f.shapes[(t % 4) as usize].clone())))
        .collect();
    entries.sort_by_key(|(t, _)| *t);
    entries.dedup_by_key(|(t, _)| *t);
    entries
}

fn assert_refused(bytes: &[u8], what: &str) {
    match decode_registry_snapshot(&fix().ctx, bytes) {
        Err(e) => assert_eq!(
            e.code(),
            ErrorCode::IntegrityFailure,
            "{what} must be IntegrityFailure, got {e}"
        ),
        Ok(entries) => panic!("{what} decoded to {} entries", entries.len()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn snapshots_roundtrip(tenants in prop::collection::vec(any::<u64>(), 0..12)) {
        let f = fix();
        let entries = population(&tenants);
        let blob = encode_registry_snapshot(&entries);
        prop_assert!(is_registry_snapshot(&blob));
        let back = decode_registry_snapshot(&f.ctx, &blob).unwrap();
        prop_assert_eq!(back.len(), entries.len());
        for ((t, keys), (bt, bkeys)) in entries.iter().zip(&back) {
            prop_assert_eq!(t, bt);
            prop_assert_eq!(keys.pk.is_some(), bkeys.pk.is_some());
            prop_assert_eq!(keys.rlk.is_some(), bkeys.rlk.is_some());
            prop_assert_eq!(keys.galois.is_some(), bkeys.galois.is_some());
        }
        // Re-encoding the decode is byte-identical: the format is
        // canonical, so decoded key material survived exactly.
        let re: Vec<(TenantId, Arc<TenantKeys>)> =
            back.into_iter().map(|(t, k)| (t, Arc::new(k))).collect();
        prop_assert_eq!(encode_registry_snapshot(&re), blob);
    }

    #[test]
    fn truncations_are_refused(tenants in prop::collection::vec(any::<u64>(), 1..6), cut in 1usize..512) {
        let entries = population(&tenants);
        let blob = encode_registry_snapshot(&entries);
        let cut = cut.min(blob.len() - 1);
        assert_refused(&blob[..blob.len() - cut], "truncated snapshot");
    }

    #[test]
    fn trailing_garbage_is_refused(tenants in prop::collection::vec(any::<u64>(), 0..6), extra in prop::collection::vec(any::<u8>(), 1..32)) {
        let entries = population(&tenants);
        let mut blob = encode_registry_snapshot(&entries);
        blob.extend_from_slice(&extra);
        assert_refused(&blob, "snapshot with trailing bytes");
    }

    #[test]
    fn every_single_bit_flip_is_refused(tenants in prop::collection::vec(any::<u64>(), 1..4), at in any::<u64>(), bit in 0u8..8) {
        let entries = population(&tenants);
        let mut blob = encode_registry_snapshot(&entries);
        let at = (at % blob.len() as u64) as usize;
        blob[at] ^= 1 << bit;
        // CRC32 detects every single-bit error, whatever byte it lands
        // in — magic, counts, key material or the trailer itself.
        assert_refused(&blob, &format!("bit {bit} of byte {at} flipped"));
    }

    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..1024)) {
        // Arbitrary bytes either decode (vanishingly unlikely) or fail
        // with a typed error — never a panic, never a partial parse.
        let _ = decode_registry_snapshot(&fix().ctx, &bytes);
    }
}

/// A corrupted snapshot restores nothing: registries stay untouched when
/// the blob is refused (verification happens before any registration).
#[test]
fn refused_snapshots_restore_nothing() {
    let f = fix();
    let entries = population(&[7, 21]);
    let mut blob = encode_registry_snapshot(&entries);
    let registry = hefv_engine::KeyRegistry::new(8);
    let mid = blob.len() / 2;
    blob[mid] ^= 0x10;
    let err = registry.restore(&f.ctx, &blob).unwrap_err();
    assert_eq!(err.code(), ErrorCode::IntegrityFailure);
    assert!(!registry.contains(7) && !registry.contains(21));
}
