//! Cluster-layer integration tests, transport-free: a loopback
//! [`ShardConnector`] drives a real [`RemoteShard`] against a real
//! in-process node router over channels, so every distributed behavior —
//! proxy round trips, the non-blocking backpressure seam, the circuit
//! breaker, hedged retries with exactly-once delivery, and
//! keys-before-ring-commit migration — is tested deterministically
//! without sockets. The TCP analogue of this wiring lives in
//! `examples/cluster.rs`.

use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use hefv_engine::remote::{FrameReceiver, FrameSender, RemoteShardConfig, ShardConnector};
use hefv_engine::router::{RemoteShardSpec, RouterConfig, ShardSpec};
use hefv_engine::wire;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Connects a front router's `RemoteShard` to an in-process "node"
/// router through channels. `up` simulates the node's liveness (down =
/// connects, sends and probes all fail); `hold` swallows data frames to
/// simulate loss or an unresponsive node.
#[derive(Clone)]
struct LoopbackConnector {
    node: Arc<ShardRouter>,
    up: Arc<AtomicBool>,
    hold: Arc<AtomicBool>,
}

impl LoopbackConnector {
    fn new(node: Arc<ShardRouter>) -> Self {
        LoopbackConnector {
            node,
            up: Arc::new(AtomicBool::new(true)),
            hold: Arc::new(AtomicBool::new(false)),
        }
    }
}

struct LoopSender {
    node: Arc<ShardRouter>,
    up: Arc<AtomicBool>,
    hold: Arc<AtomicBool>,
    tx: mpsc::Sender<(u64, Vec<u8>)>,
    closed: Arc<AtomicBool>,
}

impl FrameSender for LoopSender {
    fn send(&mut self, corr: u64, frame: &[u8]) -> io::Result<()> {
        if !self.up.load(Ordering::Acquire) || self.closed.load(Ordering::Acquire) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "node down"));
        }
        if self.hold.load(Ordering::Acquire) {
            return Ok(()); // "lost on the wire"
        }
        if wire::is_key_frame(frame) {
            let reply = self.node.handle_key_push(frame);
            let _ = self.tx.send((corr, reply));
            return Ok(());
        }
        let tx = self.tx.clone();
        match self
            .node
            .try_dispatch_frame_with_callback(frame, move |reply| {
                let _ = tx.send((corr, reply));
            }) {
            Ok(Some(_)) => Ok(()),
            // Node saturated: the frame is dropped like an unread TCP
            // segment; the remote shard's sweep re-sends it.
            Ok(None) => Ok(()),
            Err(e) => {
                let _ = self
                    .tx
                    .send((corr, wire::encode_response(&Err((u64::MAX, e)))));
                Ok(())
            }
        }
    }

    fn close(&mut self) {
        self.closed.store(true, Ordering::Release);
    }
}

struct LoopReceiver {
    rx: mpsc::Receiver<(u64, Vec<u8>)>,
    up: Arc<AtomicBool>,
    closed: Arc<AtomicBool>,
}

impl FrameReceiver for LoopReceiver {
    fn recv(&mut self) -> io::Result<(u64, Vec<u8>)> {
        loop {
            match self.rx.recv_timeout(Duration::from_millis(10)) {
                Ok(pair) => return Ok(pair),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if !self.up.load(Ordering::Acquire) || self.closed.load(Ordering::Acquire) {
                        return Err(io::Error::new(io::ErrorKind::BrokenPipe, "connection lost"));
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"));
                }
            }
        }
    }
}

impl ShardConnector for LoopbackConnector {
    fn connect(&self) -> io::Result<(Box<dyn FrameSender>, Box<dyn FrameReceiver>)> {
        if !self.up.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "node down",
            ));
        }
        let (tx, rx) = mpsc::channel();
        let closed = Arc::new(AtomicBool::new(false));
        Ok((
            Box::new(LoopSender {
                node: Arc::clone(&self.node),
                up: Arc::clone(&self.up),
                hold: Arc::clone(&self.hold),
                tx,
                closed: Arc::clone(&closed),
            }),
            Box::new(LoopReceiver {
                rx,
                up: Arc::clone(&self.up),
                closed,
            }),
        ))
    }

    fn probe(&self, _timeout: Duration) -> io::Result<()> {
        if self.up.load(Ordering::Acquire) {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::TimedOut, "probe lost"))
        }
    }

    fn endpoint(&self) -> String {
        "loopback".into()
    }
}

fn toy_ctx() -> Arc<FvContext> {
    Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap())
}

/// One single-shard node router, as `examples/cluster.rs` builds per
/// process.
fn node_router(ctx: &Arc<FvContext>, name: &str) -> Arc<ShardRouter> {
    let node = Arc::new(ShardRouter::with_config(RouterConfig {
        key_replicas: 1,
        ..RouterConfig::default()
    }));
    node.add_shard(ShardSpec {
        name: name.into(),
        ctx: Arc::clone(ctx),
        config: EngineConfig {
            workers: 1,
            threads_per_job: 1,
            queue_capacity: 64,
            ..EngineConfig::default()
        },
    })
    .unwrap();
    node
}

fn fast_remote_cfg() -> RemoteShardConfig {
    RemoteShardConfig {
        connections: 1,
        max_inflight: 32,
        reply_timeout: Duration::from_millis(150),
        probe_interval: Duration::from_millis(25),
        probe_timeout: Duration::from_millis(50),
        eject_after: 2,
        send_attempts: 2,
        reconnect_backoff: Duration::from_millis(20),
    }
}

struct Fixture {
    ctx: Arc<FvContext>,
    sk: hefv_core::keys::SecretKey,
    pk: PublicKey,
    rng: StdRng,
}

fn fixture(seed: u64) -> (Fixture, TenantKeys) {
    let ctx = toy_ctx();
    let mut rng = StdRng::seed_from_u64(seed);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let keys = TenantKeys::compute(pk.clone(), rlk);
    (Fixture { ctx, sk, pk, rng }, keys)
}

impl Fixture {
    fn add_req(&mut self, tenant: u64, a: u64, b: u64) -> EvalRequest {
        let (t, n) = (self.ctx.params().t, self.ctx.params().n);
        let ea = encrypt(
            &self.ctx,
            &self.pk,
            &Plaintext::new(vec![a], t, n),
            &mut self.rng,
        );
        let eb = encrypt(
            &self.ctx,
            &self.pk,
            &Plaintext::new(vec![b], t, n),
            &mut self.rng,
        );
        EvalRequest::binary(tenant, EvalOp::Add, ea, eb)
    }

    fn check_sum(&self, reply: &[u8], want: u64) {
        match wire::decode_response(&self.ctx, reply).unwrap() {
            wire::ResponseFrame::Ok(resp) => {
                assert_eq!(
                    decrypt(&self.ctx, &self.sk, &resp.result).coeffs()[0],
                    want % self.ctx.params().t
                );
            }
            wire::ResponseFrame::Err { message, .. } => panic!("job failed: {message}"),
        }
    }
}

/// A tenant id that hash-places onto `shard` under `router`.
fn tenant_on(router: &ShardRouter, shard: ShardId) -> u64 {
    (0..10_000u64)
        .find(|&t| router.shard_for(t) == Some(shard))
        .expect("some tenant hashes to every shard")
}

#[test]
fn remote_dispatch_round_trips_with_key_push() {
    let (mut fx, keys) = fixture(0xC0FFEE);
    let node = node_router(&fx.ctx, "node0");
    let connector = LoopbackConnector::new(Arc::clone(&node));

    let front = ShardRouter::with_config(RouterConfig {
        key_replicas: 1,
        hedge: None,
        ..RouterConfig::default()
    });
    let rid = front
        .add_remote_shard(RemoteShardSpec {
            name: "remote0".into(),
            ctx: Arc::clone(&fx.ctx),
            connector: Arc::new(connector),
            config: fast_remote_cfg(),
        })
        .unwrap();

    let tenant = tenant_on(&front, rid);
    // Registration pushes the keys over the HEVK frame and waits for the
    // node's ack.
    front.register_tenant(tenant, keys).unwrap();
    assert!(front.stats().hedge.key_pushes >= 1);

    // Pipelined frames through the proxy; replies are restamped with the
    // *front* shard id so clients see one address space.
    let done = Arc::new(Mutex::new(Vec::new()));
    for i in 0..8u64 {
        let frame = wire::encode_request(&fx.add_req(tenant, i, 1));
        let done2 = Arc::clone(&done);
        let placed = front
            .try_dispatch_frame_with_callback(&frame, move |reply| {
                done2.lock().unwrap().push((i, reply));
            })
            .unwrap();
        assert!(placed.is_some(), "proxy refused with an empty window");
        assert_eq!(placed.unwrap().0, rid);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while done.lock().unwrap().len() < 8 {
        assert!(Instant::now() < deadline, "replies never arrived");
        std::thread::sleep(Duration::from_millis(5));
    }
    for (i, reply) in done.lock().unwrap().iter() {
        assert_eq!(wire::peek_response_shard(reply).unwrap(), rid as u8);
        fx.check_sum(reply, i + 1);
    }
    let stats = front.stats();
    assert_eq!(stats.remote.len(), 1);
    assert!(stats.remote[0].stats.replies >= 8);
    assert!(stats.remote[0].stats.healthy);

    front.shutdown();
    node.shutdown();
}

#[test]
fn remote_at_capacity_surfaces_as_ok_none() {
    let (mut fx, keys) = fixture(0xBEEF);
    let node = node_router(&fx.ctx, "node0");
    let connector = LoopbackConnector::new(Arc::clone(&node));
    let hold = Arc::clone(&connector.hold);

    let front = ShardRouter::with_config(RouterConfig {
        key_replicas: 1,
        hedge: None,
        ..RouterConfig::default()
    });
    let rid = front
        .add_remote_shard(RemoteShardSpec {
            name: "remote0".into(),
            ctx: Arc::clone(&fx.ctx),
            connector: Arc::new(connector),
            config: RemoteShardConfig {
                max_inflight: 2,
                // Far past the test's horizon: held frames must stay
                // pending, not resolve through the retry path.
                reply_timeout: Duration::from_secs(60),
                ..fast_remote_cfg()
            },
        })
        .unwrap();
    let tenant = tenant_on(&front, rid);
    front.register_tenant(tenant, keys).unwrap();

    // Swallow data frames: the window fills and stays full.
    hold.store(true, Ordering::Release);
    for _ in 0..2 {
        let frame = wire::encode_request(&fx.add_req(tenant, 1, 1));
        let placed = front
            .try_dispatch_frame_with_callback(&frame, |_| {})
            .unwrap();
        assert!(placed.is_some(), "window has room");
    }
    let frame = wire::encode_request(&fx.add_req(tenant, 1, 1));
    let placed = front
        .try_dispatch_frame_with_callback(&frame, |_| {})
        .unwrap();
    assert!(
        placed.is_none(),
        "remote at capacity must surface as Ok(None), preserving the backpressure seam"
    );

    front.shutdown();
    node.shutdown();
}

#[test]
fn circuit_breaker_ejects_and_probes_back() {
    let (fx, _) = fixture(0xE1EC);
    let node = node_router(&fx.ctx, "node0");
    let connector = LoopbackConnector::new(Arc::clone(&node));
    let up = Arc::clone(&connector.up);

    let front = ShardRouter::with_config(RouterConfig {
        key_replicas: 1,
        hedge: None,
        ..RouterConfig::default()
    });
    let rid = front
        .add_remote_shard(RemoteShardSpec {
            name: "remote0".into(),
            ctx: Arc::clone(&fx.ctx),
            connector: Arc::new(connector),
            config: fast_remote_cfg(),
        })
        .unwrap();

    let healthy = |front: &ShardRouter| front.stats().remote[0].stats.healthy;
    assert!(healthy(&front), "fresh shard starts healthy");

    // Kill the node: consecutive probe failures must trip the breaker.
    up.store(false, Ordering::Release);
    let deadline = Instant::now() + Duration::from_secs(5);
    while healthy(&front) {
        assert!(Instant::now() < deadline, "breaker never opened");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(front.stats().remote[0].stats.ejections >= 1);
    // The breaker may have tripped on reader-side connection loss before
    // any probe ran; while the node stays down, probes must also start
    // failing.
    let deadline = Instant::now() + Duration::from_secs(5);
    while front.stats().remote[0].stats.probe_failures == 0 {
        assert!(Instant::now() < deadline, "probes never failed");
        std::thread::sleep(Duration::from_millis(10));
    }

    // While ejected, dispatch fails fast (not Ok(None) — the shard is
    // down, not busy).
    let frame = wire::encode_request_for_shard(
        &EvalRequest {
            tenant: 1,
            inputs: vec![],
            plaintexts: vec![],
            ops: vec![],
            deadline_us: None,
            trace_id: None,
        },
        rid,
    );
    assert!(front
        .try_dispatch_frame_with_callback(&frame, |_| {})
        .is_err());

    // Revive the node: the half-open breaker probes it back.
    up.store(true, Ordering::Release);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !healthy(&front) {
        assert!(Instant::now() < deadline, "breaker never closed again");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(front.stats().remote[0].stats.recoveries >= 1);

    front.shutdown();
    node.shutdown();
}

#[test]
fn lost_frames_are_retried_with_the_same_corr_exactly_once() {
    let (mut fx, keys) = fixture(0x10CC);
    let node = node_router(&fx.ctx, "node0");
    let connector = LoopbackConnector::new(Arc::clone(&node));
    let hold = Arc::clone(&connector.hold);

    let front = ShardRouter::with_config(RouterConfig {
        key_replicas: 1,
        hedge: None,
        ..RouterConfig::default()
    });
    let rid = front
        .add_remote_shard(RemoteShardSpec {
            name: "remote0".into(),
            ctx: Arc::clone(&fx.ctx),
            connector: Arc::new(connector),
            config: fast_remote_cfg(),
        })
        .unwrap();
    let tenant = tenant_on(&front, rid);
    front.register_tenant(tenant, keys).unwrap();

    // First transmission is swallowed; the sweep re-sends it under the
    // same correlation id once the link "recovers".
    hold.store(true, Ordering::Release);
    let calls = Arc::new(AtomicUsize::new(0));
    let reply_slot: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let frame = wire::encode_request(&fx.add_req(tenant, 20, 22));
    {
        let calls = Arc::clone(&calls);
        let reply_slot = Arc::clone(&reply_slot);
        front
            .try_dispatch_frame_with_callback(&frame, move |reply| {
                calls.fetch_add(1, Ordering::SeqCst);
                *reply_slot.lock().unwrap() = Some(reply);
            })
            .unwrap()
            .expect("window empty");
    }
    std::thread::sleep(Duration::from_millis(30));
    hold.store(false, Ordering::Release);

    let deadline = Instant::now() + Duration::from_secs(10);
    while calls.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "retried frame never answered");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Give a hypothetical duplicate time to double-fire, then assert
    // exactly-once.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(calls.load(Ordering::SeqCst), 1, "reply delivered twice");
    fx.check_sum(reply_slot.lock().unwrap().as_ref().unwrap(), 42);
    assert!(front.stats().remote[0].stats.retries >= 1);

    front.shutdown();
    node.shutdown();
}

#[test]
fn hedged_retry_rescues_a_dead_primary_exactly_once() {
    let (mut fx, keys) = fixture(0x4ED6);
    let node = node_router(&fx.ctx, "node0");
    let connector = LoopbackConnector::new(Arc::clone(&node));
    let up = Arc::clone(&connector.up);

    // Front fleet: one remote shard (the primary under test) and one
    // local shard (the hedge replica). key_replicas=2 puts every
    // tenant's keys on both.
    let front = ShardRouter::with_config(RouterConfig {
        key_replicas: 2,
        hedge: Some(HedgeConfig {
            delay: Duration::from_millis(40),
            deadline_fraction: 0.5,
        }),
        ..RouterConfig::default()
    });
    let rid = front
        .add_remote_shard(RemoteShardSpec {
            name: "remote0".into(),
            ctx: Arc::clone(&fx.ctx),
            connector: Arc::new(connector),
            config: fast_remote_cfg(),
        })
        .unwrap();
    let lid = front
        .add_shard(ShardSpec {
            name: "local-replica".into(),
            ctx: Arc::clone(&fx.ctx),
            config: EngineConfig {
                workers: 1,
                threads_per_job: 1,
                ..EngineConfig::default()
            },
        })
        .unwrap();

    let tenant = tenant_on(&front, rid);
    front.register_tenant(tenant, keys).unwrap();

    // The node dies *after* accepting the dispatch: the reply never
    // comes, the connection collapses, and the failover path must land
    // the job on the local replica — exactly once.
    let calls = Arc::new(AtomicUsize::new(0));
    let reply_slot: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let frame = wire::encode_request(&fx.add_req(tenant, 30, 12));
    up.store(false, Ordering::Release);
    {
        let calls = Arc::clone(&calls);
        let reply_slot = Arc::clone(&reply_slot);
        // The breaker may not have tripped yet; either the dispatch is
        // accepted (and hedges over) or fails fast (and the caller would
        // retry). Retry until accepted or the breaker opens.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let cb = {
                let calls = Arc::clone(&calls);
                let reply_slot = Arc::clone(&reply_slot);
                move |reply: Vec<u8>| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    *reply_slot.lock().unwrap() = Some(reply);
                }
            };
            match front.try_dispatch_frame_with_callback(&frame, cb) {
                Ok(Some(_)) => break,
                Ok(None) | Err(_) => {
                    // Ejected primary: placement now skips it entirely
                    // and the local replica serves as primary — equally
                    // a rescue; dispatch once more and stop.
                    if front.stats().remote[0].stats.healthy {
                        assert!(Instant::now() < deadline, "never dispatched");
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    let cb = {
                        let calls = Arc::clone(&calls);
                        let reply_slot = Arc::clone(&reply_slot);
                        move |reply: Vec<u8>| {
                            calls.fetch_add(1, Ordering::SeqCst);
                            *reply_slot.lock().unwrap() = Some(reply);
                        }
                    };
                    let placed = front.try_dispatch_frame_with_callback(&frame, cb).unwrap();
                    assert_eq!(placed.map(|p| p.0), Some(lid));
                    break;
                }
            }
        }
    }

    let deadline = Instant::now() + Duration::from_secs(10);
    while calls.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "hedge never delivered a reply");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(calls.load(Ordering::SeqCst), 1, "reply delivered twice");
    let guard = reply_slot.lock().unwrap();
    let reply = guard.as_ref().unwrap();
    assert_eq!(
        wire::peek_response_shard(reply).unwrap(),
        lid as u8,
        "the surviving replica must have produced the reply"
    );
    fx.check_sum(reply, 42);

    front.shutdown();
    node.shutdown();
}

#[test]
fn hedge_timer_wins_against_a_slow_primary() {
    let (mut fx, keys) = fixture(0x510F);
    let node = node_router(&fx.ctx, "node0");
    let connector = LoopbackConnector::new(Arc::clone(&node));
    let hold = Arc::clone(&connector.hold);

    let front = ShardRouter::with_config(RouterConfig {
        key_replicas: 2,
        hedge: Some(HedgeConfig {
            delay: Duration::from_millis(30),
            deadline_fraction: 0.5,
        }),
        ..RouterConfig::default()
    });
    let rid = front
        .add_remote_shard(RemoteShardSpec {
            name: "remote0".into(),
            ctx: Arc::clone(&fx.ctx),
            connector: Arc::new(connector),
            config: RemoteShardConfig {
                // Long reply timeout: only the hedge timer may rescue.
                reply_timeout: Duration::from_secs(60),
                ..fast_remote_cfg()
            },
        })
        .unwrap();
    let lid = front
        .add_shard(ShardSpec {
            name: "local-replica".into(),
            ctx: Arc::clone(&fx.ctx),
            config: EngineConfig {
                workers: 1,
                threads_per_job: 1,
                ..EngineConfig::default()
            },
        })
        .unwrap();
    let tenant = tenant_on(&front, rid);
    front.register_tenant(tenant, keys).unwrap();

    // Primary goes silent (frames swallowed, probes still fine): only
    // the hedge can answer.
    hold.store(true, Ordering::Release);
    let calls = Arc::new(AtomicUsize::new(0));
    let reply_slot: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let frame = wire::encode_request(&fx.add_req(tenant, 2, 3));
    {
        let calls = Arc::clone(&calls);
        let reply_slot = Arc::clone(&reply_slot);
        front
            .try_dispatch_frame_with_callback(&frame, move |reply| {
                calls.fetch_add(1, Ordering::SeqCst);
                *reply_slot.lock().unwrap() = Some(reply);
            })
            .unwrap()
            .expect("window empty");
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while calls.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "hedge timer never fired");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(calls.load(Ordering::SeqCst), 1);
    let guard = reply_slot.lock().unwrap();
    let reply = guard.as_ref().unwrap();
    assert_eq!(wire::peek_response_shard(reply).unwrap(), lid as u8);
    fx.check_sum(reply, 5);
    let hedge = front.stats().hedge;
    assert!(hedge.armed >= 1);
    assert!(hedge.fired >= 1);
    assert!(hedge.wins >= 1);

    front.shutdown();
    node.shutdown();
}

#[test]
fn pinning_to_a_remote_shard_pushes_keys_before_commit() {
    let (mut fx, keys) = fixture(0x1216);
    let node = node_router(&fx.ctx, "node0");
    let connector = LoopbackConnector::new(Arc::clone(&node));

    let front = ShardRouter::with_config(RouterConfig {
        key_replicas: 1,
        hedge: None,
        ..RouterConfig::default()
    });
    let lid = front
        .add_shard(ShardSpec {
            name: "local0".into(),
            ctx: Arc::clone(&fx.ctx),
            config: EngineConfig {
                workers: 1,
                threads_per_job: 1,
                ..EngineConfig::default()
            },
        })
        .unwrap();
    let rid = front
        .add_remote_shard(RemoteShardSpec {
            name: "remote0".into(),
            ctx: Arc::clone(&fx.ctx),
            connector: Arc::new(connector),
            config: fast_remote_cfg(),
        })
        .unwrap();

    // Register while the tenant lives on the local shard (key_replicas=1
    // keeps the remote key-free).
    let tenant = tenant_on(&front, lid);
    front.register_tenant(tenant, keys).unwrap();
    let pushes_before = front.stats().hedge.key_pushes;

    // Pinning to the remote shard must stream the keys (and collect the
    // node's ack) before the pin commits — the very next job on the pin
    // target must find them.
    front.pin_tenant(tenant, rid).unwrap();
    assert!(front.stats().hedge.key_pushes > pushes_before);
    let reply = front.dispatch_frame(&wire::encode_request(&fx.add_req(tenant, 31, 11)));
    assert_eq!(wire::peek_response_shard(&reply).unwrap(), rid as u8);
    fx.check_sum(&reply, 42);

    front.shutdown();
    node.shutdown();
}

/// Satellite: topology change under sustained load, proptest-style over
/// several deterministic seeds. `remove_shard` mid-stream must lose zero
/// jobs, and every moved tenant's keys must be at the new owner before
/// its first job executes there (any gap would surface as UnknownTenant
/// failures in the stream).
#[test]
fn remove_shard_under_sustained_load_loses_nothing() {
    for seed in [1u64, 0xAB5EED, 0x7E57] {
        remove_shard_under_load(seed);
    }
}

fn remove_shard_under_load(seed: u64) {
    let (fx, keys) = fixture(seed);
    let router = Arc::new(ShardRouter::with_config(RouterConfig {
        key_replicas: 2,
        hedge: None,
        vnodes: 32,
    }));
    for i in 0..3 {
        router
            .add_shard(ShardSpec {
                name: format!("s{i}"),
                ctx: Arc::clone(&fx.ctx),
                config: EngineConfig {
                    workers: 1,
                    threads_per_job: 1,
                    queue_capacity: 512,
                    ..EngineConfig::default()
                },
            })
            .unwrap();
    }
    let tenants: Vec<u64> = (0..8)
        .map(|i| seed.wrapping_mul(31).wrapping_add(i))
        .collect();
    for &t in &tenants {
        router.register_tenant(t, keys.clone()).unwrap();
    }
    // The victim is whichever shard serves the first tenant, so at least
    // one tenant definitely moves.
    let victim = router.shard_for(tenants[0]).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let completed = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let failures = Arc::clone(&failures);
            let completed = Arc::clone(&completed);
            let ctx = Arc::clone(&fx.ctx);
            let pk = fx.pk.clone();
            let tenants = tenants.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (w as u64) << 32);
                let (t, n) = (ctx.params().t, ctx.params().n);
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let tenant = tenants[(w + i as usize) % tenants.len()];
                    let enc = |v, rng: &mut StdRng| {
                        encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng)
                    };
                    let req = EvalRequest::binary(
                        tenant,
                        EvalOp::Add,
                        enc(i % t, &mut rng),
                        enc(1, &mut rng),
                    );
                    match router.submit(req).and_then(|h| h.wait()) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => failures.lock().unwrap().push(e.to_string()),
                    }
                    i += 1;
                }
            })
        })
        .collect();

    // Let the stream build, yank a shard out from under it, let the
    // stream continue on the shrunken fleet.
    while completed.load(Ordering::Relaxed) < 20 {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(router.remove_shard(victim));
    let after_removal = completed.load(Ordering::Relaxed);
    while completed.load(Ordering::Relaxed) < after_removal + 20 {
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Release);
    for w in workers {
        w.join().unwrap();
    }

    let failures = failures.lock().unwrap();
    assert!(
        failures.is_empty(),
        "seed {seed:#x}: {} jobs failed across the removal (first: {})",
        failures.len(),
        failures[0]
    );
    // Every moved tenant's keys really are at the new owners.
    for &t in &tenants {
        let home = router.shard_for(t).unwrap();
        assert_ne!(home, victim);
    }
    router.shutdown();
}
