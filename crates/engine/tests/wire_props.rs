//! Property tests of the engine's request/response wire framing.

use hefv_core::prelude::*;
use hefv_engine::wire::{
    decode_request, decode_response, encode_request, encode_response, ResponseFrame,
};
use hefv_engine::{EngineError, EvalOp, EvalRequest, EvalResponse, JobReport, ValRef};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

struct Fix {
    ctx: FvContext,
    sk: SecretKey,
    pk: PublicKey,
}

fn fix() -> &'static Fix {
    static F: OnceLock<Fix> = OnceLock::new();
    F.get_or_init(|| {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        Fix { ctx, sk, pk }
    })
}

/// Builds a structurally valid random request: every op references only
/// earlier values, plaintext/rotation indices stay in range.
fn random_request(seed: u64, n_inputs: usize, n_plain: usize, n_ops: usize) -> EvalRequest {
    let f = fix();
    let mut rng = StdRng::seed_from_u64(seed);
    let t = f.ctx.params().t;
    let n = f.ctx.params().n;
    let inputs = (0..n_inputs)
        .map(|_| {
            let msg: Vec<u64> = (0..4).map(|_| rng.gen_range(0..t)).collect();
            encrypt(&f.ctx, &f.pk, &Plaintext::new(msg, t, n), &mut rng)
        })
        .collect();
    let plaintexts: Vec<Plaintext> = (0..n_plain)
        .map(|_| {
            let msg: Vec<u64> = (0..3).map(|_| rng.gen_range(0..t)).collect();
            Plaintext::new(msg, t, n)
        })
        .collect();
    let mut ops = Vec::new();
    for at in 0..n_ops {
        let pick_ref = |rng: &mut StdRng| {
            if at > 0 && rng.gen_range(0..2u8) == 1 {
                ValRef::Op(rng.gen_range(0..at as u32))
            } else {
                ValRef::Input(rng.gen_range(0..n_inputs as u32))
            }
        };
        let a = pick_ref(&mut rng);
        let b = pick_ref(&mut rng);
        let op = match rng.gen_range(0..7u8) {
            0 => EvalOp::Add(a, b),
            1 => EvalOp::Sub(a, b),
            2 => EvalOp::Neg(a),
            3 => EvalOp::Mul(a, b),
            4 if n_plain > 0 => EvalOp::MulPlain(a, rng.gen_range(0..n_plain as u32)),
            5 => EvalOp::Rotate(a, 2 * rng.gen_range(0..n as u32) + 1),
            _ => EvalOp::SumSlots(a),
        };
        ops.push(op);
    }
    EvalRequest {
        tenant: rng.gen_range(0..u64::MAX),
        inputs,
        plaintexts,
        ops,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn request_roundtrips(seed in any::<u64>(), n_inputs in 1usize..4, n_plain in 0usize..3, n_ops in 1usize..8) {
        let f = fix();
        let req = random_request(seed, n_inputs, n_plain, n_ops);
        prop_assume!(req.validate(&f.ctx).is_ok());
        let bytes = encode_request(&req);
        let back = decode_request(&f.ctx, &bytes).unwrap();
        prop_assert_eq!(&back, &req);
        // The embedded ciphertexts survive intact: decrypt one.
        let pt0 = decrypt(&f.ctx, &f.sk, &back.inputs[0]);
        prop_assert_eq!(pt0, decrypt(&f.ctx, &f.sk, &req.inputs[0]));
    }

    #[test]
    fn request_decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let f = fix();
        let _ = decode_request(&f.ctx, &bytes);
    }

    #[test]
    fn request_rejects_any_truncation(seed in any::<u64>(), cut in 1usize..64) {
        let f = fix();
        let req = random_request(seed, 2, 1, 3);
        prop_assume!(req.validate(&f.ctx).is_ok());
        let bytes = encode_request(&req);
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(decode_request(&f.ctx, &bytes[..bytes.len() - cut]).is_err());
    }

    #[test]
    fn request_rejects_bit_flips_in_header(seed in any::<u64>(), byte in 0usize..16, bit in 0u8..8) {
        let f = fix();
        let req = random_request(seed, 1, 0, 1);
        prop_assume!(req.validate(&f.ctx).is_ok());
        // Bytes 6..8 are reserved padding; flips there are ignored by
        // design. Everything else must either fail or change the request.
        prop_assume!(!(6..8).contains(&byte));
        let mut bytes = encode_request(&req);
        bytes[byte] ^= 1 << bit;
        // Tenant-id bytes (8..16) are opaque, so flips there still
        // decode — but never to the original request.
        if let Ok(back) = decode_request(&f.ctx, &bytes) {
            prop_assert_ne!(back, req);
        }
    }

    #[test]
    fn ok_response_roundtrips(seed in any::<u64>(), worker in any::<u32>(), qn in any::<u64>(), en in any::<u64>()) {
        let f = fix();
        let req = random_request(seed, 1, 0, 1);
        let resp = EvalResponse {
            job_id: seed ^ 0xABCD,
            result: req.inputs[0].clone(),
            report: JobReport {
                worker,
                queue_ns: qn,
                exec_ns: en,
                est_cost_us: (seed % 100_000) as f64 / 7.0,
                noise_bits_consumed: (seed % 1000) as f64 / 3.0,
            },
        };
        let bytes = encode_response(&Ok(resp.clone()));
        let back = decode_response(&f.ctx, &bytes).unwrap();
        prop_assert_eq!(back, ResponseFrame::Ok(resp));
    }

    #[test]
    fn err_response_roundtrips(job_id in any::<u64>(), which in 0u8..4) {
        let f = fix();
        let err = match which {
            0 => EngineError::UnknownTenant(job_id),
            1 => EngineError::Validation("no ops".into()),
            2 => EngineError::QueueClosed,
            _ => EngineError::MissingKey { tenant: job_id, which: "relin" },
        };
        let bytes = encode_response(&Err((job_id, err.clone())));
        match decode_response(&f.ctx, &bytes).unwrap() {
            ResponseFrame::Err { job_id: got, message } => {
                prop_assert_eq!(got, job_id);
                prop_assert_eq!(message, err.to_string());
            }
            other => return Err(TestCaseError(format!("expected Err frame, got {other:?}"))),
        }
    }

    #[test]
    fn response_decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let f = fix();
        let _ = decode_response(&f.ctx, &bytes);
    }
}

#[test]
fn request_frames_are_not_response_frames() {
    let f = fix();
    let req = random_request(1, 1, 0, 1);
    let bytes = encode_request(&req);
    assert!(decode_response(&f.ctx, &bytes).is_err());
    let resp_bytes = encode_response(&Err((0, EngineError::QueueClosed)));
    assert!(decode_request(&f.ctx, &resp_bytes).is_err());
}
