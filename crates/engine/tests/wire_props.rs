//! Property tests of the engine's request/response wire framing: v2
//! roundtrips (including shard addresses and deadlines), and strict
//! rejection — truncated, corrupted, trailing-garbage and oversized frames
//! all come back as `Error::Wire`, never a panic.

use hefv_core::prelude::*;
use hefv_engine::wire::{
    decode_request, decode_response, encode_request, encode_request_for_shard, encode_response,
    encode_response_from_shard, peek_response_shard, peek_shard, peek_tenant, peek_trace_id,
    ResponseFrame, MAX_FRAME_BYTES, NO_SHARD,
};
use hefv_engine::{EngineError, EvalOp, EvalRequest, EvalResponse, JobReport, ValRef};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

struct Fix {
    ctx: FvContext,
    sk: SecretKey,
    pk: PublicKey,
}

fn fix() -> &'static Fix {
    static F: OnceLock<Fix> = OnceLock::new();
    F.get_or_init(|| {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let (sk, pk, _) = keygen(&ctx, &mut rng);
        Fix { ctx, sk, pk }
    })
}

fn is_wire_err(e: &EngineError) -> bool {
    matches!(e, EngineError::Core(hefv_core::Error::Wire(_)))
}

/// Builds a structurally valid random request: every op references only
/// earlier values, plaintext/rotation indices stay in range; one request
/// in three carries a deadline, one in two a trace id.
fn random_request(seed: u64, n_inputs: usize, n_plain: usize, n_ops: usize) -> EvalRequest {
    let f = fix();
    let mut rng = StdRng::seed_from_u64(seed);
    let t = f.ctx.params().t;
    let n = f.ctx.params().n;
    let inputs = (0..n_inputs)
        .map(|_| {
            let msg: Vec<u64> = (0..4).map(|_| rng.gen_range(0..t)).collect();
            encrypt(&f.ctx, &f.pk, &Plaintext::new(msg, t, n), &mut rng)
        })
        .collect();
    let plaintexts: Vec<Plaintext> = (0..n_plain)
        .map(|_| {
            let msg: Vec<u64> = (0..3).map(|_| rng.gen_range(0..t)).collect();
            Plaintext::new(msg, t, n)
        })
        .collect();
    let mut ops = Vec::new();
    for at in 0..n_ops {
        let pick_ref = |rng: &mut StdRng| {
            if at > 0 && rng.gen_range(0..2u8) == 1 {
                ValRef::Op(rng.gen_range(0..at as u32))
            } else {
                ValRef::Input(rng.gen_range(0..n_inputs as u32))
            }
        };
        let a = pick_ref(&mut rng);
        let b = pick_ref(&mut rng);
        let op = match rng.gen_range(0..7u8) {
            0 => EvalOp::Add(a, b),
            1 => EvalOp::Sub(a, b),
            2 => EvalOp::Neg(a),
            3 => EvalOp::Mul(a, b),
            4 if n_plain > 0 => EvalOp::MulPlain(a, rng.gen_range(0..n_plain as u32)),
            5 => EvalOp::Rotate(a, 2 * rng.gen_range(0..n as u32) + 1),
            _ => EvalOp::SumSlots(a),
        };
        ops.push(op);
    }
    let deadline_us = (seed.is_multiple_of(3)).then(|| (seed % 100_000) as f64 / 3.0);
    let trace_id = (seed.is_multiple_of(2)).then(|| seed.rotate_left(17) ^ 0xA5A5_A5A5);
    EvalRequest {
        tenant: rng.gen_range(0..u64::MAX),
        inputs,
        plaintexts,
        ops,
        deadline_us,
        trace_id,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn request_roundtrips(seed in any::<u64>(), n_inputs in 1usize..4, n_plain in 0usize..3, n_ops in 1usize..8) {
        let f = fix();
        let req = random_request(seed, n_inputs, n_plain, n_ops);
        prop_assume!(req.validate(&f.ctx).is_ok());
        let bytes = encode_request(&req);
        // The header peek sees the same trace id the decoder reconstructs.
        prop_assert_eq!(peek_trace_id(&bytes).unwrap(), req.trace_id);
        let back = decode_request(&f.ctx, &bytes).unwrap();
        prop_assert_eq!(&back, &req);
        // The embedded ciphertexts survive intact: decrypt one.
        let pt0 = decrypt(&f.ctx, &f.sk, &back.inputs[0]);
        prop_assert_eq!(pt0, decrypt(&f.ctx, &f.sk, &req.inputs[0]));
    }

    #[test]
    fn shard_address_roundtrips_without_touching_the_payload(seed in any::<u64>(), shard in 0u16..0xFFFF) {
        let f = fix();
        let req = random_request(seed, 1, 0, 1);
        prop_assume!(req.validate(&f.ctx).is_ok());
        let routed = encode_request_for_shard(&req, shard);
        prop_assert_eq!(peek_shard(&routed).unwrap(), Some(shard));
        prop_assert_eq!(peek_tenant(&routed).unwrap(), req.tenant);
        prop_assert_eq!(peek_trace_id(&routed).unwrap(), req.trace_id);
        // The shard address is transport metadata: the decoded request is
        // identical however the frame was addressed.
        prop_assert_eq!(decode_request(&f.ctx, &routed).unwrap(), req);
        let unrouted = encode_request(&req);
        prop_assert_eq!(peek_shard(&unrouted).unwrap(), None);
    }

    #[test]
    fn request_decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let f = fix();
        if let Err(e) = decode_request(&f.ctx, &bytes) {
            prop_assert!(is_wire_err(&e) || matches!(e, EngineError::Validation(_)));
        }
    }

    #[test]
    fn request_rejects_any_truncation(seed in any::<u64>(), cut in 1usize..64) {
        let f = fix();
        let req = random_request(seed, 2, 1, 3);
        prop_assume!(req.validate(&f.ctx).is_ok());
        let bytes = encode_request(&req);
        let cut = cut.min(bytes.len() - 1);
        let e = decode_request(&f.ctx, &bytes[..bytes.len() - cut]).unwrap_err();
        prop_assert!(is_wire_err(&e), "truncation must be Error::Wire, got {e}");
    }

    #[test]
    fn request_rejects_trailing_garbage(seed in any::<u64>(), extra in prop::collection::vec(any::<u8>(), 1..32)) {
        let f = fix();
        let req = random_request(seed, 1, 0, 2);
        prop_assume!(req.validate(&f.ctx).is_ok());
        let mut bytes = encode_request(&req);
        bytes.extend_from_slice(&extra);
        let e = decode_request(&f.ctx, &bytes).unwrap_err();
        prop_assert!(is_wire_err(&e), "trailing bytes must be Error::Wire, got {e}");
    }

    #[test]
    fn request_rejects_bit_flips_in_header(seed in any::<u64>(), byte in 0usize..24, bit in 0u8..8) {
        let f = fix();
        let req = random_request(seed, 1, 0, 1);
        prop_assume!(req.validate(&f.ctx).is_ok());
        // Bytes 16..18 are the shard routing hint, transport metadata the
        // request decoder ignores by design. Everything else must either
        // fail or change the request.
        prop_assume!(!(16..18).contains(&byte));
        let mut bytes = encode_request(&req);
        bytes[byte] ^= 1 << bit;
        // Tenant-id bytes (8..16) are opaque, so flips there still
        // decode — but never to the original request.
        if let Ok(back) = decode_request(&f.ctx, &bytes) {
            prop_assert_ne!(back, req);
        }
    }

    #[test]
    fn ok_response_roundtrips(seed in any::<u64>(), worker in any::<u32>(), qn in any::<u64>(), en in any::<u64>(), shard in any::<u8>()) {
        let f = fix();
        let req = random_request(seed, 1, 0, 1);
        let resp = EvalResponse {
            job_id: seed ^ 0xABCD,
            result: req.inputs[0].clone(),
            report: JobReport {
                worker,
                queue_ns: qn,
                exec_ns: en,
                est_cost_us: (seed % 100_000) as f64 / 7.0,
                noise_bits_consumed: (seed % 1000) as f64 / 3.0,
            },
        };
        let bytes = encode_response_from_shard(&Ok(resp.clone()), shard);
        prop_assert_eq!(peek_response_shard(&bytes).unwrap(), shard);
        let back = decode_response(&f.ctx, &bytes).unwrap();
        prop_assert_eq!(back, ResponseFrame::Ok(resp));
    }

    #[test]
    fn err_response_roundtrips(job_id in any::<u64>(), which in 0u8..4) {
        let f = fix();
        let err = match which {
            0 => EngineError::UnknownTenant(job_id),
            1 => EngineError::Validation("no ops".into()),
            2 => EngineError::QueueClosed,
            _ => EngineError::MissingKey { tenant: job_id, which: "relin" },
        };
        let bytes = encode_response(&Err((job_id, err.clone())));
        match decode_response(&f.ctx, &bytes).unwrap() {
            ResponseFrame::Err { job_id: got, code, message, .. } => {
                prop_assert_eq!(got, job_id);
                prop_assert_eq!(code, err.code());
                prop_assert_eq!(message, err.to_string());
            }
            other => return Err(TestCaseError(format!("expected Err frame, got {other:?}"))),
        }
    }

    #[test]
    fn response_rejects_any_truncation(seed in any::<u64>(), cut in 1usize..48) {
        let f = fix();
        let req = random_request(seed, 1, 0, 1);
        let resp = EvalResponse {
            job_id: seed,
            result: req.inputs[0].clone(),
            report: JobReport {
                worker: 0,
                queue_ns: 1,
                exec_ns: 2,
                est_cost_us: 3.0,
                noise_bits_consumed: 4.0,
            },
        };
        let bytes = encode_response(&Ok(resp));
        let cut = cut.min(bytes.len() - 1);
        let e = decode_response(&f.ctx, &bytes[..bytes.len() - cut]).unwrap_err();
        prop_assert!(is_wire_err(&e), "truncation must be Error::Wire, got {e}");
    }

    #[test]
    fn response_decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..2048)) {
        let f = fix();
        if let Err(e) = decode_response(&f.ctx, &bytes) {
            prop_assert!(is_wire_err(&e));
        }
    }
}

#[test]
fn request_frames_are_not_response_frames() {
    let f = fix();
    let req = random_request(1, 1, 0, 1);
    let bytes = encode_request(&req);
    assert!(decode_response(&f.ctx, &bytes).is_err());
    let resp_bytes = encode_response(&Err((0, EngineError::QueueClosed)));
    assert!(decode_request(&f.ctx, &resp_bytes).is_err());
    assert!(peek_shard(&resp_bytes).is_err());
    assert!(peek_response_shard(&bytes).is_err());
}

#[test]
fn oversized_frames_are_rejected_before_parsing() {
    let f = fix();
    // A frame over the cap is refused outright, whatever its header says.
    let mut huge = encode_request(&random_request(2, 1, 0, 1));
    huge.resize(MAX_FRAME_BYTES + 1, 0);
    let e = decode_request(&f.ctx, &huge).unwrap_err();
    assert!(is_wire_err(&e), "oversized frame must be Error::Wire: {e}");
    let e = decode_response(&f.ctx, &huge).unwrap_err();
    assert!(is_wire_err(&e), "oversized frame must be Error::Wire: {e}");
    // A frame whose section counts promise more payload than it carries is
    // a truncation, not an allocation.
    let req = random_request(3, 1, 0, 1);
    let mut bytes = encode_request(&req);
    bytes[18] = 0xFF; // n_inputs := huge
    bytes[19] = 0xFF;
    let e = decode_request(&f.ctx, &bytes).unwrap_err();
    assert!(is_wire_err(&e), "lying counts must be Error::Wire: {e}");
}

#[test]
fn legacy_v1_frames_are_refused() {
    let f = fix();
    let mut bytes = encode_request(&random_request(4, 1, 0, 1));
    bytes[4] = 1; // version := 1
    bytes[5] = 0;
    let e = decode_request(&f.ctx, &bytes).unwrap_err();
    assert!(e.to_string().contains("unsupported request version"), "{e}");
}

#[test]
fn unrouted_shard_sentinel_is_distinct_from_every_shard() {
    let req = random_request(5, 1, 0, 1);
    for shard in [0u16, 1, 7, 0xFFFE] {
        let bytes = encode_request_for_shard(&req, shard);
        assert_eq!(peek_shard(&bytes).unwrap(), Some(shard));
    }
    assert_eq!(peek_shard(&encode_request(&req)).unwrap(), None);
    assert_eq!(NO_SHARD, 0xFFFF);
}
