//! End-to-end engine tests: multi-tenant isolation, concurrent traffic,
//! and the batching front-end's mux/demux correctness.

use hefv_core::galois::GaloisKeySet;
use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn enc(ctx: &FvContext, pk: &PublicKey, v: u64, rng: &mut StdRng) -> Ciphertext {
    let (t, n) = (ctx.params().t, ctx.params().n);
    encrypt(ctx, pk, &Plaintext::new(vec![v], t, n), rng)
}

#[test]
fn tenant_keys_never_cross() {
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
    let engine = Engine::start(Arc::clone(&ctx), EngineConfig::default());
    let mut rng = StdRng::seed_from_u64(1001);
    let (sk_a, pk_a, rlk_a) = keygen(&ctx, &mut rng);
    let (sk_b, pk_b, rlk_b) = keygen(&ctx, &mut rng);
    engine.register_tenant(1, TenantKeys::compute(pk_a.clone(), rlk_a));
    engine.register_tenant(2, TenantKeys::compute(pk_b.clone(), rlk_b));

    let make_req = |tenant, pk: &PublicKey, rng: &mut StdRng| {
        EvalRequest::binary(
            tenant,
            EvalOp::Mul,
            enc(&ctx, pk, 2, rng),
            enc(&ctx, pk, 3, rng),
        )
    };

    // Each tenant's job, evaluated with its own rlk, decrypts correctly
    // under its own secret key.
    let ra = engine.call(make_req(1, &pk_a, &mut rng)).unwrap();
    assert_eq!(decrypt(&ctx, &sk_a, &ra.result).coeffs()[0], 6);
    let rb = engine.call(make_req(2, &pk_b, &mut rng)).unwrap();
    assert_eq!(decrypt(&ctx, &sk_b, &rb.result).coeffs()[0], 6);

    // A job submitted under tenant 2 but carrying tenant 1's ciphertexts
    // is relinearized with tenant 2's key: the full decrypted polynomial
    // under either secret key is garbage, not the true product.
    let cross = engine.call(make_req(2, &pk_a, &mut rng)).unwrap();
    let expected: Vec<u64> = {
        let correct = engine.call(make_req(1, &pk_a, &mut rng)).unwrap();
        decrypt(&ctx, &sk_a, &correct.result).coeffs().to_vec()
    };
    assert_ne!(
        decrypt(&ctx, &sk_a, &cross.result).coeffs(),
        &expected[..],
        "tenant 2's rlk must not produce tenant 1's result"
    );

    // Unknown tenants are rejected before queueing; tenants without the
    // needed key class are rejected with a precise error.
    let err = engine
        .submit(make_req(99, &pk_a, &mut rng))
        .expect_err("unregistered tenant");
    assert_eq!(err, EngineError::UnknownTenant(99));

    engine.register_tenant(3, TenantKeys::default());
    let err = engine
        .submit(make_req(3, &pk_a, &mut rng))
        .expect_err("tenant 3 has no rlk");
    assert_eq!(
        err,
        EngineError::MissingKey {
            tenant: 3,
            which: "relin"
        }
    );
    engine.shutdown();
}

#[test]
fn concurrent_multi_tenant_traffic_stays_correct() {
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
    let engine = Engine::start(
        Arc::clone(&ctx),
        EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(1002);
    let t = ctx.params().t;
    let tenants: Vec<(u64, SecretKey, PublicKey)> = (1..=2)
        .map(|id| {
            let (sk, pk, rlk) = keygen(&ctx, &mut rng);
            engine.register_tenant(id, TenantKeys::compute(pk.clone(), rlk));
            (id, sk, pk)
        })
        .collect();

    // Interleave adds and muls from both tenants, then collect.
    let mut pending = Vec::new();
    for i in 0..12u64 {
        let (id, _, pk) = &tenants[(i % 2) as usize];
        let (a, b) = (i % t, (i + 3) % t);
        let op: fn(ValRef, ValRef) -> EvalOp = if i % 3 == 0 { EvalOp::Mul } else { EvalOp::Add };
        let req = EvalRequest::binary(
            *id,
            op,
            enc(&ctx, pk, a, &mut rng),
            enc(&ctx, pk, b, &mut rng),
        );
        let expect = if i % 3 == 0 { a * b % t } else { (a + b) % t };
        pending.push((i, expect, engine.submit(req).unwrap()));
    }
    for (i, expect, handle) in pending {
        let resp = handle.wait().unwrap();
        let (_, sk, _) = &tenants[(i % 2) as usize];
        assert_eq!(
            decrypt(&ctx, sk, &resp.result).coeffs()[0],
            expect,
            "job {i}"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.jobs_completed, 12);
    assert_eq!(stats.jobs_failed, 0);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.per_op.iter().any(|o| o.name == "mul" && o.count == 4));
    assert!(stats.per_op.iter().any(|o| o.name == "add" && o.count == 8));
    // The 4 Muls must attribute kernel time to both transforms and basis
    // conversion under the cycle model; the adds contribute to neither.
    assert!(stats.ntt_us > 0.0, "Muls charge NTT time");
    assert!(stats.basis_conv_us > 0.0, "Muls charge Lift/Scale time");
    assert!(
        stats.ntt_us + stats.basis_conv_us <= stats.sim_cost_us + 1e-6,
        "kernel split ({} + {}) cannot exceed total simulated cost ({})",
        stats.ntt_us,
        stats.basis_conv_us,
        stats.sim_cost_us
    );
    engine.shutdown();
}

#[test]
fn galois_ops_run_through_the_engine() {
    // t = 7681 ≡ 1 (mod 512) is SIMD-friendly for n = 256.
    let mut params = FvParams::insecure_medium();
    params.t = 7681;
    let ctx = Arc::new(FvContext::new(params).unwrap());
    let engine = Engine::start(Arc::clone(&ctx), EngineConfig::default());
    let mut rng = StdRng::seed_from_u64(1003);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let galois = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
    engine.register_tenant(1, TenantKeys::full(pk.clone(), rlk, galois));

    let encdr = engine.batch_encoder().expect("SIMD params");
    let vals: Vec<u64> = (0..encdr.slots() as u64).collect();
    let ct = encrypt(&ctx, &pk, &encdr.encode(&vals), &mut rng);
    let req = EvalRequest {
        tenant: 1,
        inputs: vec![ct],
        plaintexts: vec![],
        ops: vec![EvalOp::SumSlots(ValRef::Input(0))],
        deadline_us: None,
        trace_id: None,
    };
    let resp = engine.call(req).unwrap();
    let sum: u64 = vals.iter().sum::<u64>() % ctx.params().t;
    let slots = encdr.decode(&decrypt(&ctx, &sk, &resp.result));
    assert!(slots.iter().all(|&s| s == sum), "every slot holds the sum");
    assert!(resp.report.noise_bits_consumed > 0.0);
    engine.shutdown();
}

#[test]
fn hoisted_rotation_batches_run_through_the_engine() {
    // A run of consecutive rotations of the same input executes off one
    // hoisted decomposition; results must be bit-identical to the
    // one-rotation-at-a-time path.
    let mut params = FvParams::insecure_medium();
    params.t = 7681;
    let ctx = Arc::new(FvContext::new(params).unwrap());
    let engine = Engine::start(Arc::clone(&ctx), EngineConfig::default());
    let mut rng = StdRng::seed_from_u64(1007);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let galois = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
    let exps: Vec<u32> = galois.chain()[..3]
        .iter()
        .map(|&i| galois.keys()[i].g as u32)
        .collect();
    engine.register_tenant(1, TenantKeys::full(pk.clone(), rlk, galois));

    let encdr = engine.batch_encoder().expect("SIMD params");
    let vals: Vec<u64> = (0..encdr.slots() as u64).map(|v| v % 97).collect();
    let ct = encrypt(&ctx, &pk, &encdr.encode(&vals), &mut rng);

    // The hoisted batch: three rotations of input 0, result = the last.
    let batch = EvalRequest::rotations(1, ct.clone(), &exps);
    // The per-op path: each rotation as its own single-op request.
    let single = |g: u32| EvalRequest {
        tenant: 1,
        inputs: vec![ct.clone()],
        plaintexts: vec![],
        ops: vec![EvalOp::Rotate(ValRef::Input(0), g)],
        deadline_us: None,
        trace_id: None,
    };
    // The batch must be priced cheaper than the three independent ops.
    let separate_cost: f64 = exps
        .iter()
        .map(|&g| engine.estimate_cost_us(&single(g)))
        .sum();
    let batch_cost = engine.estimate_cost_us(&batch);
    assert!(
        batch_cost < separate_cost,
        "hoisted batch {batch_cost} vs separate {separate_cost}"
    );
    let batched = engine.call(batch).unwrap();
    let lone = engine.call(single(exps[2])).unwrap();
    assert_eq!(
        batched.result, lone.result,
        "hoisted run bit-identical to the single-rotation path"
    );
    let slots = encdr.decode(&decrypt(&ctx, &sk, &batched.result));
    let mut sorted = slots.clone();
    sorted.sort_unstable();
    let mut expect = vals.clone();
    expect.sort_unstable();
    assert_eq!(sorted, expect, "rotation permutes the slots");
    engine.shutdown();
}

#[test]
fn scalar_mul_plain_batches_skip_the_second_encryption() {
    let mut params = FvParams::insecure_medium();
    params.t = 7681;
    let t = params.t;
    let ctx = Arc::new(FvContext::new(params).unwrap());
    let engine = Engine::start(
        Arc::clone(&ctx),
        EngineConfig {
            max_batch: 4,
            ..EngineConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(1008);
    let (sk, pk, _rlk) = keygen(&ctx, &mut rng);
    // MulPlain needs no relinearization key at all.
    engine.register_tenant(1, TenantKeys::encrypt_only(pk));
    let encdr = engine.batch_encoder().unwrap().clone();

    let tickets: Vec<_> = (0..4u64)
        .map(|i| {
            engine
                .submit_scalar(ScalarRequest {
                    tenant: 1,
                    op: ScalarOp::MulPlain,
                    lhs: 11 + i,
                    rhs: 301 + i,
                })
                .unwrap()
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let r = ticket.wait().unwrap();
        let i = i as u64;
        let slots = encdr.decode(&decrypt(&ctx, &sk, &r.packed));
        assert_eq!(slots[r.slot], (11 + i) * (301 + i) % t, "request {i}");
        assert_eq!(r.batch_size, 4);
    }
    let stats = engine.stats();
    assert_eq!(stats.batches_formed, 1);
    let mul_plain = stats.per_op.iter().find(|o| o.name == "mul_plain").unwrap();
    assert_eq!(mul_plain.count, 1, "one MulPlain evaluated the batch");
    engine.shutdown();
}

#[test]
fn scalar_batching_muxes_and_demuxes_correctly() {
    let mut params = FvParams::insecure_medium();
    params.t = 7681;
    let t = params.t;
    let ctx = Arc::new(FvContext::new(params).unwrap());
    let engine = Engine::start(
        Arc::clone(&ctx),
        EngineConfig {
            max_batch: 8,
            ..EngineConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(1004);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    engine.register_tenant(1, TenantKeys::compute(pk, rlk));
    let encdr = engine.batch_encoder().unwrap().clone();

    // 10 scalar products: the first 8 dispatch as one full batch, the
    // remaining 2 on flush — 10 requests, 2 homomorphic evaluations.
    let tickets: Vec<_> = (0..10u64)
        .map(|i| {
            engine
                .submit_scalar(ScalarRequest {
                    tenant: 1,
                    op: ScalarOp::Mul,
                    lhs: 100 + i,
                    rhs: 200 + i,
                })
                .unwrap()
        })
        .collect();
    engine.flush_batches();

    let mut seen = std::collections::HashSet::new();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let r = ticket.wait().unwrap();
        let i = i as u64;
        let expect = (100 + i) * (200 + i) % t;
        let slots = encdr.decode(&decrypt(&ctx, &sk, &r.packed));
        assert_eq!(slots[r.slot], expect, "request {i} demuxes its own slot");
        assert!(
            seen.insert((r.job_id, r.slot)),
            "two requests mapped to one slot"
        );
        assert_eq!(r.batch_size, if i < 8 { 8 } else { 2 });
    }
    let stats = engine.stats();
    assert_eq!(stats.batches_formed, 2, "10 requests coalesced to 2 jobs");
    assert_eq!(stats.batched_requests, 10);
    assert_eq!(stats.jobs_completed, 2);
    engine.shutdown();
}

#[test]
fn scalar_batching_is_rejected_without_simd_params() {
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
    let engine = Engine::start(Arc::clone(&ctx), EngineConfig::default());
    let mut rng = StdRng::seed_from_u64(1005);
    let (_, pk, rlk) = keygen(&ctx, &mut rng);
    engine.register_tenant(1, TenantKeys::compute(pk, rlk));
    let err = engine
        .submit_scalar(ScalarRequest {
            tenant: 1,
            op: ScalarOp::Add,
            lhs: 1,
            rhs: 2,
        })
        .expect_err("t=16 has no SIMD slots");
    assert!(matches!(err, EngineError::BatchUnsupported(_)));
    engine.shutdown();
}

#[test]
fn batches_never_mix_tenants() {
    let mut params = FvParams::insecure_medium();
    params.t = 7681;
    let t = params.t;
    let ctx = Arc::new(FvContext::new(params).unwrap());
    let engine = Engine::start(
        Arc::clone(&ctx),
        EngineConfig {
            max_batch: 4,
            ..EngineConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(1006);
    let (sk_a, pk_a, rlk_a) = keygen(&ctx, &mut rng);
    let (sk_b, pk_b, rlk_b) = keygen(&ctx, &mut rng);
    engine.register_tenant(1, TenantKeys::compute(pk_a, rlk_a));
    engine.register_tenant(2, TenantKeys::compute(pk_b, rlk_b));

    // Interleaved submissions from both tenants; same op, so a naive
    // batcher would mix them into one ciphertext.
    let tickets: Vec<_> = (0..8u64)
        .map(|i| {
            let tenant = 1 + i % 2;
            (
                tenant,
                i,
                engine
                    .submit_scalar(ScalarRequest {
                        tenant,
                        op: ScalarOp::Add,
                        lhs: 10 + i,
                        rhs: 20 + i,
                    })
                    .unwrap(),
            )
        })
        .collect();
    engine.flush_batches();
    let mut jobs_by_tenant: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
        Default::default();
    for (tenant, i, ticket) in tickets {
        let r = ticket.wait().unwrap();
        let sk = if tenant == 1 { &sk_a } else { &sk_b };
        let slots = hefv_core::encoder::BatchEncoder::new(t, ctx.params().n)
            .unwrap()
            .decode(&decrypt(&ctx, sk, &r.packed));
        assert_eq!(slots[r.slot], 30 + 2 * i, "tenant {tenant} request {i}");
        jobs_by_tenant.entry(tenant).or_default().insert(r.job_id);
    }
    let jobs_1 = jobs_by_tenant.remove(&1).unwrap();
    let jobs_2 = jobs_by_tenant.remove(&2).unwrap();
    assert!(
        jobs_1.is_disjoint(&jobs_2),
        "a shared job would mean tenants were batched together"
    );
    engine.shutdown();
}
