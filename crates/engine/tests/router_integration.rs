//! Router-level integration tests: the `Backend::Auto` acceptance
//! criterion (a mixed workload beats either fixed datapath on total
//! estimated cost), consistent-hash placement stability under shard
//! add/remove, the batch linger timer, and shard-addressed frame dispatch.

use hefv_core::eval::Backend;
use hefv_core::galois::GaloisKeySet;
use hefv_core::params::FvParams;
use hefv_core::prelude::*;
use hefv_engine::prelude::*;
use hefv_engine::router::ShardSpec;
use hefv_engine::sched::CostEstimator;
use hefv_engine::wire;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A ring big enough that the HPS constant-latency `Lift`/`Scale` beats
/// the traditional long-integer cores on `Mult` (the flip happens around
/// n ≈ 1k), while the key switch still favors the traditional datapath's
/// 3× smaller switching key — so an op mix genuinely splits between the
/// two architectures. *Not secure* — testing only.
fn flip_params() -> FvParams {
    let ps = hefv_math::primes::ntt_primes(30, 1024, 7).expect("7 NTT primes for n=1024");
    FvParams {
        name: "router-flip".into(),
        n: 1024,
        q_primes: ps[..3].to_vec(),
        p_primes: ps[3..].to_vec(),
        t: 2,
        sigma: 3.2,
    }
}

fn toy_router(n_shards: usize) -> ShardRouter {
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
    let router = ShardRouter::new();
    for i in 0..n_shards {
        router
            .add_shard(ShardSpec {
                name: format!("s{i}"),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers: 1,
                    ..EngineConfig::default()
                },
            })
            .unwrap();
    }
    router
}

/// The acceptance criterion: with `Backend::Auto`, a fixed-seed mixed
/// Traditional/HPS-favoring workload completes with strictly lower total
/// estimated cost than the same workload on either single-backend engine,
/// and both datapaths actually ran jobs.
#[test]
fn auto_dispatch_beats_both_single_backend_fleets() {
    let ctx = Arc::new(FvContext::new(flip_params()).unwrap());
    let est = CostEstimator::new(&ctx);
    let mut rng = StdRng::seed_from_u64(0x2019_1024);

    // Precondition (pinned by crates/sim tests too): at this n, Mult
    // favors HPS and the key switch favors Traditional. If the cost model
    // changes shape, fail here with a clear message instead of deep in
    // the totals.
    let mul_op = EvalOp::Mul(ValRef::Input(0), ValRef::Input(1));
    let rot_op = EvalOp::Rotate(ValRef::Input(0), 3);
    assert!(
        est.op_us_for(&mul_op, Backend::Traditional) > est.op_us_for(&mul_op, Backend::default()),
        "Mult must favor HPS at n=1024"
    );
    assert!(
        est.op_us_for(&rot_op, Backend::Traditional) < est.op_us_for(&rot_op, Backend::default()),
        "Rotate must favor Traditional"
    );

    let router = ShardRouter::new();
    for name in ["auto-0", "auto-1"] {
        router
            .add_shard(ShardSpec {
                name: name.into(),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers: 1,
                    threads_per_job: 1,
                    backend: Backend::Auto,
                    ..EngineConfig::default()
                },
            })
            .unwrap();
    }

    let t = ctx.params().t;
    let n = ctx.params().n;
    let mut requests = Vec::new();
    let mut tenants = Vec::new();
    for id in 1..=2u64 {
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        let galois = GaloisKeySet::for_slot_sum(&ctx, &sk, &mut rng);
        router
            .register_tenant(id, TenantKeys::full(pk.clone(), rlk, galois))
            .unwrap();
        let ct = encrypt(&ctx, &pk, &Plaintext::new(vec![1, 1], t, n), &mut rng);
        // HPS-favoring: a plain product.
        requests.push(EvalRequest::binary(id, EvalOp::Mul, ct.clone(), ct.clone()));
        // Traditional-favoring: a key-switch chain.
        requests.push(EvalRequest {
            tenant: id,
            inputs: vec![ct],
            plaintexts: vec![],
            ops: vec![
                EvalOp::Rotate(ValRef::Input(0), 3),
                EvalOp::Rotate(ValRef::Op(0), 3),
            ],
            deadline_us: None,
            trace_id: None,
        });
        tenants.push((id, sk));
    }

    // Price the whole workload on each fixed datapath up front.
    let total_hps: f64 = requests
        .iter()
        .map(|r| est.request_us_for(r, Backend::default()))
        .sum();
    let total_trad: f64 = requests
        .iter()
        .map(|r| est.request_us_for(r, Backend::Traditional))
        .sum();

    let handles: Vec<_> = requests
        .iter()
        .map(|r| router.submit(r.clone()).unwrap())
        .collect();
    let mut responses = Vec::new();
    for h in handles {
        responses.push(h.wait().unwrap());
    }
    // The products decrypt correctly ((1+x)² = 1+2x+x², t=2 → 1+x²).
    let (id, sk) = &tenants[0];
    let prod = decrypt(&ctx, sk, &responses[0].result);
    assert_eq!(prod.coeffs()[..3], [1, 0, 1], "tenant {id} product");

    let total_auto = router.stats().total;
    assert_eq!(total_auto.jobs_completed, requests.len() as u64);
    assert!(
        total_auto.jobs_traditional > 0 && total_auto.jobs_hps > 0,
        "mixed workload must use both datapaths: {} traditional, {} hps",
        total_auto.jobs_traditional,
        total_auto.jobs_hps
    );
    // Fleet-level kernel attribution: the absorbed totals must expose
    // where kernel time went across all shards.
    assert!(
        total_auto.ntt_us > 0.0 && total_auto.basis_conv_us > 0.0,
        "fleet stats expose kernel split: ntt {} µs, basis {} µs",
        total_auto.ntt_us,
        total_auto.basis_conv_us
    );
    let auto_cost = total_auto.sim_cost_us;
    assert!(
        auto_cost < total_hps - 1.0 && auto_cost < total_trad - 1.0,
        "auto {auto_cost:.1} µs must beat hps {total_hps:.1} and traditional {total_trad:.1}"
    );
    // Determinism: the dispatch decision is a pure function of the
    // request, so re-pricing yields the same split.
    let recomputed: f64 = requests
        .iter()
        .map(|r| est.request_us_for(r, Backend::Auto))
        .sum();
    assert!(
        (recomputed - auto_cost).abs() < 0.1,
        "served cost {auto_cost:.3} vs re-priced {recomputed:.3}"
    );
    router.shutdown();
}

#[test]
fn consistent_hash_placement_is_stable_under_shard_changes() {
    let router = toy_router(3);
    let tenants: Vec<u64> = (0..300).collect();
    let before: Vec<ShardId> = tenants
        .iter()
        .map(|&t| router.shard_for(t).unwrap())
        .collect();

    // Adding a shard remaps only the tenants that now land on it.
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
    let new_shard = router
        .add_shard(ShardSpec {
            name: "s3".into(),
            ctx,
            config: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
        })
        .unwrap();
    let mut moved = 0usize;
    for (tenant, &old) in tenants.iter().zip(&before) {
        let now = router.shard_for(*tenant).unwrap();
        if now != old {
            assert_eq!(
                now, new_shard,
                "tenant {tenant} moved {old}->{now}, not to the new shard"
            );
            moved += 1;
        }
    }
    assert!(moved > 0, "a new shard must take over some tenants");
    assert!(
        moved < tenants.len() / 2,
        "only the new shard's arc may remap: {moved}/300 moved"
    );

    // Removing it restores the original placement exactly.
    assert!(router.remove_shard(new_shard));
    let after: Vec<ShardId> = tenants
        .iter()
        .map(|&t| router.shard_for(t).unwrap())
        .collect();
    assert_eq!(after, before, "removal must restore the previous ring");
    router.shutdown();
}

#[test]
fn partial_batches_drain_within_the_linger_latency() {
    // SIMD-friendly medium params; a batch of up to 8 with a 40 ms linger.
    let mut params = FvParams::insecure_medium();
    params.t = 7681;
    let t = params.t;
    let ctx = Arc::new(FvContext::new(params).unwrap());
    let router = ShardRouter::new();
    router
        .add_shard(ShardSpec {
            name: "batched".into(),
            ctx: Arc::clone(&ctx),
            config: EngineConfig {
                workers: 1,
                max_batch: 8,
                batch_linger: Some(Duration::from_millis(40)),
                ..EngineConfig::default()
            },
        })
        .unwrap();
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    router
        .register_tenant(1, TenantKeys::compute(pk, rlk))
        .unwrap();

    // Three scalar requests: far from filling the batch of 8, and nobody
    // ever calls flush_batches() — the linger timer must dispatch them.
    let started = Instant::now();
    let tickets: Vec<_> = (0..3u64)
        .map(|i| {
            router
                .submit_scalar(ScalarRequest {
                    tenant: 1,
                    op: ScalarOp::Mul,
                    lhs: 10 + i,
                    rhs: 20 + i,
                })
                .unwrap()
        })
        .collect();
    let encoder = hefv_core::encoder::BatchEncoder::new(t, ctx.params().n).unwrap();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let r = ticket.wait().expect("linger timer dispatches the batch");
        let i = i as u64;
        assert_eq!(r.batch_size, 3, "all three coalesced into one job");
        let slots = encoder.decode(&decrypt(&ctx, &sk, &r.packed));
        assert_eq!(slots[r.slot], (10 + i) * (20 + i) % t);
    }
    let waited = started.elapsed();
    assert!(
        waited >= Duration::from_millis(20),
        "a partial batch should linger briefly, not dispatch instantly: {waited:?}"
    );
    assert!(
        waited < Duration::from_secs(5),
        "linger drain took {waited:?}, timer looks dead"
    );
    let stats = router.stats().total;
    assert_eq!(stats.batches_formed, 1);
    assert_eq!(stats.batched_requests, 3);
    router.shutdown();
}

#[test]
fn frames_route_by_shard_address_and_tenant_hash() {
    use hefv_engine::router::RouterConfig;
    let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
    // Single key holder per tenant, so the foreign-shard probe below
    // genuinely finds no keys (default replication would place them on
    // both shards of this two-shard fleet).
    let router = ShardRouter::with_config(RouterConfig {
        key_replicas: 1,
        ..RouterConfig::default()
    });
    for name in ["w0", "w1"] {
        router
            .add_shard(ShardSpec {
                name: name.into(),
                ctx: Arc::clone(&ctx),
                config: EngineConfig {
                    workers: 1,
                    ..EngineConfig::default()
                },
            })
            .unwrap();
    }
    let mut rng = StdRng::seed_from_u64(0xF4A3);
    let (sk, pk, rlk) = keygen(&ctx, &mut rng);
    let tenant = 11u64;
    let home = router
        .register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk))
        .unwrap();

    let t = ctx.params().t;
    let n = ctx.params().n;
    let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
    let req = EvalRequest::binary(tenant, EvalOp::Add, enc(2, &mut rng), enc(5, &mut rng));

    // Unrouted frame: placed by tenant hash, response stamped with the
    // producing shard.
    let reply = router.dispatch_frame(&wire::encode_request(&req));
    assert_eq!(wire::peek_response_shard(&reply).unwrap(), home as u8);
    match wire::decode_response(&ctx, &reply).unwrap() {
        wire::ResponseFrame::Ok(resp) => {
            assert_eq!(decrypt(&ctx, &sk, &resp.result).coeffs()[0], 7);
        }
        wire::ResponseFrame::Err { message, .. } => panic!("dispatch failed: {message}"),
    }

    // Explicitly addressing the *other* shard is honored — and fails,
    // because the tenant's keys live on its home shard only.
    let other = 1 - home;
    let reply = router.dispatch_frame(&wire::encode_request_for_shard(&req, other));
    match wire::decode_response(&ctx, &reply).unwrap() {
        wire::ResponseFrame::Err { message, .. } => {
            assert!(message.contains("unknown tenant"), "{message}");
        }
        wire::ResponseFrame::Ok(_) => panic!("foreign shard must not hold the tenant's keys"),
    }

    // A frame addressed to a nonexistent shard is a transport error.
    let reply = router.dispatch_frame(&wire::encode_request_for_shard(&req, 200));
    match wire::decode_response(&ctx, &reply).unwrap() {
        wire::ResponseFrame::Err {
            job_id, message, ..
        } => {
            assert_eq!(job_id, u64::MAX);
            assert!(message.contains("unknown shard"), "{message}");
        }
        wire::ResponseFrame::Ok(_) => panic!("unknown shard must not serve"),
    }
    router.shutdown();
}
