//! Per-tenant key registry with LRU eviction.
//!
//! The engine multiplexes many tenants over one parameter set; each tenant
//! owns independent key material (public, relinearization, Galois). Keys
//! are large — a relinearization key at the paper's parameters is
//! 6 digits × 2 polys × 6 residues × 4096 coeffs × 4 B ≈ 1.2 MB — so the
//! registry is a bounded, interior-mutable cache: reads take a shared lock
//! and bump a recency stamp; registering past capacity evicts the
//! least-recently-used tenant. Evicted tenants simply re-register (the
//! client always holds its own keys); jobs in flight keep their `Arc`.

use crate::error::EngineError;
use hefv_core::context::FvContext;
use hefv_core::galois::GaloisKeySet;
use hefv_core::keys::{PublicKey, RelinKey};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Process-wide snapshot-restore outcome counters, rendered as
/// `hefv_snapshot_restore_total{outcome=}` in the metrics exposition
/// (statics, like the net client's retry counter: restores happen at
/// process start, usually before any router exists to hang stats on).
static SNAPSHOT_RESTORE_OK: AtomicU64 = AtomicU64::new(0);
static SNAPSHOT_RESTORE_FAILED: AtomicU64 = AtomicU64::new(0);

/// Counts one snapshot-restore outcome (`true` = the snapshot verified
/// and was applied).
pub fn note_snapshot_restore(ok: bool) {
    if ok {
        SNAPSHOT_RESTORE_OK.fetch_add(1, Ordering::Relaxed);
    } else {
        SNAPSHOT_RESTORE_FAILED.fetch_add(1, Ordering::Relaxed);
    }
}

/// `(ok, integrity_failure)` totals of every snapshot restore this
/// process attempted.
pub fn snapshot_restore_counts() -> (u64, u64) {
    (
        SNAPSHOT_RESTORE_OK.load(Ordering::Relaxed),
        SNAPSHOT_RESTORE_FAILED.load(Ordering::Relaxed),
    )
}

/// Tenant identifier (assigned by the operator, opaque to the engine).
pub type TenantId = u64;

/// One tenant's key material. Every field is optional: a tenant doing only
/// additions needs no keys at all beyond its inputs.
#[derive(Clone, Default)]
pub struct TenantKeys {
    /// Public key, needed for engine-side encryption (scalar batching).
    pub pk: Option<Arc<PublicKey>>,
    /// Relinearization key, needed for `Mul`.
    pub rlk: Option<Arc<RelinKey>>,
    /// Galois key set, needed for `Rotate`/`SumSlots`.
    pub galois: Option<Arc<GaloisKeySet>>,
}

impl TenantKeys {
    /// Key set with everything needed for the full op repertoire.
    pub fn full(pk: PublicKey, rlk: RelinKey, galois: GaloisKeySet) -> Self {
        TenantKeys {
            pk: Some(Arc::new(pk)),
            rlk: Some(Arc::new(rlk)),
            galois: Some(Arc::new(galois)),
        }
    }

    /// Key set for add/mul workloads (no rotations).
    pub fn compute(pk: PublicKey, rlk: RelinKey) -> Self {
        TenantKeys {
            pk: Some(Arc::new(pk)),
            rlk: Some(Arc::new(rlk)),
            galois: None,
        }
    }

    /// Key set for linear workloads (add/sub/neg, plaintext products,
    /// scalar `MulPlain` batches): just the public key.
    pub fn encrypt_only(pk: PublicKey) -> Self {
        TenantKeys {
            pk: Some(Arc::new(pk)),
            rlk: None,
            galois: None,
        }
    }
}

struct Entry {
    keys: Arc<TenantKeys>,
    last_used: AtomicU64,
}

/// Bounded multi-tenant key cache.
pub struct KeyRegistry {
    capacity: usize,
    clock: AtomicU64,
    evictions: AtomicU64,
    inner: RwLock<HashMap<TenantId, Entry>>,
}

impl KeyRegistry {
    /// Creates a registry holding at most `capacity` tenants (≥ 1).
    pub fn new(capacity: usize) -> Self {
        KeyRegistry {
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inner: RwLock::new(HashMap::new()),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers (or replaces) a tenant's keys, evicting the LRU tenant
    /// if the registry is over capacity.
    pub fn register(&self, tenant: TenantId, keys: TenantKeys) {
        let stamp = self.tick();
        let mut map = self.inner.write().unwrap();
        map.insert(
            tenant,
            Entry {
                keys: Arc::new(keys),
                last_used: AtomicU64::new(stamp),
            },
        );
        while map.len() > self.capacity {
            let victim = map
                .iter()
                .filter(|(id, _)| **id != tenant)
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    map.remove(&id);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Looks a tenant up, refreshing its recency.
    pub fn get(&self, tenant: TenantId) -> Option<Arc<TenantKeys>> {
        let stamp = self.tick();
        let map = self.inner.read().unwrap();
        map.get(&tenant).map(|e| {
            e.last_used.store(stamp, Ordering::Relaxed);
            Arc::clone(&e.keys)
        })
    }

    /// Whether a tenant is resident, *without* refreshing its recency —
    /// this is the anti-entropy probe: a sweep checking replica health
    /// must see eviction pressure as it is, not mask it by touching
    /// every tenant it audits.
    pub fn contains(&self, tenant: TenantId) -> bool {
        self.inner.read().unwrap().contains_key(&tenant)
    }

    /// Serializes every resident tenant into a checksummed `HEVR`
    /// snapshot blob (see [`crate::wire::encode_registry_snapshot`]),
    /// in ascending tenant order so identical populations produce
    /// byte-identical snapshots.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut entries: Vec<(TenantId, Arc<TenantKeys>)> = {
            let map = self.inner.read().unwrap();
            map.iter().map(|(&t, e)| (t, Arc::clone(&e.keys))).collect()
        };
        entries.sort_by_key(|(t, _)| *t);
        crate::wire::encode_registry_snapshot(&entries)
    }

    /// Restores tenants from an `HEVR` snapshot blob, registering every
    /// entry (existing tenants are replaced; eviction applies as in
    /// [`KeyRegistry::register`]). Returns how many tenants were
    /// restored, and records the outcome in the process-wide
    /// `hefv_snapshot_restore_total` counters.
    ///
    /// # Errors
    ///
    /// [`EngineError::IntegrityFailure`] when the snapshot is torn,
    /// bit-flipped, or otherwise fails verification — in which case
    /// *nothing* was registered (the decode stages fully first).
    pub fn restore(&self, ctx: &FvContext, bytes: &[u8]) -> Result<usize, EngineError> {
        match crate::wire::decode_registry_snapshot(ctx, bytes) {
            Ok(entries) => {
                let n = entries.len();
                for (tenant, keys) in entries {
                    self.register(tenant, keys);
                }
                note_snapshot_restore(true);
                Ok(n)
            }
            Err(e) => {
                note_snapshot_restore(false);
                Err(e)
            }
        }
    }

    /// Drops a tenant's keys (no-op if absent).
    pub fn remove(&self, tenant: TenantId) -> bool {
        self.inner.write().unwrap().remove(&tenant).is_some()
    }

    /// Number of resident tenants.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_keys() -> TenantKeys {
        TenantKeys::default()
    }

    #[test]
    fn register_get_remove() {
        let r = KeyRegistry::new(8);
        assert!(r.is_empty());
        r.register(1, empty_keys());
        assert_eq!(r.len(), 1);
        assert!(r.get(1).is_some());
        assert!(r.get(2).is_none());
        assert!(r.remove(1));
        assert!(!r.remove(1));
        assert!(r.is_empty());
    }

    #[test]
    fn evicts_least_recently_used() {
        let r = KeyRegistry::new(2);
        r.register(1, empty_keys());
        r.register(2, empty_keys());
        // Touch tenant 1 so tenant 2 is the LRU.
        assert!(r.get(1).is_some());
        r.register(3, empty_keys());
        assert_eq!(r.len(), 2);
        assert!(r.get(1).is_some(), "recently used survives");
        assert!(r.get(2).is_none(), "LRU evicted");
        assert!(r.get(3).is_some(), "newcomer resident");
        assert_eq!(r.evictions(), 1);
    }

    #[test]
    fn never_evicts_the_tenant_just_registered() {
        let r = KeyRegistry::new(1);
        r.register(1, empty_keys());
        r.register(2, empty_keys());
        assert!(r.get(2).is_some());
        assert!(r.get(1).is_none());
    }

    #[test]
    fn reregistering_replaces_in_place() {
        let r = KeyRegistry::new(2);
        r.register(1, empty_keys());
        r.register(2, empty_keys());
        r.register(1, empty_keys());
        assert_eq!(r.len(), 2);
        assert_eq!(r.evictions(), 0);
    }

    #[test]
    fn contains_does_not_refresh_recency() {
        let r = KeyRegistry::new(2);
        r.register(1, empty_keys());
        r.register(2, empty_keys());
        // An anti-entropy probe of tenant 1 must not save it from LRU.
        assert!(r.contains(1));
        r.register(3, empty_keys());
        assert!(!r.contains(1), "probed tenant still evicted as LRU");
        assert!(r.contains(2) && r.contains(3));
    }

    #[test]
    fn snapshots_roundtrip_through_the_registry() {
        use hefv_core::params::FvParams;
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let r = KeyRegistry::new(8);
        r.register(5, empty_keys());
        r.register(1, empty_keys());
        let blob = r.snapshot();
        assert!(crate::wire::is_registry_snapshot(&blob));
        // Same population → byte-identical snapshot (sorted entries).
        assert_eq!(blob, r.snapshot());

        let fresh = KeyRegistry::new(8);
        assert_eq!(fresh.restore(&ctx, &blob).unwrap(), 2);
        assert!(fresh.contains(1) && fresh.contains(5));

        // A flipped bit refuses wholesale: nothing lands.
        let mut bad = blob.clone();
        bad[8] ^= 1;
        let empty = KeyRegistry::new(8);
        assert!(matches!(
            empty.restore(&ctx, &bad),
            Err(EngineError::IntegrityFailure(_))
        ));
        assert!(empty.is_empty(), "failed restore must not partially apply");
    }

    #[test]
    fn inflight_arcs_survive_eviction() {
        let r = KeyRegistry::new(1);
        r.register(1, empty_keys());
        let held = r.get(1).unwrap();
        r.register(2, empty_keys());
        assert!(r.get(1).is_none());
        // The job holding the Arc keeps using the evicted keys safely.
        assert!(held.pk.is_none());
    }
}
