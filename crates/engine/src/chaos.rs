//! Test-only chaos injection for the engine interior.
//!
//! The `HEFV_CHAOS` environment variable arms fault injection inside
//! the worker pool — the engine-side sibling of `HEFV_NET_FAULT` (which
//! perturbs the transport). Off by default; compiled in always, so CI
//! soaks can exercise panic quarantine, load shedding, and client
//! backoff without a special build. Format:
//!
//! ```text
//! HEFV_CHAOS=panic:0.01,delay:2ms,alloc_pressure:0.05
//! ```
//!
//! * `panic:P` — each job panics inside the worker (before touching
//!   ciphertexts) with probability `P` ∈ \[0, 1\]. The engine's
//!   `catch_unwind` converts it into an `Internal` refusal and feeds
//!   the quarantine table, exactly like an organic panic.
//! * `delay:N(ms|us|s)` — sleep that long before executing each job
//!   (simulates a slow datapath; drives deadline misses and backlog).
//! * `alloc_pressure:P` — with probability `P` per job, park a 1 MiB
//!   buffer in the worker's scratch arena, inflating the pooled-bytes
//!   gauge that the `MemoryPressure` admission gate watches. Bounded
//!   by [`hefv_core::scratch::ArenaLimits`], so pressure saturates
//!   rather than growing without bound.
//!
//! Any part may be omitted; unparsable specs are ignored (fail open:
//! a typo must not make CI pass vacuously by crashing the harness —
//! the chaos soak asserts on shed/retry counters instead). Tests that
//! need a plan without touching the process environment set
//! [`crate::engine::EngineConfig::chaos`] directly.
//!
//! Draws are deterministic per worker: each worker thread seeds a
//! splitmix64 stream from the engine seed and its worker index, so a
//! given configuration replays the same fault schedule.

use std::sync::OnceLock;
use std::time::Duration;

/// One parsed `HEFV_CHAOS` spec.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChaosPlan {
    /// Per-job worker-panic probability in \[0, 1\].
    pub panic: f64,
    /// Per-job execution delay.
    pub delay: Duration,
    /// Per-job probability of parking a pressure buffer in the arena.
    pub alloc_pressure: f64,
}

impl ChaosPlan {
    pub fn active(&self) -> bool {
        self.panic > 0.0 || self.delay > Duration::ZERO || self.alloc_pressure > 0.0
    }
}

/// Bytes parked in the worker arena per `alloc_pressure` hit.
pub(crate) const PRESSURE_CHUNK_BYTES: usize = 1 << 20;

/// The process-wide plan, read from the environment once.
pub(crate) fn plan() -> ChaosPlan {
    static PLAN: OnceLock<ChaosPlan> = OnceLock::new();
    *PLAN.get_or_init(|| parse(std::env::var("HEFV_CHAOS").ok().as_deref()))
}

fn parse(spec: Option<&str>) -> ChaosPlan {
    let mut plan = ChaosPlan::default();
    let Some(spec) = spec else { return plan };
    for part in spec.split(',') {
        let part = part.trim();
        if let Some(p) = part.strip_prefix("panic:") {
            plan.panic = parse_probability(p).unwrap_or(0.0);
        } else if let Some(p) = part.strip_prefix("alloc_pressure:") {
            plan.alloc_pressure = parse_probability(p).unwrap_or(0.0);
        } else if let Some(d) = part.strip_prefix("delay:") {
            plan.delay = parse_duration(d.trim()).unwrap_or(Duration::ZERO);
        }
    }
    plan
}

fn parse_probability(s: &str) -> Option<f64> {
    let p: f64 = s.trim().parse().ok()?;
    p.is_finite().then(|| p.clamp(0.0, 1.0))
}

fn parse_duration(s: &str) -> Option<Duration> {
    for (suffix, scale_ns) in [("ms", 1_000_000u64), ("us", 1_000), ("s", 1_000_000_000)] {
        if let Some(num) = s.strip_suffix(suffix) {
            // "s" would also strip "ms"/"us" tails; the longer suffixes
            // are checked first so `num` here is purely numeric.
            let v: f64 = num.trim().parse().ok()?;
            if !v.is_finite() || v < 0.0 {
                return None;
            }
            return Some(Duration::from_nanos((v * scale_ns as f64) as u64));
        }
    }
    None
}

/// Deterministic per-worker coin flip: advances `state` through a
/// splitmix64 step and compares the draw against probability `p`.
pub(crate) fn roll(p: f64, state: &mut u64) -> bool {
    if p <= 0.0 {
        return false;
    }
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 11) as f64 / (1u64 << 53) as f64) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse() {
        assert_eq!(parse(None), ChaosPlan::default());
        assert_eq!(parse(Some("")), ChaosPlan::default());
        let p = parse(Some("panic:0.01,delay:2ms,alloc_pressure:0.05"));
        assert!((p.panic - 0.01).abs() < 1e-12);
        assert_eq!(p.delay, Duration::from_millis(2));
        assert!((p.alloc_pressure - 0.05).abs() < 1e-12);
        assert_eq!(parse(Some("delay:250us")).delay, Duration::from_micros(250));
        assert_eq!(parse(Some("panic:1.5")).panic, 1.0, "clamped");
        assert_eq!(parse(Some("panic:-1")).panic, 0.0, "clamped");
        // Garbage fails open.
        assert_eq!(parse(Some("panic:lots,delay:soon")), ChaosPlan::default());
        assert!(!parse(Some("nonsense")).active());
    }

    #[test]
    fn roll_rate_tracks_probability() {
        let mut state = 0xDEAD_BEEFu64;
        let hits = (0..10_000).filter(|_| roll(0.25, &mut state)).count();
        assert!(
            (2_000..3_000).contains(&hits),
            "25% chaos produced {hits}/10000"
        );
        assert!(!roll(0.0, &mut state));
    }

    #[test]
    fn distinct_worker_seeds_diverge() {
        let mut a = 1u64;
        let mut b = 2u64;
        let seq_a: Vec<bool> = (0..64).map(|_| roll(0.5, &mut a)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| roll(0.5, &mut b)).collect();
        assert_ne!(seq_a, seq_b);
    }
}
