//! Engine error type, wrapping [`hefv_core::Error`].

use crate::registry::TenantId;
use core::fmt;

/// Everything the evaluation engine can reject or fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The underlying FV library failed (context construction, wire decode).
    Core(hefv_core::Error),
    /// The request graph failed validation before scheduling.
    Validation(String),
    /// The request names a tenant with no registered key material.
    UnknownTenant(TenantId),
    /// The tenant is registered but lacks the key an op needs.
    MissingKey {
        /// The tenant whose key set is incomplete.
        tenant: TenantId,
        /// Which key class is missing (`"public"`, `"relin"`, `"galois"`).
        which: &'static str,
    },
    /// The engine is shutting down and no longer accepts work.
    QueueClosed,
    /// The engine itself failed while executing a job (worker panic).
    /// Unlike [`EngineError::Validation`], this is not the client's
    /// fault and the request may succeed on retry after a fix.
    Internal(String),
    /// Scalar batching was requested but the parameter set does not
    /// support SIMD slots (`t` not a prime `≡ 1 mod 2n`).
    BatchUnsupported(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "core: {e}"),
            EngineError::Validation(r) => write!(f, "invalid request: {r}"),
            EngineError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            EngineError::MissingKey { tenant, which } => {
                write!(f, "tenant {tenant} has no {which} key registered")
            }
            EngineError::QueueClosed => write!(f, "engine is shut down"),
            EngineError::Internal(r) => write!(f, "internal engine failure: {r}"),
            EngineError::BatchUnsupported(r) => write!(f, "batching unsupported: {r}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hefv_core::Error> for EngineError {
    fn from(e: hefv_core::Error) -> Self {
        EngineError::Core(e)
    }
}

/// Bridge for `Result<_, String>` callers (examples, the cloud app layer).
impl From<EngineError> for String {
    fn from(e: EngineError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_core_errors_with_source() {
        let e = EngineError::from(hefv_core::Error::Wire("bad magic".into()));
        assert!(e.to_string().contains("bad magic"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_is_informative() {
        let e = EngineError::MissingKey {
            tenant: 7,
            which: "relin",
        };
        assert_eq!(e.to_string(), "tenant 7 has no relin key registered");
        assert_eq!(
            EngineError::UnknownTenant(3).to_string(),
            "unknown tenant 3"
        );
    }
}
