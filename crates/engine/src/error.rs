//! Engine error type, wrapping [`hefv_core::Error`], plus the
//! machine-readable refusal taxonomy that crosses the wire.
//!
//! Every [`EngineError`] maps onto exactly one [`ErrorCode`] — a small,
//! stable `u8` namespace carried in `HEVP` error frames so clients and
//! proxying routers can react to *what kind* of refusal happened
//! (back off, re-route, give up) without parsing rendered text. Codes
//! split into **retryable** (the same request may succeed later:
//! overload, memory pressure, shutdown, transient internal failures)
//! and **terminal** (retrying verbatim cannot help: validation,
//! infeasible deadlines, exhausted noise budgets, quarantined
//! signatures). Retryable refusals may carry an optional
//! retry-after-µs hint ([`EngineError::retry_after_us`]).

use crate::registry::TenantId;
use core::fmt;

/// The wire-level error taxonomy: one byte per refusal class.
///
/// The discriminants are the on-wire values — append-only; never
/// renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// The engine failed while executing (worker panic, lost reply,
    /// transport failure inside the cluster). Not the client's fault;
    /// retryable.
    Internal = 0,
    /// Queue or in-flight budget full — shed at admission. Retryable.
    Overload = 1,
    /// The priced cost plus current backlog cannot meet the request's
    /// deadline; refused without executing. Terminal for this deadline.
    DeadlineInfeasible = 2,
    /// Scratch-arena bytes above the configured high-water mark.
    /// Retryable once pressure drains.
    MemoryPressure = 3,
    /// The tracked noise budget cannot close over the op graph at the
    /// current parameters. Terminal.
    NoiseBudgetExhausted = 4,
    /// This (tenant, op-class) signature panicked repeatedly and is
    /// quarantined for a decaying TTL. Terminal until the TTL lapses.
    Quarantined = 5,
    /// The engine is draining for shutdown. Retryable (elsewhere, or
    /// after restart).
    ShuttingDown = 6,
    /// The request failed validation. Terminal.
    Validation = 7,
    /// No key material registered for the tenant. Terminal.
    UnknownTenant = 8,
    /// The tenant lacks the key class an op needs. Terminal.
    MissingKey = 9,
    /// Malformed wire frame. Terminal.
    Wire = 10,
    /// Scalar batching unsupported at these parameters. Terminal.
    BatchUnsupported = 11,
    /// An integrity check failed: a net envelope's CRC32 trailer did
    /// not match its payload, or an `HEVR` registry snapshot was torn
    /// or bit-flipped. The payload was rejected *before* decode — the
    /// original request never executed, so a retry (over a clean link
    /// or from a clean snapshot) is safe. Retryable.
    IntegrityFailure = 12,
}

/// Every code, for exhaustive iteration (docs tables, metrics labels).
pub const ERROR_CODES: [ErrorCode; 13] = [
    ErrorCode::Internal,
    ErrorCode::Overload,
    ErrorCode::DeadlineInfeasible,
    ErrorCode::MemoryPressure,
    ErrorCode::NoiseBudgetExhausted,
    ErrorCode::Quarantined,
    ErrorCode::ShuttingDown,
    ErrorCode::Validation,
    ErrorCode::UnknownTenant,
    ErrorCode::MissingKey,
    ErrorCode::Wire,
    ErrorCode::BatchUnsupported,
    ErrorCode::IntegrityFailure,
];

impl ErrorCode {
    /// The on-wire byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Parses an on-wire byte; `None` for bytes outside the taxonomy.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        ERROR_CODES.into_iter().find(|c| c.as_u8() == b)
    }

    /// Whether a verbatim retry of the same request may succeed later.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::Internal
                | ErrorCode::Overload
                | ErrorCode::MemoryPressure
                | ErrorCode::ShuttingDown
                | ErrorCode::IntegrityFailure
        )
    }

    /// Stable lower-snake name (metrics labels, docs).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Internal => "internal",
            ErrorCode::Overload => "overload",
            ErrorCode::DeadlineInfeasible => "deadline_infeasible",
            ErrorCode::MemoryPressure => "memory_pressure",
            ErrorCode::NoiseBudgetExhausted => "noise_budget_exhausted",
            ErrorCode::Quarantined => "quarantined",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Validation => "validation",
            ErrorCode::UnknownTenant => "unknown_tenant",
            ErrorCode::MissingKey => "missing_key",
            ErrorCode::Wire => "wire",
            ErrorCode::BatchUnsupported => "batch_unsupported",
            ErrorCode::IntegrityFailure => "integrity_failure",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the evaluation engine can reject or fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The underlying FV library failed (context construction, wire decode).
    Core(hefv_core::Error),
    /// The request graph failed validation before scheduling.
    Validation(String),
    /// The request names a tenant with no registered key material.
    UnknownTenant(TenantId),
    /// The tenant is registered but lacks the key an op needs.
    MissingKey {
        /// The tenant whose key set is incomplete.
        tenant: TenantId,
        /// Which key class is missing (`"public"`, `"relin"`, `"galois"`).
        which: &'static str,
    },
    /// The engine is shutting down and no longer accepts work.
    QueueClosed,
    /// The engine itself failed while executing a job (worker panic).
    /// Unlike [`EngineError::Validation`], this is not the client's
    /// fault and the request may succeed on retry after a fix.
    Internal(String),
    /// Scalar batching was requested but the parameter set does not
    /// support SIMD slots (`t` not a prime `≡ 1 mod 2n`).
    BatchUnsupported(String),
    /// Shed at admission: queue or in-flight budget full.
    Overload {
        /// Suggested wait before retrying, from the backlog estimate.
        retry_after_us: Option<u64>,
    },
    /// Refused at admission: priced cost + queue backlog cannot meet
    /// the request's deadline, so executing it would only burn cycles.
    DeadlineInfeasible {
        /// Backlog + this job's priced cost, in virtual-clock µs.
        estimated_us: u64,
        /// The deadline the request asked for.
        deadline_us: u64,
    },
    /// Refused at admission: scratch-arena bytes above the configured
    /// high-water mark.
    MemoryPressure {
        /// Pooled arena bytes at refusal time.
        pooled_bytes: u64,
        /// The configured high-water mark.
        high_water_bytes: u64,
    },
    /// Refused at admission: the tracked noise budget cannot close
    /// over the op graph at the current parameters.
    NoiseBudgetExhausted {
        /// Whole-graph noise growth the model predicts, in bits.
        needed_bits: u64,
        /// The parameter set's decryption-failure threshold, in bits.
        budget_bits: u64,
    },
    /// Refused at admission: this (tenant, op-class) signature panicked
    /// repeatedly and is quarantined until its TTL decays.
    Quarantined {
        /// Remaining quarantine TTL.
        retry_after_us: u64,
    },
    /// An integrity check caught corruption before decode: a net
    /// envelope whose CRC32 trailer disagrees with its payload, or a
    /// torn/bit-flipped `HEVR` registry snapshot. Nothing was executed
    /// or partially applied.
    IntegrityFailure(String),
    /// A typed refusal proxied from a remote shard: the original code
    /// and hint survive the hop instead of degenerating to a transport
    /// error. `message` is the origin's rendered text.
    Remote {
        /// The origin's refusal class.
        code: ErrorCode,
        /// The origin's retry-after hint, if any.
        retry_after_us: Option<u64>,
        /// The origin's rendered error message.
        message: String,
    },
}

impl EngineError {
    /// The wire-level refusal class of this error.
    pub fn code(&self) -> ErrorCode {
        match self {
            EngineError::Core(_) => ErrorCode::Wire,
            EngineError::Validation(_) => ErrorCode::Validation,
            EngineError::UnknownTenant(_) => ErrorCode::UnknownTenant,
            EngineError::MissingKey { .. } => ErrorCode::MissingKey,
            EngineError::QueueClosed => ErrorCode::ShuttingDown,
            EngineError::Internal(_) => ErrorCode::Internal,
            EngineError::BatchUnsupported(_) => ErrorCode::BatchUnsupported,
            EngineError::Overload { .. } => ErrorCode::Overload,
            EngineError::DeadlineInfeasible { .. } => ErrorCode::DeadlineInfeasible,
            EngineError::MemoryPressure { .. } => ErrorCode::MemoryPressure,
            EngineError::NoiseBudgetExhausted { .. } => ErrorCode::NoiseBudgetExhausted,
            EngineError::Quarantined { .. } => ErrorCode::Quarantined,
            EngineError::IntegrityFailure(_) => ErrorCode::IntegrityFailure,
            EngineError::Remote { code, .. } => *code,
        }
    }

    /// Whether a verbatim retry may succeed later (see
    /// [`ErrorCode::retryable`]).
    pub fn retryable(&self) -> bool {
        self.code().retryable()
    }

    /// The retry-after hint to put on the wire, if this refusal
    /// carries one.
    pub fn retry_after_us(&self) -> Option<u64> {
        match self {
            EngineError::Overload { retry_after_us } => *retry_after_us,
            EngineError::Quarantined { retry_after_us } => Some(*retry_after_us),
            EngineError::Remote { retry_after_us, .. } => *retry_after_us,
            _ => None,
        }
    }

    /// Reconstructs a typed error from its wire representation, so a
    /// proxying router can re-raise a remote refusal without losing
    /// its class or hint.
    pub fn from_wire(code: ErrorCode, retry_after_us: Option<u64>, message: String) -> EngineError {
        EngineError::Remote {
            code,
            retry_after_us,
            message,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Core(e) => write!(f, "core: {e}"),
            EngineError::Validation(r) => write!(f, "invalid request: {r}"),
            EngineError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            EngineError::MissingKey { tenant, which } => {
                write!(f, "tenant {tenant} has no {which} key registered")
            }
            EngineError::QueueClosed => write!(f, "engine is shut down"),
            EngineError::Internal(r) => write!(f, "internal engine failure: {r}"),
            EngineError::BatchUnsupported(r) => write!(f, "batching unsupported: {r}"),
            EngineError::Overload { retry_after_us } => match retry_after_us {
                Some(us) => write!(f, "overloaded, retry after {us} µs"),
                None => write!(f, "overloaded"),
            },
            EngineError::DeadlineInfeasible {
                estimated_us,
                deadline_us,
            } => write!(
                f,
                "deadline infeasible: backlog + cost ≈ {estimated_us} µs \
                 exceeds the {deadline_us} µs deadline"
            ),
            EngineError::MemoryPressure {
                pooled_bytes,
                high_water_bytes,
            } => write!(
                f,
                "memory pressure: {pooled_bytes} pooled bytes above the \
                 {high_water_bytes}-byte high-water mark"
            ),
            EngineError::NoiseBudgetExhausted {
                needed_bits,
                budget_bits,
            } => write!(
                f,
                "noise budget exhausted: graph needs ≈ {needed_bits} bits, \
                 budget is {budget_bits} bits"
            ),
            EngineError::Quarantined { retry_after_us } => write!(
                f,
                "request signature quarantined after repeated worker \
                 panics, retry after {retry_after_us} µs"
            ),
            EngineError::IntegrityFailure(r) => write!(f, "integrity failure: {r}"),
            EngineError::Remote { code, message, .. } => {
                write!(f, "remote {code}: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hefv_core::Error> for EngineError {
    fn from(e: hefv_core::Error) -> Self {
        EngineError::Core(e)
    }
}

/// Bridge for `Result<_, String>` callers (examples, the cloud app layer).
impl From<EngineError> for String {
    fn from(e: EngineError) -> Self {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_core_errors_with_source() {
        let e = EngineError::from(hefv_core::Error::Wire("bad magic".into()));
        assert!(e.to_string().contains("bad magic"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_is_informative() {
        let e = EngineError::MissingKey {
            tenant: 7,
            which: "relin",
        };
        assert_eq!(e.to_string(), "tenant 7 has no relin key registered");
        assert_eq!(
            EngineError::UnknownTenant(3).to_string(),
            "unknown tenant 3"
        );
    }

    #[test]
    fn codes_roundtrip_the_wire_byte() {
        for code in ERROR_CODES {
            assert_eq!(ErrorCode::from_u8(code.as_u8()), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(0xF0), None);
        // The discriminants are a contiguous append-only namespace.
        for (i, code) in ERROR_CODES.iter().enumerate() {
            assert_eq!(code.as_u8() as usize, i);
        }
    }

    #[test]
    fn retryability_splits_the_taxonomy() {
        for code in [
            ErrorCode::Internal,
            ErrorCode::Overload,
            ErrorCode::MemoryPressure,
            ErrorCode::ShuttingDown,
            ErrorCode::IntegrityFailure,
        ] {
            assert!(code.retryable(), "{code} must be retryable");
        }
        for code in [
            ErrorCode::DeadlineInfeasible,
            ErrorCode::NoiseBudgetExhausted,
            ErrorCode::Quarantined,
            ErrorCode::Validation,
            ErrorCode::UnknownTenant,
            ErrorCode::MissingKey,
            ErrorCode::Wire,
            ErrorCode::BatchUnsupported,
        ] {
            assert!(!code.retryable(), "{code} must be terminal");
        }
    }

    #[test]
    fn every_error_maps_to_a_code_and_hint() {
        assert_eq!(
            EngineError::Overload {
                retry_after_us: Some(1500)
            }
            .retry_after_us(),
            Some(1500)
        );
        assert_eq!(EngineError::QueueClosed.code(), ErrorCode::ShuttingDown);
        assert_eq!(
            EngineError::Quarantined {
                retry_after_us: 9000
            }
            .retry_after_us(),
            Some(9000)
        );
        assert_eq!(
            EngineError::DeadlineInfeasible {
                estimated_us: 100,
                deadline_us: 10
            }
            .retry_after_us(),
            None
        );
    }

    #[test]
    fn wire_reconstruction_preserves_code_and_hint() {
        let original = EngineError::Overload {
            retry_after_us: Some(250),
        };
        let proxied = EngineError::from_wire(
            original.code(),
            original.retry_after_us(),
            original.to_string(),
        );
        assert_eq!(proxied.code(), ErrorCode::Overload);
        assert_eq!(proxied.retry_after_us(), Some(250));
        assert!(proxied.retryable());
        assert!(proxied.to_string().contains("overloaded"));
    }
}
