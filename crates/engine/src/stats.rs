//! Engine telemetry: per-op latency, queue depth, noise-budget accounting.
//!
//! Everything is lock-free atomics so the hot path (workers) never
//! serializes on the stats; [`EngineStats::snapshot`] produces a consistent
//! read-mostly view for operators.

use std::sync::atomic::{AtomicU64, Ordering};

/// Op classes tracked separately (indexes into the per-op tables).
pub const OP_KINDS: [&str; 7] = [
    "add",
    "sub",
    "neg",
    "mul",
    "mul_plain",
    "rotate",
    "sum_slots",
];

/// Index of an op name in [`OP_KINDS`] (`None` for unknown names).
pub fn op_index(name: &str) -> Option<usize> {
    OP_KINDS.iter().position(|&k| k == name)
}

#[derive(Default)]
struct OpCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl OpCell {
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// Shared engine counters.
#[derive(Default)]
pub struct EngineStats {
    per_op: [OpCell; OP_KINDS.len()],
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    queue_depth: AtomicU64,
    queue_wait_ns: AtomicU64,
    exec_ns: AtomicU64,
    /// Simulated coprocessor µs ×1000 (stored fixed-point for atomics).
    sim_cost_mus: AtomicU64,
    /// Noise bits consumed ×1000.
    noise_bits_milli: AtomicU64,
    batches_formed: AtomicU64,
    batched_requests: AtomicU64,
    jobs_traditional: AtomicU64,
    jobs_hps: AtomicU64,
    /// Model-attributed NTT/transform µs ×1000 (fixed-point for atomics).
    ntt_mus: AtomicU64,
    /// Model-attributed Lift/Scale basis-conversion µs ×1000.
    basis_conv_mus: AtomicU64,
}

impl EngineStats {
    /// Records one executed op of class `name` taking `ns` nanoseconds.
    pub fn record_op(&self, name: &str, ns: u64) {
        if let Some(i) = op_index(name) {
            self.per_op[i].record(ns);
        }
    }

    /// A job entered the queue.
    pub fn on_submit(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A job left the queue for a worker after waiting `queue_ns`.
    pub fn on_dequeue(&self, queue_ns: u64) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.queue_wait_ns.fetch_add(queue_ns, Ordering::Relaxed);
    }

    /// A job finished successfully.
    pub fn on_complete(&self, exec_ns: u64, sim_cost_us: f64, noise_bits: f64) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        self.exec_ns.fetch_add(exec_ns, Ordering::Relaxed);
        self.sim_cost_mus
            .fetch_add((sim_cost_us * 1000.0) as u64, Ordering::Relaxed);
        self.noise_bits_milli
            .fetch_add((noise_bits.max(0.0) * 1000.0) as u64, Ordering::Relaxed);
    }

    /// Records where a completed job's kernel time went under the cycle
    /// model: transform (NTT + rearrange) vs `Lift`/`Scale` basis
    /// conversion. Aggregated alongside `sim_cost_us` so fleet stats show
    /// not just how much simulated time a shard burned but *which kernels*
    /// burned it.
    pub fn on_kernel_time(&self, ntt_us: f64, basis_conv_us: f64) {
        self.ntt_mus
            .fetch_add((ntt_us.max(0.0) * 1000.0) as u64, Ordering::Relaxed);
        self.basis_conv_mus
            .fetch_add((basis_conv_us.max(0.0) * 1000.0) as u64, Ordering::Relaxed);
    }

    /// A job failed (after validation, i.e. at execution time).
    pub fn on_fail(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A submitted job was refused by a closing queue: undo its
    /// submission so `submitted = completed + failed + queued` holds.
    pub fn on_reject(&self) {
        self.jobs_submitted.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A job was dispatched onto a concrete Lift/Scale datapath (for
    /// `Backend::Auto` engines this is the cost model's per-job choice).
    pub fn on_backend(&self, backend: hefv_core::eval::Backend) {
        match backend.resolve() {
            hefv_core::eval::Backend::Traditional => {
                self.jobs_traditional.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.jobs_hps.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A scalar batch of `size` requests was coalesced into one job.
    pub fn on_batch(&self, size: usize) {
        self.batches_formed.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
    }

    /// Jobs currently queued.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            per_op: OP_KINDS
                .iter()
                .zip(&self.per_op)
                .map(|(&name, c)| OpSnapshot {
                    name,
                    count: c.count.load(Ordering::Relaxed),
                    total_ns: c.total_ns.load(Ordering::Relaxed),
                    max_ns: c.max_ns.load(Ordering::Relaxed),
                })
                .collect(),
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_wait_ns: self.queue_wait_ns.load(Ordering::Relaxed),
            exec_ns: self.exec_ns.load(Ordering::Relaxed),
            sim_cost_us: self.sim_cost_mus.load(Ordering::Relaxed) as f64 / 1000.0,
            noise_bits_consumed: self.noise_bits_milli.load(Ordering::Relaxed) as f64 / 1000.0,
            batches_formed: self.batches_formed.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            jobs_traditional: self.jobs_traditional.load(Ordering::Relaxed),
            jobs_hps: self.jobs_hps.load(Ordering::Relaxed),
            ntt_us: self.ntt_mus.load(Ordering::Relaxed) as f64 / 1000.0,
            basis_conv_us: self.basis_conv_mus.load(Ordering::Relaxed) as f64 / 1000.0,
        }
    }
}

/// Frozen view of one op class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSnapshot {
    /// Op class name.
    pub name: &'static str,
    /// Executions.
    pub count: u64,
    /// Total execution time, ns.
    pub total_ns: u64,
    /// Worst single execution, ns.
    pub max_ns: u64,
}

impl OpSnapshot {
    /// Mean execution time in µs (0 when never executed).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1000.0
        }
    }
}

/// Frozen view of the whole engine.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Per-op latency table (one entry per [`OP_KINDS`] class).
    pub per_op: Vec<OpSnapshot>,
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs finished successfully.
    pub jobs_completed: u64,
    /// Jobs failed at execution time.
    pub jobs_failed: u64,
    /// Jobs waiting right now.
    pub queue_depth: u64,
    /// Cumulative queue wait, ns.
    pub queue_wait_ns: u64,
    /// Cumulative execution wall time, ns.
    pub exec_ns: u64,
    /// Cumulative simulated coprocessor cost, µs.
    pub sim_cost_us: f64,
    /// Cumulative estimated noise bits consumed.
    pub noise_bits_consumed: f64,
    /// Scalar batches coalesced.
    pub batches_formed: u64,
    /// Scalar requests inside those batches.
    pub batched_requests: u64,
    /// Jobs executed on the traditional-CRT Lift/Scale datapath.
    pub jobs_traditional: u64,
    /// Jobs executed on the HPS Lift/Scale datapath.
    pub jobs_hps: u64,
    /// Model-attributed transform (NTT + rearrange) time, µs — the share
    /// of `sim_cost_us` the cycle model charges to transforms.
    pub ntt_us: f64,
    /// Model-attributed `Lift`/`Scale` basis-conversion time, µs.
    pub basis_conv_us: f64,
}

impl StatsSnapshot {
    /// Folds another snapshot into this one (the shard router aggregates
    /// its shards' engines this way): counts and totals add, per-op maxima
    /// take the max.
    pub fn absorb(&mut self, other: &StatsSnapshot) {
        for (mine, theirs) in self.per_op.iter_mut().zip(&other.per_op) {
            debug_assert_eq!(mine.name, theirs.name, "OP_KINDS order is fixed");
            mine.count += theirs.count;
            mine.total_ns += theirs.total_ns;
            mine.max_ns = mine.max_ns.max(theirs.max_ns);
        }
        self.jobs_submitted += other.jobs_submitted;
        self.jobs_completed += other.jobs_completed;
        self.jobs_failed += other.jobs_failed;
        self.queue_depth += other.queue_depth;
        self.queue_wait_ns += other.queue_wait_ns;
        self.exec_ns += other.exec_ns;
        self.sim_cost_us += other.sim_cost_us;
        self.noise_bits_consumed += other.noise_bits_consumed;
        self.batches_formed += other.batches_formed;
        self.batched_requests += other.batched_requests;
        self.jobs_traditional += other.jobs_traditional;
        self.jobs_hps += other.jobs_hps;
        self.ntt_us += other.ntt_us;
        self.basis_conv_us += other.basis_conv_us;
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} completed, {} failed, {} queued",
            self.jobs_submitted, self.jobs_completed, self.jobs_failed, self.queue_depth
        )?;
        writeln!(
            f,
            "time: {:.1} ms executing, {:.1} ms queued, {:.1} µs simulated coprocessor",
            self.exec_ns as f64 / 1e6,
            self.queue_wait_ns as f64 / 1e6,
            self.sim_cost_us
        )?;
        writeln!(
            f,
            "noise: {:.1} bits consumed; batching: {} requests in {} batches",
            self.noise_bits_consumed, self.batched_requests, self.batches_formed
        )?;
        writeln!(
            f,
            "datapath: {} jobs HPS, {} jobs traditional",
            self.jobs_hps, self.jobs_traditional
        )?;
        writeln!(
            f,
            "kernels: {:.1} µs transforms (NTT), {:.1} µs basis conversion (Lift/Scale)",
            self.ntt_us, self.basis_conv_us
        )?;
        for op in self.per_op.iter().filter(|o| o.count > 0) {
            writeln!(
                f,
                "  {:<10} × {:<6} mean {:>9.1} µs  max {:>9.1} µs",
                op.name,
                op.count,
                op.mean_us(),
                op.max_ns as f64 / 1000.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let s = EngineStats::default();
        s.on_submit();
        s.on_submit();
        assert_eq!(s.queue_depth(), 2);
        s.on_dequeue(500);
        s.record_op("mul", 2000);
        s.record_op("mul", 4000);
        s.record_op("add", 100);
        s.on_complete(6000, 42.5, 3.25);
        s.on_kernel_time(30.25, 10.5);
        s.on_dequeue(500);
        s.on_fail();
        s.on_batch(64);

        let snap = s.snapshot();
        assert_eq!(snap.jobs_submitted, 2);
        assert_eq!(snap.jobs_completed, 1);
        assert_eq!(snap.jobs_failed, 1);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.queue_wait_ns, 1000);
        assert!((snap.sim_cost_us - 42.5).abs() < 1e-3);
        assert!((snap.noise_bits_consumed - 3.25).abs() < 1e-3);
        assert_eq!(snap.batched_requests, 64);
        assert!((snap.ntt_us - 30.25).abs() < 1e-3);
        assert!((snap.basis_conv_us - 10.5).abs() < 1e-3);
        let mut folded = snap.clone();
        folded.absorb(&snap);
        assert!((folded.ntt_us - 60.5).abs() < 1e-3);
        assert!((folded.basis_conv_us - 21.0).abs() < 1e-3);

        let mul = snap.per_op.iter().find(|o| o.name == "mul").unwrap();
        assert_eq!(mul.count, 2);
        assert_eq!(mul.max_ns, 4000);
        assert!((mul.mean_us() - 3.0).abs() < 1e-9);

        let text = snap.to_string();
        assert!(text.contains("2 submitted"));
        assert!(text.contains("mul"));
        assert!(!text.contains("rotate"), "unused ops omitted from display");
    }

    #[test]
    fn unknown_op_names_are_ignored() {
        let s = EngineStats::default();
        s.record_op("nonsense", 1);
        assert!(s.snapshot().per_op.iter().all(|o| o.count == 0));
    }
}
