//! Engine telemetry: per-op latency distributions, queue depth,
//! datapath/scheduler attribution, per-tenant and noise-budget
//! accounting.
//!
//! Everything on the recording side is lock-free atomics (the per-op
//! tables are [`Histogram`]s — a handful of relaxed fetch-adds per
//! sample) so the hot path never serializes on the stats; the per-tenant
//! table takes a read lock only to find an existing tenant's cell and a
//! write lock only the first time a tenant is seen.
//! [`EngineStats::snapshot`] produces a consistent read-mostly view for
//! operators, and [`StatsSnapshot::absorb`] folds shard snapshots into a
//! fleet view without losing quantile fidelity (histograms merge
//! exactly).

use crate::error::ErrorCode;
use crate::metrics::{Histogram, HistogramSnapshot};
use crate::sched::SchedLevel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Op classes tracked separately (indexes into the per-op tables).
pub const OP_KINDS: [&str; 7] = [
    "add",
    "sub",
    "neg",
    "mul",
    "mul_plain",
    "rotate",
    "sum_slots",
];

/// Index of an op name in [`OP_KINDS`] (`None` for unknown names).
pub fn op_index(name: &str) -> Option<usize> {
    OP_KINDS.iter().position(|&k| k == name)
}

/// Datapath labels, in the order of the per-backend tables.
pub const BACKEND_KINDS: [&str; 2] = ["traditional", "hps"];

fn backend_index(backend: hefv_core::eval::Backend) -> usize {
    match backend.resolve() {
        hefv_core::eval::Backend::Traditional => 0,
        _ => 1,
    }
}

/// Admission-refusal classes tracked by `hefv_shed_total{reason=}`, in
/// [`ErrorCode`] discriminant order over the shed subset of the
/// taxonomy (codes that admission control can refuse with).
pub const SHED_REASONS: [&str; 6] = [
    "overload",
    "deadline_infeasible",
    "memory_pressure",
    "noise_budget_exhausted",
    "quarantined",
    "shutting_down",
];

fn shed_index(code: ErrorCode) -> Option<usize> {
    match code {
        ErrorCode::Overload => Some(0),
        ErrorCode::DeadlineInfeasible => Some(1),
        ErrorCode::MemoryPressure => Some(2),
        ErrorCode::NoiseBudgetExhausted => Some(3),
        ErrorCode::Quarantined => Some(4),
        ErrorCode::ShuttingDown => Some(5),
        _ => None,
    }
}

/// Distinct tenants tracked individually; traffic beyond this folds into
/// one overflow cell (tenant id [`u64::MAX`]) so a tenant-id scan cannot
/// grow the table without bound.
pub const MAX_TENANT_CELLS: usize = 1024;

#[derive(Default)]
struct TenantCell {
    requests: AtomicU64,
    latency_ns: AtomicU64,
    /// Noise bits ×1000 (fixed-point for atomics).
    noise_bits_milli: AtomicU64,
}

/// Shared engine counters.
#[derive(Default)]
pub struct EngineStats {
    per_op: [Histogram; OP_KINDS.len()],
    exec_by_backend: [Histogram; BACKEND_KINDS.len()],
    queue_wait_by_level: [Histogram; SchedLevel::ALL.len()],
    tenants: RwLock<HashMap<u64, Arc<TenantCell>>>,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_slow: AtomicU64,
    queue_depth: AtomicU64,
    /// Simulated coprocessor µs ×1000 (stored fixed-point for atomics).
    sim_cost_mus: AtomicU64,
    /// Noise bits consumed ×1000.
    noise_bits_milli: AtomicU64,
    batches_formed: AtomicU64,
    batched_requests: AtomicU64,
    jobs_traditional: AtomicU64,
    jobs_hps: AtomicU64,
    /// Model-attributed NTT/transform µs ×1000 (fixed-point for atomics).
    ntt_mus: AtomicU64,
    /// Model-attributed Lift/Scale basis-conversion µs ×1000.
    basis_conv_mus: AtomicU64,
    /// Scratch-arena occupancy gauges, summed over workers (each worker
    /// reports two's-complement deltas; see [`EngineStats::on_arena`]).
    arena_pooled_buffers: AtomicU64,
    arena_pooled_bytes: AtomicU64,
    /// Arena returns dropped by a pool high-water mark (monotonic).
    arena_dropped: AtomicU64,
    /// Admission refusals by shed class (indexes match [`SHED_REASONS`]).
    shed: [AtomicU64; SHED_REASONS.len()],
    /// (tenant, op-class) panic signatures quarantined right now (gauge).
    quarantine_active: AtomicU64,
}

impl EngineStats {
    /// Records one executed op of class `name` taking `ns` nanoseconds.
    pub fn record_op(&self, name: &str, ns: u64) {
        if let Some(i) = op_index(name) {
            self.per_op[i].record(ns);
        }
    }

    /// A job entered the queue.
    pub fn on_submit(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A job left the queue for a worker after waiting `queue_ns`,
    /// released by scheduler level `level`.
    pub fn on_dequeue(&self, queue_ns: u64, level: SchedLevel) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.queue_wait_by_level[level.index()].record(queue_ns);
    }

    /// A job finished successfully on datapath `backend` (resolved — for
    /// `Backend::Auto` engines this is the cost model's per-job choice).
    pub fn on_complete(
        &self,
        exec_ns: u64,
        sim_cost_us: f64,
        noise_bits: f64,
        backend: hefv_core::eval::Backend,
    ) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        self.exec_by_backend[backend_index(backend)].record(exec_ns);
        self.sim_cost_mus
            .fetch_add((sim_cost_us * 1000.0) as u64, Ordering::Relaxed);
        self.noise_bits_milli
            .fetch_add((noise_bits.max(0.0) * 1000.0) as u64, Ordering::Relaxed);
    }

    /// Records where a completed job's kernel time went under the cycle
    /// model: transform (NTT + rearrange) vs `Lift`/`Scale` basis
    /// conversion. Aggregated alongside `sim_cost_us` so fleet stats show
    /// not just how much simulated time a shard burned but *which kernels*
    /// burned it.
    pub fn on_kernel_time(&self, ntt_us: f64, basis_conv_us: f64) {
        self.ntt_mus
            .fetch_add((ntt_us.max(0.0) * 1000.0) as u64, Ordering::Relaxed);
        self.basis_conv_mus
            .fetch_add((basis_conv_us.max(0.0) * 1000.0) as u64, Ordering::Relaxed);
    }

    /// Folds one worker arena's occupancy change into the engine-wide
    /// gauges. Each worker remembers the [`hefv_core::scratch::ArenaStats`]
    /// it last reported and passes `(previous, current)`; the gauge adds
    /// the two's-complement difference, so the engine totals stay the sum
    /// of every worker's *current* occupancy no matter how reports
    /// interleave (a shrinking pool wraps negative and the sum still
    /// comes out right).
    pub fn on_arena(
        &self,
        prev: &hefv_core::scratch::ArenaStats,
        now: &hefv_core::scratch::ArenaStats,
    ) {
        self.arena_pooled_buffers.fetch_add(
            now.pooled_buffers.wrapping_sub(prev.pooled_buffers),
            Ordering::Relaxed,
        );
        self.arena_pooled_bytes.fetch_add(
            now.pooled_bytes.wrapping_sub(prev.pooled_bytes),
            Ordering::Relaxed,
        );
        self.arena_dropped
            .fetch_add(now.dropped.wrapping_sub(prev.dropped), Ordering::Relaxed);
    }

    /// A job failed (after validation, i.e. at execution time).
    pub fn on_fail(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A submitted job was refused by a closing queue: undo its
    /// submission so `submitted = completed + failed + queued` holds,
    /// and count the refusal so it stays visible in telemetry.
    pub fn on_reject(&self) {
        self.jobs_submitted.fetch_sub(1, Ordering::Relaxed);
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission was refused *before* admission (queue at capacity):
    /// nothing to undo, just count it. Retries count each time —
    /// `jobs_rejected` measures refused attempts, not distinct jobs.
    pub fn on_refused(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission was shed at admission with refusal class `code`.
    /// Codes outside the shed taxonomy (validation errors, missing
    /// keys, …) are ignored: those are caller mistakes, not load.
    pub fn on_shed(&self, code: ErrorCode) {
        if let Some(i) = shed_index(code) {
            self.shed[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A (tenant, op-class) panic signature entered quarantine.
    pub fn on_quarantine_enter(&self) {
        self.quarantine_active.fetch_add(1, Ordering::Relaxed);
    }

    /// A quarantined signature's TTL lapsed.
    pub fn on_quarantine_exit(&self) {
        self.quarantine_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Bytes currently pooled across the worker arenas — the admission
    /// memory gate reads this directly so it never pays for a full
    /// [`EngineStats::snapshot`] on the submit path.
    pub fn arena_pooled_bytes_now(&self) -> u64 {
        self.arena_pooled_bytes.load(Ordering::Relaxed)
    }

    /// A completed job crossed the slow-job threshold (its span was
    /// promoted to the flight recorder's slow ring).
    pub fn on_slow(&self) {
        self.jobs_slow.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was dispatched onto a concrete Lift/Scale datapath (for
    /// `Backend::Auto` engines this is the cost model's per-job choice).
    pub fn on_backend(&self, backend: hefv_core::eval::Backend) {
        match backend.resolve() {
            hefv_core::eval::Backend::Traditional => {
                self.jobs_traditional.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.jobs_hps.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// A scalar batch of `size` requests was coalesced into one job.
    pub fn on_batch(&self, size: usize) {
        self.batches_formed.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
    }

    /// Accounts one completed request to its tenant: end-to-end latency
    /// (queue + exec) and estimated noise bits consumed.
    pub fn on_tenant(&self, tenant: u64, latency_ns: u64, noise_bits: f64) {
        let cell = self.tenant_cell(tenant);
        cell.requests.fetch_add(1, Ordering::Relaxed);
        cell.latency_ns.fetch_add(latency_ns, Ordering::Relaxed);
        cell.noise_bits_milli
            .fetch_add((noise_bits.max(0.0) * 1000.0) as u64, Ordering::Relaxed);
    }

    fn tenant_cell(&self, tenant: u64) -> Arc<TenantCell> {
        if let Some(cell) = self.tenants.read().expect("tenant table lock").get(&tenant) {
            return Arc::clone(cell);
        }
        let mut table = self.tenants.write().expect("tenant table lock");
        let key = if table.len() >= MAX_TENANT_CELLS && !table.contains_key(&tenant) {
            u64::MAX // overflow cell
        } else {
            tenant
        };
        Arc::clone(table.entry(key).or_default())
    }

    /// Jobs currently queued.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let per_op: Vec<OpSnapshot> = OP_KINDS
            .iter()
            .zip(&self.per_op)
            .map(|(&name, h)| {
                let latency = h.snapshot();
                OpSnapshot {
                    name,
                    count: latency.count,
                    total_ns: latency.sum,
                    max_ns: latency.max,
                    latency,
                }
            })
            .collect();
        let exec_by_backend: Vec<(&'static str, HistogramSnapshot)> = BACKEND_KINDS
            .iter()
            .zip(&self.exec_by_backend)
            .map(|(&name, h)| (name, h.snapshot()))
            .collect();
        let queue_wait_by_level: Vec<(&'static str, HistogramSnapshot)> = SchedLevel::ALL
            .iter()
            .zip(&self.queue_wait_by_level)
            .map(|(level, h)| (level.as_str(), h.snapshot()))
            .collect();
        let mut per_tenant: Vec<TenantSnapshot> = self
            .tenants
            .read()
            .expect("tenant table lock")
            .iter()
            .map(|(&tenant, cell)| TenantSnapshot {
                tenant,
                requests: cell.requests.load(Ordering::Relaxed),
                latency_ns: cell.latency_ns.load(Ordering::Relaxed),
                noise_bits: cell.noise_bits_milli.load(Ordering::Relaxed) as f64 / 1000.0,
            })
            .collect();
        per_tenant.sort_by_key(|t| t.tenant);
        StatsSnapshot {
            // Totals derive from the histograms' exact sums, so the
            // aggregate and distribution views can never disagree.
            queue_wait_ns: queue_wait_by_level.iter().map(|(_, h)| h.sum).sum(),
            exec_ns: exec_by_backend.iter().map(|(_, h)| h.sum).sum(),
            per_op,
            exec_by_backend,
            queue_wait_by_level,
            per_tenant,
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.jobs_failed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_slow: self.jobs_slow.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            sim_cost_us: self.sim_cost_mus.load(Ordering::Relaxed) as f64 / 1000.0,
            noise_bits_consumed: self.noise_bits_milli.load(Ordering::Relaxed) as f64 / 1000.0,
            batches_formed: self.batches_formed.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            jobs_traditional: self.jobs_traditional.load(Ordering::Relaxed),
            jobs_hps: self.jobs_hps.load(Ordering::Relaxed),
            ntt_us: self.ntt_mus.load(Ordering::Relaxed) as f64 / 1000.0,
            basis_conv_us: self.basis_conv_mus.load(Ordering::Relaxed) as f64 / 1000.0,
            arena_pooled_buffers: self.arena_pooled_buffers.load(Ordering::Relaxed),
            arena_pooled_bytes: self.arena_pooled_bytes.load(Ordering::Relaxed),
            arena_dropped: self.arena_dropped.load(Ordering::Relaxed),
            shed_by_reason: SHED_REASONS
                .iter()
                .zip(&self.shed)
                .map(|(&name, c)| (name, c.load(Ordering::Relaxed)))
                .collect(),
            quarantine_active: self.quarantine_active.load(Ordering::Relaxed),
        }
    }
}

/// Frozen view of one op class.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSnapshot {
    /// Op class name.
    pub name: &'static str,
    /// Executions.
    pub count: u64,
    /// Total execution time, ns.
    pub total_ns: u64,
    /// Worst single execution, ns (exact).
    pub max_ns: u64,
    /// Full latency distribution (p50/p95/p99 via
    /// [`HistogramSnapshot::quantile`]).
    pub latency: HistogramSnapshot,
}

impl OpSnapshot {
    /// Mean execution time in µs (0 when never executed).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1000.0
        }
    }
}

/// Frozen per-tenant accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant id ([`u64::MAX`] is the overflow cell past
    /// [`MAX_TENANT_CELLS`] distinct tenants).
    pub tenant: u64,
    /// Completed requests.
    pub requests: u64,
    /// Cumulative queue + exec latency, ns.
    pub latency_ns: u64,
    /// Estimated noise bits consumed.
    pub noise_bits: f64,
}

/// How a [`StatsSnapshot`] field folds under [`StatsSnapshot::absorb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fold {
    /// Counts and totals: shard values add.
    Add,
    /// Maxima: the fleet value is the max over shards.
    Max,
}

/// Frozen view of the whole engine.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Per-op latency table (one entry per [`OP_KINDS`] class).
    pub per_op: Vec<OpSnapshot>,
    /// Job execution latency per Lift/Scale datapath (one entry per
    /// [`BACKEND_KINDS`] label).
    pub exec_by_backend: Vec<(&'static str, HistogramSnapshot)>,
    /// Queue wait per scheduler level that released the job (one entry
    /// per [`SchedLevel`], labelled `edf` / `weighted` / `sjf`).
    pub queue_wait_by_level: Vec<(&'static str, HistogramSnapshot)>,
    /// Per-tenant accounting, sorted by tenant id.
    pub per_tenant: Vec<TenantSnapshot>,
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs finished successfully.
    pub jobs_completed: u64,
    /// Jobs failed at execution time.
    pub jobs_failed: u64,
    /// Submissions refused (queue at capacity or closed); retries count
    /// each attempt.
    pub jobs_rejected: u64,
    /// Completed jobs over the slow-job threshold.
    pub jobs_slow: u64,
    /// Jobs waiting right now.
    pub queue_depth: u64,
    /// Cumulative queue wait, ns (sum over `queue_wait_by_level`).
    pub queue_wait_ns: u64,
    /// Cumulative execution wall time, ns (sum over `exec_by_backend`).
    pub exec_ns: u64,
    /// Cumulative simulated coprocessor cost, µs.
    pub sim_cost_us: f64,
    /// Cumulative estimated noise bits consumed.
    pub noise_bits_consumed: f64,
    /// Scalar batches coalesced.
    pub batches_formed: u64,
    /// Scalar requests inside those batches.
    pub batched_requests: u64,
    /// Jobs executed on the traditional-CRT Lift/Scale datapath.
    pub jobs_traditional: u64,
    /// Jobs executed on the HPS Lift/Scale datapath.
    pub jobs_hps: u64,
    /// Model-attributed transform (NTT + rearrange) time, µs — the share
    /// of `sim_cost_us` the cycle model charges to transforms.
    pub ntt_us: f64,
    /// Model-attributed `Lift`/`Scale` basis-conversion time, µs.
    pub basis_conv_us: f64,
    /// Scratch buffers currently pooled across worker arenas (gauge).
    pub arena_pooled_buffers: u64,
    /// Bytes of backing capacity pooled across worker arenas (gauge).
    pub arena_pooled_bytes: u64,
    /// Arena returns dropped by a pool high-water mark (monotonic).
    pub arena_dropped: u64,
    /// Admission refusals by shed class (one entry per
    /// [`SHED_REASONS`], in that order).
    pub shed_by_reason: Vec<(&'static str, u64)>,
    /// (tenant, op-class) panic signatures quarantined right now
    /// (gauge; a fleet view sums the shards').
    pub quarantine_active: u64,
}

impl StatsSnapshot {
    /// Folds another snapshot into this one (the shard router aggregates
    /// its shards' engines this way): counts, totals and histogram
    /// buckets add, maxima take the max, tenants merge by id. Absorbing
    /// N shard snapshots produces exactly the snapshot of one engine
    /// that had recorded the union of their samples.
    pub fn absorb(&mut self, other: &StatsSnapshot) {
        // Exhaustive destructuring (no `..`): adding a StatsSnapshot
        // field without deciding how it folds is a compile error here.
        let StatsSnapshot {
            per_op,
            exec_by_backend,
            queue_wait_by_level,
            per_tenant,
            jobs_submitted,
            jobs_completed,
            jobs_failed,
            jobs_rejected,
            jobs_slow,
            queue_depth,
            queue_wait_ns,
            exec_ns,
            sim_cost_us,
            noise_bits_consumed,
            batches_formed,
            batched_requests,
            jobs_traditional,
            jobs_hps,
            ntt_us,
            basis_conv_us,
            arena_pooled_buffers,
            arena_pooled_bytes,
            arena_dropped,
            shed_by_reason,
            quarantine_active,
        } = other;
        for (mine, theirs) in self.shed_by_reason.iter_mut().zip(shed_by_reason) {
            debug_assert_eq!(mine.0, theirs.0, "SHED_REASONS order is fixed");
            mine.1 += theirs.1;
        }
        self.quarantine_active += quarantine_active;
        for (mine, theirs) in self.per_op.iter_mut().zip(per_op) {
            debug_assert_eq!(mine.name, theirs.name, "OP_KINDS order is fixed");
            mine.count += theirs.count;
            mine.total_ns += theirs.total_ns;
            mine.max_ns = mine.max_ns.max(theirs.max_ns);
            mine.latency.merge(&theirs.latency);
        }
        for (mine, theirs) in self.exec_by_backend.iter_mut().zip(exec_by_backend) {
            debug_assert_eq!(mine.0, theirs.0, "BACKEND_KINDS order is fixed");
            mine.1.merge(&theirs.1);
        }
        for (mine, theirs) in self.queue_wait_by_level.iter_mut().zip(queue_wait_by_level) {
            debug_assert_eq!(mine.0, theirs.0, "SchedLevel order is fixed");
            mine.1.merge(&theirs.1);
        }
        for t in per_tenant {
            match self
                .per_tenant
                .binary_search_by_key(&t.tenant, |x| x.tenant)
            {
                Ok(i) => {
                    self.per_tenant[i].requests += t.requests;
                    self.per_tenant[i].latency_ns += t.latency_ns;
                    self.per_tenant[i].noise_bits += t.noise_bits;
                }
                Err(i) => self.per_tenant.insert(i, t.clone()),
            }
        }
        self.jobs_submitted += jobs_submitted;
        self.jobs_completed += jobs_completed;
        self.jobs_failed += jobs_failed;
        self.jobs_rejected += jobs_rejected;
        self.jobs_slow += jobs_slow;
        self.queue_depth += queue_depth;
        self.queue_wait_ns += queue_wait_ns;
        self.exec_ns += exec_ns;
        self.sim_cost_us += sim_cost_us;
        self.noise_bits_consumed += noise_bits_consumed;
        self.batches_formed += batches_formed;
        self.batched_requests += batched_requests;
        self.jobs_traditional += jobs_traditional;
        self.jobs_hps += jobs_hps;
        self.ntt_us += ntt_us;
        self.basis_conv_us += basis_conv_us;
        self.arena_pooled_buffers += arena_pooled_buffers;
        self.arena_pooled_bytes += arena_pooled_bytes;
        self.arena_dropped += arena_dropped;
    }

    /// Every scalar the snapshot carries, flattened to `(name, value,
    /// fold-kind)`. The exhaustive destructuring (no `..`) makes "added
    /// a counter, forgot to audit it" a compile error, and the stats
    /// tests drive every recorder and assert each entry both shows up
    /// here and folds correctly under [`StatsSnapshot::absorb`] — the
    /// add-a-counter-forget-absorb bug class dies in CI.
    pub fn audit_fields(&self) -> Vec<(String, f64, Fold)> {
        let StatsSnapshot {
            per_op,
            exec_by_backend,
            queue_wait_by_level,
            per_tenant,
            jobs_submitted,
            jobs_completed,
            jobs_failed,
            jobs_rejected,
            jobs_slow,
            queue_depth,
            queue_wait_ns,
            exec_ns,
            sim_cost_us,
            noise_bits_consumed,
            batches_formed,
            batched_requests,
            jobs_traditional,
            jobs_hps,
            ntt_us,
            basis_conv_us,
            arena_pooled_buffers,
            arena_pooled_bytes,
            arena_dropped,
            shed_by_reason,
            quarantine_active,
        } = self;
        let mut out: Vec<(String, f64, Fold)> = Vec::new();
        for (name, v) in shed_by_reason {
            out.push((format!("shed_by_reason.{name}"), *v as f64, Fold::Add));
        }
        for op in per_op {
            out.push((
                format!("per_op.{}.count", op.name),
                op.count as f64,
                Fold::Add,
            ));
            out.push((
                format!("per_op.{}.total_ns", op.name),
                op.total_ns as f64,
                Fold::Add,
            ));
            out.push((
                format!("per_op.{}.max_ns", op.name),
                op.max_ns as f64,
                Fold::Max,
            ));
        }
        for (name, h) in exec_by_backend {
            out.push((
                format!("exec_by_backend.{name}.count"),
                h.count as f64,
                Fold::Add,
            ));
            out.push((
                format!("exec_by_backend.{name}.sum"),
                h.sum as f64,
                Fold::Add,
            ));
            out.push((
                format!("exec_by_backend.{name}.max"),
                h.max as f64,
                Fold::Max,
            ));
        }
        for (name, h) in queue_wait_by_level {
            out.push((
                format!("queue_wait_by_level.{name}.count"),
                h.count as f64,
                Fold::Add,
            ));
            out.push((
                format!("queue_wait_by_level.{name}.sum"),
                h.sum as f64,
                Fold::Add,
            ));
            out.push((
                format!("queue_wait_by_level.{name}.max"),
                h.max as f64,
                Fold::Max,
            ));
        }
        out.push((
            "per_tenant.requests".into(),
            per_tenant.iter().map(|t| t.requests as f64).sum(),
            Fold::Add,
        ));
        out.push((
            "per_tenant.latency_ns".into(),
            per_tenant.iter().map(|t| t.latency_ns as f64).sum(),
            Fold::Add,
        ));
        out.push((
            "per_tenant.noise_bits".into(),
            per_tenant.iter().map(|t| t.noise_bits).sum(),
            Fold::Add,
        ));
        for (name, v, fold) in [
            ("jobs_submitted", *jobs_submitted as f64, Fold::Add),
            ("jobs_completed", *jobs_completed as f64, Fold::Add),
            ("jobs_failed", *jobs_failed as f64, Fold::Add),
            ("jobs_rejected", *jobs_rejected as f64, Fold::Add),
            ("jobs_slow", *jobs_slow as f64, Fold::Add),
            ("queue_depth", *queue_depth as f64, Fold::Add),
            ("queue_wait_ns", *queue_wait_ns as f64, Fold::Add),
            ("exec_ns", *exec_ns as f64, Fold::Add),
            ("sim_cost_us", *sim_cost_us, Fold::Add),
            ("noise_bits_consumed", *noise_bits_consumed, Fold::Add),
            ("batches_formed", *batches_formed as f64, Fold::Add),
            ("batched_requests", *batched_requests as f64, Fold::Add),
            ("jobs_traditional", *jobs_traditional as f64, Fold::Add),
            ("jobs_hps", *jobs_hps as f64, Fold::Add),
            ("ntt_us", *ntt_us, Fold::Add),
            ("basis_conv_us", *basis_conv_us, Fold::Add),
            (
                "arena_pooled_buffers",
                *arena_pooled_buffers as f64,
                Fold::Add,
            ),
            ("arena_pooled_bytes", *arena_pooled_bytes as f64, Fold::Add),
            ("arena_dropped", *arena_dropped as f64, Fold::Add),
            ("quarantine_active", *quarantine_active as f64, Fold::Add),
        ] {
            out.push((name.into(), v, fold));
        }
        out
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "jobs: {} submitted, {} completed, {} failed, {} rejected, {} queued, {} slow",
            self.jobs_submitted,
            self.jobs_completed,
            self.jobs_failed,
            self.jobs_rejected,
            self.queue_depth,
            self.jobs_slow
        )?;
        writeln!(
            f,
            "time: {:.1} ms executing, {:.1} ms queued, {:.1} µs simulated coprocessor",
            self.exec_ns as f64 / 1e6,
            self.queue_wait_ns as f64 / 1e6,
            self.sim_cost_us
        )?;
        writeln!(
            f,
            "noise: {:.1} bits consumed; batching: {} requests in {} batches",
            self.noise_bits_consumed, self.batched_requests, self.batches_formed
        )?;
        writeln!(
            f,
            "datapath: {} jobs HPS, {} jobs traditional",
            self.jobs_hps, self.jobs_traditional
        )?;
        writeln!(
            f,
            "kernels: {:.1} µs transforms (NTT), {:.1} µs basis conversion (Lift/Scale)",
            self.ntt_us, self.basis_conv_us
        )?;
        for op in self.per_op.iter().filter(|o| o.count > 0) {
            writeln!(
                f,
                "  {:<10} × {:<6} mean {:>9.1} µs  p50 {:>9.1} µs  p99 {:>9.1} µs  max {:>9.1} µs",
                op.name,
                op.count,
                op.mean_us(),
                op.latency.quantile(0.5) as f64 / 1000.0,
                op.latency.quantile(0.99) as f64 / 1000.0,
                op.max_ns as f64 / 1000.0
            )?;
        }
        for t in self.per_tenant.iter().filter(|t| t.requests > 0) {
            writeln!(
                f,
                "  tenant {:<12} × {:<6} mean {:>9.1} µs  {:>8.1} noise bits",
                t.tenant,
                t.requests,
                t.latency_ns as f64 / t.requests as f64 / 1000.0,
                t.noise_bits
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_core::eval::Backend;

    #[test]
    fn records_and_snapshots() {
        let s = EngineStats::default();
        s.on_submit();
        s.on_submit();
        assert_eq!(s.queue_depth(), 2);
        s.on_dequeue(500, SchedLevel::Shortest);
        s.record_op("mul", 2000);
        s.record_op("mul", 4000);
        s.record_op("add", 100);
        s.on_complete(6000, 42.5, 3.25, Backend::Auto);
        s.on_kernel_time(30.25, 10.5);
        s.on_dequeue(500, SchedLevel::Deadline);
        s.on_fail();
        s.on_batch(64);

        let snap = s.snapshot();
        assert_eq!(snap.jobs_submitted, 2);
        assert_eq!(snap.jobs_completed, 1);
        assert_eq!(snap.jobs_failed, 1);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.queue_wait_ns, 1000);
        assert_eq!(snap.exec_ns, 6000);
        assert!((snap.sim_cost_us - 42.5).abs() < 1e-3);
        assert!((snap.noise_bits_consumed - 3.25).abs() < 1e-3);
        assert_eq!(snap.batched_requests, 64);
        assert!((snap.ntt_us - 30.25).abs() < 1e-3);
        assert!((snap.basis_conv_us - 10.5).abs() < 1e-3);
        let mut folded = snap.clone();
        folded.absorb(&snap);
        assert!((folded.ntt_us - 60.5).abs() < 1e-3);
        assert!((folded.basis_conv_us - 21.0).abs() < 1e-3);

        let mul = snap.per_op.iter().find(|o| o.name == "mul").unwrap();
        assert_eq!(mul.count, 2);
        assert_eq!(mul.max_ns, 4000);
        assert!((mul.mean_us() - 3.0).abs() < 1e-9);
        assert_eq!(mul.latency.quantile(1.0), 4000);

        // Backend::Auto resolves to HPS; its exec histogram got the job.
        let hps = &snap
            .exec_by_backend
            .iter()
            .find(|(n, _)| *n == "hps")
            .unwrap()
            .1;
        assert_eq!(hps.count, 1);
        assert_eq!(hps.max, 6000);
        let sjf = &snap
            .queue_wait_by_level
            .iter()
            .find(|(n, _)| *n == "sjf")
            .unwrap()
            .1;
        assert_eq!(sjf.sum, 500);

        let text = snap.to_string();
        assert!(text.contains("2 submitted"));
        assert!(text.contains("mul"));
        assert!(!text.contains("rotate"), "unused ops omitted from display");
    }

    #[test]
    fn unknown_op_names_are_ignored() {
        let s = EngineStats::default();
        s.record_op("nonsense", 1);
        assert!(s.snapshot().per_op.iter().all(|o| o.count == 0));
    }

    #[test]
    fn rejects_are_counted_not_just_undone() {
        let s = EngineStats::default();
        s.on_submit();
        s.on_reject(); // closing queue: undo + count
        s.on_refused(); // at capacity: count only
        let snap = s.snapshot();
        assert_eq!(snap.jobs_submitted, 0);
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.jobs_rejected, 2);
    }

    #[test]
    fn arena_gauges_follow_worker_deltas() {
        use hefv_core::scratch::ArenaStats;
        let s = EngineStats::default();
        let grown = ArenaStats {
            pooled_buffers: 3,
            pooled_bytes: 300,
            dropped: 0,
        };
        let shrunk = ArenaStats {
            pooled_buffers: 1,
            pooled_bytes: 100,
            dropped: 2,
        };
        s.on_arena(&ArenaStats::default(), &grown);
        // Shrinking reports wrap negative and the gauge still lands on
        // the worker's current occupancy.
        s.on_arena(&grown, &shrunk);
        let snap = s.snapshot();
        assert_eq!(snap.arena_pooled_buffers, 1);
        assert_eq!(snap.arena_pooled_bytes, 100);
        assert_eq!(snap.arena_dropped, 2);
    }

    #[test]
    fn shed_counters_track_only_the_shed_taxonomy() {
        let s = EngineStats::default();
        // Caller mistakes are not load: no shed cell moves.
        s.on_shed(ErrorCode::Validation);
        s.on_shed(ErrorCode::Internal);
        assert!(s.snapshot().shed_by_reason.iter().all(|&(_, v)| v == 0));
        s.on_shed(ErrorCode::Overload);
        s.on_shed(ErrorCode::Overload);
        s.on_shed(ErrorCode::DeadlineInfeasible);
        let snap = s.snapshot();
        assert_eq!(snap.shed_by_reason[0], ("overload", 2));
        assert_eq!(snap.shed_by_reason[1], ("deadline_infeasible", 1));
        // The memory gate's fast-path read matches the snapshot gauge.
        assert_eq!(s.arena_pooled_bytes_now(), snap.arena_pooled_bytes);
    }

    #[test]
    fn tenant_table_caps_and_overflows() {
        let s = EngineStats::default();
        for t in 0..(MAX_TENANT_CELLS as u64 + 10) {
            s.on_tenant(t, 100, 0.5);
        }
        s.on_tenant(3, 100, 0.5); // existing tenant still accumulates
        let snap = s.snapshot();
        assert_eq!(snap.per_tenant.len(), MAX_TENANT_CELLS + 1);
        let overflow = snap.per_tenant.last().unwrap();
        assert_eq!(overflow.tenant, u64::MAX);
        assert_eq!(overflow.requests, 10);
        let t3 = snap.per_tenant.iter().find(|t| t.tenant == 3).unwrap();
        assert_eq!(t3.requests, 2);
    }

    /// Drives EVERY recorder, then checks that every audited field is
    /// nonzero in the snapshot (so each `EngineStats` counter provably
    /// reaches `snapshot()`) and that self-absorption doubles the
    /// additive fields and holds the maxima (so each provably reaches
    /// `absorb()`). Adding a field to `StatsSnapshot` without updating
    /// `absorb`/`audit_fields` is a compile error; adding a recorder
    /// without driving it here fails the nonzero sweep.
    #[test]
    fn every_field_flows_through_snapshot_and_absorb() {
        let s = EngineStats::default();
        for _ in 0..5 {
            s.on_submit();
        }
        for op in OP_KINDS {
            s.record_op(op, 1000);
        }
        s.on_dequeue(500, SchedLevel::Deadline);
        s.on_dequeue(600, SchedLevel::Weighted);
        s.on_dequeue(700, SchedLevel::Shortest);
        s.on_complete(900, 1.5, 0.5, Backend::Traditional);
        s.on_complete(1100, 2.5, 0.75, Backend::Auto);
        s.on_backend(Backend::Traditional);
        s.on_backend(Backend::Auto);
        s.on_kernel_time(3.0, 4.0);
        s.on_fail();
        s.on_reject(); // submitted 5 → 4, depth 2 → 1
        s.on_refused();
        s.on_slow();
        s.on_batch(3);
        s.on_tenant(42, 2000, 1.25);
        for code in [
            ErrorCode::Overload,
            ErrorCode::DeadlineInfeasible,
            ErrorCode::MemoryPressure,
            ErrorCode::NoiseBudgetExhausted,
            ErrorCode::Quarantined,
            ErrorCode::ShuttingDown,
        ] {
            s.on_shed(code);
        }
        s.on_quarantine_enter();
        s.on_quarantine_enter();
        s.on_quarantine_exit();
        s.on_arena(
            &hefv_core::scratch::ArenaStats::default(),
            &hefv_core::scratch::ArenaStats {
                pooled_buffers: 2,
                pooled_bytes: 1024,
                dropped: 1,
            },
        );

        let snap = s.snapshot();
        let before = snap.audit_fields();
        for (name, value, _) in &before {
            assert!(*value > 0.0, "field {name} never reached snapshot()");
        }

        let mut folded = snap.clone();
        folded.absorb(&snap);
        let after = folded.audit_fields();
        assert_eq!(before.len(), after.len());
        for ((name, v0, fold), (name2, v1, _)) in before.iter().zip(&after) {
            assert_eq!(name, name2);
            match fold {
                Fold::Add => assert!(
                    (v1 - 2.0 * v0).abs() < 1e-6,
                    "additive field {name} did not double under absorb: {v0} -> {v1}"
                ),
                Fold::Max => assert!(
                    (v1 - v0).abs() < 1e-9,
                    "max field {name} changed under self-absorb: {v0} -> {v1}"
                ),
            }
        }
    }
}
