//! The cluster layer: a [`ShardRouter`] owning several [`Engine`] shards.
//!
//! The paper fixes one datapath per coprocessor; a serving fleet does not
//! have to. The router partitions tenants across engine shards — one per
//! parameter set, NUMA node or datapath policy — and routes every request
//! to its tenant's shard:
//!
//! * **Placement** is consistent hashing over a ring of virtual nodes
//!   (deterministic splitmix64 points, no wall-clock or process state), so
//!   adding or removing a shard remaps only the tenants that land on the
//!   new/removed shard's arcs; everyone else stays put. Operators can
//!   override the hash with an explicit [`ShardRouter::pin_tenant`].
//! * **Datapath dispatch** rides on [`Backend::Auto`](hefv_core::eval::Backend::Auto): a shard configured
//!   with it prices every job on both the Traditional and HPS cost models
//!   and executes on the cheaper one (see [`crate::sched::CostEstimator`]),
//!   so a mixed workload beats either fixed-datapath fleet on total
//!   estimated cost.
//! * **Remote traffic** enters through [`ShardRouter::dispatch_frame`]:
//!   `HEVQ` request frames carry an optional shard address
//!   ([`crate::wire::peek_shard`]) and are otherwise placed by tenant
//!   hash; responses come back stamped with the shard that produced them.
//!   This is the seam a TCP/async front-end plugs into — it never needs
//!   to decode a payload to route it.
//!
//! Job ids are scoped per shard; the `(shard, job_id)` pair is globally
//! unique.
//!
//! # Example
//!
//! ```
//! use hefv_core::prelude::*;
//! use hefv_engine::prelude::*;
//! use hefv_engine::router::{ShardRouter, ShardSpec};
//! use hefv_core::eval::Backend;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
//! let router = ShardRouter::new();
//! // Two shards over one parameter set; Auto picks the cheaper datapath
//! // per job from the paper's cost model.
//! for name in ["shard-a", "shard-b"] {
//!     router
//!         .add_shard(ShardSpec {
//!             name: name.into(),
//!             ctx: Arc::clone(&ctx),
//!             config: EngineConfig {
//!                 workers: 1,
//!                 backend: Backend::Auto,
//!                 ..EngineConfig::default()
//!             },
//!         })
//!         .unwrap();
//! }
//! let mut rng = StdRng::seed_from_u64(9);
//! let (sk, pk, rlk) = keygen(&ctx, &mut rng);
//! let tenant = 42;
//! router.register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk)).unwrap();
//!
//! let t = ctx.params().t;
//! let n = ctx.params().n;
//! let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
//! let req = EvalRequest::binary(tenant, EvalOp::Mul, enc(2, &mut rng), enc(3, &mut rng));
//! let resp = router.call(req).unwrap();
//! assert_eq!(decrypt(&ctx, &sk, &resp.result).coeffs()[0], 6);
//! assert_eq!(router.stats().total.jobs_completed, 1);
//! router.shutdown();
//! ```

use crate::batch::{ScalarRequest, ScalarTicket};
use crate::engine::{Engine, EngineConfig, JobHandle};
use crate::error::EngineError;
use crate::registry::{TenantId, TenantKeys};
use crate::request::{EvalRequest, EvalResponse};
use crate::stats::StatsSnapshot;
use crate::wire;
use hefv_core::context::FvContext;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, RwLock};

/// Shard identifier, unique within one router. Kept below
/// [`wire::NO_SHARD`] and within a byte so it fits both frame directions.
pub type ShardId = u16;

/// Highest shard id a router hands out: the response frame stamps the
/// shard into one byte, and the top value is reserved for
/// [`wire::ERROR_SHARD`] (transport-level failures that never reached a
/// shard).
pub const MAX_SHARD_ID: ShardId = u8::MAX as ShardId - 1;

/// Everything needed to start one engine shard.
pub struct ShardSpec {
    /// Operator-facing shard name.
    pub name: String,
    /// The parameter set this shard serves.
    pub ctx: Arc<FvContext>,
    /// Engine configuration — set `backend: Backend::Auto` for per-job
    /// datapath dispatch.
    pub config: EngineConfig,
}

struct Shard {
    id: ShardId,
    name: String,
    engine: Engine,
}

struct Topology {
    shards: BTreeMap<ShardId, Arc<Shard>>,
    /// Consistent-hash ring: vnode point → shard id.
    ring: BTreeMap<u64, ShardId>,
    pins: HashMap<TenantId, ShardId>,
    /// Ids reserved for engines currently starting (outside the lock):
    /// counted as taken so concurrent `add_shard`s cannot collide.
    starting: std::collections::BTreeSet<ShardId>,
}

impl Topology {
    /// Smallest id not held by a live or starting shard. Removed shards'
    /// ids are reused — a replacement shard inherits exactly the retired
    /// shard's ring arcs, so rolling replacement never exhausts the id
    /// space and never remaps bystander tenants.
    fn reserve_id(&mut self) -> Option<ShardId> {
        let id = (0..=MAX_SHARD_ID)
            .find(|id| !self.shards.contains_key(id) && !self.starting.contains(id))?;
        self.starting.insert(id);
        Some(id)
    }
}

/// One shard's stats row in a [`RouterStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard id.
    pub id: ShardId,
    /// Shard name.
    pub name: String,
    /// That engine's telemetry snapshot.
    pub stats: StatsSnapshot,
}

/// Aggregated router telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterStats {
    /// Per-shard snapshots, in shard-id order.
    pub per_shard: Vec<ShardStats>,
    /// All shards folded together.
    pub total: StatsSnapshot,
}

impl std::fmt::Display for RouterStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.per_shard {
            writeln!(f, "shard {} ({}):", s.id, s.name)?;
            for line in s.stats.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        writeln!(f, "total:")?;
        for line in self.total.to_string().lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// splitmix64 finalizer: a stable, process-independent mixing function so
/// ring points (and therefore placement) are identical across runs.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Routes tenants to engine shards. See the module docs.
pub struct ShardRouter {
    topo: RwLock<Topology>,
    vnodes: usize,
}

impl Default for ShardRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardRouter {
    /// An empty router with the default ring density (64 virtual nodes
    /// per shard — placement imbalance a few percent at realistic fleet
    /// sizes).
    pub fn new() -> Self {
        Self::with_vnodes(64)
    }

    /// An empty router with an explicit virtual-node count per shard
    /// (≥ 1; more vnodes = smoother placement, larger ring).
    pub fn with_vnodes(vnodes: usize) -> Self {
        ShardRouter {
            topo: RwLock::new(Topology {
                shards: BTreeMap::new(),
                ring: BTreeMap::new(),
                pins: HashMap::new(),
                starting: std::collections::BTreeSet::new(),
            }),
            vnodes: vnodes.max(1),
        }
    }

    /// Starts a new engine shard and joins it to the ring, reusing the
    /// smallest free shard id (a replacement for a removed shard inherits
    /// its ring arcs exactly). Tenants whose hash lands on the new
    /// shard's arcs are remapped to it (and must re-register their keys
    /// there); everyone else keeps their shard.
    ///
    /// # Errors
    ///
    /// [`EngineError::Validation`] while all `MAX_SHARD_ID + 1` ids are
    /// held by live (or still-starting) shards.
    pub fn add_shard(&self, spec: ShardSpec) -> Result<ShardId, EngineError> {
        // Reserve the id under the lock, then start the engine outside
        // it: worker spawn and cost-model pricing are slow.
        let id = self.topo.write().unwrap().reserve_id().ok_or_else(|| {
            EngineError::Validation(format!(
                "router is at its {}-shard capacity",
                u32::from(MAX_SHARD_ID) + 1
            ))
        })?;
        let engine = Engine::start(spec.ctx, spec.config);
        let shard = Arc::new(Shard {
            id,
            name: spec.name,
            engine,
        });
        let mut topo = self.topo.write().unwrap();
        for replica in 0..self.vnodes {
            let point = mix64(mix64(u64::from(id) + 1) ^ replica as u64);
            topo.ring.insert(point, id);
        }
        topo.starting.remove(&id);
        topo.shards.insert(id, shard);
        Ok(id)
    }

    /// Removes a shard from the ring: no new requests route to it, and
    /// its engine shuts down (pending jobs finish, workers join) as soon
    /// as the last in-flight reference drops — immediately when no
    /// request is mid-dispatch, otherwise when that request completes.
    /// Tenants mapped there move to the ring's next shard; pins to the
    /// removed shard are dropped. Returns `false` if the shard is
    /// unknown.
    pub fn remove_shard(&self, id: ShardId) -> bool {
        let removed = {
            let mut topo = self.topo.write().unwrap();
            let removed = topo.shards.remove(&id);
            if removed.is_some() {
                topo.ring.retain(|_, v| *v != id);
                topo.pins.retain(|_, v| *v != id);
            }
            removed
        };
        // Dropping the (usually last) Arc shuts the engine down; done
        // outside the lock so routing never blocks on a draining shard.
        removed.is_some()
    }

    /// Shard ids and names, in id order.
    pub fn shards(&self) -> Vec<(ShardId, String)> {
        self.topo
            .read()
            .unwrap()
            .shards
            .values()
            .map(|s| (s.id, s.name.clone()))
            .collect()
    }

    /// The shard a tenant routes to right now: its pin if set, otherwise
    /// the first ring point clockwise of the tenant's hash. `None` when
    /// the router has no shards.
    pub fn shard_for(&self, tenant: TenantId) -> Option<ShardId> {
        let topo = self.topo.read().unwrap();
        Self::place(&topo, tenant)
    }

    fn place(topo: &Topology, tenant: TenantId) -> Option<ShardId> {
        if let Some(&pin) = topo.pins.get(&tenant) {
            return Some(pin);
        }
        if topo.ring.is_empty() {
            return None;
        }
        let point = mix64(tenant);
        topo.ring
            .range(point..)
            .next()
            .or_else(|| topo.ring.iter().next())
            .map(|(_, &id)| id)
    }

    fn shard(&self, id: ShardId) -> Result<Arc<Shard>, EngineError> {
        self.topo
            .read()
            .unwrap()
            .shards
            .get(&id)
            .cloned()
            .ok_or_else(|| EngineError::Validation(format!("unknown shard {id}")))
    }

    fn shard_of(&self, tenant: TenantId) -> Result<Arc<Shard>, EngineError> {
        let topo = self.topo.read().unwrap();
        let id = Self::place(&topo, tenant)
            .ok_or_else(|| EngineError::Validation("router has no shards".into()))?;
        topo.shards
            .get(&id)
            .cloned()
            .ok_or_else(|| EngineError::Validation(format!("shard {id} is gone")))
    }

    /// Pins a tenant to an explicit shard, overriding the hash ring.
    /// Placement changes do not move key material: pin *before*
    /// registering, or re-register the tenant's keys afterwards (its next
    /// [`ShardRouter::register_tenant`] lands on the pinned shard).
    ///
    /// # Errors
    ///
    /// [`EngineError::Validation`] when the shard does not exist.
    pub fn pin_tenant(&self, tenant: TenantId, shard: ShardId) -> Result<(), EngineError> {
        let mut topo = self.topo.write().unwrap();
        if !topo.shards.contains_key(&shard) {
            return Err(EngineError::Validation(format!("unknown shard {shard}")));
        }
        topo.pins.insert(tenant, shard);
        Ok(())
    }

    /// Removes a tenant's pin (it reverts to hash placement). Returns
    /// whether a pin existed.
    pub fn unpin_tenant(&self, tenant: TenantId) -> bool {
        self.topo.write().unwrap().pins.remove(&tenant).is_some()
    }

    /// Registers a tenant's keys with the shard it currently routes to,
    /// returning that shard. After topology changes remap a tenant, it
    /// must re-register (clients always hold their own keys).
    ///
    /// # Errors
    ///
    /// [`EngineError::Validation`] when the router has no shards.
    pub fn register_tenant(
        &self,
        tenant: TenantId,
        keys: TenantKeys,
    ) -> Result<ShardId, EngineError> {
        let shard = self.shard_of(tenant)?;
        shard.engine.register_tenant(tenant, keys);
        Ok(shard.id)
    }

    /// Sets a tenant's fair-share weight on its current shard.
    ///
    /// # Errors
    ///
    /// [`EngineError::Validation`] when the router has no shards.
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: f64) -> Result<(), EngineError> {
        self.shard_of(tenant)?
            .engine
            .set_tenant_weight(tenant, weight);
        Ok(())
    }

    /// Routes a request to its tenant's shard and submits it.
    ///
    /// # Errors
    ///
    /// See [`Engine::submit`]; additionally fails when the router has no
    /// shards.
    pub fn submit(&self, req: EvalRequest) -> Result<JobHandle, EngineError> {
        self.shard_of(req.tenant)?.engine.submit(req)
    }

    /// Routes a request and delivers the outcome to `done` from the
    /// owning shard's worker thread. Returns `(shard, job_id)` — job ids
    /// are scoped per shard.
    ///
    /// # Errors
    ///
    /// See [`Engine::submit_with_callback`]; additionally fails when the
    /// router has no shards.
    pub fn submit_with_callback<F>(
        &self,
        req: EvalRequest,
        done: F,
    ) -> Result<(ShardId, u64), EngineError>
    where
        F: FnOnce(Result<EvalResponse, EngineError>) + Send + 'static,
    {
        let shard = self.shard_of(req.tenant)?;
        let id = shard.engine.submit_with_callback(req, done)?;
        Ok((shard.id, id))
    }

    /// Submit and wait (convenience).
    ///
    /// # Errors
    ///
    /// See [`ShardRouter::submit`].
    pub fn call(&self, req: EvalRequest) -> Result<EvalResponse, EngineError> {
        self.submit(req)?.wait()
    }

    /// Routes a scalar request to its tenant's shard for batching.
    ///
    /// # Errors
    ///
    /// See [`Engine::submit_scalar`]; additionally fails when the router
    /// has no shards.
    pub fn submit_scalar(&self, req: ScalarRequest) -> Result<ScalarTicket, EngineError> {
        self.shard_of(req.tenant)?.engine.submit_scalar(req)
    }

    /// Dispatches every partially-filled batch on every shard.
    pub fn flush_batches(&self) {
        for shard in self.all_shards() {
            shard.engine.flush_batches();
        }
    }

    /// Routes a serialized `HEVQ` request frame: an explicit shard address
    /// wins, an unrouted frame is placed by tenant hash; the request is
    /// decoded against that shard's context, evaluated, and the outcome
    /// returned as an `HEVP` frame stamped with the producing shard.
    /// Transport-level failures (bad frame, no shards) come back as error
    /// frames with job id `u64::MAX`.
    pub fn dispatch_frame(&self, frame: &[u8]) -> Vec<u8> {
        match self.dispatch_frame_inner(frame) {
            Ok(out) => out,
            Err(e) => wire::encode_response(&Err((u64::MAX, e))),
        }
    }

    /// Resolves a frame's target shard from its header alone: an
    /// explicit shard address wins, an unrouted frame is placed by
    /// tenant hash.
    fn resolve_shard(&self, frame: &[u8]) -> Result<Arc<Shard>, EngineError> {
        match wire::peek_shard(frame)? {
            Some(id) => self.shard(id),
            None => self.shard_of(wire::peek_tenant(frame)?),
        }
    }

    /// The routing preamble shared by every frame-dispatch entry point:
    /// resolve the target shard and decode the request against that
    /// shard's context.
    fn route_frame(&self, frame: &[u8]) -> Result<(Arc<Shard>, EvalRequest), EngineError> {
        let shard = self.resolve_shard(frame)?;
        let req = wire::decode_request(shard.engine.context(), frame)?;
        Ok((shard, req))
    }

    fn dispatch_frame_inner(&self, frame: &[u8]) -> Result<Vec<u8>, EngineError> {
        let (shard, req) = self.route_frame(frame)?;
        let outcome = match shard.engine.submit(req) {
            Ok(handle) => {
                let id = handle.id;
                handle.wait().map_err(|e| (id, e))
            }
            Err(e) => Err((u64::MAX, e)),
        };
        Ok(wire::encode_response_from_shard(&outcome, shard.id as u8))
    }

    /// The pipelined frame seam: routes a serialized `HEVQ` request frame
    /// like [`ShardRouter::dispatch_frame`], but returns as soon as the
    /// job is queued and delivers the stamped `HEVP` reply frame to `done`
    /// from the owning shard's worker thread. This is what a TCP
    /// front-end uses to keep many frames in flight per connection.
    ///
    /// Jobs that fail *after* submission come back through `done` as
    /// error frames stamped with the producing shard and job id
    /// `u64::MAX` (the engine's callback does not carry the id on the
    /// error path); transports that need exact correlation attach their
    /// own envelope around the frame, as `hefv-net` does.
    ///
    /// # Errors
    ///
    /// Routing, decode and submission failures are returned synchronously
    /// — `done` is *not* called — so the caller can encode them itself
    /// (e.g. with [`wire::encode_response`]) without giving up the
    /// callback.
    pub fn dispatch_frame_with_callback<F>(
        &self,
        frame: &[u8],
        done: F,
    ) -> Result<(ShardId, u64), EngineError>
    where
        F: FnOnce(Vec<u8>) + Send + 'static,
    {
        let (shard, req) = self.route_frame(frame)?;
        let stamp = shard.id as u8;
        let id = shard.engine.submit_with_callback(req, move |outcome| {
            let outcome = outcome.map_err(|e| (u64::MAX, e));
            done(wire::encode_response_from_shard(&outcome, stamp));
        })?;
        Ok((shard.id, id))
    }

    /// Non-blocking [`ShardRouter::dispatch_frame_with_callback`]:
    /// `Ok(None)` means the owning shard's queue is at capacity —
    /// nothing was enqueued, `done` was dropped unused, and the caller
    /// should hold the frame and retry. This is what lets the TCP poll
    /// thread turn engine backpressure into TCP backpressure instead of
    /// parking mid-sweep.
    ///
    /// # Errors
    ///
    /// Same as [`ShardRouter::dispatch_frame_with_callback`]; a full
    /// queue is `Ok(None)`, not an error.
    pub fn try_dispatch_frame_with_callback<F>(
        &self,
        frame: &[u8],
        done: F,
    ) -> Result<Option<(ShardId, u64)>, EngineError>
    where
        F: FnOnce(Vec<u8>) + Send + 'static,
    {
        // Header-only pre-check: while the shard is saturated, refuse
        // before paying for the payload decode — a stalled caller may
        // retry the same multi-MB frame every sweep. The try-push below
        // remains the authority on the race.
        let shard = self.resolve_shard(frame)?;
        if shard.engine.queue_is_full() {
            shard.engine.shared().stats().on_refused();
            return Ok(None);
        }
        let req = wire::decode_request(shard.engine.context(), frame)?;
        let stamp = shard.id as u8;
        let id = shard.engine.try_submit_with_callback(req, move |outcome| {
            let outcome = outcome.map_err(|e| (u64::MAX, e));
            done(wire::encode_response_from_shard(&outcome, stamp));
        })?;
        Ok(id.map(|id| (shard.id, id)))
    }

    fn all_shards(&self) -> Vec<Arc<Shard>> {
        self.topo.read().unwrap().shards.values().cloned().collect()
    }

    /// Telemetry: every shard's snapshot plus the fleet total.
    pub fn stats(&self) -> RouterStats {
        let mut total: Option<StatsSnapshot> = None;
        let mut per_shard = Vec::new();
        for shard in self.all_shards() {
            let stats = shard.engine.stats();
            match &mut total {
                None => total = Some(stats.clone()),
                Some(t) => t.absorb(&stats),
            }
            per_shard.push(ShardStats {
                id: shard.id,
                name: shard.name.clone(),
                stats,
            });
        }
        RouterStats {
            per_shard,
            total: total.unwrap_or_else(|| crate::stats::EngineStats::default().snapshot()),
        }
    }

    /// The most recent job spans from every shard's flight recorder, as
    /// `(shard id, shard name, spans oldest-first)`.
    pub fn trace_spans(&self) -> Vec<(ShardId, String, Vec<crate::trace::SpanRecord>)> {
        self.all_shards()
            .into_iter()
            .map(|s| (s.id, s.name.clone(), s.engine.recorder().recent()))
            .collect()
    }

    /// The most recent *slow* job spans (over each engine's slow-job
    /// threshold) from every shard's flight recorder.
    pub fn slow_spans(&self) -> Vec<(ShardId, String, Vec<crate::trace::SpanRecord>)> {
        self.all_shards()
            .into_iter()
            .map(|s| (s.id, s.name.clone(), s.engine.recorder().slow_spans()))
            .collect()
    }

    /// Plain-text rendering of [`ShardRouter::trace_spans`] and
    /// [`ShardRouter::slow_spans`] — the `HEVS` traces payload: one
    /// `trace=0x…` line per span, grouped per shard, slow spans last.
    pub fn render_traces(&self) -> String {
        let mut out = String::new();
        for (section, groups) in [("recent", self.trace_spans()), ("slow", self.slow_spans())] {
            for (id, name, spans) in groups {
                out.push_str(&format!(
                    "# shard {id} ({name}): {} {section} spans\n",
                    spans.len()
                ));
                for span in spans {
                    out.push_str(&span.to_string());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Shuts every shard down: pending jobs drain, workers join. Takes
    /// `&self` so a router shared behind an [`Arc`] (e.g. with a TCP
    /// front-end) can be stopped by any holder; the router is empty — but
    /// valid — afterwards, and refuses traffic like a fresh one.
    pub fn shutdown(&self) {
        let shards = {
            let mut topo = self.topo.write().unwrap();
            topo.ring.clear();
            topo.pins.clear();
            std::mem::take(&mut topo.shards)
        };
        drop(shards);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_router(n_shards: usize) -> ShardRouter {
        use hefv_core::params::FvParams;
        let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
        let router = ShardRouter::new();
        for i in 0..n_shards {
            router
                .add_shard(ShardSpec {
                    name: format!("s{i}"),
                    ctx: Arc::clone(&ctx),
                    config: EngineConfig {
                        workers: 1,
                        ..EngineConfig::default()
                    },
                })
                .unwrap();
        }
        router
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let router = bare_router(3);
        for tenant in 0..200u64 {
            let a = router.shard_for(tenant).unwrap();
            let b = router.shard_for(tenant).unwrap();
            assert_eq!(a, b);
            assert!(a < 3);
        }
        router.shutdown();
    }

    #[test]
    fn every_shard_owns_some_tenants() {
        let router = bare_router(3);
        let mut seen = std::collections::HashSet::new();
        for tenant in 0..500u64 {
            seen.insert(router.shard_for(tenant).unwrap());
        }
        assert_eq!(seen.len(), 3, "ring leaves a shard empty");
        router.shutdown();
    }

    #[test]
    fn pins_override_the_ring() {
        let router = bare_router(2);
        let tenant = 7;
        let hashed = router.shard_for(tenant).unwrap();
        let other = 1 - hashed;
        router.pin_tenant(tenant, other).unwrap();
        assert_eq!(router.shard_for(tenant), Some(other));
        assert!(router.unpin_tenant(tenant));
        assert_eq!(router.shard_for(tenant), Some(hashed));
        assert!(router.pin_tenant(tenant, 99).is_err(), "unknown shard");
        router.shutdown();
    }

    #[test]
    fn removed_shard_ids_are_reused() {
        use hefv_core::params::FvParams;
        let router = bare_router(2);
        assert!(router.remove_shard(0));
        assert!(!router.remove_shard(0), "already gone");
        let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
        let id = router
            .add_shard(ShardSpec {
                name: "replacement".into(),
                ctx,
                config: EngineConfig {
                    workers: 1,
                    ..EngineConfig::default()
                },
            })
            .unwrap();
        assert_eq!(id, 0, "rolling replacement reuses the retired id");
        assert_eq!(router.shards().len(), 2);
        router.shutdown();
    }

    #[test]
    fn empty_router_rejects_traffic() {
        let router = ShardRouter::new();
        assert_eq!(router.shard_for(1), None);
        assert!(router.register_tenant(1, TenantKeys::default()).is_err());
        router.shutdown();
    }
}
