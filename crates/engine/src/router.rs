//! The cluster layer: a [`ShardRouter`] fronting local and remote shards.
//!
//! The paper fixes one datapath per coprocessor; a serving fleet does not
//! have to. The router partitions tenants across shards — in-process
//! [`Engine`]s and, through [`RemoteShard`], engines living on other
//! nodes — and routes every request to its tenant's shard:
//!
//! * **Placement** is consistent hashing over a ring of virtual nodes
//!   (deterministic splitmix64 points, no wall-clock or process state), so
//!   adding or removing a shard remaps only the tenants that land on the
//!   new/removed shard's arcs; everyone else stays put. Operators can
//!   override the hash with an explicit [`ShardRouter::pin_tenant`].
//! * **Key placement precedes traffic.** The router keeps every
//!   registered tenant's keys in a vault and replicates them to
//!   [`RouterConfig::key_replicas`] shards along the ring. Topology
//!   changes ([`ShardRouter::add_shard`] / `remove_shard` / `pin_tenant` /
//!   `unpin_tenant`) compute exactly which tenants gain a new key holder
//!   and stream those keys there — over the `HEVK` key-transfer frame for
//!   remote shards — *before* the ring write commits, so a moved tenant's
//!   first job at its new owner always finds its keys.
//! * **Health and hedging.** Local shards are always up; a remote shard
//!   carries a half-open circuit breaker driven by probes and transport
//!   errors (see [`crate::remote`]). Frame placement skips ejected
//!   shards, and a dispatch to a remote primary arms a deadline-aware
//!   hedge: if no reply lands within [`HedgeConfig::delay`] (clamped to a
//!   fraction of the request deadline), the frame is re-dispatched to the
//!   tenant's replica shard. First reply wins; the loser's reply finds
//!   the completion already taken and is dropped — correlation ids make
//!   the duplicate harmless end-to-end.
//! * **Datapath dispatch** rides on [`Backend::Auto`](hefv_core::eval::Backend::Auto): a shard configured
//!   with it prices every job on both the Traditional and HPS cost models
//!   and executes on the cheaper one (see [`crate::sched::CostEstimator`]),
//!   so a mixed workload beats either fixed-datapath fleet on total
//!   estimated cost.
//! * **Remote traffic** enters through [`ShardRouter::dispatch_frame`]:
//!   `HEVQ` request frames carry an optional shard address
//!   ([`crate::wire::peek_shard`]) and are otherwise placed by tenant
//!   hash; responses come back stamped with the shard that produced them.
//!   This is the seam a TCP/async front-end plugs into — it never needs
//!   to decode a payload to route it.
//!
//! Job ids are scoped per shard; the `(shard, job_id)` pair is globally
//! unique.
//!
//! # Example
//!
//! ```
//! use hefv_core::prelude::*;
//! use hefv_engine::prelude::*;
//! use hefv_engine::router::{ShardRouter, ShardSpec};
//! use hefv_core::eval::Backend;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
//! let router = ShardRouter::new();
//! // Two shards over one parameter set; Auto picks the cheaper datapath
//! // per job from the paper's cost model.
//! for name in ["shard-a", "shard-b"] {
//!     router
//!         .add_shard(ShardSpec {
//!             name: name.into(),
//!             ctx: Arc::clone(&ctx),
//!             config: EngineConfig {
//!                 workers: 1,
//!                 backend: Backend::Auto,
//!                 ..EngineConfig::default()
//!             },
//!         })
//!         .unwrap();
//! }
//! let mut rng = StdRng::seed_from_u64(9);
//! let (sk, pk, rlk) = keygen(&ctx, &mut rng);
//! let tenant = 42;
//! router.register_tenant(tenant, TenantKeys::compute(pk.clone(), rlk)).unwrap();
//!
//! let t = ctx.params().t;
//! let n = ctx.params().n;
//! let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk, &Plaintext::new(vec![v], t, n), rng);
//! let req = EvalRequest::binary(tenant, EvalOp::Mul, enc(2, &mut rng), enc(3, &mut rng));
//! let resp = router.call(req).unwrap();
//! assert_eq!(decrypt(&ctx, &sk, &resp.result).coeffs()[0], 6);
//! assert_eq!(router.stats().total.jobs_completed, 1);
//! router.shutdown();
//! ```

use crate::batch::{ScalarRequest, ScalarTicket};
use crate::engine::{Engine, EngineConfig, JobHandle};
use crate::error::EngineError;
use crate::registry::{TenantId, TenantKeys};
use crate::remote::{RemoteShard, RemoteShardConfig, RemoteStatsSnapshot, ShardConnector};
use crate::request::{EvalRequest, EvalResponse};
use crate::stats::StatsSnapshot;
use crate::wire;
use hefv_core::context::FvContext;
use std::collections::{BTreeMap, BinaryHeap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Shard identifier, unique within one router. Kept below
/// [`wire::NO_SHARD`] and within a byte so it fits both frame directions.
pub type ShardId = u16;

/// Highest shard id a router hands out: the response frame stamps the
/// shard into one byte, and the top value is reserved for
/// [`wire::ERROR_SHARD`] (transport-level failures that never reached a
/// shard).
pub const MAX_SHARD_ID: ShardId = u8::MAX as ShardId - 1;

/// Everything needed to start one in-process engine shard.
pub struct ShardSpec {
    /// Operator-facing shard name.
    pub name: String,
    /// The parameter set this shard serves.
    pub ctx: Arc<FvContext>,
    /// Engine configuration — set `backend: Backend::Auto` for per-job
    /// datapath dispatch.
    pub config: EngineConfig,
}

/// Everything needed to attach a shard living on another node.
pub struct RemoteShardSpec {
    /// Operator-facing shard name.
    pub name: String,
    /// The parameter set the remote node serves (used to decode replies
    /// and encode key pushes; must match the node's own context).
    pub ctx: Arc<FvContext>,
    /// Transport factory for the node (e.g. `hefv_net`'s `TcpConnector`).
    pub connector: Arc<dyn ShardConnector>,
    /// Pool/health tuning.
    pub config: RemoteShardConfig,
}

/// Hedged-retry policy for remote dispatches.
#[derive(Debug, Clone, Copy)]
pub struct HedgeConfig {
    /// How long to wait for the primary before dispatching the hedge to
    /// the replica shard.
    pub delay: Duration,
    /// Deadline awareness: for frames carrying a deadline, the hedge
    /// fires after at most `deadline × fraction`, so a tight-deadline job
    /// hedges sooner than the flat delay.
    pub deadline_fraction: f64,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            delay: Duration::from_millis(50),
            deadline_fraction: 0.5,
        }
    }
}

/// Router-wide tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Virtual nodes per shard on the hash ring (≥ 1; more vnodes =
    /// smoother placement, larger ring).
    pub vnodes: usize,
    /// How many shards along the ring hold each tenant's keys (≥ 1). The
    /// extra holders are what hedged retries fail over to.
    pub key_replicas: usize,
    /// Hedged-retry policy for remote dispatches; `None` disables
    /// hedging (a failed remote dispatch still fails over once).
    pub hedge: Option<HedgeConfig>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            vnodes: 64,
            key_replicas: 2,
            hedge: Some(HedgeConfig::default()),
        }
    }
}

/// A shard's runtime: in-process engine or proxy to another node.
enum ShardImpl {
    Local(Engine),
    Remote(RemoteShard),
}

struct Shard {
    id: ShardId,
    name: String,
    ctx: Arc<FvContext>,
    imp: ShardImpl,
}

impl Shard {
    fn local(&self) -> Option<&Engine> {
        match &self.imp {
            ShardImpl::Local(e) => Some(e),
            ShardImpl::Remote(_) => None,
        }
    }

    fn remote(&self) -> Option<&RemoteShard> {
        match &self.imp {
            ShardImpl::Local(_) => None,
            ShardImpl::Remote(r) => Some(r),
        }
    }

    /// Local shards are always up; a remote shard is up while its
    /// circuit breaker is closed.
    fn is_up(&self) -> bool {
        match &self.imp {
            ShardImpl::Local(_) => true,
            ShardImpl::Remote(r) => r.healthy(),
        }
    }
}

struct Topology {
    shards: BTreeMap<ShardId, Arc<Shard>>,
    /// Consistent-hash ring: vnode point → shard id.
    ring: BTreeMap<u64, ShardId>,
    pins: HashMap<TenantId, ShardId>,
    /// Ids reserved for engines currently starting (outside the lock):
    /// counted as taken so concurrent `add_shard`s cannot collide.
    starting: std::collections::BTreeSet<ShardId>,
}

impl Topology {
    /// Smallest id not held by a live or starting shard. Removed shards'
    /// ids are reused — a replacement shard inherits exactly the retired
    /// shard's ring arcs, so rolling replacement never exhausts the id
    /// space and never remaps bystander tenants.
    fn reserve_id(&mut self) -> Option<ShardId> {
        let id = (0..=MAX_SHARD_ID)
            .find(|id| !self.shards.contains_key(id) && !self.starting.contains(id))?;
        self.starting.insert(id);
        Some(id)
    }

    /// Distinct shards in ring order starting clockwise of `point`.
    fn ring_walk(&self, point: u64) -> Vec<ShardId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for (_, &id) in self.ring.range(point..).chain(self.ring.range(..point)) {
            if seen.insert(id) {
                out.push(id);
            }
        }
        out
    }
}

/// One shard's stats row in a [`RouterStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard id.
    pub id: ShardId,
    /// Shard name.
    pub name: String,
    /// Liveness: local shards are always up; a remote shard is up while
    /// its circuit breaker is closed.
    pub up: bool,
    /// That engine's telemetry snapshot.
    pub stats: StatsSnapshot,
}

/// One remote shard's stats row in a [`RouterStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteShardStats {
    /// Shard id.
    pub id: ShardId,
    /// Shard name.
    pub name: String,
    /// Peer endpoint.
    pub endpoint: String,
    /// Transport/health counters.
    pub stats: RemoteStatsSnapshot,
}

/// Router-level hedging and key-migration counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HedgeStatsSnapshot {
    /// Remote dispatches that armed a hedge timer.
    pub armed: u64,
    /// Hedge timers that fired (replica dispatch attempted on timeout).
    pub fired: u64,
    /// Races the replica's reply won.
    pub wins: u64,
    /// Primary failures failed over to the replica (sync or async).
    pub failovers: u64,
    /// Tenant key payloads pushed to shards (local and remote).
    pub key_pushes: u64,
    /// Key pushes that failed after retries.
    pub key_push_failures: u64,
    /// Key sets placed on (or received by) *replica* holders — the
    /// durability copies beyond each tenant's primary.
    pub keys_replicated: u64,
}

/// Aggregated router telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterStats {
    /// Per-shard snapshots, in shard-id order (local shards only —
    /// remote shards' engine stats live on their own node).
    pub per_shard: Vec<ShardStats>,
    /// Remote shards' transport/health counters, in shard-id order.
    pub remote: Vec<RemoteShardStats>,
    /// Hedging and key-migration counters.
    pub hedge: HedgeStatsSnapshot,
    /// Tenants evicted from local shards' key registries (LRU pressure).
    /// Nonzero means some replicas may be missing until the next
    /// anti-entropy sweep re-pushes them.
    pub keys_evicted: u64,
    /// All local shards folded together.
    pub total: StatsSnapshot,
}

impl std::fmt::Display for RouterStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.per_shard {
            writeln!(
                f,
                "shard {} ({}){}:",
                s.id,
                s.name,
                if s.up { "" } else { " [DOWN]" }
            )?;
            for line in s.stats.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        for r in &self.remote {
            writeln!(
                f,
                "remote shard {} ({}) at {}: {} | inflight {} | forwarded {} | replies {} | \
                 ejections {} | recoveries {} | retries {} | timeouts {}",
                r.id,
                r.name,
                r.endpoint,
                if r.stats.healthy { "up" } else { "EJECTED" },
                r.stats.inflight,
                r.stats.frames_forwarded,
                r.stats.replies,
                r.stats.ejections,
                r.stats.recoveries,
                r.stats.retries,
                r.stats.timeouts,
            )?;
        }
        if self.hedge != HedgeStatsSnapshot::default() {
            writeln!(
                f,
                "hedging: armed {} | fired {} | wins {} | failovers {} | key pushes {} ({} failed)",
                self.hedge.armed,
                self.hedge.fired,
                self.hedge.wins,
                self.hedge.failovers,
                self.hedge.key_pushes,
                self.hedge.key_push_failures,
            )?;
        }
        writeln!(f, "total:")?;
        for line in self.total.to_string().lines() {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// splitmix64 finalizer: a stable, process-independent mixing function so
/// ring points (and therefore placement) are identical across runs.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[derive(Default)]
struct HedgeCounters {
    armed: AtomicU64,
    fired: AtomicU64,
    wins: AtomicU64,
    failovers: AtomicU64,
    key_pushes: AtomicU64,
    key_push_failures: AtomicU64,
    keys_replicated: AtomicU64,
}

impl HedgeCounters {
    fn snapshot(&self) -> HedgeStatsSnapshot {
        HedgeStatsSnapshot {
            armed: self.armed.load(Ordering::Relaxed),
            fired: self.fired.load(Ordering::Relaxed),
            wins: self.wins.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            key_pushes: self.key_pushes.load(Ordering::Relaxed),
            key_push_failures: self.key_push_failures.load(Ordering::Relaxed),
            keys_replicated: self.keys_replicated.load(Ordering::Relaxed),
        }
    }
}

/// A boxed frame-reply continuation, as handed to the dispatch paths.
type FrameCallback = Box<dyn FnOnce(Vec<u8>) + Send>;

/// One-shot reply slot: whichever arm (primary or hedge) completes first
/// consumes the callback; the loser finds it taken.
struct OnceReply {
    done: Mutex<Option<FrameCallback>>,
}

impl OnceReply {
    fn new(done: FrameCallback) -> Self {
        OnceReply {
            done: Mutex::new(Some(done)),
        }
    }

    /// Delivers `frame` if nobody has yet; reports whether this call won.
    fn complete(&self, frame: Vec<u8>) -> bool {
        let taken = self.done.lock().unwrap().take();
        match taken {
            Some(f) => {
                f(frame);
                true
            }
            None => false,
        }
    }

    fn is_done(&self) -> bool {
        self.done.lock().unwrap().is_none()
    }
}

/// One hedged remote dispatch: the frame, its replica target, and the
/// shared reply slot. `live` counts in-flight arms; when it hits zero
/// with nobody having replied, the job fails.
struct HedgeTask {
    once: Arc<OnceReply>,
    /// Whether the replica dispatch has been attempted (timer or
    /// failover) — it happens at most once.
    fired: AtomicBool,
    live: AtomicI64,
    frame: Vec<u8>,
    replica: Arc<Shard>,
    counters: Arc<HedgeCounters>,
}

impl HedgeTask {
    /// Dispatches the frame to the replica shard (local or remote),
    /// wiring its reply into the shared slot. Returns the replica-side
    /// job id, `None` when the replica is at capacity.
    fn dispatch_replica(self: &Arc<Self>) -> Result<Option<u64>, EngineError> {
        let stamp = self.replica.id as u8;
        match &self.replica.imp {
            ShardImpl::Local(engine) => {
                let req = wire::decode_request(&self.replica.ctx, &self.frame)?;
                let me = Arc::clone(self);
                engine.try_submit_with_callback(req, move |outcome| {
                    let outcome = outcome.map_err(|e| (u64::MAX, e));
                    me.complete_reply(wire::encode_response_from_shard(&outcome, stamp), true);
                })
            }
            ShardImpl::Remote(r) => {
                let me = Arc::clone(self);
                r.try_dispatch(&self.frame, move |result| match result {
                    Ok(mut frame) => {
                        wire::restamp_response_shard(&mut frame, stamp);
                        me.complete_reply(frame, true);
                    }
                    Err(_) => me.on_arm_error(),
                })
            }
        }
    }

    /// Timer expiry: dispatch the hedge unless a reply already landed or
    /// a failover beat the timer to the replica.
    fn fire_timer(self: &Arc<Self>) {
        if self.once.is_done() || self.fired.swap(true, Ordering::AcqRel) {
            return;
        }
        self.counters.fired.fetch_add(1, Ordering::Relaxed);
        if let Ok(Some(_)) = self.dispatch_replica() {
            self.live.fetch_add(1, Ordering::AcqRel);
        }
        // Replica refused or errored: the primary is still in flight —
        // its reply (or error) resolves the job.
    }

    fn complete_reply(&self, frame: Vec<u8>, from_replica: bool) {
        if self.once.complete(frame) && from_replica {
            self.counters.wins.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// An in-flight arm reported a transport error. Fail over to the
    /// replica if it has not been tried yet; once no arm is left and no
    /// reply landed, fail the job.
    fn on_arm_error(self: &Arc<Self>) {
        self.live.fetch_sub(1, Ordering::AcqRel);
        if !self.fired.swap(true, Ordering::AcqRel) {
            self.counters.failovers.fetch_add(1, Ordering::Relaxed);
            if let Ok(Some(_)) = self.dispatch_replica() {
                self.live.fetch_add(1, Ordering::AcqRel);
                return;
            }
        }
        if self.live.load(Ordering::Acquire) <= 0 {
            self.once.complete(wire::encode_response(&Err((
                u64::MAX,
                EngineError::Internal("remote dispatch failed on primary and hedge replica".into()),
            ))));
        }
    }
}

struct HedgerState {
    due: BinaryHeap<std::cmp::Reverse<(Instant, u64)>>,
    tasks: HashMap<u64, Arc<HedgeTask>>,
    next_seq: u64,
    stopped: bool,
}

/// The hedge-timer thread's shared state: a monotonic timer wheel that
/// fires [`HedgeTask::fire_timer`] at each armed deadline.
struct Hedger {
    state: Mutex<HedgerState>,
    wake: Condvar,
}

impl Hedger {
    fn new() -> Self {
        Hedger {
            state: Mutex::new(HedgerState {
                due: BinaryHeap::new(),
                tasks: HashMap::new(),
                next_seq: 0,
                stopped: false,
            }),
            wake: Condvar::new(),
        }
    }

    fn arm(&self, at: Instant, task: Arc<HedgeTask>) {
        let mut st = self.state.lock().unwrap();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.due.push(std::cmp::Reverse((at, seq)));
        st.tasks.insert(seq, task);
        self.wake.notify_all();
    }

    fn stop(&self) {
        self.state.lock().unwrap().stopped = true;
        self.wake.notify_all();
    }

    fn run(&self) {
        let mut fire: Vec<Arc<HedgeTask>> = Vec::new();
        loop {
            {
                let mut st = self.state.lock().unwrap();
                loop {
                    if st.stopped {
                        return;
                    }
                    let now = Instant::now();
                    match st.due.peek().map(|std::cmp::Reverse((at, _))| *at) {
                        Some(at) if at <= now => {
                            let std::cmp::Reverse((_, seq)) = st.due.pop().expect("peeked");
                            if let Some(task) = st.tasks.remove(&seq) {
                                fire.push(task);
                            }
                        }
                        Some(at) => {
                            if !fire.is_empty() {
                                break;
                            }
                            st = self
                                .wake
                                .wait_timeout(st, at - now)
                                .unwrap_or_else(|e| e.into_inner())
                                .0;
                        }
                        None => {
                            if !fire.is_empty() {
                                break;
                            }
                            st = self.wake.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                    }
                }
            }
            for task in fire.drain(..) {
                task.fire_timer();
            }
        }
    }
}

/// Routes tenants to local and remote shards. See the module docs.
pub struct ShardRouter {
    topo: RwLock<Topology>,
    cfg: RouterConfig,
    /// Keys of every registered tenant, for replication on topology
    /// changes. The router never decrypts — these are evaluation keys.
    vault: Mutex<HashMap<TenantId, Arc<TenantKeys>>>,
    /// Serializes topology changes so each sees a settled key placement.
    change_lock: Mutex<()>,
    /// Lazily-spawned hedge-timer thread.
    hedger: Mutex<Option<(Arc<Hedger>, std::thread::JoinHandle<()>)>>,
    counters: Arc<HedgeCounters>,
}

impl Default for ShardRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardRouter {
    /// An empty router with the default configuration (64 virtual nodes
    /// per shard — placement imbalance a few percent at realistic fleet
    /// sizes — two key holders per tenant, 50 ms hedge).
    pub fn new() -> Self {
        Self::with_config(RouterConfig::default())
    }

    /// An empty router with an explicit virtual-node count per shard.
    pub fn with_vnodes(vnodes: usize) -> Self {
        Self::with_config(RouterConfig {
            vnodes,
            ..RouterConfig::default()
        })
    }

    /// An empty router with explicit tuning.
    pub fn with_config(cfg: RouterConfig) -> Self {
        ShardRouter {
            topo: RwLock::new(Topology {
                shards: BTreeMap::new(),
                ring: BTreeMap::new(),
                pins: HashMap::new(),
                starting: std::collections::BTreeSet::new(),
            }),
            cfg: RouterConfig {
                vnodes: cfg.vnodes.max(1),
                key_replicas: cfg.key_replicas.max(1),
                ..cfg
            },
            vault: Mutex::new(HashMap::new()),
            change_lock: Mutex::new(()),
            hedger: Mutex::new(None),
            counters: Arc::new(HedgeCounters::default()),
        }
    }

    fn ring_points(&self, id: ShardId) -> Vec<u64> {
        (0..self.cfg.vnodes)
            .map(|replica| mix64(mix64(u64::from(id) + 1) ^ replica as u64))
            .collect()
    }

    /// The shards that should hold `tenant`'s keys under `(ring, pins)`:
    /// its pin (if any) first, then distinct ring successors, truncated
    /// to [`RouterConfig::key_replicas`]. Pure — health plays no part,
    /// so key placement is stable while nodes flap.
    fn key_targets_in(
        &self,
        ring: &BTreeMap<u64, ShardId>,
        pins: &HashMap<TenantId, ShardId>,
        tenant: TenantId,
    ) -> Vec<ShardId> {
        let mut out = Vec::new();
        if let Some(&pin) = pins.get(&tenant) {
            out.push(pin);
        }
        let point = mix64(tenant);
        let mut seen: HashSet<ShardId> = out.iter().copied().collect();
        for (_, &id) in ring.range(point..).chain(ring.range(..point)) {
            if out.len() >= self.cfg.key_replicas {
                break;
            }
            if seen.insert(id) {
                out.push(id);
            }
        }
        out
    }

    fn key_targets(&self, topo: &Topology, tenant: TenantId) -> Vec<ShardId> {
        self.key_targets_in(&topo.ring, &topo.pins, tenant)
    }

    /// Starts a new engine shard and joins it to the ring, reusing the
    /// smallest free shard id (a replacement for a removed shard inherits
    /// its ring arcs exactly). Before the ring write commits, every
    /// registered tenant whose key-holder set gains the new shard has its
    /// keys pushed there — so remapped tenants never race their keys.
    ///
    /// # Errors
    ///
    /// [`EngineError::Validation`] while all `MAX_SHARD_ID + 1` ids are
    /// held by live (or still-starting) shards.
    pub fn add_shard(&self, spec: ShardSpec) -> Result<ShardId, EngineError> {
        let engine = Engine::start(Arc::clone(&spec.ctx), spec.config);
        self.attach_shard(spec.name, spec.ctx, ShardImpl::Local(engine))
    }

    /// Attaches a shard on another node, reachable through `connector`.
    /// Same ring semantics as [`ShardRouter::add_shard`]; key material
    /// for remapped tenants is streamed over `HEVK` key-transfer frames
    /// — and acknowledged — before the ring write commits. If any push
    /// fails, the attach is aborted and the topology is unchanged.
    ///
    /// # Errors
    ///
    /// Shard-id exhaustion as in [`ShardRouter::add_shard`], or the key
    /// push failure that aborted the attach.
    pub fn add_remote_shard(&self, spec: RemoteShardSpec) -> Result<ShardId, EngineError> {
        let shard = RemoteShard::new(spec.name.clone(), spec.connector, spec.config);
        self.attach_shard(spec.name, spec.ctx, ShardImpl::Remote(shard))
    }

    fn attach_shard(
        &self,
        name: String,
        ctx: Arc<FvContext>,
        imp: ShardImpl,
    ) -> Result<ShardId, EngineError> {
        let _change = self.change_lock.lock().unwrap();
        // Reserve the id under the lock, then migrate keys outside it:
        // remote pushes are slow and routing must not block on them.
        let id = {
            let mut topo = self.topo.write().unwrap();
            topo.reserve_id().ok_or_else(|| {
                EngineError::Validation(format!(
                    "router is at its {}-shard capacity",
                    u32::from(MAX_SHARD_ID) + 1
                ))
            })?
        };
        let shard = Arc::new(Shard { id, name, ctx, imp });
        // Key migration happens against the *prospective* ring, before
        // the write commits: any tenant whose key-holder set gains the
        // new shard gets its keys there first.
        let migration = self.plan_gains(|ring, pins| {
            for point in self.ring_points(id) {
                ring.insert(point, id);
            }
            let _ = pins;
        });
        for (tenant, keys, gained) in migration {
            debug_assert!(gained.iter().all(|&g| g == id));
            if gained.contains(&id) {
                if let Err(e) = self.push_keys_to(&shard, tenant, &keys) {
                    // Abort: free the reserved id and tear the shard
                    // down; the ring never saw it.
                    self.topo.write().unwrap().starting.remove(&id);
                    if let Some(r) = shard.remote() {
                        r.shutdown();
                    }
                    return Err(e);
                }
            }
        }
        let mut topo = self.topo.write().unwrap();
        for point in self.ring_points(id) {
            topo.ring.insert(point, id);
        }
        topo.starting.remove(&id);
        topo.shards.insert(id, shard);
        Ok(id)
    }

    /// For a prospective topology change (applied by `mutate` to copies
    /// of the ring and pins), the tenants whose key-holder set gains
    /// shards, with their keys: `(tenant, keys, gained shard ids)`.
    fn plan_gains(
        &self,
        mutate: impl FnOnce(&mut BTreeMap<u64, ShardId>, &mut HashMap<TenantId, ShardId>),
    ) -> Vec<(TenantId, Arc<TenantKeys>, Vec<ShardId>)> {
        let (old_ring, old_pins) = {
            let topo = self.topo.read().unwrap();
            (topo.ring.clone(), topo.pins.clone())
        };
        let mut new_ring = old_ring.clone();
        let mut new_pins = old_pins.clone();
        mutate(&mut new_ring, &mut new_pins);
        let vault: Vec<(TenantId, Arc<TenantKeys>)> = {
            let vault = self.vault.lock().unwrap();
            vault.iter().map(|(&t, k)| (t, Arc::clone(k))).collect()
        };
        let mut out = Vec::new();
        for (tenant, keys) in vault {
            let old: HashSet<ShardId> = self
                .key_targets_in(&old_ring, &old_pins, tenant)
                .into_iter()
                .collect();
            let gained: Vec<ShardId> = self
                .key_targets_in(&new_ring, &new_pins, tenant)
                .into_iter()
                .filter(|id| !old.contains(id))
                .collect();
            if !gained.is_empty() {
                out.push((tenant, keys, gained));
            }
        }
        out
    }

    /// Pushes one tenant's keys to one shard: a registry write for local
    /// shards, an acknowledged `HEVK` push for remote ones. A push to
    /// any shard other than the tenant's current primary goes out with
    /// the replica direction bit set and counts toward
    /// [`HedgeStatsSnapshot::keys_replicated`].
    fn push_keys_to(
        &self,
        shard: &Shard,
        tenant: TenantId,
        keys: &Arc<TenantKeys>,
    ) -> Result<(), EngineError> {
        let replica = {
            let topo = self.topo.read().unwrap();
            Self::place(&topo, tenant) != Some(shard.id)
        };
        let outcome = match &shard.imp {
            ShardImpl::Local(engine) => {
                engine.register_tenant(tenant, (**keys).clone());
                Ok(())
            }
            ShardImpl::Remote(r) => {
                let frame = if replica {
                    wire::encode_replica_key_push(tenant, keys)
                } else {
                    wire::encode_key_push(tenant, keys)
                };
                r.push_keys(tenant, &frame)
            }
        };
        match &outcome {
            Ok(()) => {
                self.counters.key_pushes.fetch_add(1, Ordering::Relaxed);
                if replica {
                    self.counters
                        .keys_replicated
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.counters
                    .key_push_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Pushes keys for every `(tenant, keys, gained)` row of a migration
    /// plan. Failures are counted and skipped — used on the shrink path,
    /// where aborting would leave the fleet wedged on a dead node.
    fn push_gains_best_effort(&self, plan: &[(TenantId, Arc<TenantKeys>, Vec<ShardId>)]) {
        for (tenant, keys, gained) in plan {
            for &gid in gained {
                let target = self.topo.read().unwrap().shards.get(&gid).cloned();
                if let Some(target) = target {
                    let _ = self.push_keys_to(&target, *tenant, keys);
                }
            }
        }
    }

    /// Removes a shard from the ring: no new requests route to it, and
    /// its engine shuts down (pending jobs finish, workers join) as soon
    /// as the last in-flight reference drops — immediately when no
    /// request is mid-dispatch, otherwise when that request completes.
    /// Tenants mapped there move to the ring's next shard — their keys
    /// are pushed to each new holder *before* the ring write commits, so
    /// a moved tenant's first job at its new owner finds its keys. Pins
    /// to the removed shard are dropped. Returns `false` if the shard is
    /// unknown.
    pub fn remove_shard(&self, id: ShardId) -> bool {
        let _change = self.change_lock.lock().unwrap();
        if !self.topo.read().unwrap().shards.contains_key(&id) {
            return false;
        }
        let plan = self.plan_gains(|ring, pins| {
            ring.retain(|_, v| *v != id);
            pins.retain(|_, v| *v != id);
        });
        self.push_gains_best_effort(&plan);
        let removed = {
            let mut topo = self.topo.write().unwrap();
            let removed = topo.shards.remove(&id);
            if removed.is_some() {
                topo.ring.retain(|_, v| *v != id);
                topo.pins.retain(|_, v| *v != id);
            }
            removed
        };
        // Dropping the (usually last) Arc shuts the engine down; done
        // outside the lock so routing never blocks on a draining shard.
        if let Some(shard) = &removed {
            if let Some(r) = shard.remote() {
                r.shutdown();
            }
        }
        removed.is_some()
    }

    /// Shard ids and names, in id order.
    pub fn shards(&self) -> Vec<(ShardId, String)> {
        self.topo
            .read()
            .unwrap()
            .shards
            .values()
            .map(|s| (s.id, s.name.clone()))
            .collect()
    }

    /// The shard a tenant routes to right now: its pin if set, otherwise
    /// the first ring point clockwise of the tenant's hash. `None` when
    /// the router has no shards. Health-blind — the *dispatch* paths
    /// additionally skip ejected shards.
    pub fn shard_for(&self, tenant: TenantId) -> Option<ShardId> {
        let topo = self.topo.read().unwrap();
        Self::place(&topo, tenant)
    }

    fn place(topo: &Topology, tenant: TenantId) -> Option<ShardId> {
        if let Some(&pin) = topo.pins.get(&tenant) {
            return Some(pin);
        }
        if topo.ring.is_empty() {
            return None;
        }
        let point = mix64(tenant);
        topo.ring
            .range(point..)
            .next()
            .or_else(|| topo.ring.iter().next())
            .map(|(_, &id)| id)
    }

    /// Health-aware placement: `(primary, hedge replica)`. The primary
    /// is the pin, else the first *up* shard clockwise of the tenant's
    /// hash (falling back to the pure ring choice when every shard is
    /// ejected — someone has to take the error). The replica is the next
    /// distinct up shard, the failover/hedge target.
    fn place_pair(
        &self,
        topo: &Topology,
        tenant: TenantId,
    ) -> Option<(Arc<Shard>, Option<Arc<Shard>>)> {
        let order: Vec<ShardId> = match topo.pins.get(&tenant) {
            Some(&pin) => std::iter::once(pin)
                .chain(
                    topo.ring_walk(mix64(tenant))
                        .into_iter()
                        .filter(move |&s| s != pin),
                )
                .collect(),
            None => topo.ring_walk(mix64(tenant)),
        };
        if order.is_empty() {
            return None;
        }
        let up = |id: &ShardId| topo.shards.get(id).is_some_and(|s| s.is_up());
        // A node that recovered from an ejection serves as a replica but
        // is not promoted back to primary until an anti-entropy sweep
        // has re-verified its key material (it may have restarted
        // empty) — so the primary prefers up-and-caught-up shards.
        let trusted = |id: &ShardId| {
            topo.shards
                .get(id)
                .is_some_and(|s| s.is_up() && s.remote().is_none_or(|r| !r.needs_catchup()))
        };
        let primary_id = *order
            .iter()
            .find(|id| trusted(id))
            .or_else(|| order.iter().find(|id| up(id)))
            .unwrap_or(&order[0]);
        let primary = topo.shards.get(&primary_id)?.clone();
        // Only the first key_replicas shards hold this tenant's keys —
        // hedging past them would just manufacture UnknownTenant errors.
        let replica = order
            .iter()
            .take(self.cfg.key_replicas)
            .find(|&&id| id != primary_id && up(&id))
            .and_then(|id| topo.shards.get(id).cloned());
        Some((primary, replica))
    }

    fn shard(&self, id: ShardId) -> Result<Arc<Shard>, EngineError> {
        self.topo
            .read()
            .unwrap()
            .shards
            .get(&id)
            .cloned()
            .ok_or_else(|| EngineError::Validation(format!("unknown shard {id}")))
    }

    fn shard_of(&self, tenant: TenantId) -> Result<Arc<Shard>, EngineError> {
        let topo = self.topo.read().unwrap();
        let id = Self::place(&topo, tenant)
            .ok_or_else(|| EngineError::Validation("router has no shards".into()))?;
        topo.shards
            .get(&id)
            .cloned()
            .ok_or_else(|| EngineError::Validation(format!("shard {id} is gone")))
    }

    /// Pins a tenant to an explicit shard, overriding the hash ring. If
    /// the tenant is registered, its keys are pushed to the new holder —
    /// and acknowledged — *before* the pin commits, so its very next job
    /// can execute there.
    ///
    /// # Errors
    ///
    /// [`EngineError::Validation`] when the shard does not exist, or the
    /// key push failure that aborted the pin.
    pub fn pin_tenant(&self, tenant: TenantId, shard: ShardId) -> Result<(), EngineError> {
        let _change = self.change_lock.lock().unwrap();
        if !self.topo.read().unwrap().shards.contains_key(&shard) {
            return Err(EngineError::Validation(format!("unknown shard {shard}")));
        }
        let plan = self.plan_gains(|_, pins| {
            pins.insert(tenant, shard);
        });
        for (t, keys, gained) in &plan {
            for gid in gained {
                let target = self.shard(*gid)?;
                self.push_keys_to(&target, *t, keys)?;
            }
        }
        self.topo.write().unwrap().pins.insert(tenant, shard);
        Ok(())
    }

    /// Removes a tenant's pin (it reverts to hash placement, its keys
    /// migrating to the hash-placed holders first). Returns whether a
    /// pin existed.
    pub fn unpin_tenant(&self, tenant: TenantId) -> bool {
        let _change = self.change_lock.lock().unwrap();
        if !self.topo.read().unwrap().pins.contains_key(&tenant) {
            return false;
        }
        let plan = self.plan_gains(|_, pins| {
            pins.remove(&tenant);
        });
        self.push_gains_best_effort(&plan);
        self.topo.write().unwrap().pins.remove(&tenant).is_some()
    }

    /// Registers a tenant's keys: they are stored in the router's vault
    /// and pushed to every key-holder shard (the routed shard plus
    /// [`RouterConfig::key_replicas`]` − 1` ring successors — remote
    /// holders receive them over acknowledged `HEVK` frames). Returns
    /// the shard the tenant routes to.
    ///
    /// # Errors
    ///
    /// [`EngineError::Validation`] when the router has no shards; a
    /// failed push to the *primary* holder (replica push failures are
    /// counted but not fatal — the tenant can serve without a replica).
    pub fn register_tenant(
        &self,
        tenant: TenantId,
        keys: TenantKeys,
    ) -> Result<ShardId, EngineError> {
        let _change = self.change_lock.lock().unwrap();
        let keys = Arc::new(keys);
        let (primary, targets) = {
            let topo = self.topo.read().unwrap();
            let primary = Self::place(&topo, tenant)
                .ok_or_else(|| EngineError::Validation("router has no shards".into()))?;
            (primary, self.key_targets(&topo, tenant))
        };
        for id in targets {
            let target = self.shard(id)?;
            let outcome = self.push_keys_to(&target, tenant, &keys);
            if id == primary {
                outcome?;
            }
        }
        self.vault.lock().unwrap().insert(tenant, keys);
        Ok(primary)
    }

    /// Handles an inbound `HEVK` key push (the receiving half of
    /// cross-node key migration): decodes the keys against the tenant's
    /// routed shard context, registers them with every local key-holder
    /// shard and the vault, and returns the ack frame to send back.
    pub fn handle_key_push(&self, frame: &[u8]) -> Vec<u8> {
        let tenant = match wire::peek_key_tenant(frame) {
            Ok(t) => t,
            Err(e) => return wire::encode_key_ack(u64::MAX, Err(&e.to_string())),
        };
        match self.apply_key_push(tenant, frame) {
            Ok(()) => wire::encode_key_ack(tenant, Ok(())),
            Err(e) => wire::encode_key_ack(tenant, Err(&e.to_string())),
        }
    }

    fn apply_key_push(&self, tenant: TenantId, frame: &[u8]) -> Result<(), EngineError> {
        let shard = self.shard_of(tenant)?;
        let (_, keys) = wire::decode_key_push(&shard.ctx, frame)?;
        // Count durability copies received: this node is holding the
        // tenant's keys as a replica, not its primary.
        if wire::peek_key_push_replica(frame).unwrap_or(false) {
            self.counters
                .keys_replicated
                .fetch_add(1, Ordering::Relaxed);
        }
        let keys = Arc::new(keys);
        let targets = {
            let topo = self.topo.read().unwrap();
            self.key_targets(&topo, tenant)
        };
        // Local holders only: a front router re-pushing to *its* remotes
        // would bounce key frames around the cluster.
        for id in targets {
            if let Ok(target) = self.shard(id) {
                if let Some(engine) = target.local() {
                    engine.register_tenant(tenant, (*keys).clone());
                }
            }
        }
        self.vault.lock().unwrap().insert(tenant, keys);
        Ok(())
    }

    /// Anti-entropy sweep: re-checks every vaulted tenant's replica set
    /// and re-pushes keys to any holder that is missing them. A local
    /// holder is "missing" when its registry no longer contains the
    /// tenant (including LRU eviction — see
    /// [`RouterStats::keys_evicted`]); a healthy remote holder that is
    /// flagged as catching up after a breaker ejection is re-pushed
    /// every vaulted tenant it should hold, then — if every push
    /// succeeded — re-admitted as a primary candidate via
    /// [`RemoteShard::mark_caught_up`]. Down remotes are skipped; the
    /// next sweep retries them.
    ///
    /// Returns the number of key pushes performed.
    ///
    /// [`RemoteShard::mark_caught_up`]: crate::remote::RemoteShard::mark_caught_up
    pub fn anti_entropy_sweep(&self) -> usize {
        let _change = self.change_lock.lock().unwrap();
        // Remote shards that are up but still flagged stale: assume they
        // can be caught up, and clear the assumption on any failed push.
        let mut catchup_ok: HashMap<ShardId, bool> = self
            .all_shards()
            .iter()
            .filter(|s| s.remote().is_some_and(|r| r.healthy() && r.needs_catchup()))
            .map(|s| (s.id, true))
            .collect();
        let vault: Vec<(TenantId, Arc<TenantKeys>)> = {
            let vault = self.vault.lock().unwrap();
            vault.iter().map(|(&t, k)| (t, Arc::clone(k))).collect()
        };
        let mut repaired = 0usize;
        for (tenant, keys) in vault {
            let targets = {
                let topo = self.topo.read().unwrap();
                self.key_targets(&topo, tenant)
            };
            for id in targets {
                let Ok(target) = self.shard(id) else { continue };
                let needs = match &target.imp {
                    ShardImpl::Local(engine) => !engine.registry().contains(tenant),
                    ShardImpl::Remote(r) => {
                        if !r.healthy() {
                            continue;
                        }
                        catchup_ok.contains_key(&id)
                    }
                };
                if !needs {
                    continue;
                }
                match self.push_keys_to(&target, tenant, &keys) {
                    Ok(()) => repaired += 1,
                    Err(_) => {
                        if let Some(flag) = catchup_ok.get_mut(&id) {
                            *flag = false;
                        }
                    }
                }
            }
        }
        for (id, ok) in catchup_ok {
            if !ok {
                continue;
            }
            if let Ok(shard) = self.shard(id) {
                if let Some(r) = shard.remote() {
                    r.mark_caught_up();
                }
            }
        }
        repaired
    }

    /// Serializes every vaulted tenant's keys as a checksummed `HEVR`
    /// snapshot (see [`wire::encode_registry_snapshot`]). Byte-for-byte
    /// deterministic for a given tenant population: entries are sorted
    /// by tenant id.
    pub fn snapshot_keys(&self) -> Vec<u8> {
        let mut entries: Vec<(TenantId, Arc<TenantKeys>)> = {
            let vault = self.vault.lock().unwrap();
            vault.iter().map(|(&t, k)| (t, Arc::clone(k))).collect()
        };
        entries.sort_by_key(|(t, _)| *t);
        wire::encode_registry_snapshot(&entries)
    }

    /// Restores tenants from an `HEVR` snapshot produced by
    /// [`Self::snapshot_keys`] (or [`crate::registry::KeyRegistry::snapshot`]):
    /// each tenant is re-registered through [`Self::register_tenant`],
    /// so keys land in the vault and on every current key-holder shard.
    /// Returns the number of tenants restored.
    ///
    /// # Errors
    ///
    /// [`EngineError::IntegrityFailure`] when the snapshot's CRC does
    /// not verify or its structure is malformed — nothing is restored in
    /// that case (verification happens before any registration).
    /// [`EngineError::Validation`] when the router has no shards.
    pub fn restore_keys(&self, bytes: &[u8]) -> Result<usize, EngineError> {
        let ctx = {
            let shards = self.all_shards();
            let Some(first) = shards.first() else {
                return Err(EngineError::Validation("router has no shards".into()));
            };
            Arc::clone(&first.ctx)
        };
        let entries = match wire::decode_registry_snapshot(&ctx, bytes) {
            Ok(entries) => entries,
            Err(e) => {
                crate::registry::note_snapshot_restore(false);
                return Err(e);
            }
        };
        let restored = entries.len();
        for (tenant, keys) in entries {
            self.register_tenant(tenant, keys)?;
        }
        crate::registry::note_snapshot_restore(true);
        Ok(restored)
    }

    /// Sets a tenant's fair-share weight on its current shard.
    ///
    /// # Errors
    ///
    /// [`EngineError::Validation`] when the router has no shards or the
    /// tenant routes to a remote shard (weights are a node-local knob).
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: f64) -> Result<(), EngineError> {
        let shard = self.shard_of(tenant)?;
        match shard.local() {
            Some(engine) => {
                engine.set_tenant_weight(tenant, weight);
                Ok(())
            }
            None => Err(EngineError::Validation(format!(
                "tenant {tenant} routes to remote shard {}; set its weight on that node",
                shard.id
            ))),
        }
    }

    /// Routes a request to its tenant's shard and submits it. Requests
    /// routed to a remote shard are forwarded as frames (with hedging)
    /// and the reply decoded back.
    ///
    /// # Errors
    ///
    /// See [`Engine::submit`]; additionally fails when the router has no
    /// shards.
    pub fn submit(&self, req: EvalRequest) -> Result<JobHandle, EngineError> {
        let (tx, rx) = mpsc::channel();
        let (_, id) = self.submit_with_callback(req, move |outcome| {
            let _ = tx.send(outcome);
        })?;
        Ok(JobHandle::from_channel(id, rx))
    }

    /// Routes a request and delivers the outcome to `done` from the
    /// owning shard's worker thread (or, for remote shards, the reply
    /// reader thread). Returns `(shard, job_id)` — job ids are scoped
    /// per shard.
    ///
    /// # Errors
    ///
    /// See [`Engine::submit_with_callback`]; additionally fails when the
    /// router has no shards.
    pub fn submit_with_callback<F>(
        &self,
        req: EvalRequest,
        done: F,
    ) -> Result<(ShardId, u64), EngineError>
    where
        F: FnOnce(Result<EvalResponse, EngineError>) + Send + 'static,
    {
        let shard = self.shard_of(req.tenant)?;
        match &shard.imp {
            ShardImpl::Local(engine) => {
                let id = engine.submit_with_callback(req, done)?;
                Ok((shard.id, id))
            }
            ShardImpl::Remote(_) => {
                let frame = wire::encode_request(&req);
                let ctx = Arc::clone(&shard.ctx);
                self.dispatch_frame_with_callback(&frame, move |reply| {
                    let outcome = match wire::decode_response(&ctx, &reply) {
                        Ok(wire::ResponseFrame::Ok(resp)) => Ok(resp),
                        // Re-raise a proxied refusal with its original
                        // code and hint intact, not as a transport error.
                        Ok(wire::ResponseFrame::Err {
                            code,
                            retry_after_us,
                            message,
                            ..
                        }) => Err(EngineError::from_wire(code, retry_after_us, message)),
                        Err(e) => Err(e),
                    };
                    done(outcome);
                })
            }
        }
    }

    /// Submit and wait (convenience).
    ///
    /// # Errors
    ///
    /// See [`ShardRouter::submit`].
    pub fn call(&self, req: EvalRequest) -> Result<EvalResponse, EngineError> {
        self.submit(req)?.wait()
    }

    /// Routes a scalar request to its tenant's shard for batching.
    ///
    /// # Errors
    ///
    /// See [`Engine::submit_scalar`]; additionally fails when the router
    /// has no shards or the tenant routes to a remote shard (batching
    /// happens on the owning node).
    pub fn submit_scalar(&self, req: ScalarRequest) -> Result<ScalarTicket, EngineError> {
        let shard = self.shard_of(req.tenant)?;
        match shard.local() {
            Some(engine) => engine.submit_scalar(req),
            None => Err(EngineError::Validation(format!(
                "tenant {} routes to remote shard {}; submit scalars on that node",
                req.tenant, shard.id
            ))),
        }
    }

    /// Dispatches every partially-filled batch on every local shard.
    pub fn flush_batches(&self) {
        for shard in self.all_shards() {
            if let Some(engine) = shard.local() {
                engine.flush_batches();
            }
        }
    }

    /// Routes a serialized `HEVQ` request frame: an explicit shard address
    /// wins, an unrouted frame is placed by tenant hash; the request is
    /// decoded against that shard's context, evaluated, and the outcome
    /// returned as an `HEVP` frame stamped with the producing shard.
    /// Transport-level failures (bad frame, no shards) come back as error
    /// frames with job id `u64::MAX`.
    pub fn dispatch_frame(&self, frame: &[u8]) -> Vec<u8> {
        let (tx, rx) = mpsc::channel();
        match self.dispatch_frame_with_callback(frame, move |reply| {
            let _ = tx.send(reply);
        }) {
            Ok(_) => rx
                .recv_timeout(Duration::from_secs(60))
                .unwrap_or_else(|_| {
                    wire::encode_response(&Err((
                        u64::MAX,
                        EngineError::Internal("no reply within 60s".into()),
                    )))
                }),
            Err(e) => wire::encode_response(&Err((u64::MAX, e))),
        }
    }

    /// Resolves a frame's target shards from its header alone: an
    /// explicit shard address wins (and opts out of hedging — the caller
    /// chose); an unrouted frame is placed health-aware by tenant hash,
    /// with the tenant's key replica as hedge target.
    fn resolve_pair(&self, frame: &[u8]) -> Result<(Arc<Shard>, Option<Arc<Shard>>), EngineError> {
        match wire::peek_shard(frame)? {
            Some(id) => Ok((self.shard(id)?, None)),
            None => {
                let tenant = wire::peek_tenant(frame)?;
                let topo = self.topo.read().unwrap();
                self.place_pair(&topo, tenant)
                    .ok_or_else(|| EngineError::Validation("router has no shards".into()))
            }
        }
    }

    /// The pipelined frame seam: routes a serialized `HEVQ` request frame
    /// like [`ShardRouter::dispatch_frame`], but returns as soon as the
    /// job is queued (or forwarded, for remote shards) and delivers the
    /// stamped `HEVP` reply frame to `done`. This is what a TCP
    /// front-end uses to keep many frames in flight per connection.
    ///
    /// Jobs that fail *after* submission come back through `done` as
    /// error frames stamped with the producing shard and job id
    /// `u64::MAX` (the engine's callback does not carry the id on the
    /// error path); transports that need exact correlation attach their
    /// own envelope around the frame, as `hefv-net` does.
    ///
    /// # Errors
    ///
    /// Routing, decode and submission failures are returned synchronously
    /// — `done` is *not* called — so the caller can encode them itself
    /// (e.g. with [`wire::encode_response`]) without giving up the
    /// callback.
    pub fn dispatch_frame_with_callback<F>(
        &self,
        frame: &[u8],
        done: F,
    ) -> Result<(ShardId, u64), EngineError>
    where
        F: FnOnce(Vec<u8>) + Send + 'static,
    {
        let (primary, replica) = self.resolve_pair(frame)?;
        if let Some(engine) = primary.local() {
            let req = wire::decode_request(&primary.ctx, frame)?;
            let stamp = primary.id as u8;
            let id = engine.submit_with_callback(req, move |outcome| {
                let outcome = outcome.map_err(|e| (u64::MAX, e));
                done(wire::encode_response_from_shard(&outcome, stamp));
            })?;
            return Ok((primary.id, id));
        }
        // Remote primary: there is no blocking submit on the proxy, so
        // absorb backpressure here by retrying the non-blocking path.
        let cell: Arc<Mutex<Option<FrameCallback>>> = Arc::new(Mutex::new(Some(Box::new(done))));
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let cell2 = Arc::clone(&cell);
            let attempt = Box::new(move |reply: Vec<u8>| {
                if let Some(f) = cell2.lock().unwrap().take() {
                    f(reply);
                }
            });
            match self.dispatch_remote(&primary, replica.clone(), frame, attempt)? {
                Some(placed) => return Ok(placed),
                None => {
                    if Instant::now() >= deadline {
                        // 30 s of sustained backpressure is an overload
                        // refusal, not an internal fault — the caller's
                        // retry policy should see it as such.
                        return Err(EngineError::Overload {
                            retry_after_us: None,
                        });
                    }
                    if let Some(r) = primary.remote() {
                        r.wait_for_space(Duration::from_millis(5));
                    }
                }
            }
        }
    }

    /// Non-blocking [`ShardRouter::dispatch_frame_with_callback`]:
    /// `Ok(None)` means the owning shard's queue (or the remote proxy's
    /// in-flight window) is at capacity — nothing was enqueued, `done`
    /// was dropped unused, and the caller should hold the frame and
    /// retry. This is what lets the TCP poll thread turn engine
    /// backpressure into TCP backpressure instead of parking mid-sweep.
    ///
    /// # Errors
    ///
    /// Same as [`ShardRouter::dispatch_frame_with_callback`]; a full
    /// queue is `Ok(None)`, not an error.
    pub fn try_dispatch_frame_with_callback<F>(
        &self,
        frame: &[u8],
        done: F,
    ) -> Result<Option<(ShardId, u64)>, EngineError>
    where
        F: FnOnce(Vec<u8>) + Send + 'static,
    {
        let (primary, replica) = self.resolve_pair(frame)?;
        match &primary.imp {
            ShardImpl::Local(engine) => {
                // Header-only pre-check: while the shard is saturated,
                // refuse before paying for the payload decode — a stalled
                // caller may retry the same multi-MB frame every sweep.
                // The try-push below remains the authority on the race.
                if engine.queue_is_full() {
                    engine.shared().stats().on_refused();
                    return Ok(None);
                }
                let req = wire::decode_request(&primary.ctx, frame)?;
                let stamp = primary.id as u8;
                let id = engine.try_submit_with_callback(req, move |outcome| {
                    let outcome = outcome.map_err(|e| (u64::MAX, e));
                    done(wire::encode_response_from_shard(&outcome, stamp));
                })?;
                Ok(id.map(|id| (primary.id, id)))
            }
            ShardImpl::Remote(_) => self.dispatch_remote(&primary, replica, frame, Box::new(done)),
        }
    }

    /// Forwards a frame to a remote primary, arming a hedge to `replica`
    /// when configured. Returns the proxy correlation id as the job id.
    fn dispatch_remote(
        &self,
        primary: &Arc<Shard>,
        replica: Option<Arc<Shard>>,
        frame: &[u8],
        done: FrameCallback,
    ) -> Result<Option<(ShardId, u64)>, EngineError> {
        let r = primary.remote().expect("dispatch_remote on local shard");
        if r.at_capacity() {
            return Ok(None);
        }
        let once = Arc::new(OnceReply::new(done));
        let task = match (&self.cfg.hedge, replica) {
            (Some(_), Some(rep)) => Some(Arc::new(HedgeTask {
                once: Arc::clone(&once),
                fired: AtomicBool::new(false),
                live: AtomicI64::new(1),
                frame: frame.to_vec(),
                replica: rep,
                counters: Arc::clone(&self.counters),
            })),
            _ => None,
        };
        let stamp = primary.id as u8;
        let cb = {
            let once = Arc::clone(&once);
            let task = task.clone();
            move |result: Result<Vec<u8>, EngineError>| match result {
                Ok(mut reply) => {
                    wire::restamp_response_shard(&mut reply, stamp);
                    match &task {
                        Some(t) => t.complete_reply(reply, false),
                        None => {
                            once.complete(reply);
                        }
                    }
                }
                Err(e) => match &task {
                    Some(t) => t.on_arm_error(),
                    None => {
                        once.complete(wire::encode_response(&Err((u64::MAX, e))));
                    }
                },
            }
        };
        match r.try_dispatch(frame, cb) {
            Ok(Some(corr)) => {
                if let Some(t) = &task {
                    let hedge = self.cfg.hedge.as_ref().expect("task implies hedge config");
                    self.counters.armed.fetch_add(1, Ordering::Relaxed);
                    self.arm_hedge(Instant::now() + hedge_delay(hedge, frame), Arc::clone(t));
                }
                Ok(Some((primary.id, corr)))
            }
            Ok(None) => Ok(None),
            Err(e) => match task {
                // Synchronous failure (circuit open, pool dead): fail
                // over to the replica immediately.
                Some(t) => {
                    t.fired.store(true, Ordering::Release);
                    match t.dispatch_replica() {
                        Ok(Some(id)) => {
                            self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                            Ok(Some((t.replica.id, id)))
                        }
                        Ok(None) => Ok(None),
                        Err(_) => Err(e),
                    }
                }
                None => Err(e),
            },
        }
    }

    /// Arms the (lazily spawned) hedge-timer thread.
    fn arm_hedge(&self, at: Instant, task: Arc<HedgeTask>) {
        let mut guard = self.hedger.lock().unwrap();
        if guard.is_none() {
            let hedger = Arc::new(Hedger::new());
            let runner = Arc::clone(&hedger);
            let handle = std::thread::Builder::new()
                .name("hefv-hedge-timer".into())
                .spawn(move || runner.run())
                .expect("spawn hedge timer thread");
            *guard = Some((hedger, handle));
        }
        guard.as_ref().expect("just spawned").0.arm(at, task);
    }

    fn stop_hedger(&self) {
        if let Some((hedger, handle)) = self.hedger.lock().unwrap().take() {
            hedger.stop();
            let _ = handle.join();
        }
    }

    fn all_shards(&self) -> Vec<Arc<Shard>> {
        self.topo.read().unwrap().shards.values().cloned().collect()
    }

    /// Telemetry: every local shard's snapshot, every remote shard's
    /// transport counters, hedging counters, plus the local-fleet total.
    pub fn stats(&self) -> RouterStats {
        let mut total: Option<StatsSnapshot> = None;
        let mut per_shard = Vec::new();
        let mut remote = Vec::new();
        let mut keys_evicted = 0u64;
        for shard in self.all_shards() {
            match &shard.imp {
                ShardImpl::Local(engine) => {
                    let stats = engine.stats();
                    keys_evicted += engine.registry().evictions();
                    match &mut total {
                        None => total = Some(stats.clone()),
                        Some(t) => t.absorb(&stats),
                    }
                    per_shard.push(ShardStats {
                        id: shard.id,
                        name: shard.name.clone(),
                        up: true,
                        stats,
                    });
                }
                ShardImpl::Remote(r) => {
                    remote.push(RemoteShardStats {
                        id: shard.id,
                        name: shard.name.clone(),
                        endpoint: r.endpoint(),
                        stats: r.stats(),
                    });
                }
            }
        }
        RouterStats {
            per_shard,
            remote,
            hedge: self.counters.snapshot(),
            keys_evicted,
            total: total.unwrap_or_else(|| crate::stats::EngineStats::default().snapshot()),
        }
    }

    /// The most recent job spans from every local shard's flight
    /// recorder, as `(shard id, shard name, spans oldest-first)`.
    pub fn trace_spans(&self) -> Vec<(ShardId, String, Vec<crate::trace::SpanRecord>)> {
        self.all_shards()
            .into_iter()
            .filter_map(|s| {
                let engine = s.local()?;
                Some((s.id, s.name.clone(), engine.recorder().recent()))
            })
            .collect()
    }

    /// The most recent *slow* job spans (over each engine's slow-job
    /// threshold) from every local shard's flight recorder.
    pub fn slow_spans(&self) -> Vec<(ShardId, String, Vec<crate::trace::SpanRecord>)> {
        self.all_shards()
            .into_iter()
            .filter_map(|s| {
                let engine = s.local()?;
                Some((s.id, s.name.clone(), engine.recorder().slow_spans()))
            })
            .collect()
    }

    /// Plain-text rendering of [`ShardRouter::trace_spans`] and
    /// [`ShardRouter::slow_spans`] — the `HEVS` traces payload: one
    /// `trace=0x…` line per span, grouped per shard, slow spans last.
    pub fn render_traces(&self) -> String {
        let mut out = String::new();
        for (section, groups) in [("recent", self.trace_spans()), ("slow", self.slow_spans())] {
            for (id, name, spans) in groups {
                out.push_str(&format!(
                    "# shard {id} ({name}): {} {section} spans\n",
                    spans.len()
                ));
                for span in spans {
                    out.push_str(&span.to_string());
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Shuts every shard down: pending jobs drain, workers join, remote
    /// pools disconnect. Takes `&self` so a router shared behind an
    /// [`Arc`] (e.g. with a TCP front-end) can be stopped by any holder;
    /// the router is empty — but valid — afterwards, and refuses traffic
    /// like a fresh one.
    pub fn shutdown(&self) {
        self.stop_hedger();
        let shards = {
            let mut topo = self.topo.write().unwrap();
            topo.ring.clear();
            topo.pins.clear();
            std::mem::take(&mut topo.shards)
        };
        for shard in shards.values() {
            if let Some(r) = shard.remote() {
                r.shutdown();
            }
        }
        drop(shards);
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        self.stop_hedger();
    }
}

/// The hedge delay for one frame: the configured delay, clamped to a
/// fraction of the frame's deadline when it carries one.
fn hedge_delay(cfg: &HedgeConfig, frame: &[u8]) -> Duration {
    let mut delay = cfg.delay;
    if let Ok(Some(deadline_us)) = wire::peek_deadline(frame) {
        let scaled = (deadline_us * cfg.deadline_fraction / 1e6).max(0.0);
        delay = delay.min(Duration::from_secs_f64(scaled));
    }
    delay
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_router(n_shards: usize) -> ShardRouter {
        use hefv_core::params::FvParams;
        let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
        let router = ShardRouter::new();
        for i in 0..n_shards {
            router
                .add_shard(ShardSpec {
                    name: format!("s{i}"),
                    ctx: Arc::clone(&ctx),
                    config: EngineConfig {
                        workers: 1,
                        ..EngineConfig::default()
                    },
                })
                .unwrap();
        }
        router
    }

    #[test]
    fn placement_is_deterministic_and_total() {
        let router = bare_router(3);
        for tenant in 0..200u64 {
            let a = router.shard_for(tenant).unwrap();
            let b = router.shard_for(tenant).unwrap();
            assert_eq!(a, b);
            assert!(a < 3);
        }
        router.shutdown();
    }

    #[test]
    fn every_shard_owns_some_tenants() {
        let router = bare_router(3);
        let mut seen = std::collections::HashSet::new();
        for tenant in 0..500u64 {
            seen.insert(router.shard_for(tenant).unwrap());
        }
        assert_eq!(seen.len(), 3, "ring leaves a shard empty");
        router.shutdown();
    }

    #[test]
    fn pins_override_the_ring() {
        let router = bare_router(2);
        let tenant = 7;
        let hashed = router.shard_for(tenant).unwrap();
        let other = 1 - hashed;
        router.pin_tenant(tenant, other).unwrap();
        assert_eq!(router.shard_for(tenant), Some(other));
        assert!(router.unpin_tenant(tenant));
        assert_eq!(router.shard_for(tenant), Some(hashed));
        assert!(router.pin_tenant(tenant, 99).is_err(), "unknown shard");
        router.shutdown();
    }

    #[test]
    fn removed_shard_ids_are_reused() {
        use hefv_core::params::FvParams;
        let router = bare_router(2);
        assert!(router.remove_shard(0));
        assert!(!router.remove_shard(0), "already gone");
        let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
        let id = router
            .add_shard(ShardSpec {
                name: "replacement".into(),
                ctx,
                config: EngineConfig {
                    workers: 1,
                    ..EngineConfig::default()
                },
            })
            .unwrap();
        assert_eq!(id, 0, "rolling replacement reuses the retired id");
        assert_eq!(router.shards().len(), 2);
        router.shutdown();
    }

    #[test]
    fn empty_router_rejects_traffic() {
        let router = ShardRouter::new();
        assert_eq!(router.shard_for(1), None);
        assert!(router.register_tenant(1, TenantKeys::default()).is_err());
        router.shutdown();
    }

    #[test]
    fn key_targets_follow_pins_and_ring() {
        let router = bare_router(3);
        let tenant = 11;
        {
            let topo = router.topo.read().unwrap();
            let targets = router.key_targets(&topo, tenant);
            assert_eq!(targets.len(), 2, "key_replicas=2 over 3 shards");
            assert_eq!(targets[0], ShardRouter::place(&topo, tenant).unwrap());
            assert_ne!(targets[0], targets[1]);
        }
        // A pin prepends the pinned shard and keeps a ring successor.
        let pinned = {
            let topo = router.topo.read().unwrap();
            let hashed = ShardRouter::place(&topo, tenant).unwrap();
            (0..3).find(|id| *id != hashed).unwrap()
        };
        router.pin_tenant(tenant, pinned).unwrap();
        {
            let topo = router.topo.read().unwrap();
            let targets = router.key_targets(&topo, tenant);
            assert_eq!(targets[0], pinned);
            assert_eq!(targets.len(), 2);
        }
        router.shutdown();
    }

    #[test]
    fn registered_keys_replicate_to_ring_successor() {
        let router = bare_router(3);
        let tenant = 5;
        router
            .register_tenant(tenant, TenantKeys::default())
            .unwrap();
        let targets = {
            let topo = router.topo.read().unwrap();
            router.key_targets(&topo, tenant)
        };
        assert_eq!(targets.len(), 2);
        for id in targets {
            let shard = router.shard(id).unwrap();
            assert!(
                shard.local().unwrap().registry().get(tenant).is_some(),
                "keys missing on shard {id}"
            );
        }
        router.shutdown();
    }

    #[test]
    fn anti_entropy_restores_lost_local_replicas() {
        let router = bare_router(3);
        let tenant = 5;
        router
            .register_tenant(tenant, TenantKeys::default())
            .unwrap();
        let targets = {
            let topo = router.topo.read().unwrap();
            router.key_targets(&topo, tenant)
        };
        // Simulate a replica losing the keys (eviction, restart, …).
        let victim = router.shard(targets[1]).unwrap();
        assert!(victim.local().unwrap().registry().remove(tenant));
        assert!(!victim.local().unwrap().registry().contains(tenant));
        let repaired = router.anti_entropy_sweep();
        assert_eq!(repaired, 1, "exactly the lost replica is re-pushed");
        assert!(victim.local().unwrap().registry().contains(tenant));
        // A second sweep finds nothing to do.
        assert_eq!(router.anti_entropy_sweep(), 0);
        router.shutdown();
    }

    #[test]
    fn router_snapshots_restore_registered_tenants() {
        let router = bare_router(2);
        for tenant in [3u64, 9] {
            router
                .register_tenant(tenant, TenantKeys::default())
                .unwrap();
        }
        let snapshot = router.snapshot_keys();
        router.shutdown();

        let fresh = bare_router(2);
        assert_eq!(fresh.restore_keys(&snapshot).unwrap(), 2);
        for tenant in [3u64, 9] {
            let shard = fresh.shard_of(tenant).unwrap();
            assert!(shard.local().unwrap().registry().contains(tenant));
        }
        // A corrupted snapshot is refused wholesale.
        let mut torn = snapshot.clone();
        let mid = torn.len() / 2;
        torn[mid] ^= 0x40;
        assert!(matches!(
            fresh.restore_keys(&torn),
            Err(EngineError::IntegrityFailure(_))
        ));
        fresh.shutdown();
    }

    #[test]
    fn pin_migrates_keys_before_commit() {
        let router = bare_router(3);
        let tenant = 5;
        router
            .register_tenant(tenant, TenantKeys::default())
            .unwrap();
        let holders: HashSet<ShardId> = {
            let topo = router.topo.read().unwrap();
            router.key_targets(&topo, tenant).into_iter().collect()
        };
        let outsider = (0..3).find(|id| !holders.contains(id)).unwrap();
        router.pin_tenant(tenant, outsider).unwrap();
        let shard = router.shard(outsider).unwrap();
        assert!(
            shard.local().unwrap().registry().get(tenant).is_some(),
            "pin committed without the keys in place"
        );
        router.shutdown();
    }
}
