//! # hefv-engine
//!
//! A multi-tenant evaluation engine over the HEAT-rs FV library: the
//! software analogue of the paper's coprocessor scheduling, lifted to the
//! service level. The HPCA'19 design gets its throughput by dispatching
//! independent RNS/NTT work units onto parallel RPAUs; this crate applies
//! the same idea one layer up — concurrent encrypted-compute requests from
//! many tenants are validated, priced with the simulated-coprocessor cost
//! model ([`hefv_sim::cost`], Table II), and dispatched onto a worker pool
//! with bounded-bypass shortest-job-first scheduling, while each heavy
//! `Mult` fans out over `hefv_core::parallel` under a per-job thread
//! budget.
//!
//! The pieces:
//!
//! * [`router`] — the [`ShardRouter`]: consistent-hash tenant placement
//!   over several engine shards, explicit pinning, shard-addressed frame
//!   dispatch, and aggregated fleet telemetry;
//! * [`engine`] — the [`Engine`]: worker pool, submission, lifecycle;
//!   `Backend::Auto` engines pick the Traditional or HPS datapath per job
//!   from the cost model;
//! * [`admission`] — overload control and failure containment at the
//!   submission door: deadline-feasibility, memory-pressure,
//!   noise-budget, and brownout gates ([`SheddingPolicy`]), plus the
//!   per-(tenant, op-class) panic-quarantine table; refusals carry a
//!   typed, retryable-or-not [`ErrorCode`] on the wire;
//! * [`chaos`] — the `HEFV_CHAOS` worker-interior fault injector
//!   (panics, delay, arena pressure): the engine-side sibling of the
//!   transport's `HEFV_NET_FAULT`, off by default;
//! * [`request`] — [`EvalRequest`]: a straight-line op-graph
//!   (add/sub/neg/mul/mul_plain/rotate/sum_slots) over inline
//!   ciphertexts, with an optional virtual-clock deadline;
//! * [`registry`] — per-tenant key registry (pk/rlk/Galois) with LRU
//!   eviction; a tenant's jobs are evaluated *only* with that tenant's
//!   registered keys;
//! * [`batch`] — the batching front-end: compatible scalar requests are
//!   coalesced into slot-packed ciphertexts via `BatchEncoder` and the
//!   packed results demuxed back to each requester; a linger timer drains
//!   partial batches under light load;
//! * [`sched`] — the two-datapath cost estimator and the deterministic
//!   EDF/stride/aged-cost queue (per-tenant weights, optional deadlines);
//! * [`wire`] — shard-addressed request/response framing extending
//!   `hefv_core::wire`, plus the `HEVS` admin frames that serve metrics
//!   and trace dumps over the same connection;
//! * [`stats`] — per-op latency distributions, queue depth, datapath and
//!   scheduler-level attribution, per-tenant and noise-budget telemetry;
//! * [`metrics`] — mergeable log-linear latency [`Histogram`]s
//!   (p50/p95/p99/max) and the Prometheus-text exposition of a fleet's
//!   [`RouterStats`];
//! * [`trace`] — per-job [`trace::SpanRecord`]s (`admit → queue → batch →
//!   execute → reply-write`) in a lock-free-on-the-hot-path flight
//!   recorder with slow-job promotion.
//!
//! # Example
//!
//! ```
//! use hefv_core::prelude::*;
//! use hefv_engine::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! // One shared context; two tenants with independent keys.
//! let ctx = Arc::new(FvContext::new(FvParams::insecure_toy()).unwrap());
//! let engine = Engine::start(Arc::clone(&ctx), EngineConfig::default());
//! let mut rng = StdRng::seed_from_u64(7);
//! let (sk_a, pk_a, rlk_a) = keygen(&ctx, &mut rng);
//! let (_sk_b, pk_b, rlk_b) = keygen(&ctx, &mut rng);
//! engine.register_tenant(1, TenantKeys::compute(pk_a.clone(), rlk_a));
//! engine.register_tenant(2, TenantKeys::compute(pk_b, rlk_b));
//!
//! // Tenant 1 asks for 2·3 + 4 over encrypted inputs.
//! let t = ctx.params().t;
//! let n = ctx.params().n;
//! let enc = |v, rng: &mut StdRng| encrypt(&ctx, &pk_a, &Plaintext::new(vec![v], t, n), rng);
//! let req = EvalRequest {
//!     tenant: 1,
//!     inputs: vec![enc(2, &mut rng), enc(3, &mut rng), enc(4, &mut rng)],
//!     plaintexts: vec![],
//!     ops: vec![
//!         EvalOp::Mul(ValRef::Input(0), ValRef::Input(1)),
//!         EvalOp::Add(ValRef::Op(0), ValRef::Input(2)),
//!     ],
//!     deadline_us: None,
//!     trace_id: None,
//! };
//! let resp = engine.call(req).unwrap();
//! assert_eq!(decrypt(&ctx, &sk_a, &resp.result).coeffs()[0], 10);
//! assert!(resp.report.est_cost_us > 0.0);
//! engine.shutdown();
//! ```

pub mod admission;
pub mod batch;
pub mod chaos;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod registry;
pub mod remote;
pub mod request;
pub mod router;
pub mod sched;
pub mod stats;
pub mod trace;
pub mod wire;

pub use admission::SheddingPolicy;
pub use batch::{BatchResult, ScalarOp, ScalarRequest, ScalarTicket};
pub use chaos::ChaosPlan;
pub use engine::{Engine, EngineConfig, JobHandle};
pub use error::{EngineError, ErrorCode, ERROR_CODES};
pub use metrics::{render_prometheus, Histogram, HistogramSnapshot};
pub use registry::{KeyRegistry, TenantId, TenantKeys};
pub use remote::{
    BreakerState, FrameReceiver, FrameSender, RemoteShard, RemoteShardConfig, RemoteStatsSnapshot,
    ShardConnector,
};
pub use request::{EvalOp, EvalRequest, EvalResponse, JobReport, ValRef};
pub use router::{
    HedgeConfig, HedgeStatsSnapshot, RemoteShardSpec, RemoteShardStats, RouterConfig, RouterStats,
    ShardId, ShardRouter, ShardSpec, ShardStats,
};
pub use sched::SchedLevel;
pub use stats::StatsSnapshot;
pub use trace::{FlightRecorder, SpanRecord};

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::admission::SheddingPolicy;
    pub use crate::batch::{BatchResult, ScalarOp, ScalarRequest, ScalarTicket};
    pub use crate::chaos::ChaosPlan;
    pub use crate::engine::{Engine, EngineConfig, JobHandle};
    pub use crate::error::{EngineError, ErrorCode};
    pub use crate::metrics::{render_prometheus, Histogram, HistogramSnapshot};
    pub use crate::registry::{KeyRegistry, TenantId, TenantKeys};
    pub use crate::remote::{
        BreakerState, FrameReceiver, FrameSender, RemoteShard, RemoteShardConfig,
        RemoteStatsSnapshot, ShardConnector,
    };
    pub use crate::request::{EvalOp, EvalRequest, EvalResponse, JobReport, ValRef};
    pub use crate::router::{
        HedgeConfig, HedgeStatsSnapshot, RemoteShardSpec, RemoteShardStats, RouterConfig,
        RouterStats, ShardId, ShardRouter, ShardSpec, ShardStats,
    };
    pub use crate::sched::SchedLevel;
    pub use crate::stats::StatsSnapshot;
    pub use crate::trace::{FlightRecorder, SpanRecord};
}
