//! Cost-aware scheduling: the simulated-coprocessor cost model prices each
//! request on *both* datapaths, and a weighted, deadline-aware priority
//! queue orders work on a deterministic virtual clock.
//!
//! The paper's coprocessor gets its throughput from scheduling independent
//! RNS/NTT work units onto parallel RPAUs; at the service level the
//! analogous levers are choosing *which job* each worker runs next and
//! *which datapath* runs it. Both decisions come from the same cost model:
//!
//! * [`CostEstimator`] prices every request twice — once on the HPS
//!   coprocessor ([`hefv_sim::coproc::Coprocessor`], Table II) and once on
//!   the traditional-CRT coprocessor (§VI-C). The two architectures win in
//!   different regimes: HPS `Lift`/`Scale` is constant-latency while the
//!   traditional long-integer cores scale with `n`, but the traditional
//!   design streams a 3× smaller switching key, so key-switch-heavy jobs
//!   (rotations, slot sums) price cheaper there. [`Backend::Auto`] engines
//!   use [`CostEstimator::cheaper_backend`] to dispatch per job.
//!
//! * [`JobQueue`] is a three-level scheduler, deterministic given the push
//!   sequence (no wall-clock reads — time is *virtual*, advanced by the
//!   estimated cost of each popped job):
//!
//!   1. **Deadline guard (EDF).** A job may carry an absolute virtual
//!      deadline. The guard tracks every deadline job's *latest feasible
//!      start* (`deadline − cost`); if serving the cost-order candidate
//!      would push the virtual clock past any of them (or one has
//!      already passed), deadline jobs are served earliest-deadline-first
//!      instead — EDF exactly when feasibility is at stake, cost order
//!      otherwise. Each deadline job preempts at most once (it is then
//!      gone), so the bypass it inflicts on the cost order is bounded by
//!      the number of deadline jobs in the queue.
//!   2. **Weighted fair sharing across tenants (stride scheduling).**
//!      Every tenant has a weight; serving one of its jobs advances its
//!      *pass* by `cost / weight`, and the tenant with the smallest pass
//!      is served next. Over any backlogged interval each tenant's share
//!      of simulated service converges to `weight / Σ weights`. A tenant
//!      going idle forfeits unused credit: on re-activation its pass is
//!      clamped up to the global virtual service time.
//!   3. **Bounded-bypass SJF within a tenant.** Jobs of one tenant are
//!      ordered by *aged cost*, `key = arrival_seq × aging_weight_us +
//!      cost_us`: shortest-job-first, but a job can be overtaken by at
//!      most `cost / aging_weight` later-arriving cheaper jobs before its
//!      key is the minimum.

use crate::registry::TenantId;
use crate::request::{EvalOp, EvalRequest, ValRef};
use hefv_core::context::FvContext;
use hefv_core::eval::Backend;
use hefv_sim::clock::ClockConfig;
use hefv_sim::coproc::{
    trad_add_us, trad_hoisted_rotations_kernel_split_us, trad_hoisted_rotations_us_for,
    trad_mult_kernel_split_us, trad_mult_us_for, trad_rotate_kernel_split_us, trad_rotate_us_for,
    trad_sum_slots_kernel_split_us, trad_sum_slots_us_for, Coprocessor,
};
use hefv_sim::cost::TradCostModel;
use hefv_sim::dma::DmaModel;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Condvar, Mutex};

/// Per-op prices of one datapath, µs.
#[derive(Debug, Clone, Copy)]
struct OpPrices {
    mult_us: f64,
    add_us: f64,
    rotate_us: f64,
    /// Marginal price of one *additional* rotation in a hoisted batch
    /// (the decomposition already paid by the run's first rotation).
    rotate_hoisted_extra_us: f64,
    /// One hoisted slot sum (grouped doubling rounds).
    sum_slots_us: f64,
    /// (transform µs, basis-conversion µs) inside one `Mult`.
    mult_split: (f64, f64),
    /// (transform µs, basis-conversion µs) inside one rotation.
    rotate_split: (f64, f64),
    /// Kernel split of the marginal hoisted rotation.
    rotate_hoisted_extra_split: (f64, f64),
    /// Kernel split of one hoisted slot sum.
    sum_slots_split: (f64, f64),
}

/// Walks a request's ops, telling the callback whether each `Rotate`
/// rides a hoisted run (consecutive rotations of the same source value
/// share one digit decomposition — exactly how the engine executes them).
fn for_each_op_hoisted(ops: &[EvalOp], mut f: impl FnMut(&EvalOp, bool)) {
    let mut prev: Option<ValRef> = None;
    for op in ops {
        let hoisted = matches!(op, EvalOp::Rotate(a, _) if prev == Some(*a));
        f(op, hoisted);
        prev = match op {
            EvalOp::Rotate(a, _) => Some(*a),
            _ => None,
        };
    }
}

impl OpPrices {
    fn op_us(&self, op: &EvalOp) -> f64 {
        match op {
            EvalOp::Add(..) | EvalOp::Sub(..) | EvalOp::Neg(..) => self.add_us,
            EvalOp::Mul(..) => self.mult_us,
            // Ciphertext × plaintext skips lift/scale/relin: two forward
            // and two inverse transform sets plus pointwise work — priced
            // as a quarter Mult (the Mult microcode runs 4× that work
            // across the Q basis plus relinearization).
            EvalOp::MulPlain(..) => self.mult_us / 4.0,
            EvalOp::Rotate(..) => self.rotate_us,
            EvalOp::SumSlots(..) => self.sum_slots_us,
        }
    }

    fn request_us(&self, req: &EvalRequest) -> f64 {
        let mut total = 0.0;
        for_each_op_hoisted(&req.ops, |op, hoisted| {
            total += if hoisted {
                self.rotate_hoisted_extra_us
            } else {
                self.op_us(op)
            };
        });
        total
    }

    /// Where an op's kernel time goes: `(ntt_us, basis_conv_us)`.
    /// Coefficient-wise ops contribute to neither bucket; `MulPlain` is
    /// transform-only (it never lifts or scales).
    fn op_kernel_us(&self, op: &EvalOp) -> (f64, f64) {
        match op {
            EvalOp::Add(..) | EvalOp::Sub(..) | EvalOp::Neg(..) => (0.0, 0.0),
            EvalOp::Mul(..) => self.mult_split,
            EvalOp::MulPlain(..) => (self.mult_split.0 / 4.0, 0.0),
            EvalOp::Rotate(..) => self.rotate_split,
            EvalOp::SumSlots(..) => self.sum_slots_split,
        }
    }

    fn request_kernel_us(&self, req: &EvalRequest) -> (f64, f64) {
        let mut acc = (0.0, 0.0);
        for_each_op_hoisted(&req.ops, |op, hoisted| {
            let (dn, db) = if hoisted {
                self.rotate_hoisted_extra_split
            } else {
                self.op_kernel_us(op)
            };
            acc = (acc.0 + dn, acc.1 + db);
        });
        acc
    }
}

/// Prices a request in simulated coprocessor microseconds, on either
/// datapath.
#[derive(Debug, Clone)]
pub struct CostEstimator {
    hps: OpPrices,
    trad: OpPrices,
}

impl CostEstimator {
    /// Builds the per-op price lists for one context by running the
    /// Table II microcode through both architectures' cycle models once.
    ///
    /// Both cycle models are instantiated at the *context's* ring degree
    /// (the calibrated per-instruction overheads stay at their Table II
    /// values): comparing a ctx-scaled traditional estimate against
    /// n=4096-frozen HPS instruction prices would bias every dispatch
    /// decision off the paper's shape.
    pub fn new(ctx: &FvContext) -> Self {
        let poly = hefv_sim::cost::CostModel {
            n: ctx.params().n,
            ..hefv_sim::cost::CostModel::default()
        };
        let cop = Coprocessor {
            cost: poly,
            ..Coprocessor::default()
        };
        let hps = {
            let mult_us = cop.run_mult(ctx).total_us;
            let add_us = cop.run_add().total_us;
            let rotate_us = cop.run_rotate(ctx).total_us;
            // Marginal hoisted rotation: the cost a batch pays for one
            // more rotation once the decomposition exists.
            let hoist1 = cop.run_hoisted_rotations(ctx, 1).total_us;
            let hoist2 = cop.run_hoisted_rotations(ctx, 2).total_us;
            let split1 = cop.hoisted_rotations_kernel_split_us(ctx, 1);
            let split2 = cop.hoisted_rotations_kernel_split_us(ctx, 2);
            OpPrices {
                mult_us,
                add_us,
                rotate_us,
                rotate_hoisted_extra_us: hoist2 - hoist1,
                sum_slots_us: cop.run_sum_slots(ctx).total_us,
                mult_split: cop.mult_kernel_split_us(ctx),
                rotate_split: cop.rotate_kernel_split_us(ctx),
                rotate_hoisted_extra_split: (split2.0 - split1.0, split2.1 - split1.1),
                sum_slots_split: cop.sum_slots_kernel_split_us(ctx),
            }
        };
        let trad = {
            let model = TradCostModel {
                poly,
                ..TradCostModel::default()
            };
            let dma = DmaModel::default();
            let clocks = ClockConfig::non_hps();
            let mult_us = trad_mult_us_for(ctx, &model, &dma, &clocks);
            let add_us = trad_add_us(&model, &clocks);
            let rotate_us = trad_rotate_us_for(ctx, &model, &dma, &clocks);
            let hoist1 = trad_hoisted_rotations_us_for(ctx, &model, &dma, &clocks, 1);
            let hoist2 = trad_hoisted_rotations_us_for(ctx, &model, &dma, &clocks, 2);
            let split1 = trad_hoisted_rotations_kernel_split_us(ctx, &model, &clocks, 1);
            let split2 = trad_hoisted_rotations_kernel_split_us(ctx, &model, &clocks, 2);
            OpPrices {
                mult_us,
                add_us,
                rotate_us,
                rotate_hoisted_extra_us: hoist2 - hoist1,
                sum_slots_us: trad_sum_slots_us_for(ctx, &model, &dma, &clocks),
                mult_split: trad_mult_kernel_split_us(ctx, &model, &clocks),
                rotate_split: trad_rotate_kernel_split_us(ctx, &model, &clocks),
                rotate_hoisted_extra_split: (split2.0 - split1.0, split2.1 - split1.1),
                sum_slots_split: trad_sum_slots_kernel_split_us(ctx, &model, &clocks),
            }
        };
        CostEstimator { hps, trad }
    }

    fn prices(&self, backend: Backend) -> &OpPrices {
        match backend {
            Backend::Traditional => &self.trad,
            _ => &self.hps,
        }
    }

    /// Price of one op on the default (HPS) datapath, µs.
    pub fn op_us(&self, op: &EvalOp) -> f64 {
        self.hps.op_us(op)
    }

    /// Price of one op on a specific datapath, µs ([`Backend::Auto`]
    /// prices as the cheaper of the two).
    pub fn op_us_for(&self, op: &EvalOp, backend: Backend) -> f64 {
        match backend {
            Backend::Auto => self.trad.op_us(op).min(self.hps.op_us(op)),
            b => self.prices(b).op_us(op),
        }
    }

    /// Price of a whole request on the default (HPS) datapath, µs.
    pub fn request_us(&self, req: &EvalRequest) -> f64 {
        self.hps.request_us(req)
    }

    /// Price of a whole request on a specific datapath, µs
    /// ([`Backend::Auto`] prices as [`CostEstimator::cheaper_backend`]).
    pub fn request_us_for(&self, req: &EvalRequest, backend: Backend) -> f64 {
        match backend {
            Backend::Auto => self.cheaper_backend(req).1,
            b => self.prices(b).request_us(req),
        }
    }

    /// The concrete datapath that prices this request cheaper, with its
    /// price. Ties go to HPS (the paper's default configuration).
    pub fn cheaper_backend(&self, req: &EvalRequest) -> (Backend, f64) {
        let hps = self.hps.request_us(req);
        let trad = self.trad.request_us(req);
        if trad < hps {
            (Backend::Traditional, trad)
        } else {
            (Backend::default(), hps)
        }
    }

    /// The price of one `Mult` on the HPS datapath, µs (used to derive the
    /// aging weight).
    pub fn mult_us(&self) -> f64 {
        self.hps.mult_us
    }

    /// Model-attributed kernel time of a whole request on a concrete
    /// datapath: `(ntt_us, basis_conv_us)` — how much of the priced cost
    /// is transforms vs `Lift`/`Scale` basis conversion. [`Backend::Auto`]
    /// attributes on the HPS model (callers that resolved `Auto` per job
    /// should pass the resolved backend). Feeds the engine's
    /// `ntt_us`/`basis_conv_us` telemetry so fleet stats expose where
    /// kernel time goes.
    pub fn request_kernel_us_for(&self, req: &EvalRequest, backend: Backend) -> (f64, f64) {
        self.prices(backend.resolve()).request_kernel_us(req)
    }
}

/// Per-job scheduling metadata handed to [`JobQueue::push_qos`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QosSpec {
    /// The tenant whose fair-share account this job bills against.
    pub tenant: TenantId,
    /// Relative deadline on the virtual clock, µs from enqueue. `None`
    /// jobs are scheduled purely by weighted aged cost.
    pub deadline_us: Option<f64>,
}

/// The scheduler level that released a job — which of the three-level
/// policy's decisions was binding for that pop. Telemetry attributes
/// queue wait per level so an operator can see whether latency comes
/// from deadline pressure (`edf`), cross-tenant contention (`weighted`),
/// or plain backlog (`sjf`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedLevel {
    /// Level 1: the earliest-deadline-first guard (including admission
    /// diverts that protect a still-feasible deadline).
    Deadline,
    /// Level 2: the stride pick between multiple backlogged tenants.
    Weighted,
    /// Level 3: a single tenant's aged shortest-job-first heap.
    Shortest,
}

impl SchedLevel {
    /// All levels, in table order (`edf`, `weighted`, `sjf`).
    pub const ALL: [SchedLevel; 3] = [
        SchedLevel::Deadline,
        SchedLevel::Weighted,
        SchedLevel::Shortest,
    ];

    /// Metric label: `"edf"` / `"weighted"` / `"sjf"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SchedLevel::Deadline => "edf",
            SchedLevel::Weighted => "weighted",
            SchedLevel::Shortest => "sjf",
        }
    }

    /// Index into per-level tables (the order of [`SchedLevel::ALL`]).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            SchedLevel::Deadline => 0,
            SchedLevel::Weighted => 1,
            SchedLevel::Shortest => 2,
        }
    }
}

/// Outcome of a [`JobQueue::try_push_qos`]: a refused job is handed
/// back so the caller can retry later (or drop it) without the queue
/// ever invoking — or losing — its callback.
pub enum TryPush<T> {
    /// The job was enqueued.
    Queued,
    /// The queue is at capacity; the job is returned untouched.
    Full(T),
    /// The queue is closed; the job is returned untouched.
    Closed(T),
}

/// Index-heap entry (lazily invalidated against the slab).
struct Keyed {
    key: f64,
    seq: u64,
}

impl PartialEq for Keyed {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl Eq for Keyed {}

impl Ord for Keyed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap over (key, seq) through a max BinaryHeap.
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Keyed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Entry<T> {
    job: T,
    tenant: TenantId,
    cost_us: f64,
}

struct TenantState {
    /// Stride pass: cumulative weighted service, µs.
    pass_us: f64,
    weight: f64,
    /// Aged-cost order over this tenant's live jobs (lazily invalidated).
    queued: BinaryHeap<Keyed>,
    /// Live jobs (heap entries may be stale after an EDF steal).
    live: usize,
}

struct QueueInner<T> {
    slab: HashMap<u64, Entry<T>>,
    /// Per-tenant scheduling state, present only while the tenant has
    /// live jobs — so the stride scan on pop is O(backlogged tenants)
    /// and tenant churn cannot grow the map without bound.
    tenants: HashMap<TenantId, TenantState>,
    /// Configured fair-share weights (operator-set, survives idleness).
    weights: HashMap<TenantId, f64>,
    /// Earliest-deadline index over deadline-carrying jobs (lazy).
    edf: BinaryHeap<Keyed>,
    /// Latest-feasible-start index (`deadline − cost`) over the same
    /// jobs (lazy): the admission guard that keeps a long non-deadline
    /// job from overshooting any deadline job's last start.
    lst: BinaryHeap<Keyed>,
    /// Virtual service clock: Σ cost of popped jobs, µs.
    virtual_now_us: f64,
    /// Σ estimated cost of the jobs waiting right now, µs — the
    /// backlog the admission deadline gate prices a new job against.
    queued_cost_us: f64,
    /// Pass of the most recently selected tenant (activation clamp).
    vtime_us: f64,
    next_seq: u64,
    closed: bool,
}

/// Blocking multi-producer/multi-consumer scheduling queue, bounded for
/// backpressure: `push` blocks while the queue is at capacity, so
/// producers slow to the workers' drain rate instead of growing the heap
/// (and the inline ciphertexts it holds) without limit.
///
/// Ordering is the three-level policy described in the module docs:
/// EDF-when-urgent over stride-weighted tenants over aged-cost SJF. The
/// queue never reads a wall clock, so the pop order is a deterministic
/// function of the push sequence.
pub struct JobQueue<T> {
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
    not_full: Condvar,
    capacity: usize,
    aging_weight_us: f64,
}

impl<T> JobQueue<T> {
    /// Creates the queue. `aging_weight_us` is the per-arrival aging
    /// increment (see the module docs for the starvation bound);
    /// `capacity` is the backpressure bound (≥ 1).
    pub fn new(aging_weight_us: f64, capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                slab: HashMap::new(),
                tenants: HashMap::new(),
                weights: HashMap::new(),
                edf: BinaryHeap::new(),
                lst: BinaryHeap::new(),
                virtual_now_us: 0.0,
                queued_cost_us: 0.0,
                vtime_us: 0.0,
                next_seq: 0,
                closed: false,
            }),
            available: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            aging_weight_us: aging_weight_us.max(f64::MIN_POSITIVE),
        }
    }

    /// Sets a tenant's fair-share weight (default 1.0; clamped to a small
    /// positive minimum). Takes effect for jobs served after the call.
    pub fn set_weight(&self, tenant: TenantId, weight: f64) {
        let weight = weight.max(1e-6);
        let mut inner = self.inner.lock().unwrap();
        inner.weights.insert(tenant, weight);
        if let Some(state) = inner.tenants.get_mut(&tenant) {
            state.weight = weight;
        }
    }

    /// The virtual service clock: cumulative estimated cost of every job
    /// popped so far, µs. Deadlines live on this axis.
    pub fn virtual_now_us(&self) -> f64 {
        self.inner.lock().unwrap().virtual_now_us
    }

    /// Enqueues a job with its cost estimate under tenant 0 with no
    /// deadline, blocking while the queue is full. Returns `false`
    /// (dropping the job) if the queue is closed.
    pub fn push(&self, cost_us: f64, job: T) -> bool {
        self.push_qos(cost_us, QosSpec::default(), job)
    }

    /// Enqueues a job with its cost estimate and scheduling metadata,
    /// blocking while the queue is full. Returns `false` (dropping the
    /// job) if the queue is closed.
    pub fn push_qos(&self, cost_us: f64, qos: QosSpec, job: T) -> bool {
        let mut inner = self.inner.lock().unwrap();
        while inner.slab.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return false;
        }
        Self::enqueue(&mut inner, self.aging_weight_us, cost_us, qos, job);
        drop(inner);
        self.available.notify_one();
        true
    }

    /// Non-blocking [`JobQueue::push_qos`]: refuses instead of waiting
    /// when the queue is at capacity, handing the job back so callers
    /// that must never block (a network poll loop) can apply their own
    /// backpressure and retry.
    pub fn try_push_qos(&self, cost_us: f64, qos: QosSpec, job: T) -> TryPush<T> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return TryPush::Closed(job);
        }
        if inner.slab.len() >= self.capacity {
            return TryPush::Full(job);
        }
        Self::enqueue(&mut inner, self.aging_weight_us, cost_us, qos, job);
        drop(inner);
        self.available.notify_one();
        TryPush::Queued
    }

    /// The enqueue body shared by the blocking and non-blocking pushes.
    /// Caller holds the lock and has already checked closed/capacity.
    fn enqueue(
        inner: &mut QueueInner<T>,
        aging_weight_us: f64,
        cost_us: f64,
        qos: QosSpec,
        job: T,
    ) {
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let cost_us = cost_us.max(0.0);
        inner.queued_cost_us += cost_us;
        let key = seq as f64 * aging_weight_us + cost_us;
        let deadline_us = qos
            .deadline_us
            .map(|rel| inner.virtual_now_us + rel.max(0.0));
        let vtime = inner.vtime_us;
        let weight = inner.weights.get(&qos.tenant).copied().unwrap_or(1.0);
        let tenant = inner.tenants.entry(qos.tenant).or_insert_with(|| {
            // A tenant (re-)activates at the current virtual service
            // point: unused credit is forfeited, so a long-idle tenant
            // cannot burst past everyone on a stale pass.
            TenantState {
                pass_us: vtime,
                weight,
                queued: BinaryHeap::new(),
                live: 0,
            }
        });
        tenant.queued.push(Keyed { key, seq });
        tenant.live += 1;
        if let Some(dl) = deadline_us {
            inner.edf.push(Keyed { key: dl, seq });
            inner.lst.push(Keyed {
                key: dl - cost_us,
                seq,
            });
        }
        inner.slab.insert(
            seq,
            Entry {
                job,
                tenant: qos.tenant,
                cost_us,
            },
        );
    }

    /// Blocks until a job is available (returning the next job under the
    /// EDF/stride/aged-cost policy) or the queue is closed and drained
    /// (returning `None`).
    pub fn pop(&self) -> Option<T> {
        self.pop_labeled().map(|(job, _)| job)
    }

    /// [`JobQueue::pop`], also reporting which scheduler level was
    /// binding for the pick (telemetry attributes queue wait per level).
    pub fn pop_labeled(&self) -> Option<(T, SchedLevel)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some((seq, level)) = Self::select(&mut inner) {
                let entry = inner.slab.remove(&seq).expect("selected seq is live");
                let t = inner
                    .tenants
                    .get_mut(&entry.tenant)
                    .expect("live job has a tenant");
                t.live -= 1;
                let pass = t.pass_us;
                t.pass_us += entry.cost_us / t.weight;
                let drained = t.live == 0;
                inner.vtime_us = inner.vtime_us.max(pass);
                inner.virtual_now_us += entry.cost_us;
                // Clamp: float cancellation must not leave a phantom
                // backlog behind an empty queue.
                inner.queued_cost_us = (inner.queued_cost_us - entry.cost_us).max(0.0);
                if drained {
                    // Idle tenants carry no state: the stride scan stays
                    // O(backlogged tenants) and tenant churn cannot grow
                    // the map. Forfeited pass is re-clamped on
                    // re-activation anyway.
                    inner.tenants.remove(&entry.tenant);
                }
                drop(inner);
                self.not_full.notify_one();
                return Some((entry.job, level));
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).unwrap();
        }
    }

    /// Picks the next job's seq (and the scheduler level that was
    /// binding for the pick), or `None` when empty. Caller holds the
    /// lock and removes the returned seq from the slab.
    fn select(inner: &mut QueueInner<T>) -> Option<(u64, SchedLevel)> {
        if inner.slab.is_empty() {
            return None;
        }
        // The deadline guard's trigger: the earliest *latest feasible
        // start* (`deadline − cost`) among live deadline jobs. Serving
        // any job that would push the virtual clock past it risks a
        // deadline that was still feasible, so the stride pick below is
        // admitted only if it fits in that slack.
        let min_lst = loop {
            match inner.lst.peek() {
                Some(top) if !inner.slab.contains_key(&top.seq) => {
                    inner.lst.pop();
                }
                Some(top) => break Some(top.key),
                None => break None,
            }
        };
        // Level 1: deadline work is already at stake — serve deadline
        // jobs earliest-deadline-first until the slack recovers.
        if min_lst.is_some_and(|lst| lst <= inner.virtual_now_us) {
            return Some((Self::pop_earliest_deadline(inner), SchedLevel::Deadline));
        }
        // Level 2: the backlogged tenant with the smallest stride pass
        // (ties broken by tenant id for determinism). With more than one
        // backlogged tenant the stride pick is the binding decision;
        // alone, it's a pass-through and level 3's heap decides.
        let contended = inner.tenants.values().filter(|t| t.live > 0).count() > 1;
        let tenant = inner
            .tenants
            .iter()
            .filter(|(_, t)| t.live > 0)
            .min_by(|(ida, a), (idb, b)| {
                a.pass_us
                    .partial_cmp(&b.pass_us)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| ida.cmp(idb))
            })
            .map(|(id, _)| *id)?;
        // Level 3: that tenant's lowest aged-cost job (skipping entries
        // stolen earlier by the deadline guard).
        let t = inner.tenants.get_mut(&tenant).expect("selected tenant");
        let candidate = loop {
            match t.queued.peek() {
                Some(top) if !inner.slab.contains_key(&top.seq) => {
                    t.queued.pop();
                }
                Some(top) => break top.seq,
                None => unreachable!("tenant with live > 0 has a live heap entry"),
            }
        };
        // Admission: running the candidate must not overshoot any
        // deadline job's last feasible start; otherwise divert to EDF
        // now, while the deadline is still makeable.
        let cost = inner.slab[&candidate].cost_us;
        if min_lst.is_some_and(|lst| inner.virtual_now_us + cost > lst) {
            return Some((Self::pop_earliest_deadline(inner), SchedLevel::Deadline));
        }
        inner
            .tenants
            .get_mut(&tenant)
            .expect("selected tenant")
            .queued
            .pop();
        let level = if contended {
            SchedLevel::Weighted
        } else {
            SchedLevel::Shortest
        };
        Some((candidate, level))
    }

    /// Pops the live job with the earliest deadline (the deadline guard's
    /// serve order). Only called when the `lst` index proved one exists.
    fn pop_earliest_deadline(inner: &mut QueueInner<T>) -> u64 {
        while let Some(top) = inner.edf.pop() {
            if inner.slab.contains_key(&top.seq) {
                return top.seq;
            }
        }
        unreachable!("lst index has a live entry, so edf does too");
    }

    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().slab.len()
    }

    /// Σ estimated cost of the jobs waiting right now, µs. Racy like
    /// [`JobQueue::depth`]; the admission deadline gate divides it by
    /// the worker count for a serve-time estimate.
    pub fn backlog_us(&self) -> f64 {
        self.inner.lock().unwrap().queued_cost_us
    }

    /// The backpressure bound this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a push right now would block (or a try-push refuse). Racy
    /// by nature — a cheap pre-check that lets callers skip expensive
    /// work (frame decode) while the queue is saturated; the push itself
    /// remains the authority.
    pub fn is_full(&self) -> bool {
        self.inner.lock().unwrap().slab.len() >= self.capacity
    }

    /// Closes the queue: pending jobs still drain, new pushes are refused,
    /// blocked poppers wake up.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.available.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_core::params::FvParams;

    #[test]
    fn estimator_orders_ops_like_the_paper() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let est = CostEstimator::new(&ctx);
        let mul = est.op_us(&EvalOp::Mul(
            crate::request::ValRef::Input(0),
            crate::request::ValRef::Input(1),
        ));
        let add = est.op_us(&EvalOp::Add(
            crate::request::ValRef::Input(0),
            crate::request::ValRef::Input(1),
        ));
        let rot = est.op_us(&EvalOp::Rotate(crate::request::ValRef::Input(0), 3));
        let sum = est.op_us(&EvalOp::SumSlots(crate::request::ValRef::Input(0)));
        assert!(mul > add, "Mult must cost more than Add");
        assert!(rot > add, "a rotation is a relinearization-shaped SoP");
        assert!(sum > rot, "slot-sum is log2(n) rotations");
    }

    #[test]
    fn estimator_prices_flip_between_datapaths() {
        use crate::request::ValRef;
        let mul = EvalOp::Mul(ValRef::Input(0), ValRef::Input(1));
        let rot = EvalOp::Rotate(ValRef::Input(0), 3);
        // Rotations always favor the traditional datapath (3× smaller
        // switching key, no lift/scale in the op at all).
        let ctx = FvContext::new(FvParams::hpca19()).unwrap();
        let est = CostEstimator::new(&ctx);
        assert!(
            est.op_us_for(&rot, Backend::Traditional) < est.op_us_for(&rot, Backend::default())
        );
        // At the paper's n = 4096, Mult favors HPS (§VI-C)…
        assert!(
            est.op_us_for(&mul, Backend::Traditional) > est.op_us_for(&mul, Backend::default())
        );
        // …while small rings flip it: the long-integer lift finishes fast.
        let toy = FvContext::new(FvParams::insecure_toy()).unwrap();
        let est = CostEstimator::new(&toy);
        assert!(
            est.op_us_for(&mul, Backend::Traditional) < est.op_us_for(&mul, Backend::default())
        );
        // Auto is never worse than either concrete datapath.
        for op in [mul, rot] {
            let auto = est.op_us_for(&op, Backend::Auto);
            assert!(auto <= est.op_us_for(&op, Backend::Traditional) + 1e-9);
            assert!(auto <= est.op_us_for(&op, Backend::default()) + 1e-9);
        }
    }

    #[test]
    fn consecutive_rotations_price_as_a_hoisted_batch() {
        use crate::request::ValRef;
        use hefv_core::encoder::Plaintext;
        use hefv_core::encrypt::trivial_encrypt;
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let est = CostEstimator::new(&ctx);
        let ct = || {
            trivial_encrypt(
                &ctx,
                &Plaintext::new(vec![1], ctx.params().t, ctx.params().n),
            )
        };
        let run = |ops: Vec<EvalOp>| EvalRequest {
            tenant: 1,
            inputs: vec![ct(), ct()],
            plaintexts: Vec::new(),
            ops,
            deadline_us: None,
            trace_id: None,
        };
        let same = ValRef::Input(0);
        let batch = run(vec![
            EvalOp::Rotate(same, 3),
            EvalOp::Rotate(same, 9),
            EvalOp::Rotate(same, 27),
        ]);
        let independent = run(vec![
            EvalOp::Rotate(ValRef::Input(0), 3),
            EvalOp::Rotate(ValRef::Input(1), 9),
            EvalOp::Rotate(ValRef::Input(0), 27),
        ]);
        for backend in [Backend::default(), Backend::Traditional, Backend::Auto] {
            let hoisted = est.request_us_for(&batch, backend);
            let separate = est.request_us_for(&independent, backend);
            assert!(
                hoisted < separate,
                "{backend:?}: hoisted {hoisted} vs separate {separate}"
            );
        }
        // Kernel attribution shrinks too: the marginal rotations re-run no
        // forward transforms of the digits.
        let (batch_ntt, _) = est.request_kernel_us_for(&batch, Backend::default());
        let (sep_ntt, _) = est.request_kernel_us_for(&independent, Backend::default());
        assert!(batch_ntt < sep_ntt);
    }

    #[test]
    fn cheap_jobs_overtake_expensive_ones() {
        let q = JobQueue::new(1.0, 64);
        q.push(1000.0, "mult");
        q.push(3.0, "add1");
        q.push(3.0, "add2");
        assert_eq!(q.pop(), Some("add1"));
        assert_eq!(q.pop(), Some("add2"));
        assert_eq!(q.pop(), Some("mult"));
    }

    #[test]
    fn aging_bounds_bypass() {
        // aging weight 100 ⇒ a job costing 1000 more than the stream can
        // be overtaken at most 10 times.
        let q = JobQueue::new(100.0, 64);
        q.push(1000.0, -1i64); // the expensive job, seq 0, key 1000
        for i in 0..20 {
            q.push(0.0, i); // seq 1.., key 100, 200, ...
        }
        let mut seen_expensive_at = None;
        for pos in 0..21 {
            let j = q.pop().unwrap();
            if j == -1 {
                seen_expensive_at = Some(pos);
                break;
            }
        }
        let pos = seen_expensive_at.expect("expensive job served");
        assert!(pos <= 10, "bounded bypass violated: served at {pos}");
        assert!(pos >= 5, "SJF not in effect: served at {pos}");
    }

    #[test]
    fn full_queue_blocks_until_drained_or_closed() {
        let q = std::sync::Arc::new(JobQueue::new(1.0, 2));
        assert!(q.push(1.0, 1u32));
        assert!(q.push(1.0, 2));
        let qc = std::sync::Arc::clone(&q);
        let producer = std::thread::spawn(move || qc.push(1.0, 3));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.depth(), 2, "third push is blocked, not queued");
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap(), "push completes once drained");
        assert_eq!(q.depth(), 2);

        // A producer blocked on a full queue wakes (refused) on close.
        let q2 = std::sync::Arc::new(JobQueue::new(1.0, 1));
        assert!(q2.push(1.0, 1u32));
        let qc = std::sync::Arc::clone(&q2);
        let producer = std::thread::spawn(move || qc.push(1.0, 2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert!(
            !producer.join().unwrap(),
            "closed queue refuses blocked push"
        );
    }

    #[test]
    fn fifo_among_equal_costs() {
        let q = JobQueue::new(1.0, 64);
        for i in 0..10 {
            q.push(7.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_wakes() {
        let q = std::sync::Arc::new(JobQueue::new(1.0, 64));
        q.push(1.0, 1u32);
        q.close();
        assert!(!q.push(1.0, 2), "closed queue refuses work");
        assert_eq!(q.pop(), Some(1), "pending work drains");
        assert_eq!(q.pop(), None, "then poppers see shutdown");

        // A popper blocked on an empty queue wakes on close.
        let q2 = std::sync::Arc::new(JobQueue::<u32>::new(1.0, 64));
        let qc = std::sync::Arc::clone(&q2);
        let h = std::thread::spawn(move || qc.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn weights_bias_service_toward_heavier_tenants() {
        let q = JobQueue::new(1e-9, 1024); // negligible aging: pure shares
        q.set_weight(1, 1.0);
        q.set_weight(2, 3.0);
        for i in 0..40 {
            q.push_qos(
                10.0,
                QosSpec {
                    tenant: 1 + i % 2,
                    deadline_us: None,
                },
                1 + i % 2,
            );
        }
        // While both tenants are backlogged, the first 8 services split
        // 3:1 in favor of tenant 2.
        let first: Vec<u64> = (0..8).map(|_| q.pop().unwrap()).collect();
        let t2 = first.iter().filter(|&&t| t == 2).count();
        assert_eq!(t2, 6, "weight-3 tenant gets 3/4 of service: {first:?}");
    }

    #[test]
    fn urgent_deadlines_preempt_cost_order() {
        let q = JobQueue::new(1e-9, 64);
        // A deadline job that must start immediately (deadline == cost).
        q.push_qos(
            100.0,
            QosSpec {
                tenant: 1,
                deadline_us: Some(100.0),
            },
            -1i64,
        );
        for i in 0..5 {
            q.push(1.0, i); // cheaper, would otherwise all run first
        }
        assert_eq!(q.pop(), Some(-1), "urgent deadline preempts SJF");
        // A deadline with plenty of slack does NOT preempt.
        let q = JobQueue::new(1e-9, 64);
        q.push_qos(
            100.0,
            QosSpec {
                tenant: 1,
                deadline_us: Some(1_000_000.0),
            },
            -1i64,
        );
        q.push(1.0, 7i64);
        assert_eq!(q.pop(), Some(7), "slack deadline defers to SJF");
        assert_eq!(q.pop(), Some(-1));
    }

    #[test]
    fn virtual_clock_advances_by_served_cost() {
        let q = JobQueue::new(1.0, 64);
        q.push(25.0, 1u32);
        q.push(75.0, 2);
        assert_eq!(q.virtual_now_us(), 0.0);
        q.pop();
        assert!((q.virtual_now_us() - 25.0).abs() < 1e-9);
        q.pop();
        assert!((q.virtual_now_us() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn backlog_tracks_waiting_cost() {
        let q = JobQueue::new(1.0, 64);
        assert_eq!(q.backlog_us(), 0.0);
        assert_eq!(q.capacity(), 64);
        q.push(25.0, 1u32);
        q.push(75.0, 2);
        assert!((q.backlog_us() - 100.0).abs() < 1e-9);
        q.pop();
        assert!((q.backlog_us() - 75.0).abs() < 1e-9);
        q.pop();
        assert_eq!(q.backlog_us(), 0.0);
    }
}
