//! Cost-aware scheduling: the simulated-coprocessor cost model prices each
//! request, and a priority queue orders work by *aged cost*.
//!
//! The paper's coprocessor gets its throughput from scheduling independent
//! RNS/NTT work units onto parallel RPAUs; at the service level the
//! analogous lever is choosing *which job* each worker runs next. The
//! engine uses shortest-job-first over the [`hefv_sim::cost`] estimates
//! (Table II cycle model), which minimizes mean latency under mixed
//! `Add`/`Mult` traffic — but pure SJF starves expensive jobs under a
//! stream of cheap ones, so each job's key is
//!
//! ```text
//! key = arrival_seq × aging_weight_us + estimated_cost_us
//! ```
//!
//! A job can be overtaken by at most `cost / aging_weight` later-arriving
//! cheaper jobs before its key is the minimum: bounded-bypass SJF.

use crate::request::{EvalOp, EvalRequest};
use hefv_core::context::FvContext;
use hefv_sim::coproc::Coprocessor;
use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// Prices a request in simulated coprocessor microseconds.
#[derive(Debug, Clone)]
pub struct CostEstimator {
    mult_us: f64,
    add_us: f64,
    rotate_us: f64,
    sum_slots_us: f64,
}

impl CostEstimator {
    /// Builds the per-op price list for one context by running the
    /// Table II microcode through the coprocessor cycle model once.
    pub fn new(ctx: &FvContext) -> Self {
        let cop = Coprocessor::default();
        let mult_us = cop.run_mult(ctx).total_us;
        let add_us = cop.run_add().total_us;
        let rotate_us = cop.run_rotate(ctx).total_us;
        let rotations = (ctx.params().n / 2).trailing_zeros() as f64 + 1.0;
        CostEstimator {
            mult_us,
            add_us,
            rotate_us,
            sum_slots_us: rotations * (rotate_us + add_us),
        }
    }

    /// Price of one op, µs.
    pub fn op_us(&self, op: &EvalOp) -> f64 {
        match op {
            EvalOp::Add(..) | EvalOp::Sub(..) | EvalOp::Neg(..) => self.add_us,
            EvalOp::Mul(..) => self.mult_us,
            // Ciphertext × plaintext skips lift/scale/relin: two forward
            // and two inverse transform sets plus pointwise work — priced
            // as a quarter Mult (the Mult microcode runs 4× that work
            // across the Q basis plus relinearization).
            EvalOp::MulPlain(..) => self.mult_us / 4.0,
            EvalOp::Rotate(..) => self.rotate_us,
            EvalOp::SumSlots(..) => self.sum_slots_us,
        }
    }

    /// Price of a whole request, µs.
    pub fn request_us(&self, req: &EvalRequest) -> f64 {
        req.ops.iter().map(|o| self.op_us(o)).sum()
    }

    /// The price of one `Mult`, µs (used to derive the aging weight).
    pub fn mult_us(&self) -> f64 {
        self.mult_us
    }
}

/// A queued unit of work, ordered by aged cost.
pub struct Scheduled<T> {
    key: f64,
    seq: u64,
    /// The payload.
    pub job: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the smallest key pops first.
        // Keys are finite by construction; ties break FIFO by seq.
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct QueueInner<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
    closed: bool,
}

/// Blocking multi-producer/multi-consumer priority queue, bounded for
/// backpressure: `push` blocks while the queue is at capacity, so
/// producers slow to the workers' drain rate instead of growing the heap
/// (and the inline ciphertexts it holds) without limit.
pub struct JobQueue<T> {
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
    not_full: Condvar,
    capacity: usize,
    aging_weight_us: f64,
}

impl<T> JobQueue<T> {
    /// Creates the queue. `aging_weight_us` is the per-arrival aging
    /// increment (see the module docs for the starvation bound);
    /// `capacity` is the backpressure bound (≥ 1).
    pub fn new(aging_weight_us: f64, capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            available: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            aging_weight_us: aging_weight_us.max(f64::MIN_POSITIVE),
        }
    }

    /// Enqueues a job with its cost estimate, blocking while the queue is
    /// full. Returns `false` (dropping the job) if the queue is closed.
    pub fn push(&self, cost_us: f64, job: T) -> bool {
        let mut inner = self.inner.lock().unwrap();
        while inner.heap.len() >= self.capacity && !inner.closed {
            inner = self.not_full.wait(inner).unwrap();
        }
        if inner.closed {
            return false;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let key = seq as f64 * self.aging_weight_us + cost_us.max(0.0);
        inner.heap.push(Scheduled { key, seq, job });
        drop(inner);
        self.available.notify_one();
        true
    }

    /// Blocks until a job is available (returning the lowest aged-cost
    /// job) or the queue is closed and drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(s) = inner.heap.pop() {
                drop(inner);
                self.not_full.notify_one();
                return Some(s.job);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).unwrap();
        }
    }

    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().heap.len()
    }

    /// Closes the queue: pending jobs still drain, new pushes are refused,
    /// blocked poppers wake up.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.available.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_core::params::FvParams;

    #[test]
    fn estimator_orders_ops_like_the_paper() {
        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let est = CostEstimator::new(&ctx);
        let mul = est.op_us(&EvalOp::Mul(
            crate::request::ValRef::Input(0),
            crate::request::ValRef::Input(1),
        ));
        let add = est.op_us(&EvalOp::Add(
            crate::request::ValRef::Input(0),
            crate::request::ValRef::Input(1),
        ));
        let rot = est.op_us(&EvalOp::Rotate(crate::request::ValRef::Input(0), 3));
        let sum = est.op_us(&EvalOp::SumSlots(crate::request::ValRef::Input(0)));
        assert!(mul > add, "Mult must cost more than Add");
        assert!(rot > add, "a rotation is a relinearization-shaped SoP");
        assert!(sum > rot, "slot-sum is log2(n) rotations");
    }

    #[test]
    fn cheap_jobs_overtake_expensive_ones() {
        let q = JobQueue::new(1.0, 64);
        q.push(1000.0, "mult");
        q.push(3.0, "add1");
        q.push(3.0, "add2");
        assert_eq!(q.pop(), Some("add1"));
        assert_eq!(q.pop(), Some("add2"));
        assert_eq!(q.pop(), Some("mult"));
    }

    #[test]
    fn aging_bounds_bypass() {
        // aging weight 100 ⇒ a job costing 1000 more than the stream can
        // be overtaken at most 10 times.
        let q = JobQueue::new(100.0, 64);
        q.push(1000.0, -1i64); // the expensive job, seq 0, key 1000
        for i in 0..20 {
            q.push(0.0, i); // seq 1.., key 100, 200, ...
        }
        let mut seen_expensive_at = None;
        for pos in 0..21 {
            let j = q.pop().unwrap();
            if j == -1 {
                seen_expensive_at = Some(pos);
                break;
            }
        }
        let pos = seen_expensive_at.expect("expensive job served");
        assert!(pos <= 10, "bounded bypass violated: served at {pos}");
        assert!(pos >= 5, "SJF not in effect: served at {pos}");
    }

    #[test]
    fn full_queue_blocks_until_drained_or_closed() {
        let q = std::sync::Arc::new(JobQueue::new(1.0, 2));
        assert!(q.push(1.0, 1u32));
        assert!(q.push(1.0, 2));
        let qc = std::sync::Arc::clone(&q);
        let producer = std::thread::spawn(move || qc.push(1.0, 3));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.depth(), 2, "third push is blocked, not queued");
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap(), "push completes once drained");
        assert_eq!(q.depth(), 2);

        // A producer blocked on a full queue wakes (refused) on close.
        let q2 = std::sync::Arc::new(JobQueue::new(1.0, 1));
        assert!(q2.push(1.0, 1u32));
        let qc = std::sync::Arc::clone(&q2);
        let producer = std::thread::spawn(move || qc.push(1.0, 2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert!(
            !producer.join().unwrap(),
            "closed queue refuses blocked push"
        );
    }

    #[test]
    fn fifo_among_equal_costs() {
        let q = JobQueue::new(1.0, 64);
        for i in 0..10 {
            q.push(7.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_wakes() {
        let q = std::sync::Arc::new(JobQueue::new(1.0, 64));
        q.push(1.0, 1u32);
        q.close();
        assert!(!q.push(1.0, 2), "closed queue refuses work");
        assert_eq!(q.pop(), Some(1), "pending work drains");
        assert_eq!(q.pop(), None, "then poppers see shutdown");

        // A popper blocked on an empty queue wakes on close.
        let q2 = std::sync::Arc::new(JobQueue::<u32>::new(1.0, 64));
        let qc = std::sync::Arc::clone(&q2);
        let h = std::thread::spawn(move || qc.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q2.close();
        assert_eq!(h.join().unwrap(), None);
    }
}
