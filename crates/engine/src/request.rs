//! The evaluation request model: a small op-graph over named ciphertexts.
//!
//! A request carries its operand ciphertexts and plaintexts inline (indexed
//! slots), plus a straight-line program of [`EvalOp`]s. Op `i` produces
//! value `ValRef::Op(i)`; the last op's value is the job's result. This is
//! deliberately a DAG-as-straight-line encoding — the same shape as the
//! coprocessor's instruction stream in the paper's Table II microcode — so
//! wire framing and cost estimation stay trivial.

use crate::error::EngineError;
use crate::registry::TenantId;
use hefv_core::context::FvContext;
use hefv_core::encoder::Plaintext;
use hefv_core::encrypt::Ciphertext;
use hefv_core::galois::is_valid_exponent;

/// Reference to a value inside one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValRef {
    /// The `i`-th input ciphertext.
    Input(u32),
    /// The result of the `i`-th op (must precede the referencing op).
    Op(u32),
}

/// One node of the op-graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalOp {
    /// Homomorphic addition.
    Add(ValRef, ValRef),
    /// Homomorphic subtraction.
    Sub(ValRef, ValRef),
    /// Homomorphic negation.
    Neg(ValRef),
    /// Relinearized homomorphic multiplication (needs the tenant's rlk).
    Mul(ValRef, ValRef),
    /// Ciphertext × plaintext; the second index is into
    /// [`EvalRequest::plaintexts`].
    MulPlain(ValRef, u32),
    /// Galois rotation by exponent `g` (needs a matching Galois key).
    Rotate(ValRef, u32),
    /// Fold all SIMD slots into their sum (needs the slot-sum key set).
    SumSlots(ValRef),
}

impl EvalOp {
    /// Short stable name for telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            EvalOp::Add(..) => "add",
            EvalOp::Sub(..) => "sub",
            EvalOp::Neg(..) => "neg",
            EvalOp::Mul(..) => "mul",
            EvalOp::MulPlain(..) => "mul_plain",
            EvalOp::Rotate(..) => "rotate",
            EvalOp::SumSlots(..) => "sum_slots",
        }
    }
}

/// A complete evaluation request.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Whose keys evaluate this job (strictly enforced by the engine).
    pub tenant: TenantId,
    /// Operand ciphertexts, referenced as `ValRef::Input(i)`.
    pub inputs: Vec<Ciphertext>,
    /// Plaintext operands for [`EvalOp::MulPlain`].
    pub plaintexts: Vec<Plaintext>,
    /// The straight-line op program; the last op's value is the result.
    pub ops: Vec<EvalOp>,
    /// Optional relative deadline on the scheduler's virtual clock
    /// (cumulative estimated µs of service): the earliest-deadline-first
    /// guard in [`crate::sched::JobQueue`] serves this job before its
    /// aged-cost turn once the deadline is at stake. `None` jobs are
    /// scheduled purely by weighted aged cost.
    pub deadline_us: Option<f64>,
    /// Optional end-to-end trace id. Propagated from the `HEVQ`
    /// envelope's trace field when the client set one; `None` requests
    /// get an id minted at admission. The id is stamped on the job's
    /// [`crate::trace::SpanRecord`] in the engine's flight recorder, so
    /// a client-chosen id ties a wire request to its span dump.
    pub trace_id: Option<u64>,
}

/// Hard cap on request size (inputs + ops), a denial-of-service guard.
pub const MAX_REQUEST_NODES: usize = 4096;

impl EvalRequest {
    /// Convenience: a single binary op over two ciphertexts.
    pub fn binary(
        tenant: TenantId,
        op: fn(ValRef, ValRef) -> EvalOp,
        a: Ciphertext,
        b: Ciphertext,
    ) -> Self {
        EvalRequest {
            tenant,
            inputs: vec![a, b],
            plaintexts: Vec::new(),
            ops: vec![op(ValRef::Input(0), ValRef::Input(1))],
            deadline_us: None,
            trace_id: None,
        }
    }

    /// Attaches a relative virtual-clock deadline (µs of estimated
    /// service) to this request.
    pub fn with_deadline(mut self, deadline_us: f64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Attaches a client-chosen end-to-end trace id (see the field docs
    /// on [`EvalRequest::trace_id`]).
    pub fn with_trace_id(mut self, trace_id: u64) -> Self {
        self.trace_id = Some(trace_id);
        self
    }

    /// Convenience: a **hoisted rotation batch** — every exponent in `gs`
    /// applied to the same input ciphertext. The engine detects the
    /// consecutive same-source rotations and computes the digit
    /// decomposition once for the whole run (Halevi–Shoup hoisting); the
    /// scheduler prices it accordingly. The result value is the *last*
    /// rotation; use `ValRef::Op(i)` follow-up ops to combine several.
    pub fn rotations(tenant: TenantId, ct: Ciphertext, gs: &[u32]) -> Self {
        EvalRequest {
            tenant,
            inputs: vec![ct],
            plaintexts: Vec::new(),
            ops: gs
                .iter()
                .map(|&g| EvalOp::Rotate(ValRef::Input(0), g))
                .collect(),
            deadline_us: None,
            trace_id: None,
        }
    }

    /// Structural validation against a context: reference ranges, shapes,
    /// exponent validity. Key availability is checked at execution time.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Validation`] describing the first defect.
    pub fn validate(&self, ctx: &FvContext) -> Result<(), EngineError> {
        let fail = |r: String| Err(EngineError::Validation(r));
        if self.ops.is_empty() {
            return fail("request has no ops".into());
        }
        if let Some(d) = self.deadline_us {
            if !d.is_finite() || d < 0.0 {
                return fail(format!("deadline {d} must be finite and non-negative"));
            }
        }
        if self.inputs.is_empty() {
            return fail("request has no input ciphertexts".into());
        }
        if self.inputs.len() + self.ops.len() > MAX_REQUEST_NODES {
            return fail(format!(
                "request too large: {} nodes > {MAX_REQUEST_NODES}",
                self.inputs.len() + self.ops.len()
            ));
        }
        let (k, n) = (ctx.params().k(), ctx.params().n);
        for (i, ct) in self.inputs.iter().enumerate() {
            if ct.c0().k() != k || ct.c0().n() != n {
                return fail(format!(
                    "input {i} shape ({},{}) does not match context ({k},{n})",
                    ct.c0().k(),
                    ct.c0().n()
                ));
            }
        }
        for (i, pt) in self.plaintexts.iter().enumerate() {
            if pt.t() != ctx.params().t {
                return fail(format!(
                    "plaintext {i} has t={} but context has t={}",
                    pt.t(),
                    ctx.params().t
                ));
            }
        }
        let check_ref = |r: ValRef, at: usize| -> Result<(), EngineError> {
            match r {
                ValRef::Input(i) if (i as usize) < self.inputs.len() => Ok(()),
                ValRef::Input(i) => Err(EngineError::Validation(format!(
                    "op {at} references missing input {i}"
                ))),
                ValRef::Op(j) if (j as usize) < at => Ok(()),
                ValRef::Op(j) => Err(EngineError::Validation(format!(
                    "op {at} references op {j}, which is not earlier in the program"
                ))),
            }
        };
        for (at, op) in self.ops.iter().enumerate() {
            match *op {
                EvalOp::Add(a, b) | EvalOp::Sub(a, b) | EvalOp::Mul(a, b) => {
                    check_ref(a, at)?;
                    check_ref(b, at)?;
                }
                EvalOp::Neg(a) | EvalOp::SumSlots(a) => check_ref(a, at)?,
                EvalOp::MulPlain(a, p) => {
                    check_ref(a, at)?;
                    if p as usize >= self.plaintexts.len() {
                        return fail(format!("op {at} references missing plaintext {p}"));
                    }
                }
                EvalOp::Rotate(a, g) => {
                    check_ref(a, at)?;
                    if !is_valid_exponent(g as usize, n) {
                        return fail(format!("op {at} has invalid Galois exponent {g}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether any op needs the relinearization key.
    pub fn needs_rlk(&self) -> bool {
        self.ops.iter().any(|o| matches!(o, EvalOp::Mul(..)))
    }

    /// Whether any op needs Galois keys.
    pub fn needs_galois(&self) -> bool {
        self.ops
            .iter()
            .any(|o| matches!(o, EvalOp::Rotate(..) | EvalOp::SumSlots(..)))
    }
}

/// Per-job accounting returned with every result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobReport {
    /// Which engine worker executed the job.
    pub worker: u32,
    /// Time spent queued, nanoseconds.
    pub queue_ns: u64,
    /// Execution wall time, nanoseconds.
    pub exec_ns: u64,
    /// The scheduler's simulated-coprocessor cost estimate, µs.
    pub est_cost_us: f64,
    /// Estimated noise bits consumed (output estimate − fresh estimate,
    /// per the analytic [`hefv_core::noise::NoiseModel`]).
    pub noise_bits_consumed: f64,
}

/// A completed evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResponse {
    /// Engine-assigned job id (unique per engine instance).
    pub job_id: u64,
    /// The result ciphertext (the last op's value).
    pub result: Ciphertext,
    /// Accounting for this job.
    pub report: JobReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_core::encrypt::trivial_encrypt;
    use hefv_core::params::FvParams;

    fn ctx() -> FvContext {
        FvContext::new(FvParams::insecure_toy()).unwrap()
    }

    fn some_ct(ctx: &FvContext) -> Ciphertext {
        trivial_encrypt(
            ctx,
            &Plaintext::new(vec![1], ctx.params().t, ctx.params().n),
        )
    }

    #[test]
    fn valid_request_passes() {
        let ctx = ctx();
        let req = EvalRequest::binary(1, EvalOp::Add, some_ct(&ctx), some_ct(&ctx));
        assert!(req.validate(&ctx).is_ok());
        assert!(!req.needs_rlk());
        assert!(EvalRequest::binary(1, EvalOp::Mul, some_ct(&ctx), some_ct(&ctx)).needs_rlk());
    }

    #[test]
    fn rejects_bad_references() {
        let ctx = ctx();
        let mut req = EvalRequest::binary(1, EvalOp::Add, some_ct(&ctx), some_ct(&ctx));
        req.ops = vec![EvalOp::Add(ValRef::Input(0), ValRef::Input(9))];
        assert!(matches!(
            req.validate(&ctx),
            Err(EngineError::Validation(_))
        ));
        // Forward op reference.
        req.ops = vec![EvalOp::Neg(ValRef::Op(0))];
        assert!(req.validate(&ctx).is_err());
        // Self/forward reference at op 1.
        req.ops = vec![
            EvalOp::Neg(ValRef::Input(0)),
            EvalOp::Add(ValRef::Op(1), ValRef::Op(0)),
        ];
        assert!(req.validate(&ctx).is_err());
        // Valid chain.
        req.ops = vec![
            EvalOp::Neg(ValRef::Input(0)),
            EvalOp::Add(ValRef::Op(0), ValRef::Input(1)),
        ];
        assert!(req.validate(&ctx).is_ok());
    }

    #[test]
    fn rejects_empty_and_oversized() {
        let ctx = ctx();
        let mut req = EvalRequest::binary(1, EvalOp::Add, some_ct(&ctx), some_ct(&ctx));
        req.ops.clear();
        assert!(req.validate(&ctx).is_err());

        let mut req = EvalRequest::binary(1, EvalOp::Add, some_ct(&ctx), some_ct(&ctx));
        req.ops = vec![EvalOp::Neg(ValRef::Input(0)); MAX_REQUEST_NODES];
        assert!(req.validate(&ctx).is_err());
    }

    #[test]
    fn rejects_bad_galois_exponent_and_missing_plaintext() {
        let ctx = ctx();
        let mut req = EvalRequest::binary(1, EvalOp::Add, some_ct(&ctx), some_ct(&ctx));
        req.ops = vec![EvalOp::Rotate(ValRef::Input(0), 4)]; // even exponent
        assert!(req.validate(&ctx).is_err());
        req.ops = vec![EvalOp::MulPlain(ValRef::Input(0), 0)]; // no plaintexts
        assert!(req.validate(&ctx).is_err());
    }

    #[test]
    fn rejects_bad_deadlines() {
        let ctx = ctx();
        let req = EvalRequest::binary(1, EvalOp::Add, some_ct(&ctx), some_ct(&ctx));
        assert!(req.clone().with_deadline(125.0).validate(&ctx).is_ok());
        assert!(req.clone().with_deadline(f64::NAN).validate(&ctx).is_err());
        assert!(req
            .clone()
            .with_deadline(f64::INFINITY)
            .validate(&ctx)
            .is_err());
        assert!(req.with_deadline(-1.0).validate(&ctx).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let toy = ctx();
        let medium = FvContext::new(FvParams::insecure_medium()).unwrap();
        let req = EvalRequest::binary(1, EvalOp::Add, some_ct(&toy), some_ct(&toy));
        assert!(req.validate(&medium).is_err());
    }
}
