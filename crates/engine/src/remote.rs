//! Remote shards: proxying engine traffic to another node.
//!
//! A [`crate::router::ShardRouter`] fronting a cluster holds some shards
//! in-process and proxies the rest to peer nodes over the envelope
//! protocol `hefv-net` speaks. This module is the engine half of that
//! seam: [`RemoteShard`] owns a small pool of connections to one node,
//! forwards already-encoded `HEVQ`/`HEVK` frames, matches replies back to
//! callers by correlation id, and tracks the node's health.
//!
//! The transport itself is abstracted behind [`ShardConnector`] /
//! [`FrameSender`] / [`FrameReceiver`] so the engine crate stays free of
//! socket code (`hefv-net` depends on this crate, not the other way
//! around — its `TcpConnector` implements these traits, and tests drive a
//! `RemoteShard` over in-process channels).
//!
//! # Backpressure, health, and ordering
//!
//! * **Backpressure.** [`RemoteShard::try_dispatch`] preserves the
//!   router's non-blocking seam: at `max_inflight` outstanding frames it
//!   returns `Ok(None)` ("at capacity, try later"), exactly like a full
//!   local queue — so a TCP front-end keeps converting remote congestion
//!   into client backpressure by not reading.
//! * **Health.** A maintenance thread probes the node every
//!   `probe_interval` through [`ShardConnector::probe`] (an `HEVS` stats
//!   scrape in the TCP implementation). Consecutive failures — probes or
//!   transport errors — trip a circuit breaker after `eject_after`: the
//!   shard fails fast and every pending frame errors out (so the router
//!   can fail jobs over to a replica immediately). The breaker is
//!   *half-open*: probes keep running while ejected, and the first
//!   success closes it again.
//! * **Lossy links.** A pending frame unanswered for `reply_timeout` is
//!   re-sent with its original correlation id (up to a configurable
//!   attempt budget) before it errors out. The id makes every retry
//!   idempotent end-to-end: whichever reply
//!   arrives first resolves the entry, a late duplicate finds no pending
//!   entry and is dropped. This is what rides out injected frame drops
//!   (`HEFV_NET_FAULT`) without double-delivering.

use crate::error::EngineError;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Write half of one connection to a peer node.
pub trait FrameSender: Send {
    /// Sends one frame under a correlation id. An `Err` marks the
    /// connection dead (the pool discards it and reconnects).
    ///
    /// # Errors
    ///
    /// Transport failure; the connection must not be reused afterwards.
    fn send(&mut self, corr: u64, frame: &[u8]) -> io::Result<()>;

    /// Tears the connection down, unblocking the paired receiver.
    fn close(&mut self);
}

/// Read half of one connection to a peer node.
pub trait FrameReceiver: Send {
    /// Blocks for the next `(correlation id, frame)` reply.
    ///
    /// # Errors
    ///
    /// Transport failure or orderly close; the reader thread exits.
    fn recv(&mut self) -> io::Result<(u64, Vec<u8>)>;
}

/// Factory for connections to one peer node, plus its liveness probe.
pub trait ShardConnector: Send + Sync {
    /// Opens a fresh connection (sender and receiver halves).
    ///
    /// # Errors
    ///
    /// Transport failure (node down, unreachable, refused).
    fn connect(&self) -> io::Result<(Box<dyn FrameSender>, Box<dyn FrameReceiver>)>;

    /// Checks the node end-to-end within `timeout` (the TCP
    /// implementation scrapes the `HEVS` admin route over a fresh
    /// connection, proving accept + poll loop + router are all alive).
    ///
    /// # Errors
    ///
    /// The node failed to answer in time.
    fn probe(&self, timeout: Duration) -> io::Result<()>;

    /// Human-readable peer endpoint (metrics label, error messages).
    fn endpoint(&self) -> String;
}

/// Tuning for one remote shard.
#[derive(Debug, Clone)]
pub struct RemoteShardConfig {
    /// Pooled connections to the node (≥ 1). Frames hash over the pool by
    /// correlation id; a dead connection's traffic moves to the rest.
    pub connections: usize,
    /// Outstanding-frame cap: at this many unanswered frames,
    /// [`RemoteShard::try_dispatch`] reports "at capacity".
    pub max_inflight: usize,
    /// Unanswered-frame budget: past this age a pending frame is re-sent
    /// once, past twice it fails with a timeout error.
    pub reply_timeout: Duration,
    /// How often the maintenance thread probes node health.
    pub probe_interval: Duration,
    /// Per-probe deadline.
    pub probe_timeout: Duration,
    /// Consecutive failures that trip the circuit breaker.
    pub eject_after: u32,
    /// Total transmissions per frame (≥ 1): the initial send plus up to
    /// `send_attempts - 1` timeout-triggered re-sends under the same
    /// correlation id before the frame errors out. Re-sends are
    /// idempotent end-to-end — duplicate replies find no pending entry
    /// and are dropped.
    pub send_attempts: u32,
    /// Initial reconnect backoff (doubles per failed attempt, capped at
    /// 2 s).
    pub reconnect_backoff: Duration,
}

impl Default for RemoteShardConfig {
    fn default() -> Self {
        RemoteShardConfig {
            connections: 2,
            max_inflight: 256,
            reply_timeout: Duration::from_secs(10),
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(1),
            eject_after: 3,
            send_attempts: 3,
            reconnect_backoff: Duration::from_millis(100),
        }
    }
}

/// Circuit-breaker position for one remote shard.
///
/// The breaker opens after [`RemoteShardConfig::eject_after`] consecutive
/// failures and fails traffic fast. Probes keep running while open; the
/// breaker counts as *half-open* once at least one recovery probe has
/// been attempted since the ejection (the first success closes it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; node believed alive.
    #[default]
    Closed,
    /// Ejected, but a recovery probe has been attempted — the next
    /// successful probe or reply closes the breaker.
    HalfOpen,
    /// Ejected and no recovery probe attempted yet.
    Open,
}

impl BreakerState {
    /// Gauge encoding for metrics: 0 = closed, 1 = half-open, 2 = open.
    #[must_use]
    pub fn as_gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// Point-in-time counters for one remote shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStatsSnapshot {
    /// Circuit closed (node believed alive).
    pub healthy: bool,
    /// Circuit-breaker position (closed / half-open / open).
    pub breaker: BreakerState,
    /// The node was ejected at some point and no anti-entropy sweep has
    /// verified its key material since: eligible as a replica, but not
    /// for promotion back to primary.
    pub catching_up: bool,
    /// Frames currently awaiting a reply.
    pub inflight: u64,
    /// Frames handed to the transport.
    pub frames_forwarded: u64,
    /// Replies matched to a pending frame.
    pub replies: u64,
    /// Transport-level send failures.
    pub send_errors: u64,
    /// Successful connection establishments (initial + re-).
    pub connects: u64,
    /// Failed liveness probes.
    pub probe_failures: u64,
    /// Circuit-breaker opens.
    pub ejections: u64,
    /// Circuit-breaker closes after an open (probe-back successes).
    pub recoveries: u64,
    /// Pending frames that timed out after the retry.
    pub timeouts: u64,
    /// Timeout-triggered re-sends.
    pub retries: u64,
    /// Key-transfer pushes acknowledged by the node.
    pub key_pushes: u64,
}

type ReplyCallback = Box<dyn FnOnce(Result<Vec<u8>, EngineError>) + Send>;

struct Pending {
    done: ReplyCallback,
    /// Kept for timeout-triggered re-sends.
    frame: Vec<u8>,
    sent_at: Instant,
    /// Transmissions so far (the initial send counts as the first).
    attempts: u32,
}

#[derive(Default)]
struct Counters {
    frames_forwarded: AtomicU64,
    replies: AtomicU64,
    send_errors: AtomicU64,
    connects: AtomicU64,
    probe_failures: AtomicU64,
    ejections: AtomicU64,
    recoveries: AtomicU64,
    timeouts: AtomicU64,
    retries: AtomicU64,
    key_pushes: AtomicU64,
}

struct ConnSlot {
    sender: Mutex<Option<Box<dyn FrameSender>>>,
    reader: Mutex<Option<JoinHandle<()>>>,
}

struct Inner {
    name: String,
    cfg: RemoteShardConfig,
    connector: Arc<dyn ShardConnector>,
    pending: Mutex<HashMap<u64, Pending>>,
    /// Signalled whenever inflight drops (reply, failure, timeout).
    space: Condvar,
    next_corr: AtomicU64,
    conns: Vec<ConnSlot>,
    stop: AtomicBool,
    /// Circuit breaker: `true` = open = ejected.
    open: AtomicBool,
    /// Set when the breaker opens (the node may have missed key pushes,
    /// or restarted empty); cleared by the router's anti-entropy sweep
    /// once the node's replica key sets are re-verified. While set, a
    /// recovered node is re-admitted as a *replica*, never primary.
    catchup: AtomicBool,
    consecutive_failures: AtomicU64,
    /// Recovery probes attempted since the breaker last opened; nonzero
    /// while open means the breaker is half-open.
    probes_while_open: AtomicU64,
    stats: Counters,
}

impl Inner {
    fn circuit_open(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }

    fn breaker_state(&self) -> BreakerState {
        if !self.circuit_open() {
            BreakerState::Closed
        } else if self.probes_while_open.load(Ordering::Acquire) > 0 {
            BreakerState::HalfOpen
        } else {
            BreakerState::Open
        }
    }

    /// One failure signal (probe, transport, all-connections-dead).
    fn note_failure(&self) {
        let f = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        if f >= u64::from(self.cfg.eject_after) && !self.open.swap(true, Ordering::AcqRel) {
            self.stats.ejections.fetch_add(1, Ordering::Relaxed);
            self.probes_while_open.store(0, Ordering::Release);
            self.catchup.store(true, Ordering::Release);
            // Fail fast: jobs stuck behind a dead node miss their
            // deadlines; erroring them out immediately lets the router
            // fail over to a replica shard now.
            self.fail_all_pending("node ejected by circuit breaker");
        }
    }

    /// One success signal (reply or probe). Closes the breaker.
    fn note_success(&self) {
        self.consecutive_failures.store(0, Ordering::Release);
        if self.open.swap(false, Ordering::AcqRel) {
            self.stats.recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Errors every pending frame out (callbacks run outside the lock).
    fn fail_all_pending(&self, why: &str) {
        let drained: Vec<Pending> = {
            let mut p = self.pending.lock().unwrap();
            p.drain().map(|(_, e)| e).collect()
        };
        if drained.is_empty() {
            return;
        }
        for e in drained {
            (e.done)(Err(EngineError::Internal(format!(
                "remote shard '{}' ({}): {why}",
                self.name,
                self.connector.endpoint()
            ))));
        }
        self.space.notify_all();
    }

    /// Sends on any live pooled connection, starting at the slot the
    /// correlation id hashes to. Dead connections are discarded for the
    /// maintenance thread to replace.
    fn send_on_some_conn(&self, corr: u64, frame: &[u8]) -> Result<(), EngineError> {
        let n = self.conns.len();
        let start = (corr as usize) % n;
        for i in 0..n {
            let slot = &self.conns[(start + i) % n];
            let mut guard = slot.sender.lock().unwrap();
            if let Some(sender) = guard.as_mut() {
                match sender.send(corr, frame) {
                    Ok(()) => return Ok(()),
                    Err(_) => {
                        self.stats.send_errors.fetch_add(1, Ordering::Relaxed);
                        if let Some(mut dead) = guard.take() {
                            dead.close();
                        }
                    }
                }
            }
        }
        Err(EngineError::Internal(format!(
            "remote shard '{}' ({}): no live connection",
            self.name,
            self.connector.endpoint()
        )))
    }

    fn snapshot(&self) -> RemoteStatsSnapshot {
        RemoteStatsSnapshot {
            healthy: !self.circuit_open(),
            breaker: self.breaker_state(),
            catching_up: self.catchup.load(Ordering::Acquire),
            inflight: self.pending.lock().unwrap().len() as u64,
            frames_forwarded: self.stats.frames_forwarded.load(Ordering::Relaxed),
            replies: self.stats.replies.load(Ordering::Relaxed),
            send_errors: self.stats.send_errors.load(Ordering::Relaxed),
            connects: self.stats.connects.load(Ordering::Relaxed),
            probe_failures: self.stats.probe_failures.load(Ordering::Relaxed),
            ejections: self.stats.ejections.load(Ordering::Relaxed),
            recoveries: self.stats.recoveries.load(Ordering::Relaxed),
            timeouts: self.stats.timeouts.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            key_pushes: self.stats.key_pushes.load(Ordering::Relaxed),
        }
    }
}

/// A shard living on another node, reached through a pooled, reconnecting
/// transport. See the module docs for the health/backpressure model.
pub struct RemoteShard {
    inner: Arc<Inner>,
    maintenance: Mutex<Option<JoinHandle<()>>>,
}

impl RemoteShard {
    /// Spawns the shard: attempts the initial connections inline (so a
    /// live node serves immediately), then starts the maintenance thread
    /// that reconnects, probes, and sweeps timeouts. A dead node does not
    /// fail construction — the breaker will simply never close until it
    /// comes up.
    pub fn new(
        name: impl Into<String>,
        connector: Arc<dyn ShardConnector>,
        cfg: RemoteShardConfig,
    ) -> Self {
        let cfg = RemoteShardConfig {
            connections: cfg.connections.max(1),
            max_inflight: cfg.max_inflight.max(1),
            ..cfg
        };
        let conns = (0..cfg.connections)
            .map(|_| ConnSlot {
                sender: Mutex::new(None),
                reader: Mutex::new(None),
            })
            .collect();
        let inner = Arc::new(Inner {
            name: name.into(),
            cfg,
            connector,
            pending: Mutex::new(HashMap::new()),
            space: Condvar::new(),
            next_corr: AtomicU64::new(0),
            conns,
            stop: AtomicBool::new(false),
            open: AtomicBool::new(false),
            catchup: AtomicBool::new(false),
            consecutive_failures: AtomicU64::new(0),
            probes_while_open: AtomicU64::new(0),
            stats: Counters::default(),
        });
        for i in 0..inner.conns.len() {
            let _ = try_connect_slot(&inner, i);
        }
        let maint = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("hefv-remote-maint".into())
                .spawn(move || maintenance_loop(&inner))
                .expect("spawn remote maintenance thread")
        };
        RemoteShard {
            inner,
            maintenance: Mutex::new(Some(maint)),
        }
    }

    /// The peer endpoint (for metrics and error messages).
    pub fn endpoint(&self) -> String {
        self.inner.connector.endpoint()
    }

    /// Whether the circuit breaker is closed (node believed alive).
    pub fn healthy(&self) -> bool {
        !self.inner.circuit_open()
    }

    /// Current circuit-breaker position (closed / half-open / open).
    pub fn breaker_state(&self) -> BreakerState {
        self.inner.breaker_state()
    }

    /// Whether the node was ejected at some point and has not been
    /// caught up by an anti-entropy sweep since — healthy enough to
    /// serve as a replica, not yet trusted as a primary.
    pub fn needs_catchup(&self) -> bool {
        self.inner.catchup.load(Ordering::Acquire)
    }

    /// Clears the catch-up flag. Called by the router once an
    /// anti-entropy sweep has re-pushed (and the node acknowledged)
    /// every key set this node should hold.
    pub fn mark_caught_up(&self) {
        self.inner.catchup.store(false, Ordering::Release);
    }

    /// Whether a `try_dispatch` right now would report "at capacity".
    pub fn at_capacity(&self) -> bool {
        self.inner.pending.lock().unwrap().len() >= self.inner.cfg.max_inflight
    }

    /// Current counters.
    pub fn stats(&self) -> RemoteStatsSnapshot {
        self.inner.snapshot()
    }

    /// Forwards one frame without blocking. `done` fires exactly once
    /// with the reply frame or a transport error — unless this call
    /// returns `Ok(None)` (at capacity) or `Err` (nothing was sent), in
    /// which case `done` never fires.
    ///
    /// # Errors
    ///
    /// [`EngineError::QueueClosed`] after shutdown;
    /// [`EngineError::Internal`] when the breaker is open or no pooled
    /// connection accepted the frame.
    pub fn try_dispatch<F>(&self, frame: &[u8], done: F) -> Result<Option<u64>, EngineError>
    where
        F: FnOnce(Result<Vec<u8>, EngineError>) + Send + 'static,
    {
        let inner = &self.inner;
        if inner.stop.load(Ordering::Acquire) {
            return Err(EngineError::QueueClosed);
        }
        if inner.circuit_open() {
            return Err(EngineError::Internal(format!(
                "remote shard '{}' ({}): node ejected by circuit breaker",
                inner.name,
                inner.connector.endpoint()
            )));
        }
        let corr = {
            let mut pending = inner.pending.lock().unwrap();
            if pending.len() >= inner.cfg.max_inflight {
                return Ok(None);
            }
            let corr = inner.next_corr.fetch_add(1, Ordering::Relaxed);
            pending.insert(
                corr,
                Pending {
                    done: Box::new(done),
                    frame: frame.to_vec(),
                    sent_at: Instant::now(),
                    attempts: 1,
                },
            );
            corr
        };
        match inner.send_on_some_conn(corr, frame) {
            Ok(()) => {
                inner.stats.frames_forwarded.fetch_add(1, Ordering::Relaxed);
                Ok(Some(corr))
            }
            Err(e) => {
                // The pool can be empty right after a node recovers (or
                // the connector is retargeted): the probe closed the
                // breaker before the maintenance thread's backed-off
                // reconnect fired. Dial one connection inline rather
                // than failing a job the node could serve — a genuinely
                // dead node fails the dial and ejects as before.
                let recovered = try_connect_slot(inner, (corr as usize) % inner.conns.len())
                    && inner.send_on_some_conn(corr, frame).is_ok();
                if recovered {
                    inner.stats.frames_forwarded.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(corr));
                }
                // Contract: on a synchronous error the callback never
                // fires — retract the entry (dropping `done`) so the
                // caller can route the job elsewhere.
                drop(inner.pending.lock().unwrap().remove(&corr));
                inner.space.notify_all();
                inner.note_failure();
                Err(e)
            }
        }
    }

    /// Blocks until there is room below `max_inflight`, or `timeout`.
    pub(crate) fn wait_for_space(&self, timeout: Duration) {
        let inner = &self.inner;
        let pending = inner.pending.lock().unwrap();
        if pending.len() < inner.cfg.max_inflight {
            return;
        }
        drop(
            inner
                .space
                .wait_timeout(pending, timeout)
                .unwrap_or_else(|e| e.into_inner()),
        );
    }

    /// Blocking dispatch: forwards `frame` (waiting out backpressure up
    /// to `timeout`) and returns the reply frame.
    ///
    /// # Errors
    ///
    /// Dispatch errors from [`RemoteShard::try_dispatch`], plus
    /// [`EngineError::Internal`] when no reply arrives within `timeout`.
    pub fn dispatch_blocking(
        &self,
        frame: &[u8],
        timeout: Duration,
    ) -> Result<Vec<u8>, EngineError> {
        let deadline = Instant::now() + timeout;
        let (tx, rx) = std::sync::mpsc::channel();
        loop {
            let tx = tx.clone();
            match self.try_dispatch(frame, move |result| {
                let _ = tx.send(result);
            }) {
                Ok(Some(_)) => break,
                Ok(None) => {
                    if Instant::now() >= deadline {
                        return Err(EngineError::Internal(format!(
                            "remote shard '{}': still at capacity after {timeout:?}",
                            self.inner.name
                        )));
                    }
                    self.wait_for_space(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(remaining) {
            Ok(result) => result,
            Err(_) => Err(EngineError::Internal(format!(
                "remote shard '{}': no reply within {timeout:?}",
                self.inner.name
            ))),
        }
    }

    /// Streams one tenant's key material to the node and waits for its
    /// acknowledgement. Retries the whole push once on failure — a
    /// dropped push or ack (lossy link) must not abort a topology change
    /// that a second attempt would land.
    ///
    /// # Errors
    ///
    /// The transport error or the node's rejection message, whichever the
    /// final attempt produced.
    pub fn push_keys(&self, tenant: u64, push_frame: &[u8]) -> Result<(), EngineError> {
        let budget = self.inner.cfg.reply_timeout * 2;
        let mut last = EngineError::Internal("key push never attempted".into());
        for _ in 0..2 {
            match self.dispatch_blocking(push_frame, budget) {
                Ok(reply) => {
                    let (acked, outcome) = crate::wire::decode_key_ack(&reply)?;
                    if acked != tenant {
                        return Err(EngineError::Internal(format!(
                            "key ack for tenant {acked}, pushed {tenant}"
                        )));
                    }
                    return match outcome {
                        Ok(()) => {
                            self.inner.stats.key_pushes.fetch_add(1, Ordering::Relaxed);
                            Ok(())
                        }
                        Err(msg) => Err(EngineError::Internal(format!(
                            "node {} rejected keys for tenant {tenant}: {msg}",
                            self.inner.connector.endpoint()
                        ))),
                    };
                }
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Stops the pool: joins the maintenance and reader threads, then
    /// errors out any still-pending frames. Idempotent.
    pub fn shutdown(&self) {
        let inner = &self.inner;
        if inner.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        for slot in &inner.conns {
            if let Some(mut sender) = slot.sender.lock().unwrap().take() {
                sender.close();
            }
        }
        if let Some(h) = self.maintenance.lock().unwrap().take() {
            let _ = h.join();
        }
        for slot in &inner.conns {
            if let Some(h) = slot.reader.lock().unwrap().take() {
                let _ = h.join();
            }
        }
        inner.fail_all_pending("shard shut down");
    }
}

impl Drop for RemoteShard {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for RemoteShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteShard")
            .field("name", &self.inner.name)
            .field("endpoint", &self.inner.connector.endpoint())
            .field("healthy", &!self.inner.circuit_open())
            .finish()
    }
}

/// Attempts to (re)establish one pool slot, spawning its reader thread.
fn try_connect_slot(inner: &Arc<Inner>, slot_idx: usize) -> bool {
    let slot = &inner.conns[slot_idx];
    // Join a finished reader from the previous connection, if any.
    if let Some(h) = slot.reader.lock().unwrap().take() {
        let _ = h.join();
    }
    match inner.connector.connect() {
        Ok((sender, receiver)) => {
            *slot.sender.lock().unwrap() = Some(sender);
            inner.stats.connects.fetch_add(1, Ordering::Relaxed);
            let reader = {
                let inner = Arc::clone(inner);
                std::thread::Builder::new()
                    .name("hefv-remote-read".into())
                    .spawn(move || reader_loop(&inner, slot_idx, receiver))
                    .expect("spawn remote reader thread")
            };
            *slot.reader.lock().unwrap() = Some(reader);
            true
        }
        Err(_) => false,
    }
}

/// Whether a reply frame is the node refusing *our* frame for failing
/// its CRC check (`ErrorCode::IntegrityFailure`). Such a frame was never
/// decoded, let alone executed, so re-sending it under the same
/// correlation id is safe.
fn reply_is_integrity_refusal(frame: &[u8]) -> bool {
    matches!(
        crate::wire::peek_response_error(frame),
        Ok(Some(ref info)) if info.code == crate::error::ErrorCode::IntegrityFailure
    )
}

fn reader_loop(inner: &Arc<Inner>, slot_idx: usize, mut receiver: Box<dyn FrameReceiver>) {
    while let Ok((corr, frame)) = receiver.recv() {
        // Any reply is proof of life.
        inner.note_success();
        // An integrity refusal means our frame got corrupted in flight;
        // re-send it under its original id while the attempt budget
        // lasts (duplicate replies find no pending entry, as with
        // timeout-triggered re-sends).
        if reply_is_integrity_refusal(&frame) {
            let resend = {
                let mut pending = inner.pending.lock().unwrap();
                match pending.get_mut(&corr) {
                    Some(e) if e.attempts < inner.cfg.send_attempts.max(1) => {
                        e.attempts += 1;
                        e.sent_at = Instant::now();
                        Some(e.frame.clone())
                    }
                    _ => None,
                }
            };
            if let Some(f) = resend {
                inner.stats.retries.fetch_add(1, Ordering::Relaxed);
                if inner.send_on_some_conn(corr, &f).is_ok() {
                    continue;
                }
                // No live connection: fall through, surface the refusal.
            }
            // Attempt budget exhausted (or corr unknown): deliver the
            // typed refusal like any other reply so the caller sees it.
        }
        let entry = inner.pending.lock().unwrap().remove(&corr);
        if let Some(e) = entry {
            inner.stats.replies.fetch_add(1, Ordering::Relaxed);
            (e.done)(Ok(frame));
            inner.space.notify_all();
        }
        // else: duplicate of a retried frame, or a reply that raced a
        // timeout — already resolved, drop it.
    }
    // The connection died: clear the slot so dispatch skips it and the
    // maintenance thread reconnects it.
    if let Some(mut sender) = inner.conns[slot_idx].sender.lock().unwrap().take() {
        sender.close();
    }
    if inner.stop.load(Ordering::Acquire) {
        return;
    }
    // With the whole pool down nothing can answer the pending frames;
    // fail them now so callers (hedged retries) move on.
    let all_down = inner
        .conns
        .iter()
        .all(|c| c.sender.lock().unwrap().is_none());
    if all_down {
        inner.note_failure();
        inner.fail_all_pending("every connection lost");
    }
}

fn maintenance_loop(inner: &Arc<Inner>) {
    let n = inner.conns.len();
    let mut backoff = vec![inner.cfg.reconnect_backoff; n];
    let mut next_attempt = vec![Instant::now(); n];
    let mut next_probe = Instant::now() + inner.cfg.probe_interval;
    const MAX_BACKOFF: Duration = Duration::from_secs(2);
    loop {
        if inner.stop.load(Ordering::Acquire) {
            return;
        }
        let now = Instant::now();
        for i in 0..n {
            if inner.conns[i].sender.lock().unwrap().is_some() {
                backoff[i] = inner.cfg.reconnect_backoff;
                continue;
            }
            if now < next_attempt[i] {
                continue;
            }
            if try_connect_slot(inner, i) {
                backoff[i] = inner.cfg.reconnect_backoff;
            } else {
                next_attempt[i] = now + backoff[i];
                backoff[i] = (backoff[i] * 2).min(MAX_BACKOFF);
            }
        }
        if now >= next_probe {
            next_probe = now + inner.cfg.probe_interval;
            if inner.circuit_open() {
                // A probe attempted while ejected is the half-open trial.
                inner.probes_while_open.fetch_add(1, Ordering::AcqRel);
            }
            match inner.connector.probe(inner.cfg.probe_timeout) {
                Ok(()) => inner.note_success(),
                Err(_) => {
                    inner.stats.probe_failures.fetch_add(1, Ordering::Relaxed);
                    inner.note_failure();
                }
            }
        }
        sweep_pending(inner);
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Re-sends pending frames past `reply_timeout` under their original
/// correlation ids, failing the ones that exhausted their
/// [`RemoteShardConfig::send_attempts`] budget.
fn sweep_pending(inner: &Arc<Inner>) {
    let now = Instant::now();
    let mut to_resend: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut to_fail: Vec<Pending> = Vec::new();
    {
        let mut pending = inner.pending.lock().unwrap();
        let expired: Vec<u64> = pending
            .iter()
            .filter(|(_, e)| now.duration_since(e.sent_at) > inner.cfg.reply_timeout)
            .map(|(&corr, _)| corr)
            .collect();
        for corr in expired {
            let entry = pending.get_mut(&corr).expect("expired key present");
            if entry.attempts >= inner.cfg.send_attempts.max(1) {
                inner.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                to_fail.push(pending.remove(&corr).expect("expired key present"));
            } else {
                entry.attempts += 1;
                entry.sent_at = now;
                inner.stats.retries.fetch_add(1, Ordering::Relaxed);
                to_resend.push((corr, entry.frame.clone()));
            }
        }
    }
    for (corr, frame) in to_resend {
        if inner.send_on_some_conn(corr, &frame).is_err() {
            if let Some(e) = inner.pending.lock().unwrap().remove(&corr) {
                inner.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                to_fail.push(e);
            }
        }
    }
    if to_fail.is_empty() {
        return;
    }
    for e in to_fail {
        (e.done)(Err(EngineError::Internal(format!(
            "remote shard '{}' ({}): reply timed out",
            inner.name,
            inner.connector.endpoint()
        ))));
    }
    inner.space.notify_all();
}
