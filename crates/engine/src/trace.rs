//! Per-job trace spans and the in-memory flight recorder.
//!
//! Every job carries a trace id — propagated from the `HEVQ` envelope's
//! reserved trace field when the client set one, generated at admission
//! otherwise — and, on completion, deposits one [`SpanRecord`] with its
//! per-phase timing breakdown (`admit → queue → batch → execute →
//! reply-write`) into the engine's [`FlightRecorder`]: a fixed-size ring
//! that always holds the most recent spans, plus a second ring fed only
//! by jobs that crossed the configured slow-job threshold, so the tail
//! survives long after the bulk traffic has lapped the main ring.
//!
//! Recording never blocks the worker: each slot is a `try_lock`-only
//! mutex, and a contended slot simply drops that span (the reader holds
//! slot locks only long enough to clone a few words). Readers get the
//! surviving spans in oldest-to-newest order.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One completed job's phase breakdown. All durations in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// End-to-end trace id (client-supplied or minted at admission).
    pub trace_id: u64,
    /// Engine-local job id.
    pub job_id: u64,
    /// Tenant the job ran for.
    pub tenant: u64,
    /// Worker thread index that executed it.
    pub worker: usize,
    /// Whether execution succeeded.
    pub ok: bool,
    /// Datapath label (`"traditional"` / `"hps"`).
    pub backend: &'static str,
    /// Scheduler level that released the job (`"edf"` / `"weighted"` /
    /// `"sjf"`).
    pub level: &'static str,
    /// Cost-model estimate at admission, microseconds.
    pub est_cost_us: f64,
    /// Time spent waiting in a scalar batch before submission.
    pub batch_ns: u64,
    /// Time spent in the job queue.
    pub queue_ns: u64,
    /// Execution wall time.
    pub exec_ns: u64,
    /// Time writing the reply (callback / registry settle).
    pub reply_ns: u64,
}

impl SpanRecord {
    /// Total observed latency across all recorded phases.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.batch_ns + self.queue_ns + self.exec_ns + self.reply_ns
    }
}

impl fmt::Display for SpanRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace=0x{:016x} job={} tenant={} worker={} {} backend={} level={} \
             est={:.1}us batch={}ns queue={}ns exec={}ns reply={}ns total={}ns",
            self.trace_id,
            self.job_id,
            self.tenant,
            self.worker,
            if self.ok { "ok" } else { "FAILED" },
            self.backend,
            self.level,
            self.est_cost_us,
            self.batch_ns,
            self.queue_ns,
            self.exec_ns,
            self.reply_ns,
            self.total_ns(),
        )
    }
}

/// A lossy ring of the latest spans: writers claim a slot with a relaxed
/// cursor increment and `try_lock`; a held slot drops the span rather
/// than stalling a worker.
struct Ring {
    slots: Box<[Mutex<Option<SpanRecord>>]>,
    cursor: AtomicUsize,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    fn push(&self, span: SpanRecord) {
        let at = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        if let Ok(mut slot) = self.slots[at].try_lock() {
            *slot = Some(span);
        }
    }

    /// Surviving spans, oldest first.
    fn drain_ordered(&self) -> Vec<SpanRecord> {
        let next = self.cursor.load(Ordering::Relaxed);
        let n = self.slots.len();
        let mut out = Vec::new();
        for i in 0..n {
            let at = (next + i) % n;
            if let Ok(slot) = self.slots[at].lock() {
                if let Some(span) = *slot {
                    out.push(span);
                }
            }
        }
        out
    }
}

/// Per-engine span store: one ring of the most recent spans and one of
/// the most recent *slow* spans (total latency over the threshold).
pub struct FlightRecorder {
    recent: Ring,
    slow: Ring,
    slow_threshold_ns: Option<u64>,
}

impl FlightRecorder {
    /// Creates a recorder holding `capacity` recent spans (and as many
    /// slow spans). `slow_threshold_ns: None` disables slow promotion.
    #[must_use]
    pub fn new(capacity: usize, slow_threshold_ns: Option<u64>) -> FlightRecorder {
        FlightRecorder {
            recent: Ring::new(capacity),
            slow: Ring::new(capacity),
            slow_threshold_ns,
        }
    }

    /// Deposits one span; returns `true` when it crossed the slow-job
    /// threshold and was promoted to the slow ring.
    pub fn record(&self, span: SpanRecord) -> bool {
        self.recent.push(span);
        let slow = self.slow_threshold_ns.is_some_and(|t| span.total_ns() >= t);
        if slow {
            self.slow.push(span);
        }
        slow
    }

    /// The most recent surviving spans, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.recent.drain_ordered()
    }

    /// The most recent surviving slow spans, oldest first.
    #[must_use]
    pub fn slow_spans(&self) -> Vec<SpanRecord> {
        self.slow.drain_ordered()
    }

    /// The configured slow-job threshold, if any.
    #[must_use]
    pub fn slow_threshold_ns(&self) -> Option<u64> {
        self.slow_threshold_ns
    }
}

/// `splitmix64` finalizer: the engine's deterministic id/trace-id mixer.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, exec_ns: u64) -> SpanRecord {
        SpanRecord {
            trace_id,
            job_id: trace_id,
            tenant: 7,
            worker: 0,
            ok: true,
            backend: "hps",
            level: "sjf",
            est_cost_us: 1.0,
            batch_ns: 0,
            queue_ns: 10,
            exec_ns,
            reply_ns: 5,
        }
    }

    #[test]
    fn ring_keeps_latest_in_order() {
        let rec = FlightRecorder::new(4, None);
        for i in 0..10u64 {
            rec.record(span(i, 100));
        }
        let got: Vec<u64> = rec.recent().iter().map(|s| s.trace_id).collect();
        assert_eq!(got, vec![6, 7, 8, 9]);
        assert!(rec.slow_spans().is_empty());
    }

    #[test]
    fn slow_threshold_promotes() {
        let rec = FlightRecorder::new(8, Some(1000));
        assert!(!rec.record(span(1, 100)));
        assert!(rec.record(span(2, 5000)));
        // Threshold compares total latency, not just exec.
        assert!(rec.record(span(3, 985))); // 985 + 10 + 5 = 1000
        let slow: Vec<u64> = rec.slow_spans().iter().map(|s| s.trace_id).collect();
        assert_eq!(slow, vec![2, 3]);
        assert_eq!(rec.recent().len(), 3);
    }

    #[test]
    fn display_carries_the_trace_id() {
        let line = span(0xabcd, 42).to_string();
        assert!(line.contains("trace=0x000000000000abcd"), "{line}");
        assert!(line.contains("exec=42ns"), "{line}");
    }

    #[test]
    fn concurrent_recording_never_corrupts() {
        let rec = std::sync::Arc::new(FlightRecorder::new(32, Some(500)));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        rec.record(span(t * 10_000 + i, (i % 7) * 200));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let recent = rec.recent();
        assert!(recent.len() <= 32);
        for s in &recent {
            // Every surviving span is one that some thread actually wrote.
            assert_eq!(s.tenant, 7);
            assert_eq!(s.job_id, s.trace_id);
        }
        for s in rec.slow_spans() {
            assert!(s.total_ns() >= 500);
        }
    }

    #[test]
    fn mix64_spreads() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert_ne!(a, 1);
        assert_ne!(mix64(0), 0);
    }
}
