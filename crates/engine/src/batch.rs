//! The batching front-end: coalesces compatible scalar requests into
//! slot-packed ciphertexts.
//!
//! The paper's parameter set with `t = 65537` supports SIMD batching over
//! `n = 4096` slots ([`BatchEncoder`]); one homomorphic `Mult` then
//! computes 4096 independent scalar products. The engine exploits this for
//! tenants submitting *scalar* work at the service boundary: pending
//! requests with the same `(tenant, op)` are packed into two slot vectors,
//! encrypted once under the tenant's public key, evaluated as a single
//! ciphertext op, and demuxed — each requester learns the packed result
//! plus its slot index, and decrypts only its own slot. Mixing tenants in
//! one batch is impossible by construction: a batch key is `(tenant, op)`
//! and encryption uses that tenant's registered public key.
//!
//! A batch dispatches when it fills, on [`Engine::flush_batches`], or —
//! under light load — when the engine's linger timer finds it older than
//! [`crate::engine::EngineConfig::batch_linger`], bounding the latency a
//! lone scalar request can sit waiting for slot-mates.

use crate::engine::{Engine, EngineConfig, Shared};
use crate::error::EngineError;
use crate::registry::TenantId;
use crate::request::{EvalOp, EvalRequest, JobReport, ValRef};
use hefv_core::context::FvContext;
use hefv_core::encoder::BatchEncoder;
use hefv_core::encrypt::{encrypt, Ciphertext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Scalar operations the batcher can coalesce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarOp {
    /// Slot-wise `lhs + rhs`.
    Add,
    /// Slot-wise `lhs - rhs`.
    Sub,
    /// Slot-wise `lhs × rhs` (both operands encrypted; needs the relin
    /// key).
    Mul,
    /// Slot-wise `lhs × rhs` with `rhs` packed as a **plaintext** operand:
    /// only `lhs` is encrypted, the evaluation is one `MulPlain` (about a
    /// quarter of a full `Mult`, no relinearization key), and the engine's
    /// cached [`hefv_core::eval::PlainOperand`] transforms the packed
    /// plaintext exactly once.
    MulPlain,
}

impl ScalarOp {
    fn eval_op(self) -> EvalOp {
        let (a, b) = (ValRef::Input(0), ValRef::Input(1));
        match self {
            ScalarOp::Add => EvalOp::Add(a, b),
            ScalarOp::Sub => EvalOp::Sub(a, b),
            ScalarOp::Mul => EvalOp::Mul(a, b),
            ScalarOp::MulPlain => EvalOp::MulPlain(a, 0),
        }
    }
}

/// One scalar request (two operands in `Z_t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarRequest {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// The operation.
    pub op: ScalarOp,
    /// Left operand (reduced mod `t`).
    pub lhs: u64,
    /// Right operand (reduced mod `t`).
    pub rhs: u64,
}

/// Outcome of one scalar request: the *shared* packed result plus this
/// request's slot. The client decrypts the packed ciphertext with its
/// secret key and reads slot `slot` of the decoded vector.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Engine job id of the coalesced evaluation.
    pub job_id: u64,
    /// The packed result ciphertext (identical for all batch members).
    pub packed: Ciphertext,
    /// This request's slot index.
    pub slot: usize,
    /// How many scalar requests shared the evaluation.
    pub batch_size: usize,
    /// Accounting of the shared job.
    pub report: JobReport,
}

/// Handle to one pending scalar request.
#[derive(Debug)]
pub struct ScalarTicket {
    rx: mpsc::Receiver<Result<BatchResult, EngineError>>,
}

impl ScalarTicket {
    /// Blocks until the batch containing this request completes. The batch
    /// is dispatched when full, when the engine's linger timer expires it,
    /// or when [`Engine::flush_batches`] forces partial batches out.
    ///
    /// # Errors
    ///
    /// Propagates the shared job's error to every batch member.
    pub fn wait(self) -> Result<BatchResult, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::QueueClosed))
    }
}

struct Pending {
    lhs: Vec<u64>,
    rhs: Vec<u64>,
    replies: Vec<mpsc::Sender<Result<BatchResult, EngineError>>>,
    /// When the oldest member joined (what the linger timer ages against).
    opened: Instant,
}

/// Batching state owned by an [`Engine`] (present only when the parameter
/// set supports SIMD slots).
pub(crate) struct Batching {
    encoder: BatchEncoder,
    max_batch: usize,
    pending: Mutex<HashMap<(TenantId, ScalarOp), Pending>>,
    rng: Mutex<StdRng>,
}

impl Batching {
    pub(crate) fn for_context(ctx: &FvContext, config: &EngineConfig) -> Option<Self> {
        if !ctx.params().supports_batching() {
            return None;
        }
        let encoder = BatchEncoder::new(ctx.params().t, ctx.params().n).ok()?;
        let slots = encoder.slots();
        let max_batch = if config.max_batch == 0 {
            slots
        } else {
            config.max_batch.min(slots)
        };
        Some(Batching {
            encoder,
            max_batch,
            pending: Mutex::new(HashMap::new()),
            rng: Mutex::new(StdRng::seed_from_u64(config.seed)),
        })
    }
}

/// Dispatches every pending batch older than `linger` (called by the
/// engine's timer thread).
pub(crate) fn flush_expired(shared: &Shared, linger: Duration) {
    let Some(batching) = shared.batching.as_ref() else {
        return;
    };
    let expired: Vec<_> = {
        let mut pending = batching.pending.lock().unwrap();
        let keys: Vec<_> = pending
            .iter()
            .filter(|(_, p)| p.opened.elapsed() >= linger)
            .map(|(&k, _)| k)
            .collect();
        keys.into_iter()
            .map(|k| (k, pending.remove(&k).expect("key just listed")))
            .collect()
    };
    for ((tenant, op), batch) in expired {
        // On failure every reply channel has already been notified.
        let _ = dispatch_batch(shared, tenant, op, batch);
    }
}

fn dispatch_batch(
    shared: &Shared,
    tenant: TenantId,
    op: ScalarOp,
    batch: Pending,
) -> Result<(), EngineError> {
    let batching = shared.batching.as_ref().expect("checked by callers");
    let size = batch.lhs.len();
    let fail_all = |replies: &[mpsc::Sender<Result<BatchResult, EngineError>>], e: &EngineError| {
        for tx in replies {
            let _ = tx.send(Err(e.clone()));
        }
    };

    let keys = match shared.registry().get(tenant) {
        Some(k) => k,
        None => {
            let e = EngineError::UnknownTenant(tenant);
            fail_all(&batch.replies, &e);
            return Err(e);
        }
    };
    let pk = match keys.pk.as_ref() {
        Some(pk) => pk,
        None => {
            let e = EngineError::MissingKey {
                tenant,
                which: "public",
            };
            fail_all(&batch.replies, &e);
            return Err(e);
        }
    };

    let ctx = shared.ctx();
    let pa = batching.encoder.encode(&batch.lhs);
    let pb = batching.encoder.encode(&batch.rhs);
    // MulPlain keeps the right operand as a plaintext: one encryption and
    // a quarter-Mult evaluation instead of two encryptions and a full one.
    let (inputs, plaintexts) = {
        let mut rng = batching.rng.lock().unwrap();
        if op == ScalarOp::MulPlain {
            (vec![encrypt(ctx, pk, &pa, &mut *rng)], vec![pb])
        } else {
            (
                vec![
                    encrypt(ctx, pk, &pa, &mut *rng),
                    encrypt(ctx, pk, &pb, &mut *rng),
                ],
                Vec::new(),
            )
        }
    };
    let req = EvalRequest {
        tenant,
        inputs,
        plaintexts,
        ops: vec![op.eval_op()],
        deadline_us: None,
        trace_id: None,
    };
    let replies = batch.replies;
    // The batch phase of the job's trace span: how long the oldest
    // request waited for the batch to fill (or the linger to expire).
    let batch_ns = batch.opened.elapsed().as_nanos() as u64;
    shared.stats().on_batch(size);
    let submitted =
        shared.submit_batched_with_callback(req, batch_ns, move |outcome| match outcome {
            Ok(resp) => {
                for (slot, tx) in replies.iter().enumerate() {
                    let _ = tx.send(Ok(BatchResult {
                        job_id: resp.job_id,
                        packed: resp.result.clone(),
                        slot,
                        batch_size: size,
                        report: resp.report,
                    }));
                }
            }
            Err(e) => {
                for tx in &replies {
                    let _ = tx.send(Err(e.clone()));
                }
            }
        });
    match submitted {
        Ok(_) => Ok(()),
        Err(e) => {
            // The callback was never installed; nothing was sent yet —
            // but `replies` moved into it. Report the error to the
            // caller; ticket holders see a disconnected channel, which
            // `ScalarTicket::wait` maps to `QueueClosed`.
            Err(e)
        }
    }
}

impl Engine {
    /// The slot encoder, when the parameter set supports batching.
    pub fn batch_encoder(&self) -> Option<&BatchEncoder> {
        self.shared().batching.as_ref().map(|b| &b.encoder)
    }

    /// Enqueues a scalar request for coalescing. The batch dispatches
    /// automatically once `max_batch` requests with the same
    /// `(tenant, op)` are pending or the linger timer expires it; use
    /// [`Engine::flush_batches`] to dispatch partial batches immediately.
    ///
    /// # Errors
    ///
    /// [`EngineError::BatchUnsupported`] when `t` has no SIMD slots;
    /// [`EngineError::UnknownTenant`]/[`EngineError::MissingKey`] when the
    /// tenant lacks the public (and, for `Mul`, relinearization) key.
    pub fn submit_scalar(&self, req: ScalarRequest) -> Result<ScalarTicket, EngineError> {
        let shared = self.shared();
        let batching = shared.batching.as_ref().ok_or_else(|| {
            EngineError::BatchUnsupported(format!(
                "t={} is not a SIMD-friendly prime for n={}",
                self.context().params().t,
                self.context().params().n
            ))
        })?;
        // Fail fast on key material so a bad tenant cannot poison a batch.
        let keys = self
            .registry()
            .get(req.tenant)
            .ok_or(EngineError::UnknownTenant(req.tenant))?;
        if keys.pk.is_none() {
            return Err(EngineError::MissingKey {
                tenant: req.tenant,
                which: "public",
            });
        }
        if req.op == ScalarOp::Mul && keys.rlk.is_none() {
            return Err(EngineError::MissingKey {
                tenant: req.tenant,
                which: "relin",
            });
        }

        let (tx, rx) = mpsc::channel();
        let full = {
            let mut pending = batching.pending.lock().unwrap();
            let slot = pending
                .entry((req.tenant, req.op))
                .or_insert_with(|| Pending {
                    lhs: Vec::new(),
                    rhs: Vec::new(),
                    replies: Vec::new(),
                    opened: Instant::now(),
                });
            slot.lhs.push(req.lhs);
            slot.rhs.push(req.rhs);
            slot.replies.push(tx);
            if slot.lhs.len() >= batching.max_batch {
                pending.remove(&(req.tenant, req.op))
            } else {
                None
            }
        };
        if let Some(batch) = full {
            dispatch_batch(shared, req.tenant, req.op, batch)?;
        }
        Ok(ScalarTicket { rx })
    }

    /// Dispatches every partially-filled batch immediately.
    pub fn flush_batches(&self) {
        let shared = self.shared();
        let Some(batching) = shared.batching.as_ref() else {
            return;
        };
        let drained: Vec<_> = {
            let mut pending = batching.pending.lock().unwrap();
            pending.drain().collect()
        };
        for ((tenant, op), batch) in drained {
            // On failure every reply channel has already been notified (or
            // disconnected, which tickets surface as QueueClosed).
            let _ = dispatch_batch(shared, tenant, op, batch);
        }
    }
}
