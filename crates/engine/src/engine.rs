//! The evaluation engine: a worker pool over the cost-aware job queue.
//!
//! Submission path: validate → price with [`CostEstimator`] (resolving
//! [`Backend::Auto`] to the cheaper datapath per job) → enqueue with the
//! tenant's QoS (weight, optional deadline). Workers pop the next job
//! under the EDF/stride/aged-cost policy, resolve the tenant's keys from
//! the [`KeyRegistry`], execute the op-graph (heavy `Mul`s fan out over
//! `hefv_core::parallel` under a per-job thread budget), and deliver the
//! result through the job's completion callback. A background linger
//! timer drains partially-filled scalar batches under light load. All
//! counters land in [`EngineStats`].

use crate::admission::{op_class_mask, Quarantine, SheddingPolicy};
use crate::chaos::{self, ChaosPlan};
use crate::error::EngineError;
use crate::registry::{KeyRegistry, TenantId, TenantKeys};
use crate::request::{EvalOp, EvalRequest, EvalResponse, JobReport, ValRef};
use crate::sched::{CostEstimator, JobQueue, QosSpec};
use crate::stats::EngineStats;
use crate::trace::{mix64, FlightRecorder, SpanRecord};
use hefv_core::context::FvContext;
use hefv_core::encrypt::Ciphertext;
use hefv_core::eval::{self, Backend, PlainOperand};
use hefv_core::galois::{apply_galois_in, sum_slots_in, HoistedCiphertext};
use hefv_core::noise::NoiseModel;
use hefv_core::parallel;
use hefv_core::scratch::Arena;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine construction parameters. `Default` picks sane values for the
/// current machine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing jobs (≥ 1).
    pub workers: usize,
    /// OS threads one job may fan out over (0 = machine budget / workers).
    /// This budget reaches all the way down the kernel stack: heavy ops
    /// first split across their coarse phases (lifts, tensor outputs,
    /// relin digits), and any surplus threads fan across residue rows
    /// inside each NTT / pointwise / basis-extension kernel — the
    /// paper's RPAU-per-residue distribution in software.
    pub threads_per_job: usize,
    /// Key-registry capacity in tenants.
    pub registry_capacity: usize,
    /// Queue bound: `submit` blocks once this many jobs are pending,
    /// pushing backpressure onto producers instead of growing memory.
    pub queue_capacity: usize,
    /// Scalar requests coalesced per batch (0 = the encoder's slot count).
    pub max_batch: usize,
    /// Max latency of a partially-filled scalar batch: a background timer
    /// dispatches any pending batch this old, so light-load traffic drains
    /// without waiting for the batch to fill or for an explicit
    /// [`Engine::flush_batches`]. `None` disables the timer.
    pub batch_linger: Option<Duration>,
    /// Scheduler aging weight in µs per arrival (0 = `mult_us / 16`).
    pub aging_weight_us: f64,
    /// Recycle evaluation buffers through a per-worker scratch arena
    /// ([`hefv_core::scratch::Arena`]): after warm-up, the Mult/rotate hot
    /// path performs no steady-state heap allocation. Disable to fall back
    /// to per-job allocation (diagnostics only — there is no performance
    /// reason to turn this off).
    pub scratch: bool,
    /// Lift/Scale datapath for multiplications. [`Backend::Auto`] lets the
    /// scheduler pick Traditional vs HPS per job, whichever the cost model
    /// prices cheaper for that job's op mix and parameter size.
    pub backend: Backend,
    /// Seed for the engine's internal randomness (batch encryption).
    pub seed: u64,
    /// Capacity of the flight recorder's span rings (recent and slow
    /// each hold this many [`SpanRecord`]s); see [`crate::trace`].
    pub trace_ring: usize,
    /// Completed jobs whose total latency (batch + queue + exec + reply)
    /// crosses this threshold are counted as slow and their spans
    /// promoted to the flight recorder's slow ring. `None` disables
    /// promotion.
    pub slow_threshold: Option<Duration>,
    /// Overload-control policy: which admission gates are armed and
    /// where they trip (see [`SheddingPolicy`]). Refusals carry a typed
    /// [`crate::error::ErrorCode`] all the way to wire clients.
    pub shedding: SheddingPolicy,
    /// Chaos-injection override: `Some` replaces the process-wide
    /// `HEFV_CHAOS` environment plan (tests set this to avoid touching
    /// the environment); `None` reads the env once per process.
    pub chaos: Option<ChaosPlan>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: parallel::machine_budget().min(4),
            threads_per_job: 0,
            registry_capacity: 64,
            queue_capacity: 128,
            max_batch: 0,
            batch_linger: Some(Duration::from_millis(100)),
            aging_weight_us: 0.0,
            scratch: true,
            backend: Backend::default(),
            seed: 0x4845_4154, // "HEAT"
            trace_ring: 256,
            slow_threshold: Some(Duration::from_millis(100)),
            shedding: SheddingPolicy::default(),
            chaos: None,
        }
    }
}

type Callback = Box<dyn FnOnce(Result<EvalResponse, EngineError>) + Send + 'static>;

struct Job {
    id: u64,
    /// End-to-end trace id: the request's own if the client set one,
    /// minted deterministically at admission otherwise.
    trace_id: u64,
    /// Time the request spent waiting in a scalar batch before
    /// submission (0 for directly-submitted jobs).
    batch_ns: u64,
    req: EvalRequest,
    cost_us: f64,
    /// Model-attributed kernel split of `cost_us`:
    /// `(ntt_us, basis_conv_us)`, recorded into the stats on completion.
    kernel_us: (f64, f64),
    /// The concrete datapath this job runs on (`Auto` is resolved at
    /// submission time against the cost model).
    backend: Backend,
    enqueued: Instant,
    done: Callback,
}

pub(crate) struct Shared {
    ctx: Arc<FvContext>,
    registry: KeyRegistry,
    stats: EngineStats,
    recorder: FlightRecorder,
    /// Mixed with the job id to mint trace ids for requests without one.
    trace_seed: u64,
    queue: JobQueue<Job>,
    noise: NoiseModel,
    backend: Backend,
    threads_per_job: usize,
    scratch: bool,
    estimator: CostEstimator,
    next_job_id: AtomicU64,
    pub(crate) batching: Option<crate::batch::Batching>,
    /// Worker-pool size: the admission deadline gate divides the queue
    /// backlog by this for its serve-time estimate.
    workers: usize,
    shedding: SheddingPolicy,
    quarantine: Quarantine,
    /// Resolved chaos plan (config override or `HEFV_CHAOS`).
    chaos: ChaosPlan,
}

impl Shared {
    pub(crate) fn ctx(&self) -> &Arc<FvContext> {
        &self.ctx
    }

    pub(crate) fn registry(&self) -> &KeyRegistry {
        &self.registry
    }

    pub(crate) fn stats(&self) -> &EngineStats {
        &self.stats
    }

    pub(crate) fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The submission path shared by [`Engine::submit_with_callback`] and
    /// the batching front-end (including its linger timer thread).
    pub(crate) fn submit_with_callback<F>(
        &self,
        req: EvalRequest,
        done: F,
    ) -> Result<u64, EngineError>
    where
        F: FnOnce(Result<EvalResponse, EngineError>) + Send + 'static,
    {
        self.submit_batched_with_callback(req, 0, done)
    }

    /// [`Shared::submit_with_callback`] with the time the request already
    /// spent waiting in a scalar batch, so the job's trace span carries
    /// the full `batch → queue → execute → reply` breakdown.
    pub(crate) fn submit_batched_with_callback<F>(
        &self,
        req: EvalRequest,
        batch_ns: u64,
        done: F,
    ) -> Result<u64, EngineError>
    where
        F: FnOnce(Result<EvalResponse, EngineError>) + Send + 'static,
    {
        let (id, cost_us, qos, job) = self.prepare(req, batch_ns, done)?;
        self.stats.on_submit();
        if !self.queue.push_qos(cost_us, qos, job) {
            self.stats.on_reject();
            return Err(EngineError::QueueClosed);
        }
        Ok(id)
    }

    /// Non-blocking submission for callers that must never wait on queue
    /// backpressure (the TCP poll loop): `Ok(None)` means the queue is
    /// at capacity right now — nothing was enqueued, `done` was dropped
    /// unused, and the caller should retry later.
    pub(crate) fn try_submit_with_callback<F>(
        &self,
        req: EvalRequest,
        done: F,
    ) -> Result<Option<u64>, EngineError>
    where
        F: FnOnce(Result<EvalResponse, EngineError>) + Send + 'static,
    {
        let (id, cost_us, qos, job) = self.prepare(req, 0, done)?;
        match self.queue.try_push_qos(cost_us, qos, job) {
            crate::sched::TryPush::Queued => {
                self.stats.on_submit();
                Ok(Some(id))
            }
            crate::sched::TryPush::Full(_) => {
                self.stats.on_refused();
                Ok(None)
            }
            crate::sched::TryPush::Closed(_) => {
                self.stats.on_refused();
                Err(EngineError::QueueClosed)
            }
        }
    }

    /// Validation, key checks, pricing and job construction — everything
    /// up to the actual enqueue.
    #[allow(clippy::type_complexity)]
    fn prepare<F>(
        &self,
        req: EvalRequest,
        batch_ns: u64,
        done: F,
    ) -> Result<(u64, f64, QosSpec, Job), EngineError>
    where
        F: FnOnce(Result<EvalResponse, EngineError>) + Send + 'static,
    {
        req.validate(&self.ctx)?;
        let keys = self
            .registry
            .get(req.tenant)
            .ok_or(EngineError::UnknownTenant(req.tenant))?;
        if req.needs_rlk() && keys.rlk.is_none() {
            return Err(EngineError::MissingKey {
                tenant: req.tenant,
                which: "relin",
            });
        }
        if req.needs_galois() && keys.galois.is_none() {
            return Err(EngineError::MissingKey {
                tenant: req.tenant,
                which: "galois",
            });
        }
        // ---- Admission control: refuse work the engine cannot finish
        // (or should not attempt) with a typed, retryable-or-not code,
        // instead of burning worker time on it. Gate order matches
        // `crate::admission`'s module docs.
        if self.quarantine.enabled() {
            let sig = (req.tenant, op_class_mask(&req.ops));
            if let Some(remaining) = self.quarantine.check(sig, &self.stats) {
                return Err(self.shed(EngineError::Quarantined {
                    retry_after_us: remaining.as_micros() as u64,
                }));
            }
        }
        if self.shedding.noise_admission {
            let magnitude = self.predict_noise_magnitude(&req, &keys);
            let needed_bits = magnitude.log2();
            let budget_bits = self.noise.threshold_bits();
            if needed_bits >= budget_bits {
                return Err(self.shed(EngineError::NoiseBudgetExhausted {
                    needed_bits: needed_bits.ceil() as u64,
                    budget_bits: budget_bits.max(0.0) as u64,
                }));
            }
        }
        let high_water = self.shedding.memory_high_water_bytes;
        if high_water > 0 {
            let pooled_bytes = self.stats.arena_pooled_bytes_now();
            if pooled_bytes >= high_water {
                return Err(self.shed(EngineError::MemoryPressure {
                    pooled_bytes,
                    high_water_bytes: high_water,
                }));
            }
        }
        let id = self.next_job_id.fetch_add(1, Ordering::Relaxed);
        // Backend::Auto resolves here, per job: the queue is priced (and
        // the job later executed) with whichever datapath the cost model
        // says is cheaper for this op mix at these parameters.
        let (backend, cost_us) = match self.backend {
            Backend::Auto => self.estimator.cheaper_backend(&req),
            b => (b, self.estimator.request_us_for(&req, b)),
        };
        // Brownout: near saturation, deadline-less (lowest-QoS) traffic
        // is shed first so jobs with deadlines keep their headroom.
        if req.deadline_us.is_none() && self.shedding.brownout_occupancy < 1.0 {
            let depth = self.queue.depth() as f64;
            let capacity = self.queue.capacity() as f64;
            if depth >= self.shedding.brownout_occupancy * capacity {
                let drain_us = self.queue.backlog_us() / self.workers as f64;
                return Err(self.shed(EngineError::Overload {
                    retry_after_us: Some((drain_us as u64).max(1)),
                }));
            }
        }
        // Deadline feasibility: the job priced against the backlog. A
        // deadline that cannot be met even under the optimistic
        // all-workers-draining estimate is refused now, not executed
        // and missed later.
        if self.shedding.deadline_admission {
            if let Some(deadline_us) = req.deadline_us {
                let estimated_us = self.queue.backlog_us() / self.workers as f64 + cost_us;
                if estimated_us > deadline_us {
                    return Err(self.shed(EngineError::DeadlineInfeasible {
                        estimated_us: estimated_us as u64,
                        deadline_us: deadline_us.max(0.0) as u64,
                    }));
                }
            }
        }
        let qos = QosSpec {
            tenant: req.tenant,
            deadline_us: req.deadline_us,
        };
        let kernel_us = self.estimator.request_kernel_us_for(&req, backend);
        // Client-supplied trace ids propagate verbatim; everyone else
        // gets a deterministic id minted from the engine seed and job id.
        let trace_id = req
            .trace_id
            .unwrap_or_else(|| mix64(self.trace_seed.wrapping_add(mix64(id))));
        let job = Job {
            id,
            trace_id,
            batch_ns,
            req,
            cost_us,
            kernel_us,
            backend,
            enqueued: Instant::now(),
            done: Box::new(done),
        };
        Ok((id, cost_us, qos, job))
    }

    /// Counts an admission refusal in the shed telemetry and hands the
    /// error back (every admission gate returns through here).
    fn shed(&self, err: EngineError) -> EngineError {
        self.stats.on_shed(err.code());
        err
    }

    /// Replays `execute`'s worst-case noise recurrence over the op graph
    /// — pure arithmetic on the [`NoiseModel`], no ciphertext is touched
    /// — and returns the predicted output noise magnitude. The admission
    /// noise gate compares this against the decryption-failure threshold
    /// so a graph that cannot close is refused at the door.
    fn predict_noise_magnitude(&self, req: &EvalRequest, keys: &TenantKeys) -> f64 {
        let fresh = self.noise.fresh();
        let mut noise: Vec<f64> = Vec::with_capacity(req.ops.len());
        let mag = |noise: &[f64], r: ValRef| -> f64 {
            match r {
                ValRef::Input(_) => fresh,
                ValRef::Op(j) => noise[j as usize],
            }
        };
        for op in &req.ops {
            let bits = match *op {
                EvalOp::Add(a, b) | EvalOp::Sub(a, b) => {
                    self.noise.after_add(mag(&noise, a), mag(&noise, b))
                }
                EvalOp::Neg(a) => mag(&noise, a),
                EvalOp::Mul(a, b) => self.noise.after_mul(mag(&noise, a), mag(&noise, b)),
                EvalOp::MulPlain(a, _) => self.noise.after_mul_plain(mag(&noise, a)),
                EvalOp::Rotate(a, _) => self.noise.after_key_switch(mag(&noise, a)),
                EvalOp::SumSlots(a) => {
                    // Same per-round recurrence the executor applies:
                    // each round key-switches the accumulator and adds
                    // it back on.
                    let rounds = keys.galois.as_ref().map_or(0, |set| set.rounds());
                    let mut acc = mag(&noise, a);
                    for _ in 0..rounds {
                        acc = self.noise.after_add(self.noise.after_key_switch(acc), acc);
                    }
                    acc
                }
            };
            noise.push(bits);
        }
        noise.last().copied().unwrap_or(fresh).max(fresh)
    }
}

/// Handle to one submitted job.
#[derive(Debug)]
pub struct JobHandle {
    /// Engine-assigned job id.
    pub id: u64,
    rx: mpsc::Receiver<Result<EvalResponse, EngineError>>,
}

impl JobHandle {
    /// Wraps an id and a result channel — how the router builds handles
    /// for jobs proxied to remote shards.
    pub(crate) fn from_channel(
        id: u64,
        rx: mpsc::Receiver<Result<EvalResponse, EngineError>>,
    ) -> Self {
        JobHandle { id, rx }
    }

    /// Blocks until the job completes.
    ///
    /// # Errors
    ///
    /// Propagates execution errors; [`EngineError::QueueClosed`] if the
    /// engine shut down before running the job.
    pub fn wait(self) -> Result<EvalResponse, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::QueueClosed))
    }
}

/// Linger-timer shutdown flag (mutex + condvar so the timer sleeps
/// between ticks and wakes immediately on shutdown).
struct TimerStop {
    stopped: Mutex<bool>,
    wake: Condvar,
}

/// The multi-tenant FHE evaluation engine. See the crate docs for an
/// end-to-end example.
pub struct Engine {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
    timer: Option<(Arc<TimerStop>, JoinHandle<()>)>,
}

impl Engine {
    /// Starts the worker pool for one parameter set.
    pub fn start(ctx: Arc<FvContext>, config: EngineConfig) -> Self {
        let workers = config.workers.max(1);
        let threads_per_job = if config.threads_per_job == 0 {
            (parallel::machine_budget() / workers).max(1)
        } else {
            config.threads_per_job
        };
        let estimator = CostEstimator::new(&ctx);
        let aging = if config.aging_weight_us > 0.0 {
            config.aging_weight_us
        } else {
            (estimator.mult_us() / 16.0).max(1e-6)
        };
        let batching = crate::batch::Batching::for_context(&ctx, &config);
        let shared = Arc::new(Shared {
            noise: NoiseModel::new(&ctx),
            registry: KeyRegistry::new(config.registry_capacity),
            stats: EngineStats::default(),
            recorder: FlightRecorder::new(
                config.trace_ring,
                config.slow_threshold.map(|d| d.as_nanos() as u64),
            ),
            trace_seed: config.seed,
            queue: JobQueue::new(aging, config.queue_capacity),
            backend: config.backend,
            threads_per_job,
            scratch: config.scratch,
            estimator,
            next_job_id: AtomicU64::new(0),
            batching,
            workers,
            quarantine: Quarantine::new(&config.shedding),
            shedding: config.shedding,
            chaos: config.chaos.unwrap_or_else(chaos::plan),
            ctx,
        });
        let handles = (0..workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hefv-worker-{worker}"))
                    .spawn(move || worker_loop(&shared, worker as u32))
                    .expect("spawn engine worker")
            })
            .collect();
        let timer = match (config.batch_linger, shared.batching.is_some()) {
            (Some(linger), true) => {
                let stop = Arc::new(TimerStop {
                    stopped: Mutex::new(false),
                    wake: Condvar::new(),
                });
                let tick = (linger / 4).max(Duration::from_millis(1));
                let shared = Arc::clone(&shared);
                let stop2 = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name("hefv-batch-linger".into())
                    .spawn(move || loop {
                        // The stop flag is released before flushing: a
                        // flush can block on queue backpressure, and
                        // shutdown must not wait behind it to even set
                        // the flag.
                        {
                            let guard = stop2.stopped.lock().unwrap();
                            if *guard {
                                break;
                            }
                            let (guard, _) = stop2.wake.wait_timeout(guard, tick).unwrap();
                            if *guard {
                                break;
                            }
                        }
                        crate::batch::flush_expired(&shared, linger);
                    })
                    .expect("spawn batch linger timer");
                Some((stop, handle))
            }
            _ => None,
        };
        Engine {
            shared,
            workers,
            handles,
            timer,
        }
    }

    /// The evaluation context this engine serves.
    pub fn context(&self) -> &Arc<FvContext> {
        &self.shared.ctx
    }

    /// The tenant key registry (register/evict/inspect).
    pub fn registry(&self) -> &KeyRegistry {
        &self.shared.registry
    }

    /// Registers a tenant's keys (convenience for `registry().register`).
    pub fn register_tenant(&self, tenant: TenantId, keys: TenantKeys) {
        self.shared.registry.register(tenant, keys);
    }

    /// Sets a tenant's fair-share weight (default 1.0): while several
    /// tenants are backlogged, each receives service in proportion to its
    /// weight (stride scheduling — see [`crate::sched::JobQueue`]).
    pub fn set_tenant_weight(&self, tenant: TenantId, weight: f64) {
        self.shared.queue.set_weight(tenant, weight);
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the job queue is at capacity right now (racy — a cheap
    /// pre-check for non-blocking submitters; see
    /// [`Engine::try_submit_with_callback`]).
    pub fn queue_is_full(&self) -> bool {
        self.shared.queue.is_full()
    }

    /// Current telemetry snapshot.
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        // Expired quarantines decay on the scrape path too, so the
        // active gauge self-corrects even for signatures that stopped
        // submitting after their TTL started.
        self.shared.quarantine.sweep(&self.shared.stats);
        self.shared.stats.snapshot()
    }

    /// The engine's flight recorder: the most recent (and most recent
    /// slow) job spans. See [`crate::trace`].
    pub fn recorder(&self) -> &FlightRecorder {
        self.shared.recorder()
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// The scheduler's price for a request on this engine's configured
    /// datapath, µs (what the queue orders by). `Auto` engines price each
    /// request at the cheaper of the two architectures.
    pub fn estimate_cost_us(&self, req: &EvalRequest) -> f64 {
        self.shared
            .estimator
            .request_us_for(req, self.shared.backend)
    }

    /// The cost estimator (both datapaths' price lists) for this engine's
    /// parameter set.
    pub fn estimator(&self) -> &CostEstimator {
        &self.shared.estimator
    }

    /// Submits a request, delivering the result to `done` from a worker
    /// thread. Returns the job id.
    ///
    /// # Errors
    ///
    /// Fails fast (without calling `done`) on validation errors, unknown
    /// tenants, missing keys, or a closed queue.
    pub fn submit_with_callback<F>(&self, req: EvalRequest, done: F) -> Result<u64, EngineError>
    where
        F: FnOnce(Result<EvalResponse, EngineError>) + Send + 'static,
    {
        self.shared.submit_with_callback(req, done)
    }

    /// Non-blocking [`Engine::submit_with_callback`]: `Ok(None)` means
    /// the queue is at capacity — nothing was enqueued (and `done` was
    /// not called); retry when load drops. This is the submission path
    /// for callers that must never park on backpressure, like the
    /// `hefv-net` poll thread.
    ///
    /// # Errors
    ///
    /// Same hard failures as [`Engine::submit_with_callback`];
    /// a full queue is `Ok(None)`, not an error.
    pub fn try_submit_with_callback<F>(
        &self,
        req: EvalRequest,
        done: F,
    ) -> Result<Option<u64>, EngineError>
    where
        F: FnOnce(Result<EvalResponse, EngineError>) + Send + 'static,
    {
        self.shared.try_submit_with_callback(req, done)
    }

    /// Submits a request, returning a handle to wait on.
    ///
    /// # Errors
    ///
    /// See [`Engine::submit_with_callback`].
    pub fn submit(&self, req: EvalRequest) -> Result<JobHandle, EngineError> {
        let (tx, rx) = mpsc::channel();
        let id = self.submit_with_callback(req, move |r| {
            let _ = tx.send(r);
        })?;
        Ok(JobHandle { id, rx })
    }

    /// Submit and wait (convenience).
    ///
    /// # Errors
    ///
    /// See [`Engine::submit`].
    pub fn call(&self, req: EvalRequest) -> Result<EvalResponse, EngineError> {
        self.submit(req)?.wait()
    }

    /// Shuts the engine down: pending jobs drain, then workers exit.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        if let Some((stop, handle)) = self.timer.take() {
            *stop.stopped.lock().unwrap() = true;
            stop.wake.notify_all();
            let _ = handle.join();
        }
        self.shared.queue.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn worker_loop(shared: &Shared, worker: u32) {
    // The worker's scratch arena persists across jobs: after the first
    // few evaluations warm it up, the hot path allocates nothing.
    let worker_arena = Arena::new();
    // Occupancy last folded into the engine gauges; after each job the
    // delta to the current occupancy is reported (see
    // `EngineStats::on_arena`), so the gauges sum every worker's live
    // pool without a registry of arenas.
    let mut reported = worker_arena.stats();
    // Per-worker chaos stream: deterministic for a fixed engine seed,
    // distinct per worker (mirrors the net layer's per-connection
    // fault rng).
    let mut chaos_rng = mix64(shared.trace_seed ^ 0xC4A0_5EED ^ u64::from(worker));
    while let Some((job, level)) = shared.queue.pop_labeled() {
        let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
        shared.stats.on_dequeue(queue_ns, level);
        let Job {
            id,
            trace_id,
            batch_ns,
            req,
            cost_us,
            kernel_us,
            backend,
            done,
            ..
        } = job;
        shared.stats.on_backend(backend);
        let tenant = req.tenant;
        let started = Instant::now();
        let job_arena;
        let arena = if shared.scratch {
            &worker_arena
        } else {
            job_arena = Arena::new();
            &job_arena
        };
        if shared.chaos.active() {
            if shared.chaos.delay > Duration::ZERO {
                std::thread::sleep(shared.chaos.delay);
            }
            if chaos::roll(shared.chaos.alloc_pressure, &mut chaos_rng) {
                // Park a chunk in the arena: genuine pooled bytes,
                // visible to the occupancy gauges and the
                // MemoryPressure admission gate, bounded by the
                // arena's own limits.
                worker_arena.put(vec![0u64; chaos::PRESSURE_CHUNK_BYTES / 8]);
            }
        }
        let inject_panic = chaos::roll(shared.chaos.panic, &mut chaos_rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inject_panic {
                panic!("chaos: injected worker panic");
            }
            execute(shared, &req, backend, arena)
        }))
        .unwrap_or_else(|_| {
            // A panicking (tenant, op-class) signature strikes the
            // quarantine table; K strikes and its submissions are
            // refused at admission until the TTL lapses.
            shared
                .quarantine
                .note_panic((tenant, op_class_mask(&req.ops)), &shared.stats);
            Err(EngineError::Internal(
                "job panicked during execution".into(),
            ))
        });
        let exec_ns = started.elapsed().as_nanos() as u64;
        let ok = result.is_ok();
        let result = match result {
            Ok((result, noise_bits)) => {
                shared
                    .stats
                    .on_complete(exec_ns, cost_us, noise_bits, backend);
                shared.stats.on_kernel_time(kernel_us.0, kernel_us.1);
                shared
                    .stats
                    .on_tenant(tenant, queue_ns + exec_ns, noise_bits);
                Ok(EvalResponse {
                    job_id: id,
                    result,
                    report: JobReport {
                        worker,
                        queue_ns,
                        exec_ns,
                        est_cost_us: cost_us,
                        noise_bits_consumed: noise_bits,
                    },
                })
            }
            Err(e) => {
                shared.stats.on_fail();
                Err(e)
            }
        };
        let reply_start = Instant::now();
        done(result);
        let reply_ns = reply_start.elapsed().as_nanos() as u64;
        let span = SpanRecord {
            trace_id,
            job_id: id,
            tenant,
            worker: worker as usize,
            ok,
            backend: backend_label(backend),
            level: level.as_str(),
            est_cost_us: cost_us,
            batch_ns,
            queue_ns,
            exec_ns,
            reply_ns,
        };
        if shared.recorder.record(span) {
            shared.stats.on_slow();
        }
        if shared.scratch {
            // The job's operand ciphertexts are dead: feed their buffers
            // back to the arena for the next job.
            for ct in req.inputs {
                worker_arena.recycle_ciphertext(ct);
            }
        }
        let now = worker_arena.stats();
        shared.stats.on_arena(&reported, &now);
        reported = now;
    }
}

/// Metric label of a resolved datapath (the order of
/// [`crate::stats::BACKEND_KINDS`]).
fn backend_label(backend: Backend) -> &'static str {
    match backend.resolve() {
        Backend::Traditional => crate::stats::BACKEND_KINDS[0],
        _ => crate::stats::BACKEND_KINDS[1],
    }
}

/// Runs the op program on the given concrete datapath. Returns the result
/// ciphertext and the estimated noise bits consumed —
/// `log2(out_magnitude / fresh_magnitude)` under the analytic worst-case
/// [`NoiseModel`] (decryption is never possible here because the engine
/// holds no secret keys).
///
/// Every heavy kernel draws its buffers from `arena`; dead intermediates
/// are recycled back into it before returning, so a warm worker arena
/// makes steady-state evaluation allocation-free. Runs of consecutive
/// `Rotate` ops over the same source value execute **hoisted**: one digit
/// decomposition ([`HoistedCiphertext`]) serves the whole run — this is
/// how wire clients request hoisted rotation batches (just list the
/// rotations back to back in the op program).
fn execute(
    shared: &Shared,
    req: &EvalRequest,
    backend: Backend,
    arena: &Arena,
) -> Result<(Ciphertext, f64), EngineError> {
    let ctx = &*shared.ctx;
    let keys = shared
        .registry
        .get(req.tenant)
        .ok_or(EngineError::UnknownTenant(req.tenant))?;
    let fresh = shared.noise.fresh();
    let mut values: Vec<Ciphertext> = Vec::with_capacity(req.ops.len());
    let mut noise: Vec<f64> = Vec::with_capacity(req.ops.len());
    // Plaintext operands transform once per job and serve every MulPlain
    // referencing them.
    let mut plain_ops: Vec<Option<PlainOperand>> = Vec::new();
    plain_ops.resize_with(req.plaintexts.len(), || None);
    // Operands resolve to borrows: a ciphertext is hundreds of KB at the
    // paper's parameters, so cloning per reference would dominate cheap ops.
    fn val<'a>(inputs: &'a [Ciphertext], values: &'a [Ciphertext], r: ValRef) -> &'a Ciphertext {
        match r {
            ValRef::Input(i) => &inputs[i as usize],
            ValRef::Op(j) => &values[j as usize],
        }
    }
    let mag = |noise: &[f64], r: ValRef| -> f64 {
        match r {
            ValRef::Input(_) => fresh,
            ValRef::Op(j) => noise[j as usize],
        }
    };
    let galois_key = |g: u32| {
        let set = keys.galois.as_ref().ok_or(EngineError::MissingKey {
            tenant: req.tenant,
            which: "galois",
        })?;
        set.keys()
            .iter()
            .find(|k| k.g == g as usize)
            .ok_or(EngineError::MissingKey {
                tenant: req.tenant,
                which: "galois",
            })
    };
    let mut at = 0usize;
    while at < req.ops.len() {
        let op = req.ops[at];
        // A run of consecutive rotations of the same value hoists the
        // digit decomposition once for the whole run.
        if let EvalOp::Rotate(a, _) = op {
            let run = req.ops[at..]
                .iter()
                .take_while(|o| matches!(o, EvalOp::Rotate(b, _) if *b == a))
                .count();
            if run >= 2 {
                let t0 = Instant::now();
                let hoisted = HoistedCiphertext::new_in(ctx, val(&req.inputs, &values, a), arena);
                for o in &req.ops[at..at + run] {
                    let EvalOp::Rotate(_, g) = *o else {
                        unreachable!("run contains only rotations")
                    };
                    let key = galois_key(g)?;
                    values.push(hoisted.rotate_in(ctx, key, arena));
                    noise.push(shared.noise.after_key_switch(mag(&noise, a)));
                }
                hoisted.recycle(arena);
                // Telemetry: each rotation records an equal share of the
                // run's total (hoisted decomposition included), so the
                // per-op sums match wall time.
                let share = t0.elapsed().as_nanos() as u64 / run as u64;
                for o in &req.ops[at..at + run] {
                    shared.stats.record_op(o.name(), share);
                }
                at += run;
                continue;
            }
        }
        let t0 = Instant::now();
        let (out, out_bits) = match op {
            EvalOp::Add(a, b) => (
                eval::add(
                    ctx,
                    val(&req.inputs, &values, a),
                    val(&req.inputs, &values, b),
                ),
                shared.noise.after_add(mag(&noise, a), mag(&noise, b)),
            ),
            EvalOp::Sub(a, b) => (
                eval::sub(
                    ctx,
                    val(&req.inputs, &values, a),
                    val(&req.inputs, &values, b),
                ),
                shared.noise.after_add(mag(&noise, a), mag(&noise, b)),
            ),
            EvalOp::Neg(a) => (eval::neg(ctx, val(&req.inputs, &values, a)), mag(&noise, a)),
            EvalOp::Mul(a, b) => {
                let rlk = keys.rlk.as_ref().ok_or(EngineError::MissingKey {
                    tenant: req.tenant,
                    which: "relin",
                })?;
                let (ca, cb) = (val(&req.inputs, &values, a), val(&req.inputs, &values, b));
                let out = if shared.threads_per_job > 1 {
                    parallel::mul_threaded_with_budget(
                        ctx,
                        ca,
                        cb,
                        rlk,
                        backend,
                        shared.threads_per_job,
                    )
                } else {
                    eval::mul_in(ctx, ca, cb, rlk, backend, arena)
                };
                (out, shared.noise.after_mul(mag(&noise, a), mag(&noise, b)))
            }
            EvalOp::MulPlain(a, p) => {
                let operand = plain_ops[p as usize]
                    .get_or_insert_with(|| PlainOperand::new(ctx, &req.plaintexts[p as usize]));
                (
                    eval::mul_plain_operand_in(ctx, val(&req.inputs, &values, a), operand, arena),
                    shared.noise.after_mul_plain(mag(&noise, a)),
                )
            }
            EvalOp::Rotate(a, g) => {
                let key = galois_key(g)?;
                (
                    apply_galois_in(ctx, val(&req.inputs, &values, a), key, arena),
                    shared.noise.after_key_switch(mag(&noise, a)),
                )
            }
            EvalOp::SumSlots(a) => {
                let set = keys.galois.as_ref().ok_or(EngineError::MissingKey {
                    tenant: req.tenant,
                    which: "galois",
                })?;
                let rounds = set.rounds();
                // Each round adds the rotated (key-switched) ciphertext
                // back onto the accumulator.
                let mut acc = mag(&noise, a);
                for _ in 0..rounds {
                    acc = shared
                        .noise
                        .after_add(shared.noise.after_key_switch(acc), acc);
                }
                (
                    sum_slots_in(ctx, val(&req.inputs, &values, a), set, arena),
                    acc,
                )
            }
        };
        shared
            .stats
            .record_op(op.name(), t0.elapsed().as_nanos() as u64);
        values.push(out);
        noise.push(out_bits);
        at += 1;
    }
    let result = values.pop().expect("validated: at least one op");
    // Dead intermediates feed the arena for the next job.
    for v in values {
        arena.recycle_ciphertext(v);
    }
    for p in plain_ops.into_iter().flatten() {
        arena.recycle(p.into_poly_ntt());
    }
    // Magnitudes → consumed bits relative to a fresh ciphertext.
    let out_magnitude = noise.last().copied().unwrap_or(fresh).max(fresh);
    let consumed = (out_magnitude.log2() - fresh.log2()).max(0.0);
    Ok((result, consumed))
}
