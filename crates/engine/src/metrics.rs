//! Log-linear latency histograms and Prometheus-text exposition.
//!
//! The paper's evaluation is a cost *breakdown* — which kernel cycles go
//! where on each datapath — and a serving fleet needs the same attribution
//! at runtime: not just totals and a max, but the shape of the latency
//! distribution per op class, per datapath and per scheduler level. This
//! module provides the two halves:
//!
//! * [`Histogram`] — an HDR-style fixed-bucket log-linear histogram over
//!   `u64` nanosecond values. Buckets are atomics, so recording is a
//!   handful of relaxed fetch-adds (lock-free, wait-free on every
//!   platform with native 64-bit atomics) and fits the engine's hot path;
//!   snapshots are mergeable exactly like
//!   [`StatsSnapshot::absorb`](crate::stats::StatsSnapshot::absorb), so
//!   shard histograms fold into fleet histograms without losing quantile
//!   fidelity. Values below [`LINEAR_MAX`] are exact; above it the
//!   relative error is bounded by `1/SUBBUCKETS` (6.25%).
//! * [`render_prometheus`] — the Prometheus text exposition of a
//!   [`RouterStats`]: merged fleet counters,
//!   summary-style quantiles per op class / backend / queue level,
//!   per-tenant accounting, and a per-shard health block (liveness, queue
//!   depth, inflight, rejects). This is the payload of the `HEVS` admin
//!   frame (see [`crate::wire`] and the `hefv-net` server).

use crate::router::RouterStats;
use crate::stats::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Values below this record into exact unit-width buckets.
pub const LINEAR_MAX: u64 = 16;

/// Sub-buckets per power of two above [`LINEAR_MAX`] (the log-linear
/// resolution: relative error ≤ `1/SUBBUCKETS`).
pub const SUBBUCKETS: u64 = 16;

/// Total bucket count: 16 exact buckets + 16 sub-buckets for each
/// exponent 4..=63.
pub const BUCKETS: usize = (LINEAR_MAX + (63 - 4 + 1) * SUBBUCKETS) as usize;

/// Bucket index of a value. Exact below [`LINEAR_MAX`]; log-linear above.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as u64; // 4..=63
        (LINEAR_MAX + (exp - 4) * SUBBUCKETS + ((v >> (exp - 4)) & (SUBBUCKETS - 1))) as usize
    }
}

/// Representative value of a bucket (its midpoint), the value quantile
/// estimation reports for samples that landed there.
#[inline]
pub fn bucket_value(index: usize) -> u64 {
    let i = index as u64;
    if i < LINEAR_MAX {
        i
    } else {
        let exp = 4 + (i - LINEAR_MAX) / SUBBUCKETS;
        let sub = (i - LINEAR_MAX) % SUBBUCKETS;
        let width = 1u64 << (exp - 4);
        ((SUBBUCKETS + sub) << (exp - 4)) + width / 2
    }
}

/// A mergeable log-linear histogram with atomic buckets. Recording is
/// four relaxed atomic RMWs: bucket, count, sum, max — no locks, no
/// allocation. See the module docs for the bucket layout.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough frozen copy (relaxed loads; counts may trail
    /// in-flight recordings by a few, never corrupt).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Frozen, mergeable view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_index`] / [`bucket_value`]).
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds another snapshot into this one: buckets, counts and sums
    /// add; the max takes the max. Merging N shard snapshots produces
    /// exactly the histogram of recording the union of their samples.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        debug_assert_eq!(self.buckets.len(), other.buckets.len());
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The estimated `q`-quantile of the recorded values: the
    /// representative value of the bucket containing the ⌈q·count⌉-th
    /// sample, clamped to the exact max.
    ///
    /// Edge cases are pinned (and covered in `tests/stats_merge.rs`):
    /// * **empty histogram** → `0`, whatever `q` is;
    /// * **`q <= 0`** (including `-inf`) → the first sample's bucket
    ///   value, i.e. the smallest quantile the bucketing can resolve;
    /// * **`q >= 1`** (including `+inf`) → the **exact** recorded
    ///   maximum, not a bucket representative;
    /// * **`NaN`** → treated as `q = 0` (never panics, never yields a
    ///   garbage bucket).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Escapes a Prometheus label value (backslash, double quote, newline).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// The quantiles every latency summary exposes.
pub const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn line(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    if value == value.trunc() && value.abs() < 1e15 {
        out.push_str(&format!("{value}"));
    } else {
        out.push_str(&format!("{value:.9}"));
    }
    out.push('\n');
}

/// Renders a summary family (quantiles + `_sum` + `_count` +
/// `_max` gauge) for one histogram, values converted ns → seconds.
fn summary(out: &mut String, name: &str, labels: &[(&str, &str)], h: &HistogramSnapshot) {
    let mut ql: Vec<(&str, &str)> = labels.to_vec();
    for (q, qs) in QUANTILES {
        ql.push(("quantile", qs));
        line(out, name, &ql, h.quantile(q) as f64 / 1e9);
        ql.pop();
    }
    line(out, &format!("{name}_sum"), labels, h.sum as f64 / 1e9);
    line(out, &format!("{name}_count"), labels, h.count as f64);
    line(out, &format!("{name}_max"), labels, h.max as f64 / 1e9);
}

/// Jobs admitted but not yet finished or queued: `submitted − completed −
/// failed − queue_depth`, clamped at 0 against racy snapshots. The sum is
/// computed once in signed arithmetic and clamped at the end — clamping
/// between terms would make the result depend on subtraction order when a
/// racy snapshot undercounts `submitted`.
fn inflight(s: &StatsSnapshot) -> u64 {
    (s.jobs_submitted as i128
        - s.jobs_completed as i128
        - s.jobs_failed as i128
        - s.queue_depth as i128)
        .max(0) as u64
}

/// Renders the merged fleet snapshot plus a per-shard health block as
/// Prometheus text (the `HEVS` metrics payload). The `hefv-net` server
/// appends its own `hefv_net_*` transport families to this.
pub fn render_prometheus(fleet: &RouterStats) -> String {
    let mut out = String::with_capacity(16 * 1024);
    render_prometheus_into(&mut out, fleet);
    out
}

/// [`render_prometheus`], appending into an existing buffer.
pub fn render_prometheus_into(out: &mut String, fleet: &RouterStats) {
    let t = &fleet.total;
    // Health summary, human-first (Prometheus ignores plain comments).
    let rejected = t.jobs_rejected;
    let submitted = t.jobs_submitted;
    out.push_str(&format!(
        "# hefv health: {} shards, {} queued, {} inflight, {} completed, {} failed, {} rejected (reject rate {:.4})\n",
        fleet.per_shard.len(),
        t.queue_depth,
        inflight(t),
        t.jobs_completed,
        t.jobs_failed,
        rejected,
        if submitted + rejected > 0 {
            rejected as f64 / (submitted + rejected) as f64
        } else {
            0.0
        },
    ));

    for (name, help, v) in [
        (
            "hefv_jobs_submitted_total",
            "Jobs accepted into a queue",
            t.jobs_submitted as f64,
        ),
        (
            "hefv_jobs_completed_total",
            "Jobs finished successfully",
            t.jobs_completed as f64,
        ),
        (
            "hefv_jobs_failed_total",
            "Jobs failed at execution time",
            t.jobs_failed as f64,
        ),
        (
            "hefv_jobs_rejected_total",
            "Submissions refused at capacity or by a closed queue (retries counted)",
            t.jobs_rejected as f64,
        ),
        (
            "hefv_jobs_slow_total",
            "Jobs over the slow-job threshold (spans promoted to the slow ring)",
            t.jobs_slow as f64,
        ),
        (
            "hefv_batches_formed_total",
            "Scalar batches coalesced",
            t.batches_formed as f64,
        ),
        (
            "hefv_batched_requests_total",
            "Scalar requests inside those batches",
            t.batched_requests as f64,
        ),
        (
            "hefv_queue_wait_seconds_total",
            "Cumulative queue wait",
            t.queue_wait_ns as f64 / 1e9,
        ),
        (
            "hefv_exec_seconds_total",
            "Cumulative execution wall time",
            t.exec_ns as f64 / 1e9,
        ),
        (
            "hefv_sim_cost_microseconds_total",
            "Cumulative simulated coprocessor cost",
            t.sim_cost_us,
        ),
        (
            "hefv_ntt_microseconds_total",
            "Model-attributed transform (NTT) time",
            t.ntt_us,
        ),
        (
            "hefv_basis_conv_microseconds_total",
            "Model-attributed Lift/Scale basis-conversion time",
            t.basis_conv_us,
        ),
        (
            "hefv_noise_bits_total",
            "Estimated noise bits consumed",
            t.noise_bits_consumed,
        ),
        (
            "hefv_arena_dropped_total",
            "Scratch-arena returns dropped by a pool high-water mark",
            t.arena_dropped as f64,
        ),
    ] {
        header(out, name, help, "counter");
        line(out, name, &[], v);
    }

    header(
        out,
        "hefv_queue_depth",
        "Jobs waiting right now (fleet)",
        "gauge",
    );
    line(out, "hefv_queue_depth", &[], t.queue_depth as f64);
    header(
        out,
        "hefv_jobs_inflight",
        "Jobs admitted but not yet finished (fleet)",
        "gauge",
    );
    line(out, "hefv_jobs_inflight", &[], inflight(t) as f64);
    header(
        out,
        "hefv_arena_pooled_buffers",
        "Scratch buffers pooled across worker arenas (fleet)",
        "gauge",
    );
    line(
        out,
        "hefv_arena_pooled_buffers",
        &[],
        t.arena_pooled_buffers as f64,
    );
    header(
        out,
        "hefv_arena_pooled_bytes",
        "Bytes of scratch capacity pooled across worker arenas (fleet)",
        "gauge",
    );
    line(
        out,
        "hefv_arena_pooled_bytes",
        &[],
        t.arena_pooled_bytes as f64,
    );

    header(
        out,
        "hefv_shed_total",
        "Submissions refused at the admission door, by refusal class",
        "counter",
    );
    for &(reason, v) in &t.shed_by_reason {
        line(out, "hefv_shed_total", &[("reason", reason)], v as f64);
    }
    header(
        out,
        "hefv_quarantine_active",
        "(tenant, op-class) signatures currently quarantined after repeated panics",
        "gauge",
    );
    line(
        out,
        "hefv_quarantine_active",
        &[],
        t.quarantine_active as f64,
    );

    header(
        out,
        "hefv_jobs_backend_total",
        "Jobs dispatched per Lift/Scale datapath",
        "counter",
    );
    line(
        out,
        "hefv_jobs_backend_total",
        &[("backend", "traditional")],
        t.jobs_traditional as f64,
    );
    line(
        out,
        "hefv_jobs_backend_total",
        &[("backend", "hps")],
        t.jobs_hps as f64,
    );

    header(
        out,
        "hefv_op_latency_seconds",
        "Execution latency per op class (fleet-merged)",
        "summary",
    );
    for op in &t.per_op {
        summary(
            out,
            "hefv_op_latency_seconds",
            &[("op", op.name)],
            &op.latency,
        );
    }

    header(
        out,
        "hefv_backend_latency_seconds",
        "Job execution latency per Lift/Scale datapath",
        "summary",
    );
    for (backend, h) in &t.exec_by_backend {
        summary(
            out,
            "hefv_backend_latency_seconds",
            &[("backend", backend)],
            h,
        );
    }

    header(
        out,
        "hefv_queue_wait_seconds",
        "Queue wait per scheduler level that released the job",
        "summary",
    );
    for (level, h) in &t.queue_wait_by_level {
        summary(out, "hefv_queue_wait_seconds", &[("level", level)], h);
    }

    header(
        out,
        "hefv_tenant_requests_total",
        "Completed jobs per tenant",
        "counter",
    );
    for ten in &t.per_tenant {
        let id = ten.tenant.to_string();
        line(
            out,
            "hefv_tenant_requests_total",
            &[("tenant", &id)],
            ten.requests as f64,
        );
    }
    header(
        out,
        "hefv_tenant_latency_seconds_total",
        "Cumulative queue+exec latency per tenant",
        "counter",
    );
    for ten in &t.per_tenant {
        let id = ten.tenant.to_string();
        line(
            out,
            "hefv_tenant_latency_seconds_total",
            &[("tenant", &id)],
            ten.latency_ns as f64 / 1e9,
        );
    }
    header(
        out,
        "hefv_tenant_noise_bits_total",
        "Estimated noise bits consumed per tenant",
        "counter",
    );
    for ten in &t.per_tenant {
        let id = ten.tenant.to_string();
        line(
            out,
            "hefv_tenant_noise_bits_total",
            &[("tenant", &id)],
            ten.noise_bits,
        );
    }

    // Per-shard health + latency block.
    header(
        out,
        "hefv_shard_up",
        "Shard liveness (present = serving)",
        "gauge",
    );
    for s in &fleet.per_shard {
        let id = s.id.to_string();
        line(
            out,
            "hefv_shard_up",
            &[("shard", &id), ("name", &s.name)],
            if s.up { 1.0 } else { 0.0 },
        );
    }
    for (name, help, pick) in [
        (
            "hefv_shard_queue_depth",
            "Jobs waiting per shard",
            (|s: &StatsSnapshot| s.queue_depth as f64) as fn(&StatsSnapshot) -> f64,
        ),
        (
            "hefv_shard_inflight",
            "Jobs admitted but not finished per shard",
            |s| inflight(s) as f64,
        ),
        (
            "hefv_shard_jobs_completed_total",
            "Jobs finished per shard",
            |s| s.jobs_completed as f64,
        ),
        (
            "hefv_shard_jobs_rejected_total",
            "Refused submissions per shard",
            |s| s.jobs_rejected as f64,
        ),
    ] {
        let kind = if name.ends_with("_total") {
            "counter"
        } else {
            "gauge"
        };
        header(out, name, help, kind);
        for s in &fleet.per_shard {
            let id = s.id.to_string();
            line(out, name, &[("shard", &id)], pick(&s.stats));
        }
    }
    header(
        out,
        "hefv_shard_op_latency_seconds",
        "Execution latency per op class per shard",
        "summary",
    );
    for s in &fleet.per_shard {
        let id = s.id.to_string();
        for op in &s.stats.per_op {
            summary(
                out,
                "hefv_shard_op_latency_seconds",
                &[("shard", &id), ("op", op.name)],
                &op.latency,
            );
        }
    }

    // Remote-shard transport/health block (empty fleets still get the
    // hedge counters, so scrapers see the families exist).
    type RemotePick = fn(&crate::router::RemoteShardStats) -> f64;
    for (name, help, kind, pick) in [
        (
            "hefv_remote_shard_up",
            "Remote shard circuit state (1 = closed/serving)",
            "gauge",
            (|r| if r.stats.healthy { 1.0 } else { 0.0 }) as RemotePick,
        ),
        (
            "hefv_remote_inflight",
            "Frames forwarded to the node and awaiting replies",
            "gauge",
            |r| r.stats.inflight as f64,
        ),
        (
            "hefv_remote_frames_forwarded_total",
            "Frames handed to the remote transport",
            "counter",
            |r| r.stats.frames_forwarded as f64,
        ),
        (
            "hefv_remote_replies_total",
            "Replies matched back to a forwarded frame",
            "counter",
            |r| r.stats.replies as f64,
        ),
        (
            "hefv_remote_send_errors_total",
            "Transport-level send failures",
            "counter",
            |r| r.stats.send_errors as f64,
        ),
        (
            "hefv_remote_connects_total",
            "Successful connection establishments (initial + re-)",
            "counter",
            |r| r.stats.connects as f64,
        ),
        (
            "hefv_remote_probe_failures_total",
            "Failed liveness probes",
            "counter",
            |r| r.stats.probe_failures as f64,
        ),
        (
            "hefv_remote_ejections_total",
            "Circuit-breaker opens",
            "counter",
            |r| r.stats.ejections as f64,
        ),
        (
            "hefv_remote_recoveries_total",
            "Circuit-breaker closes after an ejection",
            "counter",
            |r| r.stats.recoveries as f64,
        ),
        (
            "hefv_remote_timeouts_total",
            "Forwarded frames that timed out after the retry",
            "counter",
            |r| r.stats.timeouts as f64,
        ),
        (
            "hefv_remote_retries_total",
            "Timeout-triggered re-sends of forwarded frames",
            "counter",
            |r| r.stats.retries as f64,
        ),
    ] {
        header(out, name, help, kind);
        for r in &fleet.remote {
            let id = r.id.to_string();
            line(
                out,
                name,
                &[("shard", &id), ("name", &r.name), ("endpoint", &r.endpoint)],
                pick(r),
            );
        }
    }
    header(
        out,
        "hefv_node_breaker_state",
        "Remote node circuit-breaker position (0 = closed, 1 = half-open, 2 = open)",
        "gauge",
    );
    for r in &fleet.remote {
        line(
            out,
            "hefv_node_breaker_state",
            &[("node", &r.name), ("endpoint", &r.endpoint)],
            r.stats.breaker.as_gauge(),
        );
    }
    header(
        out,
        "hefv_node_catching_up",
        "Remote node recovered from an ejection but not yet re-verified by anti-entropy (replica-only until 0)",
        "gauge",
    );
    for r in &fleet.remote {
        line(
            out,
            "hefv_node_catching_up",
            &[("node", &r.name), ("endpoint", &r.endpoint)],
            if r.stats.catching_up { 1.0 } else { 0.0 },
        );
    }
    let h = &fleet.hedge;
    for (name, help, value) in [
        (
            "hefv_remote_hedges_total",
            "Remote dispatches that armed a hedge timer",
            h.armed as f64,
        ),
        (
            "hefv_remote_hedges_fired_total",
            "Hedge timers that fired a replica dispatch",
            h.fired as f64,
        ),
        (
            "hefv_remote_hedge_wins_total",
            "Reply races won by the hedge replica",
            h.wins as f64,
        ),
        (
            "hefv_remote_failovers_total",
            "Primary failures failed over to the replica",
            h.failovers as f64,
        ),
        (
            "hefv_remote_key_pushes_total",
            "Tenant key payloads pushed to shards",
            h.key_pushes as f64,
        ),
        (
            "hefv_remote_key_push_failures_total",
            "Key pushes that failed after retries",
            h.key_push_failures as f64,
        ),
        (
            "hefv_keys_replicated_total",
            "Tenant key payloads placed on (or received by) a non-primary replica holder",
            h.keys_replicated as f64,
        ),
        (
            "hefv_failover_total",
            "Dispatches re-homed from a failed primary to a replica (breaker- or hedge-driven)",
            h.failovers as f64,
        ),
        (
            "hefv_keys_evicted_total",
            "Tenant keys dropped by registry LRU capacity across local shards (anti-entropy re-pushes vaulted ones)",
            fleet.keys_evicted as f64,
        ),
    ] {
        header(out, name, help, "counter");
        line(out, name, &[], value);
    }
    let (snap_ok, snap_failed) = crate::registry::snapshot_restore_counts();
    header(
        out,
        "hefv_snapshot_restore_total",
        "HEVR registry-snapshot restore attempts by outcome",
        "counter",
    );
    line(
        out,
        "hefv_snapshot_restore_total",
        &[("outcome", "ok")],
        snap_ok as f64,
    );
    line(
        out,
        "hefv_snapshot_restore_total",
        &[("outcome", "integrity_failure")],
        snap_failed as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exact_below_linear_max() {
        for v in 0..LINEAR_MAX {
            assert_eq!(bucket_index(v), v as usize);
        }
        let mut last = 0;
        for v in [
            16u64,
            17,
            31,
            32,
            33,
            100,
            1000,
            1 << 20,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= last, "monotone: {v} -> {i} after {last}");
            assert!(i < BUCKETS);
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_value_respects_relative_error() {
        for v in [20u64, 100, 12345, 1 << 30, (1 << 40) + 12345] {
            let rep = bucket_value(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / SUBBUCKETS as f64, "{v} -> {rep}: err {err}");
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1ms-ish spread in ns terms
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1_000_000);
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!(
            (p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.07,
            "p50 {p50}"
        );
        assert!(
            (p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.07,
            "p99 {p99}"
        );
        assert!(s.quantile(1.0) <= s.max);
        assert_eq!(s.quantile(0.0), s.quantile(1e-9));
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let a = Histogram::default();
        let b = Histogram::default();
        let both = Histogram::default();
        for v in 0..500u64 {
            a.record(v * 7);
            both.record(v * 7);
        }
        for v in 0..300u64 {
            b.record(v * 13 + 1);
            both.record(v * 13 + 1);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
