//! Admission control: the engine's overload/brownout policy and the
//! panic-quarantine table.
//!
//! Every gate here runs on the submission path *before* a job is
//! enqueued, so work the engine cannot finish (or should not attempt)
//! is refused with a typed [`crate::error::ErrorCode`] instead of
//! burning worker time — the serving-tier analogue of the paper's
//! observation that the host stack, not the coprocessor, bounds
//! delivered throughput under load. The gates, in evaluation order:
//!
//! 1. **Quarantine** — a (tenant, op-class) signature that panicked
//!    workers [`SheddingPolicy::quarantine_after`] times is refused
//!    [`Quarantined`] until its TTL lapses (strikes halve on each
//!    expiry, so a stale offender decays back to trusted).
//! 2. **Noise budget** — the [`hefv_core::noise::NoiseModel`]
//!    recurrence is replayed over the op graph (pure arithmetic, no
//!    ciphertexts); a graph whose worst-case output noise crosses the
//!    decryption-failure threshold is refused
//!    [`NoiseBudgetExhausted`] at the door.
//! 3. **Memory pressure** — admission is gated on the worker arenas'
//!    pooled-byte gauge against a configurable high-water mark
//!    ([`MemoryPressure`]).
//! 4. **Brownout** — above a queue-occupancy fraction, deadline-less
//!    (lowest-QoS) jobs are shed [`Overload`] first, with a
//!    retry-after hint from the backlog estimate, so deadline traffic
//!    keeps its headroom.
//! 5. **Deadline feasibility** — a job whose priced cost plus the
//!    current backlog estimate cannot meet its own deadline is refused
//!    [`DeadlineInfeasible`] instead of executed-and-missed.
//!
//! [`Quarantined`]: crate::error::ErrorCode::Quarantined
//! [`NoiseBudgetExhausted`]: crate::error::ErrorCode::NoiseBudgetExhausted
//! [`MemoryPressure`]: crate::error::ErrorCode::MemoryPressure
//! [`Overload`]: crate::error::ErrorCode::Overload
//! [`DeadlineInfeasible`]: crate::error::ErrorCode::DeadlineInfeasible

use crate::registry::TenantId;
use crate::request::EvalOp;
use crate::stats::EngineStats;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// When and what the engine sheds at admission. Lives on
/// [`crate::engine::EngineConfig`]; all gates evaluate per submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SheddingPolicy {
    /// Refuse `DeadlineInfeasible` when the backlog estimate plus the
    /// job's priced cost exceeds its own deadline.
    pub deadline_admission: bool,
    /// Queue-occupancy fraction above which deadline-less (lowest-QoS)
    /// jobs are shed `Overload` while deadline traffic is still
    /// admitted. `>= 1.0` disables the brownout.
    pub brownout_occupancy: f64,
    /// Pooled-byte high-water mark across the worker scratch arenas;
    /// admission refuses `MemoryPressure` above it. `0` disables.
    pub memory_high_water_bytes: u64,
    /// Refuse `NoiseBudgetExhausted` when the worst-case noise model
    /// says the op graph cannot decrypt at these parameters.
    pub noise_admission: bool,
    /// Worker panics on one (tenant, op-class) signature before that
    /// signature is quarantined. `0` disables quarantine.
    pub quarantine_after: u32,
    /// How long a quarantined signature is refused. On expiry the
    /// signature's strike count halves (decay), so repeat offenders
    /// re-quarantine faster while stale ones regain trust.
    pub quarantine_ttl: Duration,
}

impl Default for SheddingPolicy {
    fn default() -> Self {
        SheddingPolicy {
            deadline_admission: true,
            brownout_occupancy: 0.9,
            // Off by default: the right ceiling is deployment-sized
            // (workers × arena limits), not guessable here.
            memory_high_water_bytes: 0,
            noise_admission: true,
            quarantine_after: 3,
            quarantine_ttl: Duration::from_secs(5),
        }
    }
}

/// The panic signature admission gates on: which op classes a request
/// uses, one bit per [`EvalOp`] kind. Coarser than the whole graph (so
/// a poisoned input shape is caught across size variations), finer
/// than the tenant (so one bad workload does not quarantine the
/// tenant's unrelated traffic).
pub(crate) fn op_class_mask(ops: &[EvalOp]) -> u8 {
    let mut mask = 0u8;
    for op in ops {
        mask |= 1
            << match op {
                EvalOp::Add(..) => 0,
                EvalOp::Sub(..) => 1,
                EvalOp::Neg(..) => 2,
                EvalOp::Mul(..) => 3,
                EvalOp::MulPlain(..) => 4,
                EvalOp::Rotate(..) => 5,
                EvalOp::SumSlots(..) => 6,
            };
    }
    mask
}

/// One signature's standing with the quarantine table.
struct SigState {
    /// Worker panics attributed to this signature (halved on each
    /// quarantine expiry).
    strikes: u32,
    /// While `Some`, the signature is refused until this instant.
    until: Option<Instant>,
}

/// Per-(tenant, op-class) panic bookkeeping. The worker pool reports
/// panics in; the admission path checks membership; expiry is lazy
/// (checked on admission and on [`Quarantine::sweep`]). The active
/// count is mirrored into [`EngineStats`]' `quarantine_active` gauge
/// on every transition so it reaches fleet snapshots like any other
/// counter.
pub(crate) struct Quarantine {
    after: u32,
    ttl: Duration,
    table: Mutex<HashMap<(TenantId, u8), SigState>>,
}

impl Quarantine {
    pub(crate) fn new(policy: &SheddingPolicy) -> Self {
        Quarantine {
            after: policy.quarantine_after,
            ttl: policy.quarantine_ttl,
            table: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.after > 0
    }

    /// Admission check: remaining TTL if `sig` is quarantined right
    /// now. Expired entries decay here (strikes halve; the entry drops
    /// once strikes reach zero).
    pub(crate) fn check(&self, sig: (TenantId, u8), stats: &EngineStats) -> Option<Duration> {
        if !self.enabled() {
            return None;
        }
        let mut table = self.table.lock().expect("quarantine table lock");
        let state = table.get_mut(&sig)?;
        let until = state.until?;
        let now = Instant::now();
        if until > now {
            return Some(until - now);
        }
        state.until = None;
        state.strikes /= 2;
        stats.on_quarantine_exit();
        if state.strikes == 0 {
            table.remove(&sig);
        }
        None
    }

    /// A worker panicked executing a job with this signature. The K-th
    /// strike (while not already quarantined) starts a TTL.
    pub(crate) fn note_panic(&self, sig: (TenantId, u8), stats: &EngineStats) {
        if !self.enabled() {
            return;
        }
        let mut table = self.table.lock().expect("quarantine table lock");
        let state = table.entry(sig).or_insert(SigState {
            strikes: 0,
            until: None,
        });
        state.strikes = state.strikes.saturating_add(1);
        if state.until.is_none() && state.strikes >= self.after {
            state.until = Some(Instant::now() + self.ttl);
            stats.on_quarantine_enter();
        }
    }

    /// Decays every expired entry (called on stats snapshots, so the
    /// `quarantine_active` gauge self-corrects on scrape even for
    /// signatures that stopped submitting).
    pub(crate) fn sweep(&self, stats: &EngineStats) {
        if !self.enabled() {
            return;
        }
        let now = Instant::now();
        let mut table = self.table.lock().expect("quarantine table lock");
        table.retain(|_, state| {
            if state.until.is_some_and(|until| until <= now) {
                state.until = None;
                state.strikes /= 2;
                stats.on_quarantine_exit();
            }
            state.strikes > 0 || state.until.is_some()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ValRef;

    fn policy(after: u32, ttl: Duration) -> SheddingPolicy {
        SheddingPolicy {
            quarantine_after: after,
            quarantine_ttl: ttl,
            ..SheddingPolicy::default()
        }
    }

    #[test]
    fn op_class_mask_separates_workload_shapes() {
        let a = ValRef::Input(0);
        let mul = op_class_mask(&[EvalOp::Mul(a, a)]);
        let add = op_class_mask(&[EvalOp::Add(a, a)]);
        assert_ne!(mul, add);
        assert_eq!(
            op_class_mask(&[EvalOp::Mul(a, a), EvalOp::Add(ValRef::Op(0), a)]),
            mul | add
        );
        // Masks ignore graph size: same shape → same signature.
        assert_eq!(op_class_mask(&[EvalOp::Mul(a, a); 10]), mul);
    }

    #[test]
    fn k_strikes_quarantine_then_ttl_decays() {
        let stats = EngineStats::default();
        let q = Quarantine::new(&policy(3, Duration::from_millis(40)));
        let sig = (7u64, 0b1000u8);

        q.note_panic(sig, &stats);
        q.note_panic(sig, &stats);
        assert!(q.check(sig, &stats).is_none(), "below K: admitted");
        q.note_panic(sig, &stats);
        let rem = q.check(sig, &stats).expect("K strikes: quarantined");
        assert!(rem <= Duration::from_millis(40));
        assert_eq!(stats.snapshot().quarantine_active, 1);

        // Other signatures are unaffected.
        assert!(q.check((7, 0b0001), &stats).is_none());
        assert!(q.check((8, 0b1000), &stats).is_none());

        std::thread::sleep(Duration::from_millis(60));
        assert!(q.check(sig, &stats).is_none(), "TTL lapsed: admitted");
        assert_eq!(stats.snapshot().quarantine_active, 0);

        // Strikes halved (3 → 1), so one more panic does not re-trip…
        q.note_panic(sig, &stats);
        assert!(q.check(sig, &stats).is_none());
        // …but the third does.
        q.note_panic(sig, &stats);
        assert!(q.check(sig, &stats).is_some());
    }

    #[test]
    fn sweep_decays_idle_signatures() {
        let stats = EngineStats::default();
        let q = Quarantine::new(&policy(1, Duration::from_millis(10)));
        q.note_panic((1, 1), &stats);
        q.note_panic((2, 2), &stats);
        assert_eq!(stats.snapshot().quarantine_active, 2);
        std::thread::sleep(Duration::from_millis(25));
        // Neither signature submits again; the scrape-path sweep still
        // corrects the gauge.
        q.sweep(&stats);
        assert_eq!(stats.snapshot().quarantine_active, 0);
    }

    #[test]
    fn disabled_quarantine_never_trips() {
        let stats = EngineStats::default();
        let q = Quarantine::new(&policy(0, Duration::from_secs(1)));
        for _ in 0..10 {
            q.note_panic((1, 1), &stats);
        }
        assert!(q.check((1, 1), &stats).is_none());
        assert_eq!(stats.snapshot().quarantine_active, 0);
    }
}
