//! Request/response framing, extending the ciphertext wire format.
//!
//! `hefv_core::wire` fixes how one ciphertext crosses an interface (the
//! paper's §V-D DMA layout); this module frames whole [`EvalRequest`]s and
//! [`EvalResponse`]s around it so requests can arrive serialized from
//! remote clients — and, since v2, so a [`crate::router::ShardRouter`]
//! front-end can route frames to engine shards without decoding the
//! payload. Layout (all little-endian):
//!
//! ```text
//! request  := "HEVQ" u32 | version=2 u16 | flags u16 | tenant u64
//!           | shard u16 | n_inputs u16 | n_plaintexts u16 | n_ops u16
//!           | deadline_us f64            (only when flags bit 0 is set)
//!           | trace_id u64               (only when flags bit 1 is set)
//!           | inputs…(len u32, core-wire ciphertext)
//!           | plaintexts…(n_coeffs u32, coeffs u64…)
//!           | ops…(opcode u8, a_tag u8, a_idx u32, b_tag u8, b_idx u32)
//! response := "HEVP" u32 | version=2 u16 | status u8 | shard u8
//!           | job_id u64
//!           | ok:  worker u32 | queue_ns u64 | exec_ns u64
//!                | est_cost_us f64 | noise_bits f64
//!                | len u32 | core-wire ciphertext
//!           | err: code u8 | flags u8
//!                | retry_after_us u64         (only when flags bit 0 is set)
//!                | len u32 | utf-8 message
//! stats-rq := "HEVS" u32 | version=2 u16 | dir=0 u8 | kind u8
//! stats-rp := "HEVS" u32 | version=2 u16 | dir=1 u8 | kind u8
//!           | len u32 | utf-8 body
//! ```
//!
//! The `HEVS` admin frames carry no ciphertexts: `kind` 0 requests the
//! Prometheus-text metrics exposition of the serving fleet, `kind` 1 a
//! plain-text dump of recent/slow trace spans. A server answers them
//! synchronously on its poll thread (see `hefv-net`), so the same
//! connection that pipelines `HEVQ` work can scrape health.
//!
//! `shard` names the target engine shard; [`NO_SHARD`] (`0xFFFF`) asks the
//! router to place the request by consistent-hashing its tenant id.
//! [`peek_shard`] and [`peek_response_shard`] read it without touching the
//! payload, so a TCP front-end can route each frame in O(header).
//!
//! Error responses carry the machine-readable refusal taxonomy: `code`
//! is an [`ErrorCode`] byte and flag bit 0 gates an optional
//! retry-after-µs hint, so clients and proxying routers can classify a
//! refusal (back off, re-route, give up) without parsing the rendered
//! message ([`peek_response_error`] does it without a context).
//!
//! Decoding is strict: unknown magic/version/flags/opcodes, truncation,
//! trailing bytes, frames beyond [`MAX_FRAME_BYTES`], or counts that
//! disagree with the payload are all rejected with
//! [`hefv_core::Error::Wire`] (wrapped in [`EngineError::Core`]), and the
//! embedded ciphertexts go through `hefv_core::wire`'s C-VALIDATE checks
//! against the receiving context.

use crate::error::{EngineError, ErrorCode};
use crate::registry::{TenantId, TenantKeys};
use crate::request::{EvalOp, EvalRequest, EvalResponse, JobReport, ValRef};
use hefv_core::context::FvContext;
use hefv_core::encoder::Plaintext;
use hefv_core::error::Error;
use hefv_core::wire::{decode_ciphertext, encode_ciphertext};
use std::sync::Arc;

const REQ_MAGIC: u32 = 0x4845_5651; // "HEVQ"
const RESP_MAGIC: u32 = 0x4845_5650; // "HEVP"
const STATS_MAGIC: u32 = 0x4845_5653; // "HEVS"
const KEY_MAGIC: u32 = 0x4845_564B; // "HEVK"
const SNAP_MAGIC: u32 = 0x4845_5652; // "HEVR"
const VERSION: u16 = 2;

/// Flag bit: the header carries a relative virtual-clock deadline.
const FLAG_DEADLINE: u16 = 1;

/// Flag bit: the header carries a client-chosen end-to-end trace id.
const FLAG_TRACE: u16 = 2;

/// Shard value meaning "unrouted — place by tenant hash".
pub const NO_SHARD: u16 = 0xFFFF;

/// Response-frame shard stamp for transport-level failures that never
/// reached a shard (bad frame, unknown tenant, routing errors). Real
/// shard ids stay below this (see `router::MAX_SHARD_ID`), so clients
/// can tell "shard X produced this error" from "the router/front-end
/// refused the frame".
pub const ERROR_SHARD: u8 = u8::MAX;

/// Hard ceiling on an accepted frame (64 MiB — an order of magnitude above
/// the largest legitimate request at the paper's parameters). Oversized
/// frames are rejected before any allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A decoded response frame: the remote outcome of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseFrame {
    /// The job succeeded.
    Ok(EvalResponse),
    /// The job failed; the refusal class plus the error rendered as
    /// text.
    Err {
        /// The failing job's id.
        job_id: u64,
        /// Machine-readable refusal class.
        code: ErrorCode,
        /// Suggested wait before retrying, when the producer had one.
        retry_after_us: Option<u64>,
        /// Rendered error message.
        message: String,
    },
}

/// Flag bit in the error-response layout: a retry-after-µs hint
/// follows the flags byte.
const ERR_FLAG_RETRY_AFTER: u8 = 1;

fn wire_err(reason: impl Into<String>) -> EngineError {
    EngineError::Core(Error::Wire(reason.into()))
}

struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], EngineError> {
        let end = self
            .off
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| wire_err("truncated frame"))?;
        let s = &self.bytes[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, EngineError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, EngineError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, EngineError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, EngineError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn finish(&self) -> Result<(), EngineError> {
        if self.off == self.bytes.len() {
            Ok(())
        } else {
            Err(wire_err(format!(
                "{} trailing bytes after frame",
                self.bytes.len() - self.off
            )))
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

const TAG_INPUT: u8 = 0;
const TAG_OP: u8 = 1;
const TAG_IMM: u8 = 2;
const TAG_NONE: u8 = 0xFF;

fn put_ref(out: &mut Vec<u8>, r: ValRef) {
    match r {
        ValRef::Input(i) => {
            out.push(TAG_INPUT);
            put_u32(out, i);
        }
        ValRef::Op(i) => {
            out.push(TAG_OP);
            put_u32(out, i);
        }
    }
}

fn read_ref(c: &mut Cursor) -> Result<ValRef, EngineError> {
    let tag = c.u8()?;
    let idx = c.u32()?;
    match tag {
        TAG_INPUT => Ok(ValRef::Input(idx)),
        TAG_OP => Ok(ValRef::Op(idx)),
        t => Err(wire_err(format!("bad value-ref tag {t}"))),
    }
}

/// Serializes a request.
///
/// # Panics
///
/// Panics if any section exceeds the format's `u16` counters. Requests
/// satisfying [`EvalRequest::validate`] (≤ [`MAX_REQUEST_NODES`] nodes)
/// always fit; the assert turns an invalid oversized request into a loud
/// error instead of a silently corrupt frame.
///
/// [`MAX_REQUEST_NODES`]: crate::request::MAX_REQUEST_NODES
pub fn encode_request(req: &EvalRequest) -> Vec<u8> {
    encode_request_for_shard(req, NO_SHARD)
}

/// Serializes a request addressed to a specific engine shard (see
/// [`encode_request`] for the panic conditions). `shard` [`NO_SHARD`]
/// leaves placement to the router's consistent hash.
pub fn encode_request_for_shard(req: &EvalRequest, shard: u16) -> Vec<u8> {
    for (what, len) in [
        ("inputs", req.inputs.len()),
        ("plaintexts", req.plaintexts.len()),
        ("ops", req.ops.len()),
    ] {
        assert!(
            len <= u16::MAX as usize,
            "request has {len} {what}, wire format caps sections at {}",
            u16::MAX
        );
    }
    let mut out = Vec::new();
    put_u32(&mut out, REQ_MAGIC);
    put_u16(&mut out, VERSION);
    let mut flags = 0;
    if req.deadline_us.is_some() {
        flags |= FLAG_DEADLINE;
    }
    if req.trace_id.is_some() {
        flags |= FLAG_TRACE;
    }
    put_u16(&mut out, flags);
    put_u64(&mut out, req.tenant);
    put_u16(&mut out, shard);
    put_u16(&mut out, req.inputs.len() as u16);
    put_u16(&mut out, req.plaintexts.len() as u16);
    put_u16(&mut out, req.ops.len() as u16);
    if let Some(d) = req.deadline_us {
        put_u64(&mut out, d.to_bits());
    }
    if let Some(id) = req.trace_id {
        put_u64(&mut out, id);
    }
    for ct in &req.inputs {
        let bytes = encode_ciphertext(ct);
        put_u32(&mut out, bytes.len() as u32);
        out.extend_from_slice(&bytes);
    }
    for pt in &req.plaintexts {
        put_u32(&mut out, pt.coeffs().len() as u32);
        for &c in pt.coeffs() {
            put_u64(&mut out, c);
        }
    }
    for op in &req.ops {
        match *op {
            EvalOp::Add(a, b) => {
                out.push(0);
                put_ref(&mut out, a);
                put_ref(&mut out, b);
            }
            EvalOp::Sub(a, b) => {
                out.push(1);
                put_ref(&mut out, a);
                put_ref(&mut out, b);
            }
            EvalOp::Neg(a) => {
                out.push(2);
                put_ref(&mut out, a);
                out.push(TAG_NONE);
                put_u32(&mut out, 0);
            }
            EvalOp::Mul(a, b) => {
                out.push(3);
                put_ref(&mut out, a);
                put_ref(&mut out, b);
            }
            EvalOp::MulPlain(a, p) => {
                out.push(4);
                put_ref(&mut out, a);
                out.push(TAG_IMM);
                put_u32(&mut out, p);
            }
            EvalOp::Rotate(a, g) => {
                out.push(5);
                put_ref(&mut out, a);
                out.push(TAG_IMM);
                put_u32(&mut out, g);
            }
            EvalOp::SumSlots(a) => {
                out.push(6);
                put_ref(&mut out, a);
                out.push(TAG_NONE);
                put_u32(&mut out, 0);
            }
        }
    }
    out
}

/// Deserializes and structurally validates a request against `ctx`.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` for malformed frames;
/// [`EngineError::Validation`] when the frame parses but the graph is
/// invalid.
pub fn decode_request(ctx: &FvContext, bytes: &[u8]) -> Result<EvalRequest, EngineError> {
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(wire_err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            bytes.len()
        )));
    }
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != REQ_MAGIC {
        return Err(wire_err("bad request magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported request version"));
    }
    let flags = c.u16()?;
    if flags & !(FLAG_DEADLINE | FLAG_TRACE) != 0 {
        return Err(wire_err(format!("unknown request flags {flags:#06x}")));
    }
    let tenant = c.u64()?;
    c.u16()?; // shard routing hint: opaque to the decoder (see peek_shard)
    let n_inputs = c.u16()? as usize;
    let n_plain = c.u16()? as usize;
    let n_ops = c.u16()? as usize;
    let deadline_us = if flags & FLAG_DEADLINE != 0 {
        let d = f64::from_bits(c.u64()?);
        if !d.is_finite() || d < 0.0 {
            return Err(wire_err(format!("bad deadline {d} in request header")));
        }
        Some(d)
    } else {
        None
    };
    let trace_id = if flags & FLAG_TRACE != 0 {
        Some(c.u64()?)
    } else {
        None
    };

    let mut inputs = Vec::with_capacity(n_inputs.min(1024));
    for _ in 0..n_inputs {
        let len = c.u32()? as usize;
        let ct_bytes = c.take(len)?;
        inputs.push(decode_ciphertext(ctx, ct_bytes)?);
    }
    let mut plaintexts = Vec::with_capacity(n_plain.min(1024));
    let (t, n) = (ctx.params().t, ctx.params().n);
    for i in 0..n_plain {
        let n_coeffs = c.u32()? as usize;
        if n_coeffs > n {
            return Err(wire_err(format!(
                "plaintext {i} has {n_coeffs} coefficients, ring degree is {n}"
            )));
        }
        let mut coeffs = Vec::with_capacity(n_coeffs);
        for _ in 0..n_coeffs {
            let v = c.u64()?;
            if v >= t {
                return Err(wire_err(format!(
                    "plaintext {i} coefficient {v} out of range for t={t}"
                )));
            }
            coeffs.push(v);
        }
        plaintexts.push(Plaintext::new(coeffs, t, n));
    }
    let mut ops = Vec::with_capacity(n_ops.min(4096));
    for at in 0..n_ops {
        let opcode = c.u8()?;
        let a = read_ref(&mut c)?;
        let b_tag = c.u8()?;
        let b_idx = c.u32()?;
        let b_ref = |tag: u8, idx: u32| -> Result<ValRef, EngineError> {
            match tag {
                TAG_INPUT => Ok(ValRef::Input(idx)),
                TAG_OP => Ok(ValRef::Op(idx)),
                t => Err(wire_err(format!("op {at}: bad second-operand tag {t}"))),
            }
        };
        let op = match opcode {
            0 => EvalOp::Add(a, b_ref(b_tag, b_idx)?),
            1 => EvalOp::Sub(a, b_ref(b_tag, b_idx)?),
            2 => EvalOp::Neg(a),
            3 => EvalOp::Mul(a, b_ref(b_tag, b_idx)?),
            4 if b_tag == TAG_IMM => EvalOp::MulPlain(a, b_idx),
            5 if b_tag == TAG_IMM => EvalOp::Rotate(a, b_idx),
            6 => EvalOp::SumSlots(a),
            o => return Err(wire_err(format!("op {at}: bad opcode {o} (tag {b_tag})"))),
        };
        ops.push(op);
    }
    c.finish()?;
    let req = EvalRequest {
        tenant,
        inputs,
        plaintexts,
        ops,
        deadline_us,
        trace_id,
    };
    req.validate(ctx)?;
    Ok(req)
}

/// Reads a request frame's client-chosen trace id from the header alone
/// (`None` when the client did not set one and the engine will mint an
/// id at admission).
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` when the header is not a
/// well-formed v2 request header.
pub fn peek_trace_id(bytes: &[u8]) -> Result<Option<u64>, EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != REQ_MAGIC {
        return Err(wire_err("bad request magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported request version"));
    }
    let flags = c.u16()?;
    if flags & FLAG_TRACE == 0 {
        return Ok(None);
    }
    c.u64()?; // tenant
    c.u16()?; // shard
    c.u16()?; // n_inputs
    c.u16()?; // n_plaintexts
    c.u16()?; // n_ops
    if flags & FLAG_DEADLINE != 0 {
        c.u64()?;
    }
    Ok(Some(c.u64()?))
}

/// Reads a request frame's shard address from the header alone (no
/// payload work): `Ok(None)` when the frame is unrouted ([`NO_SHARD`]) and
/// placement is the router's call.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` when the header is not a
/// well-formed v2 request header.
pub fn peek_shard(bytes: &[u8]) -> Result<Option<u16>, EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != REQ_MAGIC {
        return Err(wire_err("bad request magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported request version"));
    }
    c.u16()?; // flags
    c.u64()?; // tenant
    let shard = c.u16()?;
    Ok((shard != NO_SHARD).then_some(shard))
}

/// Reads a request frame's tenant id from the header alone.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` when the header is not a
/// well-formed v2 request header.
pub fn peek_tenant(bytes: &[u8]) -> Result<u64, EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != REQ_MAGIC {
        return Err(wire_err("bad request magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported request version"));
    }
    c.u16()?; // flags
    c.u64()
}

/// Reads a request frame's relative deadline (µs of virtual clock) from
/// the header alone: `None` when the client set no deadline. A cluster
/// front-end uses this to budget hedged retries without decoding the
/// payload.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` when the header is not a
/// well-formed v2 request header or the deadline bits are not a finite
/// non-negative float.
pub fn peek_deadline(bytes: &[u8]) -> Result<Option<f64>, EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != REQ_MAGIC {
        return Err(wire_err("bad request magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported request version"));
    }
    let flags = c.u16()?;
    if flags & FLAG_DEADLINE == 0 {
        return Ok(None);
    }
    c.u64()?; // tenant
    c.u16()?; // shard
    c.u16()?; // n_inputs
    c.u16()?; // n_plaintexts
    c.u16()?; // n_ops
    let d = f64::from_bits(c.u64()?);
    if !d.is_finite() || d < 0.0 {
        return Err(wire_err(format!("bad deadline {d} in request header")));
    }
    Ok(Some(d))
}

/// Serializes a job outcome that did not come from an identifiable
/// shard, stamped [`ERROR_SHARD`] on the error path (single-engine
/// deployments get shard 0 on success; routers use
/// [`encode_response_from_shard`]).
pub fn encode_response(outcome: &Result<EvalResponse, (u64, EngineError)>) -> Vec<u8> {
    let stamp = if outcome.is_ok() { 0 } else { ERROR_SHARD };
    encode_response_from_shard(outcome, stamp)
}

/// Serializes a job outcome stamped with the shard that produced it.
pub fn encode_response_from_shard(
    outcome: &Result<EvalResponse, (u64, EngineError)>,
    shard: u8,
) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, RESP_MAGIC);
    put_u16(&mut out, VERSION);
    match outcome {
        Ok(resp) => {
            out.push(0);
            out.push(shard);
            put_u64(&mut out, resp.job_id);
            put_u32(&mut out, resp.report.worker);
            put_u64(&mut out, resp.report.queue_ns);
            put_u64(&mut out, resp.report.exec_ns);
            put_u64(&mut out, resp.report.est_cost_us.to_bits());
            put_u64(&mut out, resp.report.noise_bits_consumed.to_bits());
            let bytes = encode_ciphertext(&resp.result);
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(&bytes);
        }
        Err((job_id, e)) => {
            out.push(1);
            out.push(shard);
            put_u64(&mut out, *job_id);
            out.push(e.code().as_u8());
            match e.retry_after_us() {
                Some(us) => {
                    out.push(ERR_FLAG_RETRY_AFTER);
                    put_u64(&mut out, us);
                }
                None => out.push(0),
            }
            let msg = e.to_string();
            put_u32(&mut out, msg.len() as u32);
            out.extend_from_slice(msg.as_bytes());
        }
    }
    out
}

/// Deserializes a response frame.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` for malformed frames.
pub fn decode_response(ctx: &FvContext, bytes: &[u8]) -> Result<ResponseFrame, EngineError> {
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(wire_err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            bytes.len()
        )));
    }
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != RESP_MAGIC {
        return Err(wire_err("bad response magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported response version"));
    }
    let status = c.u8()?;
    c.u8()?; // producing shard: opaque here (see peek_response_shard)
    let job_id = c.u64()?;
    match status {
        0 => {
            let worker = c.u32()?;
            let queue_ns = c.u64()?;
            let exec_ns = c.u64()?;
            let est_cost_us = f64::from_bits(c.u64()?);
            let noise_bits_consumed = f64::from_bits(c.u64()?);
            if !est_cost_us.is_finite() || !noise_bits_consumed.is_finite() {
                return Err(wire_err("non-finite cost/noise in response"));
            }
            let len = c.u32()? as usize;
            let ct = decode_ciphertext(ctx, c.take(len)?)?;
            c.finish()?;
            Ok(ResponseFrame::Ok(EvalResponse {
                job_id,
                result: ct,
                report: JobReport {
                    worker,
                    queue_ns,
                    exec_ns,
                    est_cost_us,
                    noise_bits_consumed,
                },
            }))
        }
        1 => {
            let (code, retry_after_us) = read_error_tail(&mut c)?;
            let len = c.u32()? as usize;
            let msg = std::str::from_utf8(c.take(len)?)
                .map_err(|_| wire_err("error message is not UTF-8"))?
                .to_string();
            c.finish()?;
            Ok(ResponseFrame::Err {
                job_id,
                code,
                retry_after_us,
                message: msg,
            })
        }
        s => Err(wire_err(format!("bad response status {s}"))),
    }
}

/// Reads the `code u8 | flags u8 | [retry_after_us u64]` error tail.
fn read_error_tail(c: &mut Cursor) -> Result<(ErrorCode, Option<u64>), EngineError> {
    let code_byte = c.u8()?;
    let code = ErrorCode::from_u8(code_byte)
        .ok_or_else(|| wire_err(format!("unknown error code {code_byte}")))?;
    let flags = c.u8()?;
    if flags & !ERR_FLAG_RETRY_AFTER != 0 {
        return Err(wire_err(format!("unknown error flags {flags:#04x}")));
    }
    let retry_after_us = if flags & ERR_FLAG_RETRY_AFTER != 0 {
        Some(c.u64()?)
    } else {
        None
    };
    Ok((code, retry_after_us))
}

/// The typed-refusal header of an error response, read without a
/// context (error frames carry no ciphertext, so classification needs
/// no key material — this is what a client's retry loop consumes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseErrorInfo {
    /// The failing job's id (`u64::MAX` for transport-level failures).
    pub job_id: u64,
    /// Machine-readable refusal class.
    pub code: ErrorCode,
    /// Suggested wait before retrying, when the producer had one.
    pub retry_after_us: Option<u64>,
    /// Rendered error message.
    pub message: String,
}

/// Classifies a response frame without a context: `Ok(None)` for
/// success frames (whose ciphertext needs [`decode_response`]),
/// `Ok(Some(..))` with the full typed refusal for error frames.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` for malformed frames.
pub fn peek_response_error(bytes: &[u8]) -> Result<Option<ResponseErrorInfo>, EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != RESP_MAGIC {
        return Err(wire_err("bad response magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported response version"));
    }
    let status = c.u8()?;
    c.u8()?; // producing shard
    let job_id = c.u64()?;
    match status {
        0 => Ok(None),
        1 => {
            let (code, retry_after_us) = read_error_tail(&mut c)?;
            let len = c.u32()? as usize;
            let message = std::str::from_utf8(c.take(len)?)
                .map_err(|_| wire_err("error message is not UTF-8"))?
                .to_string();
            c.finish()?;
            Ok(Some(ResponseErrorInfo {
                job_id,
                code,
                retry_after_us,
                message,
            }))
        }
        s => Err(wire_err(format!("bad response status {s}"))),
    }
}

/// Reads the shard that produced a response frame from the header alone.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` when the header is not a
/// well-formed v2 response header.
pub fn peek_response_shard(bytes: &[u8]) -> Result<u8, EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != RESP_MAGIC {
        return Err(wire_err("bad response magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported response version"));
    }
    c.u8()?; // status
    c.u8()
}

/// Overwrites a response frame's shard stamp in place, so a cluster
/// front-end can present replies produced by a remote node under the
/// front-side shard id the client routed against. Frames that are not
/// well-formed `HEVP` responses — and error responses already stamped
/// [`ERROR_SHARD`] (the "never reached a shard" marker) — are left
/// untouched.
pub fn restamp_response_shard(frame: &mut [u8], shard: u8) {
    // magic u32 | version u16 | status u8 | shard u8 — stamp is byte 7.
    if frame.len() >= 8
        && frame[..4] == RESP_MAGIC.to_le_bytes()
        && frame[4..6] == VERSION.to_le_bytes()
        && frame[7] != ERROR_SHARD
    {
        frame[7] = shard;
    }
}

/// Reads a response frame's job id from the header alone (`u64::MAX`
/// marks transport-level failures and asynchronously-failed jobs).
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` when the header is not a
/// well-formed v2 response header.
pub fn peek_response_job_id(bytes: &[u8]) -> Result<u64, EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != RESP_MAGIC {
        return Err(wire_err("bad response magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported response version"));
    }
    c.u8()?; // status
    c.u8()?; // shard
    c.u64()
}

/// What a `HEVS` admin frame asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsKind {
    /// The Prometheus-text metrics exposition of the serving fleet.
    Metrics,
    /// A plain-text dump of recent and slow trace spans.
    Traces,
}

impl StatsKind {
    fn from_byte(b: u8) -> Result<StatsKind, EngineError> {
        match b {
            0 => Ok(StatsKind::Metrics),
            1 => Ok(StatsKind::Traces),
            k => Err(wire_err(format!("bad stats kind {k}"))),
        }
    }

    fn byte(self) -> u8 {
        match self {
            StatsKind::Metrics => 0,
            StatsKind::Traces => 1,
        }
    }
}

const STATS_DIR_REQUEST: u8 = 0;
const STATS_DIR_RESPONSE: u8 = 1;

/// Whether a frame is a `HEVS` admin frame (cheap magic check — lets a
/// server route admin frames before any request decode).
#[must_use]
pub fn is_stats_frame(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == STATS_MAGIC.to_le_bytes()
}

/// Serializes a `HEVS` admin request.
#[must_use]
pub fn encode_stats_request(kind: StatsKind) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    put_u32(&mut out, STATS_MAGIC);
    put_u16(&mut out, VERSION);
    out.push(STATS_DIR_REQUEST);
    out.push(kind.byte());
    out
}

/// Deserializes a `HEVS` admin request.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` for malformed frames (bad
/// magic/version/kind, a response where a request was expected, or
/// trailing bytes).
pub fn decode_stats_request(bytes: &[u8]) -> Result<StatsKind, EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != STATS_MAGIC {
        return Err(wire_err("bad stats magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported stats version"));
    }
    if c.u8()? != STATS_DIR_REQUEST {
        return Err(wire_err("stats frame is not a request"));
    }
    let kind = StatsKind::from_byte(c.u8()?)?;
    c.finish()?;
    Ok(kind)
}

/// Serializes a `HEVS` admin response carrying `body` (Prometheus text
/// for [`StatsKind::Metrics`], span dump for [`StatsKind::Traces`]).
#[must_use]
pub fn encode_stats_response(kind: StatsKind, body: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + body.len());
    put_u32(&mut out, STATS_MAGIC);
    put_u16(&mut out, VERSION);
    out.push(STATS_DIR_RESPONSE);
    out.push(kind.byte());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(body.as_bytes());
    out
}

/// Deserializes a `HEVS` admin response into `(kind, body)`.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` for malformed frames
/// (including bodies beyond [`MAX_FRAME_BYTES`] or invalid UTF-8).
pub fn decode_stats_response(bytes: &[u8]) -> Result<(StatsKind, String), EngineError> {
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(wire_err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            bytes.len()
        )));
    }
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != STATS_MAGIC {
        return Err(wire_err("bad stats magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported stats version"));
    }
    if c.u8()? != STATS_DIR_RESPONSE {
        return Err(wire_err("stats frame is not a response"));
    }
    let kind = StatsKind::from_byte(c.u8()?)?;
    let len = c.u32()? as usize;
    let body = std::str::from_utf8(c.take(len)?)
        .map_err(|_| wire_err("stats body is not UTF-8"))?
        .to_string();
    c.finish()?;
    Ok((kind, body))
}

// ---------------------------------------------------------------------------
// HEVK key-transfer frames
// ---------------------------------------------------------------------------
//
// When a cluster front-end registers a tenant, re-pins it, or changes the
// ring, the tenant's key material must reach the node that will execute
// its jobs *before* any of those jobs do. The `HEVK` frame family carries
// one tenant's keys (any subset of public / relin / Galois) node-to-node
// over the same envelope protocol as requests:
//
// ```text
// key-push := "HEVK" u32 | version=2 u16 | dir=0|2 u8 | sections u8
//           | tenant u64
//           | [sections bit 0] len u32 | core-wire public key
//           | [sections bit 1] len u32 | core-wire relin key
//           | [sections bit 2] len u32 | core-wire Galois key set
// key-ack  := "HEVK" u32 | version=2 u16 | dir=1 u8 | status u8
//           | tenant u64
//           | [status=1] len u32 | utf-8 error message
// ```
//
// Direction 2 is a *replica* push: identical payload, but the direction
// bit tells the receiving node it is a ring-successor key holder rather
// than the tenant's primary — durability bookkeeping
// (`hefv_keys_replicated_total`) without a second frame family.

const KEY_DIR_PUSH: u8 = 0;
const KEY_DIR_ACK: u8 = 1;
const KEY_DIR_REPLICA_PUSH: u8 = 2;
const KEY_SECTION_PUBLIC: u8 = 1;
const KEY_SECTION_RELIN: u8 = 2;
const KEY_SECTION_GALOIS: u8 = 4;

/// Whether a frame is a `HEVK` key-transfer frame (cheap magic check, the
/// same routing seam as [`is_stats_frame`]).
#[must_use]
pub fn is_key_frame(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == KEY_MAGIC.to_le_bytes()
}

/// Serializes a key-transfer push carrying whichever keys the tenant has.
#[must_use]
pub fn encode_key_push(tenant: TenantId, keys: &TenantKeys) -> Vec<u8> {
    encode_key_push_dir(tenant, keys, KEY_DIR_PUSH)
}

/// Serializes a *replica* key push: same payload as
/// [`encode_key_push`], but the direction bit tells the receiving node
/// it is holding the tenant's keys as a ring-successor replica, not as
/// the primary (it counts the push into `hefv_keys_replicated_total`).
#[must_use]
pub fn encode_replica_key_push(tenant: TenantId, keys: &TenantKeys) -> Vec<u8> {
    encode_key_push_dir(tenant, keys, KEY_DIR_REPLICA_PUSH)
}

fn encode_key_push_dir(tenant: TenantId, keys: &TenantKeys, dir: u8) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, KEY_MAGIC);
    put_u16(&mut out, VERSION);
    out.push(dir);
    let mut sections = 0;
    if keys.pk.is_some() {
        sections |= KEY_SECTION_PUBLIC;
    }
    if keys.rlk.is_some() {
        sections |= KEY_SECTION_RELIN;
    }
    if keys.galois.is_some() {
        sections |= KEY_SECTION_GALOIS;
    }
    out.push(sections);
    put_u64(&mut out, tenant);
    let mut put_blob = |blob: Vec<u8>| {
        put_u32(&mut out, blob.len() as u32);
        out.extend_from_slice(&blob);
    };
    if let Some(pk) = &keys.pk {
        put_blob(hefv_core::wire::encode_public_key(pk));
    }
    if let Some(rlk) = &keys.rlk {
        put_blob(hefv_core::wire::encode_relin_key(rlk));
    }
    if let Some(gks) = &keys.galois {
        put_blob(hefv_core::wire::encode_galois_key_set(gks));
    }
    out
}

/// Reads a key-transfer frame's tenant id from the header alone (push and
/// ack frames share the header layout).
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` when the header is not a
/// well-formed v2 `HEVK` header.
pub fn peek_key_tenant(bytes: &[u8]) -> Result<TenantId, EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != KEY_MAGIC {
        return Err(wire_err("bad key-transfer magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported key-transfer version"));
    }
    c.u8()?; // direction
    c.u8()?; // sections / status
    c.u64()
}

/// Whether a key-transfer push addresses the receiver as a replica key
/// holder (direction 2) rather than the tenant's primary (direction 0).
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` when the frame is not a
/// well-formed v2 `HEVK` push header (acks included — they carry no
/// role).
pub fn peek_key_push_replica(bytes: &[u8]) -> Result<bool, EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != KEY_MAGIC {
        return Err(wire_err("bad key-transfer magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported key-transfer version"));
    }
    match c.u8()? {
        KEY_DIR_PUSH => Ok(false),
        KEY_DIR_REPLICA_PUSH => Ok(true),
        _ => Err(wire_err("key-transfer frame is not a push")),
    }
}

/// Deserializes and validates a key-transfer push against `ctx`, the
/// parameter set of the shard that will own the tenant.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` for malformed frames and for
/// key blobs failing the C-VALIDATE checks in `hefv_core::wire`.
pub fn decode_key_push(
    ctx: &FvContext,
    bytes: &[u8],
) -> Result<(TenantId, TenantKeys), EngineError> {
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(wire_err(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
            bytes.len()
        )));
    }
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != KEY_MAGIC {
        return Err(wire_err("bad key-transfer magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported key-transfer version"));
    }
    let dir = c.u8()?;
    if dir != KEY_DIR_PUSH && dir != KEY_DIR_REPLICA_PUSH {
        return Err(wire_err("key-transfer frame is not a push"));
    }
    let sections = c.u8()?;
    let known = KEY_SECTION_PUBLIC | KEY_SECTION_RELIN | KEY_SECTION_GALOIS;
    if sections & !known != 0 {
        return Err(wire_err(format!(
            "unknown key-push sections {sections:#04x}"
        )));
    }
    let tenant = c.u64()?;
    let mut keys = TenantKeys::default();
    if sections & KEY_SECTION_PUBLIC != 0 {
        let len = c.u32()? as usize;
        let pk = hefv_core::wire::decode_public_key(ctx, c.take(len)?)?;
        keys.pk = Some(Arc::new(pk));
    }
    if sections & KEY_SECTION_RELIN != 0 {
        let len = c.u32()? as usize;
        let rlk = hefv_core::wire::decode_relin_key(ctx, c.take(len)?)?;
        keys.rlk = Some(Arc::new(rlk));
    }
    if sections & KEY_SECTION_GALOIS != 0 {
        let len = c.u32()? as usize;
        let gks = hefv_core::wire::decode_galois_key_set(ctx, c.take(len)?)?;
        keys.galois = Some(Arc::new(gks));
    }
    c.finish()?;
    Ok((tenant, keys))
}

/// Serializes a key-transfer acknowledgement: the receiving node's verdict
/// on a push (`Err` carries its message).
#[must_use]
pub fn encode_key_ack(tenant: TenantId, outcome: Result<(), &str>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, KEY_MAGIC);
    put_u16(&mut out, VERSION);
    out.push(KEY_DIR_ACK);
    match outcome {
        Ok(()) => {
            out.push(0);
            put_u64(&mut out, tenant);
        }
        Err(msg) => {
            out.push(1);
            put_u64(&mut out, tenant);
            put_u32(&mut out, msg.len() as u32);
            out.extend_from_slice(msg.as_bytes());
        }
    }
    out
}

/// Deserializes a key-transfer acknowledgement into
/// `(tenant, Ok | Err(message))`.
///
/// # Errors
///
/// [`EngineError::Core`]`(`[`Error::Wire`]`)` for malformed frames.
pub fn decode_key_ack(bytes: &[u8]) -> Result<(TenantId, Result<(), String>), EngineError> {
    let mut c = Cursor { bytes, off: 0 };
    if c.u32()? != KEY_MAGIC {
        return Err(wire_err("bad key-transfer magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported key-transfer version"));
    }
    if c.u8()? != KEY_DIR_ACK {
        return Err(wire_err("key-transfer frame is not an ack"));
    }
    let status = c.u8()?;
    let tenant = c.u64()?;
    let outcome = match status {
        0 => Ok(()),
        1 => {
            let len = c.u32()? as usize;
            let msg = std::str::from_utf8(c.take(len)?)
                .map_err(|_| wire_err("key-ack message is not UTF-8"))?
                .to_string();
            Err(msg)
        }
        s => return Err(wire_err(format!("bad key-ack status {s}"))),
    };
    c.finish()?;
    Ok((tenant, outcome))
}

// ---------------------------------------------------------------------------
// HEVR registry snapshots
// ---------------------------------------------------------------------------
//
// A node's durability story: its `KeyRegistry` serializes every resident
// tenant into one checksummed blob a restarted process can reload, so an
// unplanned kill does not force every tenant through the expensive
// re-registration path. Layout:
//
// ```text
// snapshot := "HEVR" u32 | version=2 u16 | tenant_count u32
//           | entries…(len u32 | HEVK key-push frame)
//           | crc32 u32                  (over all preceding bytes)
// ```
//
// Each entry embeds a complete length-prefixed `HEVK` push frame, so the
// per-tenant payload reuses the key-transfer codec — including its
// C-VALIDATE checks — verbatim. The CRC32 trailer is verified *before*
// any parsing; a torn or bit-flipped file is refused whole with
// [`EngineError::IntegrityFailure`], never partially restored.

/// Serializes a registry snapshot over `(tenant, keys)` entries.
#[must_use]
pub fn encode_registry_snapshot(entries: &[(TenantId, Arc<TenantKeys>)]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, SNAP_MAGIC);
    put_u16(&mut out, VERSION);
    put_u32(&mut out, entries.len() as u32);
    for (tenant, keys) in entries {
        let frame = encode_key_push(*tenant, keys);
        put_u32(&mut out, frame.len() as u32);
        out.extend_from_slice(&frame);
    }
    let crc = hefv_core::crc32::crc32(&out);
    put_u32(&mut out, crc);
    out
}

/// Whether a blob is (the start of) an `HEVR` registry snapshot.
#[must_use]
pub fn is_registry_snapshot(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == SNAP_MAGIC.to_le_bytes()
}

/// Deserializes and validates a registry snapshot against `ctx`.
///
/// The CRC32 trailer is checked over the whole blob before a single
/// field is parsed, and the entries are staged in full before being
/// returned — there is no partial restore on any failure path.
///
/// # Errors
///
/// [`EngineError::IntegrityFailure`] for *every* rejection — CRC
/// mismatch, truncation, trailing garbage, bad magic/version/counts,
/// and key blobs failing the C-VALIDATE checks — so callers surface one
/// typed outcome for "this snapshot cannot be trusted".
pub fn decode_registry_snapshot(
    ctx: &FvContext,
    bytes: &[u8],
) -> Result<Vec<(TenantId, TenantKeys)>, EngineError> {
    decode_registry_snapshot_inner(ctx, bytes).map_err(|e| match e {
        EngineError::IntegrityFailure(_) => e,
        other => EngineError::IntegrityFailure(other.to_string()),
    })
}

fn decode_registry_snapshot_inner(
    ctx: &FvContext,
    bytes: &[u8],
) -> Result<Vec<(TenantId, TenantKeys)>, EngineError> {
    // magic 4 | version 2 | count 4 | … | crc 4
    if bytes.len() < 14 {
        return Err(wire_err(format!(
            "snapshot of {} bytes is shorter than an empty snapshot",
            bytes.len()
        )));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
    let computed = hefv_core::crc32::crc32(body);
    if stored != computed {
        return Err(EngineError::IntegrityFailure(format!(
            "snapshot CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    let mut c = Cursor {
        bytes: body,
        off: 0,
    };
    if c.u32()? != SNAP_MAGIC {
        return Err(wire_err("bad snapshot magic"));
    }
    if c.u16()? != VERSION {
        return Err(wire_err("unsupported snapshot version"));
    }
    let count = c.u32()? as usize;
    let mut staged = Vec::with_capacity(count.min(1024));
    for i in 0..count {
        let len = c.u32()? as usize;
        let frame = c.take(len)?;
        let (tenant, keys) = decode_key_push(ctx, frame)
            .map_err(|e| wire_err(format!("snapshot entry {i}: {e}")))?;
        staged.push((tenant, keys));
    }
    c.finish()?;
    Ok(staged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_frames_roundtrip() {
        for kind in [StatsKind::Metrics, StatsKind::Traces] {
            let rq = encode_stats_request(kind);
            assert!(is_stats_frame(&rq));
            assert_eq!(decode_stats_request(&rq).unwrap(), kind);

            let body = "hefv_jobs_completed_total 42\n";
            let rp = encode_stats_response(kind, body);
            assert!(is_stats_frame(&rp));
            let (k, b) = decode_stats_response(&rp).unwrap();
            assert_eq!(k, kind);
            assert_eq!(b, body);

            // Directions don't cross-decode.
            assert!(decode_stats_request(&rp).is_err());
            assert!(decode_stats_response(&rq).is_err());
        }
    }

    #[test]
    fn stats_frames_reject_malformed() {
        assert!(!is_stats_frame(b"HEV"));
        assert!(!is_stats_frame(&REQ_MAGIC.to_le_bytes()));
        let mut rq = encode_stats_request(StatsKind::Metrics);
        rq.push(0); // trailing byte
        assert!(decode_stats_request(&rq).is_err());
        let mut rp = encode_stats_response(StatsKind::Metrics, "x");
        rp[7] = 9; // bad kind
        assert!(decode_stats_response(&rp).is_err());
    }

    #[test]
    fn request_frames_are_not_stats_frames() {
        // `HEVQ` vs `HEVS` magic differ in one byte; the router must
        // never confuse them.
        assert_ne!(REQ_MAGIC, STATS_MAGIC);
        assert_ne!(RESP_MAGIC, STATS_MAGIC);
        assert_ne!(KEY_MAGIC, STATS_MAGIC);
        assert_ne!(KEY_MAGIC, REQ_MAGIC);
        assert_ne!(KEY_MAGIC, RESP_MAGIC);
    }

    #[test]
    fn key_push_roundtrips() {
        use hefv_core::keys::keygen;
        use hefv_core::params::FvParams;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let (_, pk, rlk) = keygen(&ctx, &mut rng);
        let keys = TenantKeys::compute(pk, rlk);

        let frame = encode_key_push(7, &keys);
        assert!(is_key_frame(&frame));
        assert!(!is_stats_frame(&frame));
        assert_eq!(peek_key_tenant(&frame).unwrap(), 7);

        let (tenant, back) = decode_key_push(&ctx, &frame).unwrap();
        assert_eq!(tenant, 7);
        assert!(back.pk.is_some());
        assert!(back.rlk.is_some());
        assert!(back.galois.is_none());

        // Empty key sets are legal (a tenant doing only additions).
        let empty = encode_key_push(8, &TenantKeys::default());
        let (t, k) = decode_key_push(&ctx, &empty).unwrap();
        assert_eq!(t, 8);
        assert!(k.pk.is_none() && k.rlk.is_none() && k.galois.is_none());

        // Truncation and trailing bytes are rejected.
        let mut bad = frame.clone();
        bad.truncate(bad.len() - 1);
        assert!(decode_key_push(&ctx, &bad).is_err());
        let mut bad = frame.clone();
        bad.push(0);
        assert!(decode_key_push(&ctx, &bad).is_err());
    }

    #[test]
    fn key_acks_roundtrip() {
        let ok = encode_key_ack(3, Ok(()));
        assert!(is_key_frame(&ok));
        assert_eq!(peek_key_tenant(&ok).unwrap(), 3);
        assert_eq!(decode_key_ack(&ok).unwrap(), (3, Ok(())));

        let err = encode_key_ack(4, Err("no capacity"));
        assert_eq!(
            decode_key_ack(&err).unwrap(),
            (4, Err("no capacity".to_string()))
        );

        // Pushes and acks don't cross-decode.
        let ctx = FvContext::new(hefv_core::params::FvParams::insecure_toy()).unwrap();
        assert!(decode_key_push(&ctx, &ok).is_err());
        let push = encode_key_push(5, &TenantKeys::default());
        assert!(decode_key_ack(&push).is_err());
    }

    #[test]
    fn replica_pushes_carry_the_role_bit() {
        use hefv_core::keys::keygen;
        use hefv_core::params::FvParams;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let (_, pk, rlk) = keygen(&ctx, &mut rng);
        let keys = TenantKeys::compute(pk, rlk);

        let primary = encode_key_push(11, &keys);
        let replica = encode_replica_key_push(11, &keys);
        assert!(!peek_key_push_replica(&primary).unwrap());
        assert!(peek_key_push_replica(&replica).unwrap());
        // Same payload either way — only the direction byte differs.
        let (t, k) = decode_key_push(&ctx, &replica).unwrap();
        assert_eq!(t, 11);
        assert!(k.pk.is_some() && k.rlk.is_some());
        assert_eq!(peek_key_tenant(&replica).unwrap(), 11);

        // Acks have no role; unknown directions stay rejected.
        let ack = encode_key_ack(11, Ok(()));
        assert!(peek_key_push_replica(&ack).is_err());
        let mut bad = primary;
        bad[6] = 9;
        assert!(decode_key_push(&ctx, &bad).is_err());
        assert!(peek_key_push_replica(&bad).is_err());
    }

    #[test]
    fn registry_snapshots_roundtrip_and_refuse_corruption() {
        use hefv_core::keys::keygen;
        use hefv_core::params::FvParams;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ctx = FvContext::new(FvParams::insecure_toy()).unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let (_, pk, rlk) = keygen(&ctx, &mut rng);
        let entries = vec![
            (3u64, Arc::new(TenantKeys::compute(pk.clone(), rlk))),
            (9u64, Arc::new(TenantKeys::encrypt_only(pk))),
            (12u64, Arc::new(TenantKeys::default())),
        ];
        let blob = encode_registry_snapshot(&entries);
        assert!(is_registry_snapshot(&blob));
        let back = decode_registry_snapshot(&ctx, &blob).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0].0, 3);
        assert!(back[0].1.pk.is_some() && back[0].1.rlk.is_some());
        assert_eq!(back[1].0, 9);
        assert!(back[1].1.rlk.is_none());
        assert_eq!(back[2].0, 12);

        // Empty snapshots are legal (a node with no tenants yet).
        let empty = encode_registry_snapshot(&[]);
        assert!(decode_registry_snapshot(&ctx, &empty).unwrap().is_empty());

        // Every corruption class → IntegrityFailure, never a panic.
        let refused = |bytes: &[u8]| match decode_registry_snapshot(&ctx, bytes) {
            Err(EngineError::IntegrityFailure(_)) => (),
            Err(other) => panic!("expected IntegrityFailure, got {other:?}"),
            Ok(entries) => panic!(
                "expected IntegrityFailure, got Ok with {} entries",
                entries.len()
            ),
        };
        let mut torn = blob.clone();
        torn.truncate(blob.len() / 2);
        refused(&torn);
        let mut trailing = blob.clone();
        trailing.push(0);
        refused(&trailing);
        let mut flipped = blob.clone();
        flipped[10] ^= 0x40;
        refused(&flipped);
        refused(b"HEVR");
    }

    #[test]
    fn peek_deadline_reads_header_only() {
        let req = EvalRequest {
            tenant: 9,
            inputs: vec![],
            plaintexts: vec![],
            ops: vec![],
            deadline_us: Some(1500.0),
            trace_id: Some(42),
        };
        let frame = encode_request(&req);
        assert_eq!(peek_deadline(&frame).unwrap(), Some(1500.0));

        let req = EvalRequest {
            deadline_us: None,
            ..req
        };
        let frame = encode_request(&req);
        assert_eq!(peek_deadline(&frame).unwrap(), None);
        assert!(peek_deadline(b"HEV").is_err());
    }

    #[test]
    fn error_responses_carry_the_typed_taxonomy() {
        use crate::error::ErrorCode;
        let ctx = FvContext::new(hefv_core::params::FvParams::insecure_toy()).unwrap();

        // A hint-carrying refusal roundtrips code + retry-after.
        let e = EngineError::Overload {
            retry_after_us: Some(1234),
        };
        let outcome: Result<EvalResponse, (u64, EngineError)> = Err((7, e.clone()));
        let frame = encode_response_from_shard(&outcome, 2);
        match decode_response(&ctx, &frame).unwrap() {
            ResponseFrame::Err {
                job_id,
                code,
                retry_after_us,
                message,
            } => {
                assert_eq!(job_id, 7);
                assert_eq!(code, ErrorCode::Overload);
                assert_eq!(retry_after_us, Some(1234));
                assert_eq!(message, e.to_string());
            }
            other => panic!("expected Err frame, got {other:?}"),
        }

        // The context-free peek reads the same refusal.
        let info = peek_response_error(&frame).unwrap().unwrap();
        assert_eq!(info.job_id, 7);
        assert_eq!(info.code, ErrorCode::Overload);
        assert_eq!(info.retry_after_us, Some(1234));
        assert!(info.message.contains("overloaded"));

        // A hint-free refusal omits the optional field entirely.
        let outcome: Result<EvalResponse, (u64, EngineError)> =
            Err((8, EngineError::Validation("empty graph".into())));
        let frame = encode_response(&outcome);
        let info = peek_response_error(&frame).unwrap().unwrap();
        assert_eq!(info.code, ErrorCode::Validation);
        assert_eq!(info.retry_after_us, None);

        // Unknown codes and unknown flags are rejected, not guessed at.
        let mut bad = frame.clone();
        bad[16] = 0xF0; // code byte (after magic 4 | ver 2 | status 1 | shard 1 | job_id 8)
        assert!(decode_response(&ctx, &bad).is_err());
        let mut bad = frame.clone();
        bad[17] = 0x80; // flags byte
        assert!(peek_response_error(&bad).is_err());

        // Trailing bytes still fail the strict decode.
        let mut bad = frame;
        bad.push(0);
        assert!(decode_response(&ctx, &bad).is_err());
    }

    #[test]
    fn restamp_rewrites_only_real_shard_stamps() {
        let outcome: Result<EvalResponse, (u64, EngineError)> = Err((1, EngineError::QueueClosed));
        let mut frame = encode_response_from_shard(&outcome, 3);
        assert_eq!(peek_response_shard(&frame).unwrap(), 3);
        restamp_response_shard(&mut frame, 11);
        assert_eq!(peek_response_shard(&frame).unwrap(), 11);

        // ERROR_SHARD marks "never reached a shard" — restamping would
        // disguise a transport failure as a shard outcome.
        let mut frame = encode_response(&outcome);
        assert_eq!(peek_response_shard(&frame).unwrap(), ERROR_SHARD);
        restamp_response_shard(&mut frame, 11);
        assert_eq!(peek_response_shard(&frame).unwrap(), ERROR_SHARD);

        // Non-response frames are untouched.
        let mut stats = encode_stats_request(StatsKind::Metrics);
        let before = stats.clone();
        restamp_response_shard(&mut stats, 11);
        assert_eq!(stats, before);
    }
}
