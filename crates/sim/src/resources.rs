//! Analytic resource model: Table IV (utilization on the ZCU102) and
//! Table V (estimates for scaled parameter sets).
//!
//! Resources are accounted bottom-up per architectural block. DSP and BRAM
//! counts follow directly from the datapath structure (a 30×30 multiplier
//! is four DSP48 slices; a residue polynomial is four BRAM36Ks — §V-A2);
//! LUT/FF counts per block are calibrated against the paper's
//! single-coprocessor totals and kept as named constants so the breakdown
//! is inspectable.

use serde::{Deserialize, Serialize};

/// FPGA resource vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops / registers.
    pub reg: u64,
    /// BRAM36K blocks.
    pub bram: u64,
    /// DSP48 slices.
    pub dsp: u64,
}

impl Resources {
    /// Component-wise sum.
    pub fn plus(self, other: Resources) -> Resources {
        Resources {
            lut: self.lut + other.lut,
            reg: self.reg + other.reg,
            bram: self.bram + other.bram,
            dsp: self.dsp + other.dsp,
        }
    }

    /// Component-wise scale.
    pub fn times(self, k: u64) -> Resources {
        Resources {
            lut: self.lut * k,
            reg: self.reg * k,
            bram: self.bram * k,
            dsp: self.dsp * k,
        }
    }
}

/// Capacity of the paper's target device (Zynq UltraScale+ ZCU102 /
/// XCZU9EG), used for the utilization percentages of Table IV.
pub const ZCU102: Resources = Resources {
    lut: 274_080,
    reg: 548_160,
    bram: 912,
    dsp: 2_520,
};

/// One architectural block with its resource cost and instance count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block name.
    pub name: String,
    /// Instances per coprocessor.
    pub count: u64,
    /// Cost of one instance.
    pub each: Resources,
}

/// The per-block decomposition of one coprocessor.
///
/// DSP structure: 14 butterfly cores × 4 (one 30×30 multiplier each) +
/// 2 HPS lift cores × 48 (one input multiplier, seven MACs, the 30×60
/// reciprocal multiplier, two output stages) + 2 scale cores × 28 (the two
/// MAC summation blocks of Fig. 9, the lift datapath itself being reused)
/// = 208, matching Table IV exactly.
///
/// BRAM structure: 81 residue-polynomial slots in the memory file × 4 +
/// 14 twiddle ROMs (one per RPAU prime; inverse twiddles are derived by
/// address reflection) × 4 + 8 for reduction tables, constants and the
/// instruction queue = 388, matching Table IV exactly.
pub fn coprocessor_blocks() -> Vec<Block> {
    let blocks = [
        (
            "butterfly core (30x30 mult + sliding-window reduce + add/sub)",
            14,
            1_650u64,
            690u64,
            0u64,
            4u64,
        ),
        (
            "HPS Lift core (Fig. 6 block pipeline)",
            2,
            8_000,
            3_200,
            0,
            48,
        ),
        ("HPS Scale core (Fig. 9 blocks 1-3)", 2, 6_000, 2_400, 0, 28),
        ("RPAU control / address generation", 7, 700, 280, 0, 0),
        ("instruction decoder & sequencer", 1, 2_500, 1_000, 4, 0),
        ("memory file interconnect", 1, 5_022, 1_802, 0, 0),
        ("memory file (81 residue-poly slots)", 81, 0, 0, 4, 0),
        ("twiddle ROMs (2 primes x 7 RPAUs)", 14, 0, 0, 4, 0),
        ("reduction tables & lift/scale constant ROMs", 1, 0, 0, 4, 0),
    ];
    blocks
        .iter()
        .map(|&(name, count, lut, reg, bram, dsp)| Block {
            name: name.into(),
            count,
            each: Resources {
                lut,
                reg,
                bram,
                dsp,
            },
        })
        .collect()
}

/// Totals one coprocessor.
pub fn coprocessor_total() -> Resources {
    coprocessor_blocks()
        .iter()
        .fold(Resources::default(), |acc, b| {
            acc.plus(b.each.times(b.count))
        })
}

/// The DMA + interfacing + mutex logic shared by both coprocessors
/// (difference of Table IV's two rows).
pub fn interface_total() -> Resources {
    Resources {
        lut: 6_648,
        reg: 9_068,
        bram: 39,
        dsp: 0,
    }
}

/// Table IV: `coprocessors` instances plus the interface.
pub fn table4(coprocessors: u64) -> Resources {
    coprocessor_total()
        .times(coprocessors)
        .plus(interface_total())
}

/// Utilization percentage of a resource vector on a device.
pub fn utilization(used: Resources, device: Resources) -> [f64; 4] {
    [
        100.0 * used.lut as f64 / device.lut as f64,
        100.0 * used.reg as f64 / device.reg as f64,
        100.0 * used.bram as f64 / device.bram as f64,
        100.0 * used.dsp as f64 / device.dsp as f64,
    ]
}

/// One row of Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// log2 of the ring degree.
    pub log_n: u32,
    /// Bits of `q`.
    pub log_q: u32,
    /// Estimated resources.
    pub res: Resources,
    /// Computation time, ms.
    pub comp_ms: f64,
    /// Communication time, ms.
    pub comm_ms: f64,
    /// Total, ms.
    pub total_ms: f64,
}

/// Table V's estimation model (§VI-D): per doubling of both the degree
/// and the coefficient size, the RPAU and Lift/Scale core counts double
/// (2× logic, 2× DSP, 4× BRAM), net computation grows ≈2.17× and off-chip
/// transfer 4×.
pub fn table5() -> Vec<Table5Row> {
    let mut rows = Vec::with_capacity(4);
    // Row 1 seeds from the implemented single-coprocessor design.
    let mut res = Resources {
        lut: 64_000,
        reg: 25_000,
        bram: 400,
        dsp: 200,
    };
    let mut comp_ms = 4.46;
    let mut comm_ms = 0.54;
    for step in 0..4u32 {
        rows.push(Table5Row {
            log_n: 12 + step,
            log_q: 180 << step,
            res,
            comp_ms,
            comm_ms,
            total_ms: comp_ms + comm_ms,
        });
        res = Resources {
            lut: res.lut * 2,
            reg: res.reg * 2,
            bram: res.bram * 4,
            dsp: res.dsp * 2,
        };
        comp_ms *= 2.17;
        comm_ms *= 4.0;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_coprocessor_matches_table4() {
        let r = coprocessor_total();
        assert_eq!(r.lut, 63_522);
        assert_eq!(r.reg, 25_622);
        assert_eq!(r.bram, 388);
        assert_eq!(r.dsp, 208);
    }

    #[test]
    fn two_coprocessors_match_table4() {
        let r = table4(2);
        assert_eq!(r.lut, 133_692);
        assert_eq!(r.reg, 60_312);
        assert_eq!(r.bram, 815);
        assert_eq!(r.dsp, 416);
    }

    #[test]
    fn utilization_matches_paper_percentages() {
        // Paper: two coprocessors = 49% LUT, 11% Reg, 89% BRAM, 16% DSP.
        let u = utilization(table4(2), ZCU102);
        assert!((u[0] - 49.0).abs() < 1.0, "LUT {:.1}%", u[0]);
        assert!((u[1] - 11.0).abs() < 1.0, "Reg {:.1}%", u[1]);
        assert!((u[2] - 89.0).abs() < 1.5, "BRAM {:.1}%", u[2]);
        assert!((u[3] - 16.0).abs() < 1.0, "DSP {:.1}%", u[3]);
    }

    #[test]
    fn design_is_memory_constrained() {
        // §VI-B: "the design is constrained on memory size" — BRAM is by
        // far the dominant utilization.
        let u = utilization(table4(2), ZCU102);
        assert!(u[2] > u[0] && u[2] > u[1] && u[2] > u[3]);
    }

    #[test]
    fn dsp_breakdown_is_structural() {
        // 14 butterflies×4 + 2 lifts×48 + 2 scales×28 = 208.
        assert_eq!(14 * 4 + 2 * 48 + 2 * 28, 208);
    }

    #[test]
    fn table5_matches_paper() {
        let rows = table5();
        let paper = [
            (
                12u32, 180u32, 64_000u64, 25_000u64, 400u64, 200u64, 4.46, 0.54, 5.0,
            ),
            (13, 360, 128_000, 50_000, 1_600, 400, 9.68, 2.16, 11.9),
            (14, 720, 256_000, 100_000, 6_400, 800, 21.0, 8.64, 29.6),
            (15, 1_440, 512_000, 200_000, 25_600, 1_600, 45.6, 34.6, 80.2),
        ];
        for (row, p) in rows.iter().zip(paper) {
            assert_eq!(row.log_n, p.0);
            assert_eq!(row.log_q, p.1);
            assert_eq!(row.res.lut, p.2);
            assert_eq!(row.res.reg, p.3);
            assert_eq!(row.res.bram, p.4);
            assert_eq!(row.res.dsp, p.5);
            assert!(
                (row.comp_ms - p.6).abs() / p.6 < 0.02,
                "comp {}",
                row.comp_ms
            );
            assert!(
                (row.comm_ms - p.7).abs() / p.7 < 0.02,
                "comm {}",
                row.comm_ms
            );
            assert!(
                (row.total_ms - p.8).abs() / p.8 < 0.02,
                "total {}",
                row.total_ms
            );
        }
    }
}
