//! Power model (§VI-C): static power plus per-active-coprocessor dynamic
//! power, calibrated to the paper's Power Advantage Tool measurements.

use serde::{Deserialize, Serialize};

/// Calibrated platform power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Static power, W (paper: 5.3 W).
    pub static_w: f64,
    /// Dynamic power of the shared infrastructure (Arm + DMA) while any
    /// multiplication stream runs, W.
    pub base_dynamic_w: f64,
    /// Additional dynamic power per active coprocessor, W.
    pub per_coproc_w: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        // Fit to §VI-C: one core ⇒ 2.2 W dynamic, two cores ⇒ 3.4 W.
        PowerModel {
            static_w: 5.3,
            base_dynamic_w: 1.0,
            per_coproc_w: 1.2,
        }
    }
}

impl PowerModel {
    /// Dynamic power with `active` coprocessors running multiplications.
    pub fn dynamic_w(&self, active: usize) -> f64 {
        if active == 0 {
            0.0
        } else {
            self.base_dynamic_w + self.per_coproc_w * active as f64
        }
    }

    /// Total (static + dynamic) power.
    pub fn total_w(&self, active: usize) -> f64 {
        self.static_w + self.dynamic_w(active)
    }

    /// Energy per homomorphic multiplication in millijoules, given the
    /// per-`Mult` latency and the number of concurrently active
    /// coprocessors.
    pub fn energy_per_mult_mj(&self, mult_ms: f64, active: usize) -> f64 {
        // With `active` coprocessors each finishing one Mult per mult_ms:
        self.total_w(active) * mult_ms / active as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_measurements() {
        let p = PowerModel::default();
        assert!((p.static_w - 5.3).abs() < 1e-9);
        assert!((p.dynamic_w(1) - 2.2).abs() < 1e-9, "single core 2.2 W");
        assert!((p.dynamic_w(2) - 3.4).abs() < 1e-9, "double core 3.4 W");
        // Peak = 5.3 + 3.4 = 8.7 W, the figure quoted against the Intel
        // i5's 40 W (§VI-E).
        assert!((p.total_w(2) - 8.7).abs() < 1e-9);
    }

    #[test]
    fn idle_has_no_dynamic_power() {
        let p = PowerModel::default();
        assert_eq!(p.dynamic_w(0), 0.0);
        assert!((p.total_w(0) - 5.3).abs() < 1e-9);
    }

    #[test]
    fn energy_per_mult_is_a_few_tens_of_mj() {
        let p = PowerModel::default();
        // Two coprocessors, 5 ms per offloaded Mult: 8.7 W / 400 Mult/s.
        let mj = p.energy_per_mult_mj(5.0, 2);
        assert!((mj - 21.75).abs() < 0.1, "{mj} mJ");
    }
}
