//! Fully functional coprocessor: executes an entire homomorphic `Mult`
//! through the hardware unit models — the Fig. 3 schedule-driven NTTs, the
//! RPAU coefficient datapaths with sliding-window reduction, and the
//! Fig. 6/9 block-pipelined `Lift`/`Scale` units — producing both the
//! result ciphertext and per-unit datapath cycle counts.
//!
//! This is the strongest form of the reproduction claim: the *same bytes*
//! the software library computes come out of the microarchitectural
//! model, for the whole multiplication, not just per kernel. The test
//! suite pins `execute_mult` bit-for-bit against
//! `hefv_core::eval::mul(…, Backend::Hps(Fixed))`.

use crate::bram::PolyMem;
use crate::liftsim::{HpsLiftUnit, HpsScaleUnit};
use crate::rpau::RpauArray;
use hefv_core::context::FvContext;
use hefv_core::encrypt::Ciphertext;
use hefv_core::keys::RelinKey;
use hefv_core::rnspoly::{Domain, RnsPoly};
use serde::{Deserialize, Serialize};

/// Datapath cycles accumulated per unit class during one operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatapathTrace {
    /// NTT + inverse-NTT cycles (per batch, max over lanes in a batch).
    pub transform: u64,
    /// Coefficient-wise multiply/add/sub cycles.
    pub coeffwise: u64,
    /// Memory-rearrange cycles.
    pub rearrange: u64,
    /// Lift/scale block-pipeline cycles (two cores assumed).
    pub liftscale: u64,
}

impl DatapathTrace {
    /// Total datapath cycles.
    pub fn total(&self) -> u64 {
        self.transform + self.coeffwise + self.rearrange + self.liftscale
    }
}

/// The functional coprocessor: unit models bound to one FV context.
pub struct FunctionalCoprocessor<'a> {
    ctx: &'a FvContext,
    lanes: RpauArray,
    lift: HpsLiftUnit,
    scale: HpsScaleUnit,
    /// Lift/Scale cores (2 in the paper's fast design).
    pub lift_cores: usize,
}

impl<'a> FunctionalCoprocessor<'a> {
    /// Builds the unit models for a context.
    pub fn new(ctx: &'a FvContext) -> Self {
        let primes: Vec<u64> = ctx
            .params()
            .q_primes
            .iter()
            .chain(&ctx.params().p_primes)
            .copied()
            .collect();
        let sc = ctx.scale();
        FunctionalCoprocessor {
            ctx,
            lanes: RpauArray::new(&primes, ctx.params().n),
            lift: HpsLiftUnit::from_extender(ctx.rns().lift()),
            scale: HpsScaleUnit::new(ctx.rns(), sc),
            lift_cores: 2,
        }
    }

    fn to_mems(poly: &RnsPoly) -> Vec<PolyMem> {
        poly.rows().map(PolyMem::load).collect()
    }

    fn from_mems(mems: Vec<PolyMem>, domain: Domain) -> RnsPoly {
        RnsPoly::from_residues(
            mems.into_iter().map(|m| m.coeffs().to_vec()).collect(),
            domain,
        )
    }

    /// Rearrange + forward NTT of `k` rows, charging batch cycles.
    fn transform_rows(&self, mems: &mut [PolyMem], trace: &mut DatapathTrace) {
        let k = mems.len();
        let batches = self.lanes.batches(k) as u64;
        let mut per_lane_t = 0u64;
        let mut per_lane_r = 0u64;
        for (i, mem) in mems.iter_mut().enumerate() {
            per_lane_r = self.lanes.lane(i).rearrange(mem);
            // Undo the rearrange before transforming: the instruction
            // stream pairs each transform with a rearrange of the
            // *output* layout; functionally the schedule operates on
            // natural order, so rearrange twice (cycle cost charged once,
            // as in the microcode).
            self.lanes.lane(i).rearrange(mem);
            per_lane_t = self.lanes.lane(i).ntt(mem, &self.ctx.ntt_full()[i]);
        }
        trace.transform += batches * per_lane_t;
        trace.rearrange += batches * per_lane_r;
    }

    fn inverse_rows(&self, mems: &mut [PolyMem], trace: &mut DatapathTrace) {
        let k = mems.len();
        let batches = self.lanes.batches(k) as u64;
        let mut per_lane = 0u64;
        for (i, mem) in mems.iter_mut().enumerate() {
            per_lane = self.lanes.lane(i).intt(mem, &self.ctx.ntt_full()[i]);
            let r = self.lanes.lane(i).rearrange(mem);
            self.lanes.lane(i).rearrange(mem);
            trace.rearrange += if i == 0 { batches * r } else { 0 };
        }
        trace.transform += batches * per_lane;
    }

    /// `Lift q→Q` of one polynomial: returns all rows of the full basis.
    fn lift_poly(&self, poly: &RnsPoly, trace: &mut DatapathTrace) -> Vec<PolyMem> {
        let (ext, cycles_one_core) = self.lift.lift_poly(&poly.to_rows());
        trace.liftscale += cycles_one_core / self.lift_cores as u64;
        let mut mems = Self::to_mems(poly);
        mems.extend(ext.iter().map(|r| PolyMem::load(r)));
        mems
    }

    /// Executes a full homomorphic multiplication through the unit
    /// models; returns the ciphertext and the datapath trace.
    pub fn execute_mult(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        rlk: &RelinKey,
    ) -> (Ciphertext, DatapathTrace) {
        let ctx = self.ctx;
        let k = ctx.params().k();
        let full = k + ctx.params().l();
        let mut trace = DatapathTrace::default();

        // Step 1: lift all four operand polynomials.
        let mut l00 = self.lift_poly(a.c0(), &mut trace);
        let mut l01 = self.lift_poly(a.c1(), &mut trace);
        let mut l10 = self.lift_poly(b.c0(), &mut trace);
        let mut l11 = self.lift_poly(b.c1(), &mut trace);

        // Step 2: transforms and tensor products.
        self.transform_rows(&mut l00, &mut trace);
        self.transform_rows(&mut l01, &mut trace);
        self.transform_rows(&mut l10, &mut trace);
        self.transform_rows(&mut l11, &mut trace);

        let mut t0 = Vec::with_capacity(full);
        let mut t1 = Vec::with_capacity(full);
        let mut t2 = Vec::with_capacity(full);
        let batches_full = self.lanes.batches(full) as u64;
        let mut cw = 0u64;
        for i in 0..full {
            let lane = self.lanes.lane(i);
            let (p0, c) = lane.cwm(&l00[i], &l10[i]);
            cw = c;
            let (mut p1, _) = lane.cwm(&l00[i], &l11[i]);
            lane.cwm_acc(&mut p1, &l01[i], &l10[i]);
            let (p2, _) = lane.cwm(&l01[i], &l11[i]);
            t0.push(p0);
            t1.push(p1);
            t2.push(p2);
        }
        // 4 CWM batches + 1 CWA-equivalent batch per Fig. 2 (the MAC
        // performs the addition).
        trace.coeffwise += batches_full * cw * 5;

        // Step 3: inverse transforms and Scale.
        self.inverse_rows(&mut t0, &mut trace);
        self.inverse_rows(&mut t1, &mut trace);
        self.inverse_rows(&mut t2, &mut trace);
        let scale_one = |mems: &Vec<PolyMem>, trace: &mut DatapathTrace| -> Vec<PolyMem> {
            let rows: Vec<Vec<u64>> = mems.iter().map(|m| m.coeffs().to_vec()).collect();
            let (out, cycles_one_core) = self.scale.scale_poly(&rows);
            trace.liftscale += cycles_one_core / self.lift_cores as u64;
            out.iter().map(|r| PolyMem::load(r)).collect()
        };
        let d0 = scale_one(&t0, &mut trace);
        let d1 = scale_one(&t1, &mut trace);
        let d2 = scale_one(&t2, &mut trace);

        // Step 4: WordDecomp + ReLin.
        let n = ctx.params().n;
        let mut acc0: Vec<PolyMem> = (0..k).map(|_| PolyMem::load(&vec![0u64; n])).collect();
        let mut acc1: Vec<PolyMem> = (0..k).map(|_| PolyMem::load(&vec![0u64; n])).collect();
        let batches_q = self.lanes.batches(k) as u64;
        for (digit, d2_row) in d2.iter().enumerate() {
            // Spread the digit row across the q lanes (the 2 CWA-class
            // passes of the microcode).
            let spread = ctx.spread_digit(d2_row.coeffs());
            let mut digit_mems: Vec<PolyMem> = spread.chunks(n).map(PolyMem::load).collect();
            trace.coeffwise += 2 * batches_q * (n as u64 / 2);
            self.transform_rows(&mut digit_mems, &mut trace);
            for i in 0..k {
                let lane = self.lanes.lane(i);
                let r0 = PolyMem::load(rlk.rlk0(digit).row(i));
                let r1 = PolyMem::load(rlk.rlk1(digit).row(i));
                lane.cwm_acc(&mut acc0[i], &digit_mems[i], &r0);
                lane.cwm_acc(&mut acc1[i], &digit_mems[i], &r1);
            }
            trace.coeffwise += 2 * batches_q * (n as u64 / 2);
        }
        self.inverse_rows(&mut acc0, &mut trace);
        self.inverse_rows(&mut acc1, &mut trace);
        // Final additions c0 = d0 + acc0, c1 = d1 + acc1.
        let mut c0 = Vec::with_capacity(k);
        let mut c1 = Vec::with_capacity(k);
        for i in 0..k {
            let lane = self.lanes.lane(i);
            let (x, c) = lane.cwa(&d0[i], &acc0[i]);
            let (y, _) = lane.cwa(&d1[i], &acc1[i]);
            c0.push(x);
            c1.push(y);
            if i == 0 {
                trace.coeffwise += 2 * batches_q * c;
            }
        }

        let out = Ciphertext::from_parts(
            Self::from_mems(c0, Domain::Coefficient),
            Self::from_mems(c1, Domain::Coefficient),
        );
        (out, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hefv_core::eval::{self, Backend};
    use hefv_core::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (FvContext, SecretKey, PublicKey, RelinKey, StdRng) {
        let ctx = FvContext::new(FvParams::insecure_medium()).unwrap();
        let mut rng = StdRng::seed_from_u64(314);
        let (sk, pk, rlk) = keygen(&ctx, &mut rng);
        (ctx, sk, pk, rlk, rng)
    }

    #[test]
    fn functional_mult_is_bit_exact_vs_library() {
        let (ctx, sk, pk, rlk, mut rng) = setup();
        let pa = Plaintext::new(vec![1, 0, 1, 1], 2, ctx.params().n);
        let pb = Plaintext::new(vec![1, 1], 2, ctx.params().n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let cb = encrypt(&ctx, &pk, &pb, &mut rng);

        let func = FunctionalCoprocessor::new(&ctx);
        let (hw, trace) = func.execute_mult(&ca, &cb, &rlk);
        let sw = eval::mul(&ctx, &ca, &cb, &rlk, Backend::Hps(HpsPrecision::Fixed));
        assert_eq!(hw, sw, "functional coprocessor bit-exact vs library");
        assert!(trace.total() > 0);
        // The result decrypts correctly too.
        let expect = eval::mul(&ctx, &ca, &cb, &rlk, Backend::Traditional);
        assert_eq!(decrypt(&ctx, &sk, &hw), decrypt(&ctx, &sk, &expect));
    }

    #[test]
    fn trace_composition_matches_structural_model() {
        // For n=256, k=6, l=7, 7 RPAUs: transforms are 22 batch calls
        // (14 NTT + 8 INTT); each batch is log2(n)·n/4 (+ n/4 for
        // inverse scaling pass) cycles.
        let (ctx, _, pk, rlk, mut rng) = setup();
        let n = ctx.params().n as u64;
        let pa = Plaintext::new(vec![1], 2, ctx.params().n);
        let ca = encrypt(&ctx, &pk, &pa, &mut rng);
        let func = FunctionalCoprocessor::new(&ctx);
        let (_, trace) = func.execute_mult(&ca, &ca, &rlk);

        let stages = n.trailing_zeros() as u64;
        let fwd = stages * n / 4; // per batch
        let inv = stages * n / 4 + n / 4;
        // NTT batches: 4 polys × 2 + 6 digits × 1 = 14; INTT: 3×2 + 2 = 8.
        assert_eq!(trace.transform, 14 * fwd + 8 * inv);
        // Lift: 4 polys; Scale: 3 — each (fill + n·II)/2 or the scale
        // variant with doubled fill.
        let lift_one = (5 * 7 + n * 7) / 2;
        let scale_one = (2 * 5 * 7 + n * 7) / 2;
        assert_eq!(trace.liftscale, 4 * lift_one + 3 * scale_one);
        // Rearranges: one per transform batch = 22 × n.
        assert_eq!(trace.rearrange, 22 * n);
    }

    #[test]
    fn functional_mult_random_messages() {
        let (ctx, sk, pk, rlk, mut rng) = setup();
        use rand::Rng;
        let func = FunctionalCoprocessor::new(&ctx);
        for _ in 0..2 {
            let coeffs: Vec<u64> = (0..6).map(|_| rng.gen_range(0..2)).collect();
            let pt = Plaintext::new(coeffs, 2, ctx.params().n);
            let ca = encrypt(&ctx, &pk, &pt, &mut rng);
            let (hw, _) = func.execute_mult(&ca, &ca, &rlk);
            let sw = eval::mul(&ctx, &ca, &ca, &rlk, Backend::Hps(HpsPrecision::Fixed));
            assert_eq!(hw, sw);
            let _ = decrypt(&ctx, &sk, &hw);
        }
    }
}
